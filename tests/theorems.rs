//! Property-based verification of the paper's formal claims.
//!
//! * Definition 1/4 + companion-paper lemma: `MIS(O') ⊆ I(O')` and the INS
//!   is an influential set (Euclidean).
//! * The region guarded by the INS is exactly the order-k Voronoi cell:
//!   clipping against the INS produces the same cell as clipping against
//!   all sites.
//! * Theorem 1: `MIS ⊆ INS` under network distance.
//! * Theorem 2: the kNN on the `kNN ∪ INS` subnetwork determines the
//!   global kNN.

use insq::core::{minimal_influential_set, mis_with_candidates};
use insq::prelude::*;
use insq::voronoi::order_k_cell;
use proptest::prelude::*;

fn distinct_points(n: usize, seed: u64) -> Vec<Point> {
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    Distribution::Uniform.generate(n, &space, seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn mis_subset_of_ins_euclidean(seed in 0u64..5000, k in 1usize..7, qx in 10.0f64..90.0, qy in 10.0f64..90.0) {
        let points = distinct_points(60, seed);
        let bounds = Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0));
        let voronoi = Voronoi::build(points, bounds).unwrap();
        let q = Point::new(qx, qy);
        let knn = voronoi.knn_brute(q, k);
        let mis = minimal_influential_set(&voronoi, &knn)
            .expect("a true kNN set always has a non-empty order-k cell");
        let ins = insq::core::influential_neighbor_set(&voronoi, &knn);
        for m in &mis {
            prop_assert!(ins.contains(m), "MIS member {m} not in INS (k={k})");
        }
        // And the fast MIS construction (clipping against the INS only)
        // agrees with the exhaustive one.
        let fast = mis_with_candidates(&voronoi, &knn, &ins).unwrap();
        prop_assert_eq!(mis, fast);
    }

    #[test]
    fn ins_region_is_exactly_the_order_k_cell(seed in 0u64..5000, k in 1usize..6, qx in 20.0f64..80.0, qy in 20.0f64..80.0) {
        let points = distinct_points(50, seed);
        let bounds = Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0));
        let voronoi = Voronoi::build(points.clone(), bounds).unwrap();
        let q = Point::new(qx, qy);
        let knn = voronoi.knn_brute(q, k);
        let ins = insq::core::influential_neighbor_set(&voronoi, &knn);
        let all: Vec<SiteId> = (0..voronoi.len() as u32).map(SiteId).collect();

        let via_ins = order_k_cell(voronoi.points(), &knn, &ins, &bounds);
        let via_all = order_k_cell(voronoi.points(), &knn, &all, &bounds);
        // Exact same region (the paper: the INS defines the largest
        // possible safe region, the order-k Voronoi cell).
        prop_assert!((via_ins.area() - via_all.area()).abs() < 1e-7,
            "areas differ: {} vs {}", via_ins.area(), via_all.area());
        prop_assert!(via_ins.contains(q));
    }

    #[test]
    fn validation_predicate_characterizes_membership(seed in 0u64..5000, k in 1usize..6, qx in 10.0f64..90.0, qy in 10.0f64..90.0, dx in -8.0f64..8.0, dy in -8.0f64..8.0) {
        // For a kNN set fixed at q, the distance predicate vs the INS at a
        // *different* position q2 answers exactly "is the set still the
        // kNN at q2".
        let points = distinct_points(60, seed);
        let bounds = Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0));
        let voronoi = Voronoi::build(points, bounds).unwrap();
        let q = Point::new(qx, qy);
        let knn = voronoi.knn_brute(q, k);
        let ins = insq::core::influential_neighbor_set(&voronoi, &knn);
        let q2 = Point::new(qx + dx, qy + dy);
        let val = insq::core::validate_by_distance(voronoi.points(), q2, &knn, &ins);
        let mut truth = voronoi.knn_brute(q2, k);
        truth.sort_unstable();
        let mut claimed = knn.clone();
        claimed.sort_unstable();
        // Distance ties make both answers acceptable; skip knife-edge cases.
        let kth = voronoi.point(truth[truth.len() - 1]).distance(q2);
        let next = voronoi.knn_brute(q2, k + 1);
        let next_d = voronoi.point(next[next.len() - 1]).distance(q2);
        prop_assume!((next_d - kth).abs() > 1e-9);
        prop_assert_eq!(val.valid, truth == claimed,
            "predicate {} but sets {:?} vs {:?}", val.valid, claimed, truth);
    }
}

// ---------------------------------------------------------------- networks

use insq::core::influential_neighbor_set_net;
use insq::roadnet::generators::{grid_network, random_site_vertices, GridConfig};
use insq::roadnet::ine::network_knn;
use insq::roadnet::order_k::{knn_sets_equal, network_mis, site_distance_matrix};
use insq::roadnet::subnetwork::{restricted_knn, SiteMask};

fn small_network(seed: u64) -> (RoadNetwork, SiteSet) {
    let net = grid_network(
        &GridConfig {
            cols: 7,
            rows: 7,
            spacing: 1.0,
            jitter: 0.15,
            diagonal_prob: 0.1,
            deletion_prob: 0.1,
        },
        seed,
    )
    .unwrap();
    let m = 10;
    let sites = SiteSet::new(&net, random_site_vertices(&net, m, seed).unwrap()).unwrap();
    (net, sites)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(25))]

    #[test]
    fn theorem_1_network_mis_subset_of_ins(seed in 0u64..2000, vertex in 0u32..49, k in 2usize..4) {
        let (net, sites) = small_network(seed);
        let nvd = NetworkVoronoi::build(&net, &sites);
        let matrix = site_distance_matrix(&net, &sites);
        let pos = NetPosition::Vertex(VertexId(vertex));
        let knn: Vec<SiteIdx> = network_knn(&net, &sites, pos, k)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let mut knn_sorted = knn.clone();
        knn_sorted.sort_unstable();
        // Skip tie-degenerate kNN sets (another set may be equally valid).
        let all = insq::roadnet::order_k::knn_at(&net, &matrix, pos, k + 1);
        prop_assume!(all.len() > k && (all[k].1 - all[k-1].1).abs() > 1e-9);

        let mis = network_mis(&net, &matrix, &knn_sorted, k);
        let ins = influential_neighbor_set_net(&nvd, &knn_sorted);
        for m in &mis {
            prop_assert!(ins.contains(m),
                "network MIS member {m} not in INS (knn {knn_sorted:?})");
        }
    }

    #[test]
    fn theorem_2_restricted_search_decides_global_knn(seed in 0u64..2000, vertex in 0u32..49, k in 1usize..5) {
        let (net, sites) = small_network(seed);
        let nvd = NetworkVoronoi::build(&net, &sites);
        let pos = NetPosition::Vertex(VertexId(vertex));
        let global: Vec<SiteIdx> = network_knn(&net, &sites, pos, k)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let ins = influential_neighbor_set_net(&nvd, &global);
        let mut mask = SiteMask::new(sites.len());
        mask.set(global.iter().copied().chain(ins.iter().copied()));
        let (restricted, _) = restricted_knn(&net, &sites, &nvd, &mask, pos, k);
        let r: Vec<SiteIdx> = restricted.iter().map(|&(s, _)| s).collect();
        // Theorem 2 direction used by the processor: since the true kNN is
        // `global`, the restricted search on the kNN ∪ INS subnetwork must
        // find it (same distances; ids may permute on exact ties).
        let gd: Vec<f64> = network_knn(&net, &sites, pos, k).iter().map(|&(_, d)| d).collect();
        let rd: Vec<f64> = restricted.iter().map(|&(_, d)| d).collect();
        prop_assert_eq!(gd.len(), rd.len());
        for (a, b) in gd.iter().zip(&rd) {
            prop_assert!((a - b).abs() < 1e-9, "{:?} vs {:?}", global, r);
        }
        prop_assert!(knn_sets_equal(&r, &global) || gd.iter().zip(&rd).all(|(a, b)| (a-b).abs() < 1e-9));
    }
}

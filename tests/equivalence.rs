//! The golden correctness property: every moving-kNN processor returns
//! exactly the brute-force kNN set at every timestamp, for every method,
//! over multiple scenarios.
//!
//! This is what makes the cost comparisons of EXPERIMENTS.md meaningful:
//! all methods compute the same answers; they differ only in how much work
//! and communication it takes.

use insq::prelude::*;

fn euclidean_setup(n: usize, distribution: Distribution, seed: u64) -> (VorTree, Trajectory) {
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let points = distribution.generate(n, &space, seed);
    let index = VorTree::build(points, space.inflated(10.0)).expect("valid data");
    let traj = TrajectoryKind::RandomWaypoint { waypoints: 12 }.generate(&space, seed ^ 0xF00);
    (index, traj)
}

fn assert_knn_equal(got: &[SiteId], index: &VorTree, pos: Point, k: usize, label: &str) {
    let mut g: Vec<SiteId> = got.to_vec();
    g.sort_unstable();
    let mut want = index.voronoi().knn_brute(pos, k);
    want.sort_unstable();
    // Distance ties permit different id sets; compare by distances.
    if g != want {
        let d = |ids: &[SiteId]| -> Vec<f64> {
            ids.iter().map(|&s| index.point(s).distance(pos)).collect()
        };
        let mut gd = d(&g);
        let mut wd = d(&want);
        gd.sort_by(f64::total_cmp);
        wd.sort_by(f64::total_cmp);
        for (a, b) in gd.iter().zip(&wd) {
            assert!(
                (a - b).abs() < 1e-9,
                "{label}: kNN mismatch at {pos:?}: {g:?} vs {want:?}"
            );
        }
    }
}

#[test]
fn all_euclidean_methods_agree_with_brute_force() {
    for (seed, k, dist) in [
        (1u64, 1usize, Distribution::Uniform),
        (2, 4, Distribution::Uniform),
        (
            3,
            8,
            Distribution::Clustered {
                clusters: 5,
                spread: 0.05,
            },
        ),
        (4, 3, Distribution::GridJitter { jitter: 0.3 }),
    ] {
        let (index, traj) = euclidean_setup(400, dist, seed);
        let ticks = 500;
        let speed = 0.4;

        let mut ins = InsProcessor::new(&index, InsConfig::new(k, 1.6)).unwrap();
        let mut ins_inc = InsProcessor::new(&index, InsConfig::new(k, 1.6).incremental()).unwrap();
        let mut okv = OkvProcessor::new(&index, k).unwrap();
        let mut vstar = VStarProcessor::new(&index, VStarConfig::with_k(k)).unwrap();
        let mut naive = NaiveProcessor::new(index.rtree(), k).unwrap();

        for tick in 0..ticks {
            let pos = traj.position_looped(speed * tick as f64);
            ins.tick(pos);
            ins_inc.tick(pos);
            okv.tick(pos);
            vstar.tick(pos);
            naive.tick(pos);
            assert_knn_equal(&ins.current_knn(), &index, pos, k, "INS");
            assert_knn_equal(&ins_inc.current_knn(), &index, pos, k, "INS-incremental");
            assert_knn_equal(&okv.current_knn(), &index, pos, k, "OkV");
            assert_knn_equal(&vstar.current_knn(), &index, pos, k, "V*");
            assert_knn_equal(&naive.current_knn(), &index, pos, k, "Naive");
        }
    }
}

#[test]
fn cost_hierarchy_matches_paper_claims() {
    // n=5000 uniform, k=8: the headline comparison. INS must (a) tie or
    // beat OkV on recomputations (same maximal safe region), (b) recompute
    // less often than V*, (c) communicate far less than naive, and (d) pay
    // far less construction than OkV.
    let (index, traj) = euclidean_setup(5_000, Distribution::Uniform, 42);
    let k = 8;
    let (ticks, speed) = (3_000usize, 0.05f64);

    let mut comparison = Comparison::new();
    let mut ins = InsProcessor::new(&index, InsConfig::new(k, 1.6)).unwrap();
    comparison.add(&run_euclidean(&mut ins, &traj, ticks, speed));
    let mut okv = OkvProcessor::new(&index, k).unwrap();
    comparison.add(&run_euclidean(&mut okv, &traj, ticks, speed));
    let mut vstar = VStarProcessor::new(&index, VStarConfig::with_k(k)).unwrap();
    comparison.add(&run_euclidean(&mut vstar, &traj, ticks, speed));
    let mut naive = NaiveProcessor::new(index.rtree(), k).unwrap();
    comparison.add(&run_euclidean(&mut naive, &traj, ticks, speed));

    let row = |m: &str| comparison.row(m).unwrap().clone();
    let (ins_r, okv_r, vstar_r, naive_r) = (row("INS"), row("OkV"), row("V*"), row("Naive"));

    // (a) identical safe region => recomputation counts within noise
    // (INS repairs some exits locally, so it may even do fewer).
    assert!(
        ins_r.recomputations <= okv_r.recomputations,
        "INS {} vs OkV {}",
        ins_r.recomputations,
        okv_r.recomputations
    );
    // (b) the relaxed region of V* forces more retrievals than INS, whose
    // guarded region is the maximal order-k cell (V* may beat OkV's raw
    // count because its k+x buffer spans several cell exits, but INS has
    // the same buffering *and* the maximal region).
    assert!(
        vstar_r.recomputations > ins_r.recomputations,
        "V* {} vs INS {}",
        vstar_r.recomputations,
        ins_r.recomputations
    );
    // (c) naive ships k objects per tick; INS a tiny fraction of that.
    assert!(ins_r.comm_objects * 5 < naive_r.comm_objects);
    // (d) OkV's region construction dwarfs INS bookkeeping.
    assert!(ins_r.construction_ops * 2 < okv_r.construction_ops);
}

#[test]
fn network_ins_agrees_with_naive_ine() {
    use insq::roadnet::generators::{grid_network, random_site_vertices, GridConfig};
    use insq::roadnet::order_k::knn_sets_equal;

    for seed in [5u64, 17, 99] {
        let net = std::sync::Arc::new(
            grid_network(
                &GridConfig {
                    cols: 15,
                    rows: 15,
                    ..GridConfig::default()
                },
                seed,
            )
            .unwrap(),
        );
        let sites = SiteSet::new(&net, random_site_vertices(&net, 35, seed).unwrap()).unwrap();
        let world = NetworkWorld::build(std::sync::Arc::clone(&net), sites);
        let tour = NetTrajectory::random_tour(&net, 8, seed).unwrap();

        let k = 4;
        let mut ins = NetInsProcessor::new(&world, NetInsConfig::new(k, 1.6)).unwrap();
        let mut naive = NetNaiveProcessor::new(&net, &world.sites, k).unwrap();
        let ticks = 400;
        for tick in 0..ticks {
            let pos = tour.position_looped(&net, 0.15 * tick as f64);
            ins.tick(pos);
            naive.tick(pos);
            let a = ins.current_knn();
            let b = naive.current_knn();
            // Compare by distances to tolerate ties.
            if !knn_sets_equal(&a, &b) {
                let da: Vec<f64> = ins
                    .current_knn_with_dists()
                    .iter()
                    .map(|&(_, d)| d)
                    .collect();
                let db: Vec<f64> = naive
                    .current_knn_with_dists()
                    .iter()
                    .map(|&(_, d)| d)
                    .collect();
                for (x, y) in da.iter().zip(&db) {
                    assert!(
                        (x - y).abs() < 1e-9,
                        "seed {seed} tick {tick}: {a:?} vs {b:?}"
                    );
                }
            }
        }
        // And the communication claim.
        assert!(ins.stats().comm_objects * 3 < naive.stats().comm_objects);
    }
}

//! Cross-crate tests of the extensions built on the INS machinery:
//! order-k cell enumeration, exact continuous event traces, and their
//! mutual consistency with the tick-based processors.

use insq::core::{knn_change_events, InsConfig, InsProcessor, MovingKnn};
use insq::prelude::*;
use insq::voronoi::{cell_count_growth, enumerate_order_k_cells};

fn build(n: usize, seed: u64) -> VorTree {
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let pts = Distribution::Uniform.generate(n, &space, seed);
    VorTree::build(pts, space.inflated(10.0)).expect("valid data")
}

#[test]
fn continuous_trace_agrees_with_tick_processor_at_tick_positions() {
    // The exact trace and the discrete INS processor must agree wherever
    // both are defined: at every tick position, the processor's set equals
    // the trace's set.
    let index = build(400, 9);
    let a = Point::new(12.0, 40.0);
    let b = Point::new(88.0, 60.0);
    let k = 4;
    let trace = knn_change_events(&index, k, a, b).expect("valid configuration");
    let mut proc = InsProcessor::new(&index, InsConfig::new(k, 1.6)).expect("valid");
    let ticks = 500;
    for i in 0..=ticks {
        let t = i as f64 / ticks as f64;
        proc.tick(a.lerp(b, t));
        let mut via_proc = proc.current_knn();
        via_proc.sort_unstable();
        let via_trace = trace.knn_at(t);
        // Distance ties can permute ids between the two methods; compare
        // by distances.
        if via_proc != via_trace {
            let q = a.lerp(b, t);
            let d = |ids: &[SiteId]| -> Vec<f64> {
                let mut v: Vec<f64> = ids.iter().map(|&s| index.point(s).distance(q)).collect();
                v.sort_by(f64::total_cmp);
                v
            };
            let (dp, dt) = (d(&via_proc), d(&via_trace));
            for (x, y) in dp.iter().zip(&dt) {
                assert!(
                    (x - y).abs() < 1e-9,
                    "tick {i}: processor {via_proc:?} vs trace {via_trace:?}"
                );
            }
        }
    }
}

#[test]
fn event_count_lower_bounds_processor_changes() {
    // Every result change the tick processor sees corresponds to >= 1
    // exact event; the trace can only have more (it cannot miss any).
    let index = build(600, 21);
    let a = Point::new(10.0, 10.0);
    let b = Point::new(90.0, 90.0);
    let k = 3;
    let trace = knn_change_events(&index, k, a, b).expect("valid");
    let mut proc = InsProcessor::new(&index, InsConfig::new(k, 1.6)).expect("valid");
    let mut changes = 0;
    let mut prev: Option<Vec<SiteId>> = None;
    for i in 0..=800 {
        proc.tick(a.lerp(b, i as f64 / 800.0));
        let mut now = proc.current_knn();
        now.sort_unstable();
        if prev.as_ref() != Some(&now) {
            if prev.is_some() {
                changes += 1;
            }
            prev = Some(now);
        }
    }
    assert!(
        trace.events.len() >= changes,
        "trace {} events < observed {changes} changes",
        trace.events.len()
    );
}

#[test]
fn enumeration_cell_of_query_matches_processor_safe_region() {
    // The enumerated cell containing a query point has the same k-set as
    // the processor's result there, and (up to clipping) the same area as
    // the processor's materialised safe region.
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let pts = Distribution::Uniform.generate(40, &space, 4);
    let index = VorTree::build(pts, space.inflated(10.0)).expect("valid");
    let k = 3;
    let q = Point::new(50.0, 50.0);

    let cells = enumerate_order_k_cells(index.voronoi(), k, q);
    let mut at_q = index.voronoi().knn_brute(q, k);
    at_q.sort_unstable();
    let cell = cells
        .iter()
        .find(|c| c.knn_set == at_q)
        .expect("the query's own cell is enumerated");

    let mut proc = InsProcessor::new(&index, InsConfig::new(k, 1.6)).expect("valid");
    proc.tick(q);
    let region = proc.safe_region();
    assert!(
        (region.area() - cell.area).abs() < 1e-6,
        "enumerated area {} vs processor safe region {}",
        cell.area,
        region.area()
    );
}

#[test]
fn growth_curve_documents_the_papers_precomputation_argument() {
    // The paper dismisses precomputing order-k cells because their count
    // explodes with k; verify the count is strictly super-linear in k on
    // uniform data (the argument's quantitative core).
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let pts = Distribution::Uniform.generate(30, &space, 8);
    let v = Voronoi::build(pts, space.inflated(10.0)).expect("valid");
    let curve = cell_count_growth(&v, 3, Point::new(50.0, 50.0));
    assert_eq!(curve[0], (1, 30));
    let k2 = curve[1].1;
    let k3 = curve[2].1;
    assert!(k2 > 30, "order-2 cells exceed n: {k2}");
    assert!(k3 > k2, "order-3 exceeds order-2: {k3} vs {k2}");
}

#[test]
fn hull_bounds_all_safe_regions() {
    // Safe regions of interior queries live inside the data hull inflated
    // by the clip window — a sanity link between the hull utility and the
    // region machinery.
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let pts = Distribution::Uniform.generate(120, &space, 13);
    let hull = insq::geom::convex_hull(&pts);
    assert!(hull.len() >= 3);
    let index = VorTree::build(pts.clone(), space.inflated(10.0)).expect("valid");
    let mut proc = InsProcessor::new(&index, InsConfig::new(4, 1.6)).expect("valid");
    proc.tick(Point::new(50.0, 50.0));
    // Every kNN member is a data point, hence inside the hull.
    for s in proc.current_knn() {
        assert!(insq::geom::hull_contains(&hull, index.point(s)));
    }
}

//! Reproduction of Fig. 1 of the paper: the minimal influential set of a
//! 3-NN set via the order-3 Voronoi cells adjacent to `V^3(O')`.
//!
//! The figure shows 12 data objects; the cell of `O' = {p4, p6, p7}` is
//! surrounded by neighboring order-3 cells whose object triples differ
//! from `O'` by exactly one object, and the union of the swapped-in
//! objects — `{p3, p5, p10, p12}` in the figure — is the MIS. The exact
//! coordinates are not published, so this test reconstructs a 12-point
//! configuration with the same *structure* and verifies every relationship
//! the figure illustrates. The `report --exp fig1` binary prints the
//! corresponding table.

use insq::core::{influential_neighbor_set, minimal_influential_set};
use insq::prelude::*;
use insq::voronoi::{order_k_cell_tagged, EdgeSource};

/// A 12-point configuration with a central triple surrounded by a ring —
/// qualitatively Fig. 1's layout (p4, p6, p7 central; p3, p5, p10, p12 in
/// the first ring; the rest outside).
fn fig1_points() -> Vec<Point> {
    vec![
        Point::new(0.0, 8.5), // p1  (far)
        Point::new(8.3, 7.9), // p2  (far)
        Point::new(2.1, 5.2), // p3  (ring)
        Point::new(4.1, 4.4), // p4  (central)
        Point::new(6.9, 4.9), // p5  (ring)
        Point::new(3.6, 3.1), // p6  (central)
        Point::new(5.2, 3.4), // p7  (central)
        Point::new(0.3, 2.6), // p8  (far)
        Point::new(8.9, 2.2), // p9  (far)
        Point::new(5.9, 1.4), // p10 (ring)
        Point::new(0.9, 0.3), // p11 (far)
        Point::new(3.2, 0.8), // p12 (ring)
    ]
}

/// 1-based paper names for readability in assertions.
fn p(i: u32) -> SiteId {
    SiteId(i - 1)
}

fn build() -> Voronoi {
    let bounds = Aabb::new(Point::new(-3.0, -3.0), Point::new(12.0, 12.0));
    Voronoi::build(fig1_points(), bounds).expect("general-position points")
}

#[test]
fn central_triple_is_a_knn_set_with_nonempty_cell() {
    let v = build();
    let knn = vec![p(4), p(6), p(7)];
    // The centroid of the three central points must see them as its 3NN.
    let c = Point::new(4.3, 3.6);
    let mut brute = v.knn_brute(c, 3);
    brute.sort_unstable();
    let mut expect = knn.clone();
    expect.sort_unstable();
    assert_eq!(brute, expect, "central triple is the 3NN of the centroid");
    let mis = minimal_influential_set(&v, &knn);
    assert!(mis.is_some(), "V^3(O') is non-empty");
}

#[test]
fn mis_is_the_union_of_adjacent_cell_swaps() {
    let v = build();
    let knn = vec![p(4), p(6), p(7)];
    let all: Vec<SiteId> = (0..12).map(SiteId).collect();
    let cell = order_k_cell_tagged(v.points(), &knn, &all, &v.bounds());
    assert!(!cell.is_empty());

    // Every boundary edge swaps exactly one O' member for one outsider,
    // i.e. the neighboring cell triple (a, b, c) of Fig. 1 shares two
    // objects with O'.
    let swaps = cell.boundary_swaps();
    assert!(!swaps.is_empty());
    for (inside, outside) in &swaps {
        assert!(knn.contains(inside));
        assert!(!knn.contains(outside));
        // The neighbor triple O'' = O' \ {inside} ∪ {outside} has a
        // non-empty order-3 cell (it is a realisable 3NN set).
        let mut nb: Vec<SiteId> = knn.iter().copied().filter(|s| s != inside).collect();
        nb.push(*outside);
        let nb_cell = insq::voronoi::order_k_cell(v.points(), &nb, &all, &v.bounds());
        assert!(!nb_cell.is_empty(), "swap ({inside},{outside})");
    }

    // Definition 2: MIS = union of adjacent triples minus O'.
    let mis = cell.adjacent_outsiders();
    let def2 = minimal_influential_set(&v, &knn).unwrap();
    assert_eq!(mis, def2);
    // Fig. 1 shape: a handful of ring objects, strictly fewer than n - k.
    assert!(mis.len() >= 3 && mis.len() <= 6, "MIS = {mis:?}");
    // The ring objects of this reconstruction.
    for required in [p(3), p(5), p(12)] {
        assert!(
            mis.contains(&required),
            "{required} expected in MIS: {mis:?}"
        );
    }
}

#[test]
fn mis_subset_of_ins_and_ins_guards_exactly_the_cell() {
    let v = build();
    let knn = vec![p(4), p(6), p(7)];
    let mis = minimal_influential_set(&v, &knn).unwrap();
    let ins = influential_neighbor_set(&v, &knn);
    for m in &mis {
        assert!(ins.contains(m), "MIS ⊆ INS violated at {m}");
    }
    // The INS-clipped region is the exact order-3 cell.
    let all: Vec<SiteId> = (0..12).map(SiteId).collect();
    let via_ins = insq::voronoi::order_k_cell(v.points(), &knn, &ins, &v.bounds());
    let via_all = insq::voronoi::order_k_cell(v.points(), &knn, &all, &v.bounds());
    assert!((via_ins.area() - via_all.area()).abs() < 1e-9);
}

#[test]
fn cell_edges_are_bisector_segments() {
    // Each edge of V^3(O') lies on the bisector of its swap pair — the
    // geometric fact Fig. 1's cross-lined region illustrates.
    let v = build();
    let knn = vec![p(4), p(6), p(7)];
    let all: Vec<SiteId> = (0..12).map(SiteId).collect();
    let cell = order_k_cell_tagged(v.points(), &knn, &all, &v.bounds());
    let vs = cell.vertices();
    let n = vs.len();
    for (i, src) in cell.sources().iter().enumerate() {
        if let EdgeSource::Bisector { inside, outside } = src {
            let mid = vs[i].midpoint(vs[(i + 1) % n]);
            let di = v.point(*inside).distance(mid);
            let do_ = v.point(*outside).distance(mid);
            assert!(
                (di - do_).abs() < 1e-9,
                "edge {i} midpoint not on bisector of ({inside},{outside})"
            );
        }
    }
}

#[test]
fn moving_query_crossing_the_cell_swaps_exactly_one_object() {
    // Walk from the cell centroid outward: the first kNN change after
    // leaving V^3(O') replaces exactly one object by an MIS member (the
    // event INSQ visualises when the cyan cell turns red).
    let v = build();
    let knn = vec![p(4), p(6), p(7)];
    let all: Vec<SiteId> = (0..12).map(SiteId).collect();
    let cell = insq::voronoi::order_k_cell(v.points(), &knn, &all, &v.bounds());
    let c = cell.centroid().unwrap();
    let mis = minimal_influential_set(&v, &knn).unwrap();

    let mut sorted_knn = knn.clone();
    sorted_knn.sort_unstable();
    for dir_idx in 0..8 {
        let ang = std::f64::consts::TAU * dir_idx as f64 / 8.0;
        let dir = Vector::new(ang.cos(), ang.sin());
        let mut first_change: Option<Vec<SiteId>> = None;
        for step in 1..400 {
            let q = c + dir * (step as f64 * 0.01);
            let mut now = v.knn_brute(q, 3);
            now.sort_unstable();
            if now != sorted_knn {
                first_change = Some(now);
                break;
            }
        }
        if let Some(new_set) = first_change {
            let shared = new_set.iter().filter(|s| sorted_knn.contains(s)).count();
            assert_eq!(shared, 2, "exactly one object swapped: {new_set:?}");
            let added: Vec<SiteId> = new_set
                .iter()
                .copied()
                .filter(|s| !sorted_knn.contains(s))
                .collect();
            assert_eq!(added.len(), 1);
            assert!(
                mis.contains(&added[0]),
                "first object to enter ({}) must be an MIS member {mis:?}",
                added[0]
            );
        }
    }
}

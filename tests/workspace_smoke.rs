//! Workspace smoke test: the prelude quick-start paths from `src/lib.rs`,
//! exercised end-to-end as plain integration tests so the doctest
//! scenarios are also covered under `cargo test -q` (and stay covered if
//! doctests are ever skipped, e.g. under cross-compilation).

use insq::prelude::*;
use insq::roadnet::generators::{grid_network, random_site_vertices, GridConfig};

/// The Euclidean quick-start: build a VoR-tree over uniform data, run a
/// moving 5-NN query, and check that the influential-neighbor-set
/// machinery actually avoids recomputation on most ticks.
#[test]
fn euclidean_quickstart_path() {
    let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let points = Distribution::Uniform.generate(500, &bounds, 7);
    let index = VorTree::build(points.clone(), bounds.inflated(10.0)).unwrap();

    let mut query = InsProcessor::new(&index, InsConfig::with_k(5)).unwrap();
    for step in 0..100 {
        let pos = Point::new(10.0 + 0.5 * step as f64, 50.0);
        query.tick(pos);
        assert_eq!(query.current_knn().len(), 5);

        // Certify against brute force at every step: the INS result must
        // equal the true kNN by distance.
        let mut by_dist: Vec<usize> = (0..points.len()).collect();
        by_dist.sort_by(|&a, &b| {
            points[a]
                .distance_sq(pos)
                .partial_cmp(&points[b].distance_sq(pos))
                .unwrap()
        });
        let mut expected: Vec<Point> = by_dist[..5].iter().map(|&i| points[i]).collect();
        let mut got: Vec<Point> = query
            .current_knn()
            .iter()
            .map(|&id| index.point(id))
            .collect();
        let key = |p: &Point| (p.x.to_bits(), p.y.to_bits());
        expected.sort_by_key(key);
        got.sort_by_key(key);
        assert_eq!(got, expected, "kNN mismatch at step {step}");
    }

    // Most ticks validate in O(k) without a server-side recomputation.
    assert!(query.stats().valid_ticks > 60, "{:?}", query.stats());
    assert!(query.stats().recomputations < 25, "{:?}", query.stats());
}

/// The road-network quick-start: grid network, network Voronoi diagram,
/// restricted-subnetwork moving 3-NN (paper §IV, Theorem 2).
#[test]
fn network_quickstart_path() {
    let net = std::sync::Arc::new(grid_network(&GridConfig::default(), 7).unwrap());
    let stations = SiteSet::new(&net, random_site_vertices(&net, 20, 7).unwrap()).unwrap();
    let world = NetworkWorld::build(std::sync::Arc::clone(&net), stations);

    let mut query = NetInsProcessor::new(&world, NetInsConfig::with_k(3)).unwrap();
    let tour = NetTrajectory::random_tour(&net, 6, 1).unwrap();
    for tick in 0..200 {
        query.tick(tour.position_looped(&net, 0.05 * tick as f64));
        assert_eq!(query.current_knn().len(), 3);
    }
    assert!(
        query.stats().comm_objects < 100,
        "INS must communicate far less than the naive 3/tick = 600: {:?}",
        query.stats()
    );
}

//! Reproduction of Fig. 2 of the paper: an order-2 Voronoi diagram on a
//! road network, the MIS of `Oknn = {p6, p7}`, the equidistant mid-point
//! `b` between p7 and p8, and Theorems 1 and 2.
//!
//! The figure's exact geometry is not published; DESIGN.md documents this
//! reconstruction: 14 vertices, 9 data objects, with p6/p7 central so that
//! the order-2 cell labels around `V^2({p6, p7})` are exactly the pairs
//! the figure annotates — (5,6), (4,7), (7,8), (6,9) — and
//! `MIS({p6,p7}) = {p4, p5, p8, p9}`.

use insq::core::influential_neighbor_set_net;
use insq::prelude::*;
use insq::roadnet::graph::EdgeRec;
use insq::roadnet::ine::network_knn;
use insq::roadnet::order_k::{
    knn_at, knn_sets_equal, network_mis, order_k_diagram, site_distance_matrix,
};
use insq::roadnet::subnetwork::{restricted_knn, SiteMask};
use insq::roadnet::EdgeId;

/// The reconstructed Fig. 2 network. Vertices 0..=8 host p1..=p9; vertices
/// 9..=13 are plain junctions. Edge weights are the designed network
/// lengths (coordinates are for rendering only).
fn fig2_network() -> (RoadNetwork, SiteSet) {
    let coords = vec![
        Point::new(10.0, 20.0), // v0: p1
        Point::new(0.0, 20.0),  // v1: p2
        Point::new(-20.0, 0.0), // v2: p3
        Point::new(22.0, 0.0),  // v3: p4
        Point::new(-10.0, 0.0), // v4: p5
        Point::new(0.0, 0.0),   // v5: p6
        Point::new(10.0, 0.0),  // v6: p7
        Point::new(10.0, 12.0), // v7: p8
        Point::new(0.0, 12.0),  // v8: p9
        Point::new(5.0, 0.0),   // v9: mid of the central p6-p7 road
        Point::new(0.0, 5.0),   // v10: junction towards p9
        Point::new(10.0, 5.0),  // v11: junction towards p8
        Point::new(30.0, 0.0),  // v12: beyond p4
        Point::new(-26.0, 0.0), // v13: beyond p3
    ];
    let e = |u: u32, v: u32, len: f64| EdgeRec {
        u: VertexId(u),
        v: VertexId(v),
        len,
    };
    let edges = vec![
        e(5, 9, 5.0),  // p6 - mid
        e(9, 6, 5.0),  // mid - p7           (d(p6,p7) = 10)
        e(5, 4, 10.4), // p6 - p5 (10.4, not 10: avoids an exact d(p6,p5) =
        // d(p6,p7) tie that the paper's real map does not have)
        e(4, 2, 10.0), // p5 - p3
        e(2, 13, 6.0), // p3 - v13
        e(6, 3, 12.0), // p7 - p4
        e(3, 12, 8.0), // p4 - v12
        e(5, 10, 5.0), // p6 - v10
        e(10, 8, 7.0), // v10 - p9           (d(p6,p9) = 12)
        e(8, 1, 8.0),  // p9 - p2
        e(6, 11, 5.0), // p7 - v11
        e(11, 7, 7.0), // v11 - p8           (d(p7,p8) = 12)
        e(7, 0, 8.0),  // p8 - p1
    ];
    let net = RoadNetwork::new(coords, edges).expect("valid Fig. 2 network");
    // Sites p1..p9 at vertices v0..v8, so SiteIdx(i) is paper's p(i+1).
    let sites = SiteSet::new(&net, (0..9).map(VertexId).collect()).unwrap();
    (net, sites)
}

/// Paper name → SiteIdx.
fn p(i: u32) -> SiteIdx {
    SiteIdx(i - 1)
}

#[test]
fn network_has_papers_shape() {
    let (net, sites) = fig2_network();
    assert_eq!(net.num_vertices(), 14);
    assert_eq!(sites.len(), 9);
    assert!(net.is_connected());
}

#[test]
fn order_2_cells_carry_the_figures_labels() {
    let (net, sites) = fig2_network();
    let matrix = site_distance_matrix(&net, &sites);
    let diagram = order_k_diagram(&net, &matrix, 2);

    let labels: std::collections::BTreeSet<Vec<SiteIdx>> =
        diagram.iter().map(|s| s.knn_set.clone()).collect();
    // The pairs annotated in Fig. 2 — (6,7) central plus its four
    // neighbors (5,6), (4,7), (7,8), (6,9).
    for pair in [
        vec![p(6), p(7)],
        vec![p(5), p(6)],
        vec![p(4), p(7)],
        vec![p(7), p(8)],
        vec![p(6), p(9)],
    ] {
        let mut sorted = pair.clone();
        sorted.sort_unstable();
        assert!(
            labels.contains(&sorted),
            "missing order-2 cell {pair:?}; present: {labels:?}"
        );
    }
    // Segments tile every edge.
    for eid in 0..net.num_edges() as u32 {
        let total: f64 = diagram
            .iter()
            .filter(|s| s.edge == EdgeId(eid))
            .map(|s| s.to - s.from)
            .sum();
        assert!(
            (total - net.edge(EdgeId(eid)).len).abs() < 1e-9,
            "edge {eid} not fully tiled"
        );
    }
}

#[test]
fn mis_of_p6_p7_is_p4_p5_p8_p9() {
    let (net, sites) = fig2_network();
    let matrix = site_distance_matrix(&net, &sites);
    let mis = network_mis(&net, &matrix, &[p(6), p(7)], 2);
    assert_eq!(mis, vec![p(4), p(5), p(8), p(9)], "the paper's MIS");
}

#[test]
fn theorem_1_mis_subset_of_network_ins() {
    let (net, sites) = fig2_network();
    let nvd = NetworkVoronoi::build(&net, &sites);
    let matrix = site_distance_matrix(&net, &sites);
    let knn = [p(6), p(7)];
    let mis = network_mis(&net, &matrix, &knn, 2);
    let ins = influential_neighbor_set_net(&nvd, &knn);
    for m in &mis {
        assert!(
            ins.contains(m),
            "Theorem 1 violated: {m} not in INS {ins:?}"
        );
    }
}

#[test]
fn midpoint_b_between_p7_and_p8() {
    // The paper: "the mid-point between p7 and p8 is denoted by b ...
    // d(b, p7) = d(b, p8); no other object ... is nearer to b", which
    // makes p7 and p8 order-1 Voronoi neighbors.
    let (net, sites) = fig2_network();
    let nvd = NetworkVoronoi::build(&net, &sites);
    let borders = nvd.border_points(&net);
    let b = borders
        .iter()
        .find(|b| {
            let mut pair = [b.site_u, b.site_v];
            pair.sort_unstable();
            pair == [p(7), p(8)]
        })
        .expect("a border point between p7 and p8 exists");
    // Equidistance, by direct network distance.
    let pos = NetPosition::on_edge(&net, b.edge, b.offset).unwrap();
    let matrix = site_distance_matrix(&net, &sites);
    let d7 = insq::roadnet::order_k::position_site_distance(&net, &matrix, pos, p(7));
    let d8 = insq::roadnet::order_k::position_site_distance(&net, &matrix, pos, p(8));
    assert!((d7 - d8).abs() < 1e-9, "d(b,p7)={d7} vs d(b,p8)={d8}");
    assert!((d7 - 6.0).abs() < 1e-9, "designed distance 6");
    // No other object nearer.
    for s in 0..9u32 {
        let d = insq::roadnet::order_k::position_site_distance(&net, &matrix, pos, SiteIdx(s));
        assert!(d >= d7 - 1e-9, "object {s} nearer to b than p7/p8");
    }
    // Hence order-1 Voronoi neighbors.
    assert!(nvd.are_neighbors(p(7), p(8)));
}

#[test]
fn theorem_2_validation_on_the_subnetwork() {
    let (net, sites) = fig2_network();
    let nvd = NetworkVoronoi::build(&net, &sites);
    let knn = vec![p(6), p(7)];
    let ins = influential_neighbor_set_net(&nvd, &knn);
    let mut mask = SiteMask::new(sites.len());
    mask.set(knn.iter().copied().chain(ins.iter().copied()));

    // Sample positions along the central road (inside V^2({p6,p7})) and on
    // the branches (outside): the restricted kNN must decide both cases
    // exactly as the global search does.
    let samples = [
        (0u32, 2.5), // p6-mid road
        (1, 2.5),    // mid-p7 road
        (5, 0.5),    // just past p7 toward p4 (still {6,7})
        (5, 3.0),    // deeper toward p4 ({4,7} region)
        (11, 2.0),   // toward p8 past the swap point
    ];
    for (eid, off) in samples {
        let pos = NetPosition::on_edge(&net, EdgeId(eid), off).unwrap();
        let global: Vec<SiteIdx> = network_knn(&net, &sites, pos, 2)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let (restricted, stats) = restricted_knn(&net, &sites, &nvd, &mask, pos, 2);
        let r: Vec<SiteIdx> = restricted.iter().map(|&(s, _)| s).collect();
        let valid_here = knn_sets_equal(&global, &knn);
        let restricted_says_valid = knn_sets_equal(&r, &knn);
        assert_eq!(
            restricted_says_valid, valid_here,
            "Theorem-2 validation wrong at edge {eid} offset {off}: \
             restricted {r:?}, global {global:?}"
        );
        // The restricted expansion never leaves the kNN ∪ INS cells.
        assert!(stats.settled <= net.num_vertices());
    }
}

#[test]
fn exact_knn_matches_ine_everywhere() {
    let (net, sites) = fig2_network();
    let matrix = site_distance_matrix(&net, &sites);
    for v in 0..net.num_vertices() as u32 {
        let pos = NetPosition::Vertex(VertexId(v));
        for k in [1usize, 2, 3] {
            let oracle = knn_at(&net, &matrix, pos, k);
            let ine = network_knn(&net, &sites, pos, k);
            for (o, i) in oracle.iter().zip(&ine) {
                assert!((o.1 - i.1).abs() < 1e-9, "v{v} k={k}");
            }
        }
    }
}

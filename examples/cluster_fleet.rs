//! The INSQ system scaled out: partitions behind the router.
//!
//! Slices one Euclidean world into two vertical strips, boots a real
//! `NetServer` per strip, and puts a `RouterServer` in front speaking
//! the ordinary wire protocol. A handful of clients then shuttle across
//! the partition border on single uninterrupted connections: the router
//! re-homes each one transparently (deregister on the old backend,
//! re-register on the new, ids rewritten to global), and because every
//! regional index replicates sites within the overlap margin of its
//! border, every answer is the exact global kNN — verified here
//! tick-by-tick against brute force.
//!
//! Run with: `cargo run --release --example cluster_fleet`

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;

use insq::cluster::{ClusterPlan, RouterConfig, RouterServer};
use insq::core::Euclidean;
use insq::net::{NetClient, NetServer, NetServerConfig};
use insq::prelude::*;
use insq::server::{GridPartitioner, RegionId};

const K: usize = 5;
const MARGIN: f64 = 15.0;
const CLIENTS: usize = 6;
const TICKS: usize = 50;

fn brute_knn(sites: &[Point], q: Point, k: usize) -> Vec<u32> {
    let mut with_d: Vec<(f64, u32)> = sites
        .iter()
        .enumerate()
        .map(|(i, &p)| (p.distance(q), i as u32))
        .collect();
    with_d.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    with_d.into_iter().take(k).map(|(_, i)| i).collect()
}

fn main() {
    let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let sites = Distribution::Uniform.generate(2_000, &bounds, 2016);

    // The partition map: two vertical strips with a 15-unit overlap
    // margin — each regional index replicates every site within the
    // margin of its strip, which is what makes border answers exact.
    let part = Arc::new(GridPartitioner::strips(bounds, 2));
    let plan = ClusterPlan::new(part.clone(), MARGIN, sites.clone());

    // One real server per strip, each over its regional slice only.
    let clip = bounds.inflated(10.0);
    let backends: Vec<NetServer<Euclidean>> = (0..plan.regions())
        .map(|r| {
            let pts = plan.region_sites(RegionId(r as u32));
            println!(
                "partition {r}: {} of {} sites (strip + margin overlap)",
                pts.len(),
                sites.len()
            );
            let world = Arc::new(World::new(VorTree::build(pts, clip).expect("valid sites")));
            let cfg = NetServerConfig {
                certify_within: Some(MARGIN),
                ..NetServerConfig::default()
            };
            NetServer::bind("127.0.0.1:0", world, cfg).expect("backend binds")
        })
        .collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(NetServer::local_addr).collect();

    // The router: clients speak the ordinary protocol to it and never
    // learn the cluster exists.
    let router = RouterServer::bind(
        "127.0.0.1:0",
        part,
        RouterConfig {
            tables: plan.tables(),
            ..RouterConfig::new(addrs)
        },
    )
    .expect("router binds");
    println!(
        "router on {} over {} partitions\n",
        router.local_addr(),
        plan.regions()
    );

    // Shuttle clients, one thread each: every one repeatedly crosses
    // the x=50 border mid-session and checks its answers against brute
    // force over the *global* site set.
    let addr = router.local_addr();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let sites = sites.clone();
            thread::spawn(move || {
                let lane = 10.0 + 80.0 * c as f64 / CLIENTS as f64;
                let pos_at = |t: usize| Point::new(50.0 + 30.0 * ((t as f64 * 0.35).sin()), lane);
                let mut client = NetClient::connect(addr).expect("connect");
                client
                    .register::<Euclidean>(K, 1.8, pos_at(0))
                    .expect("register");
                for t in 0..TICKS {
                    if t > 0 {
                        client.update::<Euclidean>(pos_at(t)).expect("update");
                    }
                    let upd = client.next_result().expect("result");
                    assert_eq!(upd.flags, 0, "the margin certifies every tick");
                    assert_eq!(
                        upd.ids,
                        brute_knn(&sites, pos_at(t), K),
                        "client {c} tick {t}: global kNN across the border"
                    );
                }
                client.deregister().expect("deregister");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }

    let (bytes_in, bytes_out) = router.wire_bytes();
    println!(
        "{} clients x {} ticks: {} transparent handoffs, every result the \
         exact global kNN ({:.1} KiB up, {:.1} KiB down through the router)",
        CLIENTS,
        TICKS,
        router.handoffs(),
        bytes_in as f64 / 1024.0,
        bytes_out as f64 / 1024.0,
    );
    router.shutdown();
    for b in backends {
        b.shutdown();
    }
    println!("router and backends drained and shut down cleanly");
}

//! Exact continuous kNN maintenance (extension; see `insq::core::continuous`).
//!
//! Discrete timestamp processing — the paper's setting — can miss kNN
//! changes that begin and end between two ticks when the query is fast.
//! With linear motion, bisector crossings are roots of linear functions,
//! so the INS machinery can compute the *exact* event sequence. This
//! example compares the exact trace against tick-based sampling at
//! several speeds and shows the missed-event gap closing.
//!
//! Run with: `cargo run --release --example continuous_events`

use insq::core::knn_change_events;
use insq::prelude::*;

fn main() {
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let points = Distribution::Uniform.generate(5_000, &space, 17);
    let index = VorTree::build(points, space.inflated(10.0)).expect("valid data");

    let a = Point::new(8.0, 12.0);
    let b = Point::new(93.0, 88.0);
    let k = 5;

    let trace = knn_change_events(&index, k, a, b).expect("valid configuration");
    println!(
        "linear move ({:.0},{:.0}) -> ({:.0},{:.0}), k={k}: {} exact kNN change events\n",
        a.x,
        a.y,
        b.x,
        b.y,
        trace.events.len()
    );
    println!("first events:");
    for e in trace.events.iter().take(8) {
        println!("  t={:.5}  p{} out, p{} in", e.t, e.removed.0, e.added.0);
    }

    // How many of those changes does tick-based sampling observe?
    println!("\n{:>12} {:>16} {:>14}", "ticks", "changes seen", "missed");
    for ticks in [20usize, 50, 100, 500, 2000, 10000] {
        let mut seen = 0;
        let mut prev: Vec<SiteId> = {
            let mut v = index.voronoi().knn_brute(a, k);
            v.sort_unstable();
            v
        };
        for i in 1..=ticks {
            let t = i as f64 / ticks as f64;
            let mut now = index.voronoi().knn_brute(a.lerp(b, t), k);
            now.sort_unstable();
            if now != prev {
                seen += 1;
                prev = now;
            }
        }
        println!(
            "{:>12} {:>16} {:>14}",
            ticks,
            seen,
            trace.events.len().saturating_sub(seen)
        );
    }
    println!(
        "\nreading: coarse ticking under-reports result changes (several events can\n\
         fall between two ticks); the exact trace is speed-independent. The INS makes\n\
         it cheap: each event costs one O(k x |INS|) linear-root scan."
    );
}

//! Data-object updates during a moving query (paper §III: "If there are
//! data object updates, we also update the kNN set and the IS according
//! to the data object updates").
//!
//! Models a POI database edit mid-drive — on the **delta path**: instead
//! of rebuilding the whole VoR-tree (O(n log n)) and publishing it, the
//! server calls `World::apply(SiteDelta)`, which clones the snapshot
//! copy-on-write and patches only the Delaunay cavity / R-tree entries
//! the delta touches. The client sees an ordinary epoch bump, rebinds,
//! and pays exactly one recomputation; the conformance suites
//! (`crates/index/tests/incremental_conformance.rs`) prove the patched
//! index answers bit-identically to a from-scratch rebuild.
//!
//! Run with: `cargo run --example data_updates`

use std::sync::Arc;

use insq::prelude::*;

fn main() {
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));

    // Epoch 0: the original POI set, owned by the server-side world.
    let pois = Distribution::Uniform.generate(3_000, &space, 1);
    let world = Arc::new(World::new(
        VorTree::build(pois, space.inflated(10.0)).expect("valid data"),
    ));

    // A batch edit: 40 POIs close (spread-out ids), 25 new ones open in
    // two tight clusters — the kind of update a live POI feed produces.
    let mut delta = SiteDelta::remove((0..40).map(|i| SiteId(i * 71)).collect());
    delta.added = Distribution::Clustered {
        clusters: 2,
        spread: 0.03,
    }
    .generate(25, &space, 99);

    let traj = TrajectoryKind::Circular { radius_frac: 0.7 }.generate(&space, 5);
    let (mut epoch, mut index) = world.snapshot();
    let mut query =
        InsProcessor::new(Arc::clone(&index), InsConfig::new(5, 1.6)).expect("valid configuration");

    let ticks = 1_000usize;
    let update_at = 500usize;
    println!(
        "driving {ticks} ticks; a {}-object delta is applied at tick {update_at}\n",
        delta.len()
    );
    for tick in 0..ticks {
        let pos = traj.position_looped(0.2 * tick as f64);
        if tick == update_at {
            // Server: one call, no rebuild. Cost scales with the delta —
            // see `report --exp e_update` for the measured 5-25x margin.
            let before = index.len();
            let t0 = std::time::Instant::now();
            world.apply(&delta).expect("valid delta");
            let applied_in = t0.elapsed();
            let (_, after) = world.snapshot();
            println!(
                "tick {tick}: delta epoch applied in {applied_in:.1?} \
                 ({} -> {} objects); clients rebind at their next tick",
                before,
                after.len()
            );
        }
        // Client: detect the epoch bump, rebind, continue (a FleetEngine
        // does exactly this for every registered query — examples/fleet.rs).
        let (e, snap) = world.snapshot();
        if e != epoch {
            epoch = e;
            index = snap;
            query.rebind(Arc::clone(&index));
            println!("tick {tick}: client rebound to {epoch}");
        }
        let outcome = query.tick(pos);
        if outcome == TickOutcome::Recompute && (update_at..update_at + 2).contains(&tick) {
            println!("tick {tick}: full recomputation against the patched data set");
        }
        // The result is always the exact kNN of the live epoch.
        let mut got = query.current_knn();
        got.sort_unstable();
        let mut want = index.voronoi().knn_brute(pos, 5);
        want.sort_unstable();
        assert_eq!(got, want, "exactness across the update at tick {tick}");
    }

    let s = query.stats();
    println!(
        "\ndone: {} ticks | {} valid | {} local updates | {} recomputations | {} objects sent",
        s.ticks,
        s.valid_ticks,
        s.swaps + s.local_reranks,
        s.recomputations,
        s.comm_objects
    );
    println!("(the delta epoch itself cost exactly one of those recomputations)");
}

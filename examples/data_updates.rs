//! Data-object updates during a moving query (paper §III: "If there are
//! data object updates, we also update the kNN set and the IS according
//! to the data object updates").
//!
//! Models a POI database edit mid-drive: the server rebuilds its Voronoi
//! diagram and VoR-tree, the client is rebound to the new index and its
//! guards are invalidated, and the moving query continues seamlessly —
//! paying exactly one extra recomputation.
//!
//! This example shows the *mechanism* on a single hand-driven query. In
//! a multi-query deployment you do not call `rebind` yourself: hold the
//! index in an `insq_server::World`, call `World::publish(new_index)`
//! once, and every registered query self-rebinds at its next tick (see
//! `examples/fleet.rs` and the "Epoch-versioned worlds" section of the
//! README).
//!
//! Run with: `cargo run --example data_updates`

use insq::prelude::*;

fn main() {
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));

    // World v1: the original POI set.
    let pois_v1 = Distribution::Uniform.generate(3_000, &space, 1);
    let index_v1 = VorTree::build(pois_v1, space.inflated(10.0)).expect("valid data");

    // World v2: 500 POIs added, a different seed region densified —
    // the server-side result of a batch of insertions/deletions.
    let mut pois_v2 = Distribution::Uniform.generate(2_800, &space, 1);
    pois_v2.extend(
        Distribution::Clustered {
            clusters: 2,
            spread: 0.03,
        }
        .generate(700, &space, 99),
    );
    // Deduplicate exact collisions across the two batches (the server
    // would never store coincident objects).
    pois_v2.sort_by(|a, b| a.lex_cmp(*b));
    pois_v2.dedup();
    let index_v2 = VorTree::build(pois_v2, space.inflated(10.0)).expect("valid data");

    let traj = TrajectoryKind::Circular { radius_frac: 0.7 }.generate(&space, 5);
    let mut query =
        InsProcessor::new(&index_v1, InsConfig::new(5, 1.6)).expect("valid configuration");

    let ticks = 1_000usize;
    let update_at = 500usize;
    println!("driving {ticks} ticks; the POI database is updated at tick {update_at}\n");
    for tick in 0..ticks {
        let pos = traj.position_looped(0.2 * tick as f64);
        if tick == update_at {
            // Server: new index built out of band. Client: rebind + drop
            // guards (they certify nothing against the new object set).
            // With `insq-server` this is `world.publish(index_v2)` and no
            // per-client code at all.
            query.rebind(&index_v2);
            println!(
                "tick {tick}: database updated ({} -> {} objects); client rebound",
                index_v1.len(),
                index_v2.len()
            );
        }
        let outcome = query.tick(pos);
        if outcome == TickOutcome::Recompute && (update_at..update_at + 2).contains(&tick) {
            println!("tick {tick}: full recomputation against the new data set");
        }
        // The result is always the exact kNN of whichever world is live.
        let live = if tick < update_at {
            &index_v1
        } else {
            &index_v2
        };
        let mut got = query.current_knn();
        got.sort_unstable();
        let mut want = live.voronoi().knn_brute(pos, 5);
        want.sort_unstable();
        assert_eq!(got, want, "exactness across the update at tick {tick}");
    }

    let s = query.stats();
    println!(
        "\ndone: {} ticks | {} valid | {} local updates | {} recomputations | {} objects sent",
        s.ticks,
        s.valid_ticks,
        s.swaps + s.local_reranks,
        s.recomputations,
        s.comm_objects
    );
    println!("(the update itself cost exactly one of those recomputations)");
}

//! Choosing the prefetch ratio ρ (paper §III: "a system parameter to
//! balance the query result communication and recomputation costs").
//!
//! Sweeps ρ over [1.0, 3.0] for a fixed scenario and prints the trade-off:
//! larger ρ prefetches more objects per recomputation (more communication
//! each time, larger client buffer) but repairs more invalidations
//! locally, so full recomputations — round trips — become rarer.
//!
//! Run with: `cargo run --release --example rho_tuning`

use insq::prelude::*;

fn main() {
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let points = Distribution::Uniform.generate(10_000, &space, 11);
    let index = VorTree::build(points, space.inflated(10.0)).expect("valid data");
    let walk = TrajectoryKind::RandomWaypoint { waypoints: 30 }.generate(&space, 5);
    let (k, ticks, speed) = (8usize, 4_000usize, 0.05f64);

    println!("rho sweep: n=10000 uniform, k={k}, {ticks} ticks\n");
    println!(
        "{:>5} {:>12} {:>12} {:>12} {:>14} {:>12}",
        "rho", "recomputes", "local fixes", "comm objs", "comm/recompute", "us/tick"
    );
    for &rho in &[1.0, 1.2, 1.4, 1.6, 2.0, 2.5, 3.0] {
        let mut p = InsProcessor::new(&index, InsConfig::new(k, rho)).expect("valid config");
        let run = run_euclidean(&mut p, &walk, ticks, speed);
        let s = &run.stats;
        let per_recompute = if s.recomputations > 0 {
            s.comm_objects as f64 / s.recomputations as f64
        } else {
            0.0
        };
        println!(
            "{:>5.1} {:>12} {:>12} {:>12} {:>14.1} {:>12.2}",
            rho,
            s.recomputations,
            s.swaps + s.local_reranks,
            s.comm_objects,
            per_recompute,
            run.elapsed.as_secs_f64() * 1e6 / s.ticks as f64,
        );
    }
    println!(
        "\nreading: recomputations fall as rho grows while each recomputation ships more \
         objects;\nthe sweet spot (the paper uses 1.6 in its demo) minimises total round trips \
         without\ninflating per-trip volume."
    );
}

//! The INSQ system served over real TCP.
//!
//! Boots a `NetServer` on a loopback socket over an epoch-versioned
//! Euclidean world, connects a small fleet of `NetClient`s, and drives
//! them in lockstep from their scenario update streams. Halfway through
//! the run the POI database changes: one `World::apply` on the server
//! pushes a delta epoch, every session gets an `EpochNotify`, and the
//! result streams carry the new epoch from the next tick on — no client
//! is restarted.
//!
//! Run with: `cargo run --release --example net_fleet`

use std::sync::Arc;

use insq::core::Euclidean;
use insq::net::{NetClient, NetServer, NetServerConfig};
use insq::prelude::*;
use insq::workload::client_updates;

fn main() {
    let sc = FleetScenario {
        clients: 16,
        n: 2_000,
        k: 5,
        ticks: 60,
        updates: vec![30],
        seed: 2016,
        ..Default::default()
    };
    let fleet_state = Euclidean::make_fleet(&sc);
    let index = Euclidean::build_index(&sc, &fleet_state, 0);
    let world = Arc::new(World::new(index));

    // Server side: bind on an OS-assigned port; the first tick waits for
    // the whole fleet so everyone rides the same batch from tick 0.
    let server: NetServer<Euclidean> = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&world),
        NetServerConfig::with_min_clients(sc.clients),
    )
    .expect("bind loopback");
    println!(
        "serving {} objects (k={}, rho={}) on {}",
        sc.n,
        sc.k,
        sc.rho,
        server.local_addr()
    );

    // Client side: one TCP session per scenario client, fed from its
    // deterministic update stream.
    let mut streams: Vec<_> = (0..sc.clients)
        .map(|c| client_updates::<Euclidean>(&sc, &fleet_state, c))
        .collect();
    let mut clients: Vec<NetClient> = streams
        .iter_mut()
        .map(|stream| {
            let mut cl = NetClient::connect(server.local_addr()).expect("connect");
            cl.register::<Euclidean>(sc.k, sc.rho, stream.next().expect("tick 0"))
                .expect("register");
            cl
        })
        .collect();
    println!("{} clients registered\n", sc.clients);

    let delta_at = sc.ticks / 2;
    for tick in 0..sc.ticks {
        if tick == delta_at {
            let delta = SiteDelta {
                added: vec![Point::new(48.5, 52.0), Point::new(12.0, 88.0)],
                removed: vec![SiteId(17)],
            };
            let epoch = server.world().apply(&delta).expect("delta applies");
            println!("tick {tick}: POI update (+2/-1) pushed as delta {epoch}");
        }
        if tick > 0 {
            for (cl, stream) in clients.iter_mut().zip(streams.iter_mut()) {
                cl.update::<Euclidean>(stream.next().expect("scenario tick"))
                    .expect("update");
            }
        }
        for (c, cl) in clients.iter_mut().enumerate() {
            let upd = cl.next_result().expect("result");
            for epoch in &upd.notified {
                println!("tick {tick}: client {c} notified of epoch {epoch}");
            }
            assert_eq!(upd.ids.len(), sc.k, "client {c} tick {tick}");
        }
    }

    // Snapshot statistics before the deregisters below remove the
    // queries (a deregistered query leaves the engine with its stats).
    let stats = server.stats();
    assert_eq!(stats.total.ticks as usize, sc.clients * sc.ticks);

    // Wind down: clean deregisters, then server shutdown.
    for cl in clients.iter_mut() {
        cl.deregister().expect("clean close");
    }
    let (bytes_in, bytes_out) = server.wire_bytes();
    println!(
        "\n{} query-ticks over {} fleet ticks; {:.1} KiB up, {:.1} KiB down \
         ({:.0} B/tick up, {:.0} B/tick down)",
        stats.total.ticks,
        server.ticks(),
        bytes_in as f64 / 1024.0,
        bytes_out as f64 / 1024.0,
        bytes_in as f64 / server.ticks().max(1) as f64,
        bytes_out as f64 / server.ticks().max(1) as f64,
    );
    println!(
        "model-level comm: {} objects ({:.3}/query-tick) — the protocol ships \
         objects only on recomputation",
        stats.total.comm_objects,
        stats.total.comm_objects as f64 / stats.total.ticks.max(1) as f64,
    );
    server.shutdown();
    println!("server drained and shut down cleanly");
}

//! The third space: moving kNN under a weighted (anisotropic) Euclidean
//! metric — travel time in a city whose north–south streets are 2.5x
//! slower than its east–west avenues.
//!
//! The whole stack is the same generic code as the Euclidean and
//! road-network modes: `WeightedVorTree` is a coordinate transform over
//! the VoR-tree, `WInsProcessor` is the generic INS processor
//! instantiated for the `WeightedEuclidean` space, and the epoch-
//! versioned `World` + `FleetEngine` work unchanged (including delta
//! epochs via `World::apply`).
//!
//! Run with: `cargo run --release --example weighted_space`

use std::sync::Arc;

use insq::prelude::*;

fn main() {
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let pois = Distribution::Uniform.generate(4_000, &space, 11);
    let weights = AxisWeights::new(1.0, 2.5).unwrap();

    // Two indexes over the SAME points: plain L2 and travel-time metric.
    let plain = VorTree::build(pois.clone(), space.inflated(10.0)).unwrap();
    let weighted = WeightedVorTree::build(pois, space.inflated(10.0), weights).unwrap();

    // A commuter driving east along the city's fast axis.
    let traj = Trajectory::new(vec![Point::new(5.0, 48.0), Point::new(95.0, 53.0)]).unwrap();
    let k = 5;
    let mut q_plain = InsProcessor::new(&plain, InsConfig::with_k(k)).unwrap();
    let mut q_weighted = WInsProcessor::new(&weighted, InsConfig::with_k(k)).unwrap();

    let ticks = 2_000;
    let mut differing = 0usize;
    for tick in 0..ticks {
        let pos = traj.position(traj.length() * tick as f64 / ticks as f64);
        q_plain.tick(pos);
        q_weighted.tick(pos);
        let mut a = q_plain.current_knn();
        let mut b = q_weighted.current_knn();
        a.sort_unstable();
        b.sort_unstable();
        if a != b {
            differing += 1;
        }
        // Exactness in the weighted metric, every tick.
        let mut want = weighted.knn_brute(pos, k);
        want.sort_unstable();
        assert_eq!(b, want, "weighted result must equal weighted brute force");
    }
    println!(
        "{} of {ticks} ticks: travel-time 5-NN differs from straight-line 5-NN \
         (wy = {}x slower)",
        differing, weights.y
    );
    let s = q_weighted.stats();
    println!(
        "weighted INS: {} valid | {} local | {} recomputations | {} objects shipped",
        s.valid_ticks,
        s.swaps + s.local_reranks,
        s.recomputations,
        s.comm_objects
    );
    assert!(differing > 0, "anisotropy must change some answers");

    // The system layer is space-generic too: a fleet over an
    // epoch-versioned weighted world, with a delta epoch mid-run.
    let sc = FleetScenario {
        clients: 500,
        n: 4_000,
        k,
        ticks: 60,
        updates: vec![],
        axis_weights: (weights.x, weights.y),
        seed: 7,
        ..Default::default()
    };
    let trajs: Vec<Trajectory> = (0..sc.clients).map(|c| sc.client_trajectory(c)).collect();
    let world = Arc::new(World::new(
        WeightedVorTree::build(sc.points(0), sc.clip_window(), sc.weights()).unwrap(),
    ));
    let mut fleet: FleetEngine<WeightedVorTree, WFleetQuery> =
        FleetEngine::new(Arc::clone(&world), FleetConfig::with_threads(2));
    for _ in 0..sc.clients {
        fleet.register(WFleetQuery::new(&world, InsConfig::new(sc.k, sc.rho)).unwrap());
    }
    for tick in 0..sc.ticks {
        if tick == 30 {
            // POI feed update as a delta epoch — same World::apply as the
            // other spaces, insertions given in original coordinates.
            let delta = SiteDelta {
                added: Distribution::Clustered {
                    clusters: 2,
                    spread: 0.04,
                }
                .generate(20, &sc.data_space(), 99),
                removed: (0..30).map(|i| SiteId(i * 111)).collect(),
            };
            let epoch = world.apply(&delta).unwrap();
            println!("tick {tick}: delta epoch applied -> {epoch}");
        }
        fleet.tick_all(|id| sc.position(&trajs[id.index()], id.index(), tick));
    }
    let (_, live) = world.snapshot();
    for c in [0usize, 250, 499] {
        let q = fleet.query(QueryId(c as u64)).unwrap();
        let mut got = q.current_knn();
        got.sort_unstable();
        let mut want = live.knn_brute(sc.position(&trajs[c], c, sc.ticks - 1), sc.k);
        want.sort_unstable();
        assert_eq!(got, want, "fleet client {c} exact on the live epoch");
    }
    let fs = fleet.stats();
    println!(
        "fleet: {} clients x {} ticks, {:.0}k ticks/s, recompute rate {:.4} — all \
         spot checks equal weighted brute force",
        sc.clients,
        sc.ticks,
        fs.ticks_per_sec() / 1e3,
        fs.recompute_rate()
    );
}

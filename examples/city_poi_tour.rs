//! A tourist walking a city: the paper's motivating scenario of "the 5
//! nearest points of interest continuously while a tourist is walking
//! around a city" (§I).
//!
//! POIs are Gaussian-clustered (hot spots); the tourist follows a random
//! waypoint walk. All four methods — INS, the strict order-k Voronoi safe
//! region (OkV), the V*-diagram and naive recomputation — process the
//! identical query, and their cost profiles are printed side by side.
//!
//! Run with: `cargo run --release --example city_poi_tour`

use insq::prelude::*;

fn main() {
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let pois = Distribution::Clustered {
        clusters: 8,
        spread: 0.06,
    }
    .generate(10_000, &space, 2016);
    let index = VorTree::build(pois, space.inflated(10.0)).expect("valid POI set");

    let walk = TrajectoryKind::RandomWaypoint { waypoints: 25 }.generate(&space, 7);
    let (k, ticks, speed) = (5usize, 5_000usize, 0.05f64);
    println!("city POI tour: n=10000 clustered, k={k}, {ticks} ticks, speed {speed}/tick\n");

    let mut comparison = Comparison::new();

    let mut ins = InsProcessor::new(&index, InsConfig::new(k, 1.6)).unwrap();
    comparison.add(&run_euclidean(&mut ins, &walk, ticks, speed));

    let mut okv = OkvProcessor::new(&index, k).unwrap();
    comparison.add(&run_euclidean(&mut okv, &walk, ticks, speed));

    let mut vstar = VStarProcessor::new(&index, VStarConfig::with_k(k)).unwrap();
    comparison.add(&run_euclidean(&mut vstar, &walk, ticks, speed));

    let mut naive = NaiveProcessor::new(index.rtree(), k).unwrap();
    comparison.add(&run_euclidean(&mut naive, &walk, ticks, speed));

    println!("{}", comparison.to_table());

    // The qualitative claims of the paper, checked live:
    let ins_row = comparison.row("INS").unwrap();
    let okv_row = comparison.row("OkV").unwrap();
    let vstar_row = comparison.row("V*").unwrap();
    let naive_row = comparison.row("Naive").unwrap();
    println!("checks:");
    println!(
        "  INS and OkV share the (maximal) safe region -> similar recompute counts: {} vs {}",
        ins_row.recomputations, okv_row.recomputations
    );
    println!(
        "  V*'s relaxed region recomputes more often: {} > {}",
        vstar_row.recomputations, ins_row.recomputations
    );
    println!(
        "  OkV pays for region construction: {} ops vs INS {}",
        okv_row.construction_ops, ins_row.construction_ops
    );
    println!(
        "  everyone communicates less than naive ({} objects): INS {}, OkV {}, V* {}",
        naive_row.comm_objects, ins_row.comm_objects, okv_row.comm_objects, vstar_row.comm_objects
    );
}

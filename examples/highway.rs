//! Driving a road network: "report the 3 nearest gas stations continuously
//! while one drives on a highway" (paper §I), in Road Network mode (§IV).
//!
//! A jittered street grid with gas stations on vertices; the vehicle
//! follows a shortest-path tour. The network INS processor validates each
//! timestamp on the small subnetwork of Theorem 2 and is compared against
//! naive per-tick Incremental Network Expansion.
//!
//! Run with: `cargo run --release --example highway`

use std::sync::Arc;

use insq::prelude::*;
use insq::roadnet::generators::{grid_network, random_site_vertices, GridConfig};

fn main() {
    // 1. The road network: a 30x30 jittered grid with diagonals.
    let net = Arc::new(
        grid_network(
            &GridConfig {
                cols: 30,
                rows: 30,
                spacing: 1.0,
                jitter: 0.2,
                diagonal_prob: 0.08,
                deletion_prob: 0.08,
            },
            2016,
        )
        .expect("valid grid config"),
    );
    println!(
        "network: {} vertices, {} edges, total length {:.0}",
        net.num_vertices(),
        net.num_edges(),
        net.total_length()
    );

    // 2. Gas stations on 60 random vertices; network Voronoi diagram
    //    precomputed once (server side).
    let stations = SiteSet::new(&net, random_site_vertices(&net, 60, 7).unwrap())
        .expect("distinct station vertices");
    let world = NetworkWorld::build(Arc::clone(&net), stations);

    // 3. The drive: a shortest-path tour through 12 random waypoints.
    let tour = NetTrajectory::random_tour(&net, 12, 99).expect("tour on connected network");
    println!("tour length: {:.1} network units\n", tour.length());

    let (k, ticks, speed) = (3usize, 4_000usize, 0.02f64);

    let mut comparison = Comparison::new();
    let mut ins =
        NetInsProcessor::new(&world, NetInsConfig::new(k, 1.6)).expect("valid configuration");
    let run_ins = run_network(&mut ins, &net, &tour, ticks, speed);

    let mut naive = NetNaiveProcessor::new(&net, &world.sites, k).expect("valid configuration");
    let run_naive = run_network(&mut naive, &net, &tour, ticks, speed);

    comparison.add(&run_ins);
    comparison.add(&run_naive);
    println!("{}", comparison.to_table());

    // Show the events of the drive: every change of the station set.
    println!("station-set changes along the drive (first 15):");
    for rec in run_ins.result_changes().iter().take(15) {
        let ids: Vec<u32> = rec.knn.iter().map(|s| s.0).collect();
        println!(
            "  tick {:>5}  {:<10} stations {:?}",
            rec.tick,
            format!("{:?}", rec.outcome),
            ids
        );
    }

    // The Theorem-2 subnetwork stays small: report its final extent.
    let sub = ins.subnetwork_sites().len();
    println!(
        "\nvalidation subnetwork: {} of {} station cells (k + |INS|)",
        sub,
        world.sites.len()
    );
    let frag: usize = ins
        .subnetwork_sites()
        .iter()
        .map(|&s| world.nvd.cell_fragments(&net, s).len())
        .sum();
    println!(
        "covering {frag} edge fragments of {} edges total",
        net.num_edges()
    );
}

//! Quickstart: a moving 5-NN query over uniform data.
//!
//! Builds the VoR-tree, drives an INS query along a straight trajectory
//! and prints what the algorithm does at each step — when the result stays
//! valid, when a single neighbor is swapped, and when a full
//! recomputation (server round trip) happens.
//!
//! Run with: `cargo run --example quickstart`

use insq::prelude::*;

fn main() {
    // 1. Data: 2 000 uniform points in a 100×100 space.
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let points = Distribution::Uniform.generate(2_000, &space, 42);

    // 2. Index: order-1 Voronoi diagram + R-tree (the VoR-tree of the
    //    paper). Built once, server side.
    let index = VorTree::build(points, space.inflated(10.0)).expect("valid data set");

    // 3. A moving 5-NN query with the demo's prefetch ratio ρ = 1.6.
    let mut query = InsProcessor::new(&index, InsConfig::new(5, 1.6)).expect("valid configuration");

    // 4. Drive it across the space and watch the outcomes.
    let trajectory = Trajectory::new(vec![
        Point::new(5.0, 20.0),
        Point::new(60.0, 70.0),
        Point::new(95.0, 30.0),
    ])
    .expect("valid trajectory");

    let steps = 120;
    println!("step  outcome      kNN (ids)                          d_max");
    for i in 0..=steps {
        let pos = trajectory.position(trajectory.length() * i as f64 / steps as f64);
        let outcome = query.tick(pos);
        if outcome.changed() || i % 20 == 0 {
            let knn = query.current_knn_with_dists();
            let ids = knn
                .iter()
                .map(|&(s, _)| s.0.to_string())
                .collect::<Vec<_>>()
                .join(",");
            let dmax = knn.iter().map(|&(_, d)| d).fold(0.0, f64::max);
            println!(
                "{i:>4}  {:<12} [{ids:<28}] {dmax:.2}",
                format!("{outcome:?}")
            );
        }
    }

    let s = query.stats();
    println!("\n--- totals over {} ticks ---", s.ticks);
    println!("valid (no work beyond an O(k) scan): {}", s.valid_ticks);
    println!("single-object swaps:                 {}", s.swaps);
    println!("local re-ranks:                      {}", s.local_reranks);
    println!("full recomputations:                 {}", s.recomputations);
    println!("objects transmitted:                 {}", s.comm_objects);
    println!(
        "validation ops/tick:                 {:.1}",
        s.validation_ops_per_tick()
    );
}

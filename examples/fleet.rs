//! The INSQ *system*: one server, thousands of concurrent moving queries.
//!
//! Drives a fleet of 5,000 Euclidean moving kNN clients over a shared,
//! epoch-versioned world for 120 timestamps. Halfway through, the POI
//! database is updated: the server builds a new VoR-tree and publishes it
//! with one `World::publish` — no client is touched by hand; every query
//! detects the epoch bump at its next tick and self-rebinds, paying
//! exactly one recomputation.
//!
//! Run with: `cargo run --release --example fleet`

use std::sync::Arc;

use insq::prelude::*;

fn main() {
    let sc = FleetScenario {
        clients: 5_000,
        n: 10_000,
        k: 5,
        ticks: 120,
        updates: vec![60],
        seed: 2016,
        ..Default::default()
    };

    // Server side: build and publish the initial world (epoch 0), and
    // pre-build the post-update index the schedule will publish later.
    let idx_v1 = Arc::new(VorTree::build(sc.points(0), sc.clip_window()).expect("valid data"));
    let idx_v2 = Arc::new(VorTree::build(sc.points(1), sc.clip_window()).expect("valid data"));
    let world = Arc::new(World::from_arc(Arc::clone(&idx_v1)));

    // Fleet side: register the clients (a mix of tourist / commuter /
    // loop trajectories) and keep their trajectories for position lookup.
    let mut fleet: FleetEngine<VorTree, InsFleetQuery> =
        FleetEngine::new(Arc::clone(&world), FleetConfig::default());
    let trajs: Vec<Trajectory> = (0..sc.clients).map(|c| sc.client_trajectory(c)).collect();
    for _ in 0..sc.clients {
        fleet.register(
            InsFleetQuery::new(&world, InsConfig::new(sc.k, sc.rho)).expect("valid config"),
        );
    }
    println!(
        "fleet: {} clients, k={}, rho={}, {} objects, {} worker thread(s)",
        fleet.len(),
        sc.k,
        sc.rho,
        idx_v1.len(),
        fleet.threads()
    );

    let t0 = std::time::Instant::now();
    for tick in 0..sc.ticks {
        if sc.updates.contains(&tick) {
            let epoch = world.publish_arc(Arc::clone(&idx_v2));
            println!(
                "tick {tick}: POI database updated ({} -> {} objects), published as {epoch}",
                idx_v1.len(),
                idx_v2.len()
            );
        }
        // Positions are computed inside the closure, on the worker pool.
        let summary = fleet.tick_all(|id| sc.position(&trajs[id.index()], id.index(), tick));
        if summary.rebinds > 0 {
            println!(
                "tick {tick}: {} queries detected the epoch bump, rebound and recomputed",
                summary.rebinds
            );
        }
    }
    let wall = t0.elapsed();

    // Exactness spot check: fleet answers equal brute force on the live
    // (post-update) world.
    for c in [0usize, 1_234, 4_999] {
        let q = fleet.query(QueryId(c as u64)).expect("registered");
        let mut got = q.current_knn();
        got.sort_unstable();
        let mut want = idx_v2
            .voronoi()
            .knn_brute(sc.position(&trajs[c], c, sc.ticks - 1), sc.k);
        want.sort_unstable();
        assert_eq!(got, want, "client {c} must answer exactly from epoch 1");
    }

    let stats = fleet.stats();
    let s = &stats.total;
    println!(
        "\ndone: {} query-ticks in {:.2?} ({:.0}k ticks/s across {} shards)",
        s.ticks,
        wall,
        stats.ticks_per_sec() / 1e3,
        stats.per_shard.len()
    );
    println!(
        "outcome mix: {} valid | {} local updates | {} recomputations (rate {:.4})",
        s.valid_ticks,
        s.swaps + s.local_reranks,
        s.recomputations,
        stats.recompute_rate()
    );
    println!(
        "per tick: {:.1} validation ops | {:.2} objects shipped",
        stats.validations_per_tick(),
        s.comm_per_tick()
    );
    println!(
        "(of the {} recomputes: {} initial computations + {} from the epoch \
         swap — exactly one per client each — and the rest from trajectory \
         drift)",
        s.recomputations, stats.queries, stats.queries
    );
}

//! The INSQ demonstration, rendered in ASCII — the headless counterpart of
//! the paper's Fig. 4 (2D Plane mode, k = 5, ρ = 1.6).
//!
//! Shows frames of the moving query: data objects (`.`), the current kNN
//! (`K`), the influential neighbors (`i`), the query object (`Q`) and the
//! safe region — the order-k Voronoi cell — as `:` shading. At each
//! rendered frame the two validation circles' radii are printed: the
//! result is valid while the green radius (farthest kNN) is below the red
//! radius (nearest influential neighbor); the paper's Fig. 4(b) moment is
//! the tick where that flips.
//!
//! Run with: `cargo run --example ascii_demo`

use insq::prelude::*;
use insq::sim::render_euclidean;

fn main() {
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let points = Distribution::Uniform.generate(160, &space, 2016);
    let index = VorTree::build(points.clone(), space.inflated(10.0)).expect("valid data");

    // k = 5, ρ = 1.6: the exact parameters of Fig. 4.
    let mut query = InsProcessor::new(&index, InsConfig::new(5, 1.6)).expect("valid configuration");

    let trajectory = Trajectory::new(vec![
        Point::new(20.0, 25.0),
        Point::new(45.0, 60.0),
        Point::new(75.0, 40.0),
    ])
    .expect("valid trajectory");

    let steps = 60;
    for i in 0..=steps {
        let pos = trajectory.position(trajectory.length() * i as f64 / steps as f64);
        let outcome = query.tick(pos);

        // Render one frame every 15 steps, plus every invalidation moment.
        if i % 15 != 0 && !outcome.changed() {
            continue;
        }
        let knn: Vec<usize> = query.current_knn().iter().map(|s| s.idx()).collect();
        let ins: Vec<usize> = query.influential_set().iter().map(|s| s.idx()).collect();
        let region = query.safe_region();
        let frame = render_euclidean(&points, &knn, &ins, pos, Some(&region), space, 72, 26);
        let state = if outcome.changed() {
            "kNN set UPDATED (was invalid)"
        } else {
            "kNN set valid"
        };
        println!("tick {i:>3}  {state}   [{outcome:?}]");
        if let Some((green, red)) = query.validation_circles() {
            println!(
                "green circle (farthest kNN) r={:.2}  <=  red circle (nearest INS) r={:.2}",
                green.radius, red.radius
            );
        }
        println!("{frame}\n");
    }

    let s = query.stats();
    println!(
        "demo finished: {} ticks, {} valid, {} swaps, {} re-ranks, {} recomputations",
        s.ticks, s.valid_ticks, s.swaps, s.local_reranks, s.recomputations
    );
}

//! # insq
//!
//! A complete Rust implementation of **INSQ: An Influential Neighbor Set
//! Based Moving kNN Query Processing System** (Li, Gu, Qi, Yu, Zhang,
//! Deng — ICDE 2016), including every substrate the system depends on:
//! robust computational geometry, Delaunay/Voronoi construction, R-/VoR-
//! trees, road networks with network Voronoi diagrams, the INS algorithm
//! — implemented once, generically over a [`core::Space`], and
//! instantiated for the Euclidean plane, road networks, and weighted
//! (anisotropic) Euclidean distance — the competing baselines, a
//! simulation/benchmark harness reproducing the paper's demonstration and
//! the companion evaluation, and the system layer itself: a concurrent
//! multi-query fleet engine over epoch-versioned worlds ([`server`]),
//! served over TCP by a framed, versioned wire protocol with session
//! management and epoch push ([`net`]).
//!
//! ## Quick start
//!
//! ```
//! use insq::prelude::*;
//!
//! // Data objects and their Voronoi-augmented index.
//! let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
//! let points = Distribution::Uniform.generate(500, &bounds, 7);
//! let index = VorTree::build(points, bounds.inflated(10.0)).unwrap();
//!
//! // A moving 5-NN query with prefetch ratio 1.6 (the demo defaults).
//! let mut query = InsProcessor::new(&index, InsConfig::with_k(5)).unwrap();
//! for step in 0..100 {
//!     let pos = Point::new(10.0 + 0.5 * step as f64, 50.0);
//!     query.tick(pos);
//!     assert_eq!(query.current_knn().len(), 5);
//! }
//! // Most steps validate in O(k) and need no full recomputation:
//! assert!(query.stats().valid_ticks > 60);
//! assert!(query.stats().recomputations < 25);
//! ```
//!
//! ## Road-network mode (paper §IV)
//!
//! ```
//! use std::sync::Arc;
//! use insq::prelude::*;
//! use insq::roadnet::generators::{grid_network, random_site_vertices, GridConfig};
//!
//! let net = Arc::new(grid_network(&GridConfig::default(), 7).unwrap());
//! let stations = SiteSet::new(&net, random_site_vertices(&net, 20, 7).unwrap()).unwrap();
//! // One snapshot value: network + sites + precomputed NVD.
//! let world = NetworkWorld::build(Arc::clone(&net), stations);
//!
//! let mut query = NetInsProcessor::new(&world, NetInsConfig::with_k(3)).unwrap();
//! let tour = NetTrajectory::random_tour(&net, 6, 1).unwrap();
//! for tick in 0..200 {
//!     // Per tick: one restricted search on the kNN ∪ INS subnetwork
//!     // (Theorem 2) — no server contact while the result stays valid.
//!     query.tick(tour.position_looped(&net, 0.05 * tick as f64));
//! }
//! assert_eq!(query.current_knn().len(), 3);
//! assert!(query.stats().comm_objects < 100); // vs 600 for naive (3/tick)
//! ```
//!
//! ## A third space: weighted (anisotropic) Euclidean
//!
//! ```
//! use insq::prelude::*;
//!
//! // Travel-time metric: the y axis is 2.5x slower than x.
//! let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
//! let points = Distribution::Uniform.generate(400, &bounds, 9);
//! let w = AxisWeights::new(1.0, 2.5).unwrap();
//! let index = WeightedVorTree::build(points, bounds.inflated(10.0), w).unwrap();
//!
//! let mut query = WInsProcessor::new(&index, InsConfig::with_k(4)).unwrap();
//! query.tick(Point::new(50.0, 50.0));
//! assert_eq!(query.current_knn().len(), 4);
//! ```
//!
//! ## Many queries at once (the INSQ *system*)
//!
//! A server maintaining results for a whole fleet of clients holds the
//! index in an epoch-versioned [`server::World`] and ticks every
//! registered query per timestamp through a [`server::FleetEngine`] —
//! parallel, deterministic, and with data-object updates reduced to one
//! [`server::World::publish`] call (see the README's fleet quick start
//! and `examples/fleet.rs`). All of it is generic over the
//! [`core::Space`]; the `SpaceQuery` fleet client works unchanged for
//! every space above.
//!
//! See the `examples/` directory for the demonstration scenarios and
//! `insq-bench` for the full experiment harness.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub use insq_baselines as baselines;
pub use insq_cluster as cluster;
pub use insq_core as core;
pub use insq_geom as geom;
pub use insq_index as index;
pub use insq_net as net;
pub use insq_roadnet as roadnet;
pub use insq_server as server;
pub use insq_sim as sim;
pub use insq_voronoi as voronoi;
pub use insq_workload as workload;

/// The commonly used types, one `use` away.
pub mod prelude {
    pub use insq_baselines::{
        NaiveProcessor, NetNaiveProcessor, OkvProcessor, VStarConfig, VStarProcessor,
    };
    pub use insq_cluster::{ClientId, ClusterPlan, PartitionGroup, RouterConfig, RouterServer};
    pub use insq_core::{
        influential_neighbor_set, minimal_influential_set, Euclidean, InsConfig, InsProcessor,
        MovingKnn, NetInsConfig, NetInsProcessor, Network, Processor, QueryStats, Space,
        TickOutcome, WInsProcessor, WeightedEuclidean,
    };
    pub use insq_geom::{
        Aabb, Circle, ConvexPolygon, HalfPlane, Point, Segment, Trajectory, Vector,
    };
    pub use insq_index::{AxisWeights, RTree, SiteDelta, VorTree, WeightedVorTree};
    pub use insq_net::{
        ClientCore, ClientEvent, Message, NetClient, NetServer, NetServerConfig, SpaceKind,
        WireSpace,
    };
    pub use insq_roadnet::{
        EdgeId, EdgeWeight, NetDelta, NetPosition, NetSiteDelta, NetTrajectory, NetworkVoronoi,
        NetworkWorld, RoadNetwork, SiteIdx, SiteSet, VertexId,
    };
    pub use insq_server::{
        Epoch, FleetConfig, FleetEngine, FleetQuery, FleetStats, InsFleetQuery, NetFleetQuery,
        QueryId, SpaceQuery, TickDisposition, TickPolicy, TickPos, TickSummary, WFleetQuery, World,
    };
    pub use insq_sim::{run_euclidean, run_network, Comparison, RunRecord};
    pub use insq_voronoi::{SiteId, Voronoi};
    pub use insq_workload::{
        Distribution, EuclideanScenario, FleetScenario, NetworkInstance, NetworkKind,
        NetworkScenario, SpaceWorkload, TrajectoryKind,
    };
}

//! The INSQ TCP server: sessions in front of a [`World`] +
//! [`FleetEngine`].
//!
//! [`NetServer`] owns the epoch-versioned world and the fleet engine and
//! serves them over a multithreaded `std::net::TcpListener`:
//!
//! * each accepted connection becomes a **session** after a valid
//!   `Register` frame — one [`SpaceQuery`] in the engine, mapped 1:1 to
//!   a [`QueryId`] (ids are never reused, so a dropped session can never
//!   alias a live one);
//! * position updates are **batched per tick**: the tick loop waits
//!   until every live session has a fresh position (updates between
//!   ticks coalesce, last one wins), then runs one deterministic
//!   [`FleetEngine::tick_all_outcomes`] over the whole fleet — so the
//!   per-session result streams are bit-identical to an in-process run
//!   fed the same positions (`tests/loopback_soak.rs` proves this across
//!   a delta-epoch swap at multiple thread counts);
//! * results are pushed back through **bounded per-session write
//!   queues** drained by one writer thread per session. A session whose
//!   queue overflows (slow consumer) is disconnected rather than letting
//!   it stall the fleet; a disconnect — graceful `Deregister`, dropped
//!   socket, or overflow — deregisters the query and the remaining
//!   sessions keep ticking undisturbed;
//! * epoch swaps ([`World::publish`] / [`World::apply`] on
//!   [`NetServer::world`]) are **pushed**: the first tick after a swap
//!   sends each session an `EpochNotify` before its first result of the
//!   new epoch.
//!
//! Everything (engine + session table) lives behind one mutex with one
//! condvar — readers register/update under it, the tick loop batches
//! and ticks under it — so there is no lock-order graph to get wrong,
//! and the engine's own scoped-thread pool still parallelises the tick
//! itself.

use std::collections::HashMap;
use std::io::{self, BufReader, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use insq_core::InsConfig;
use insq_server::{FleetConfig, FleetEngine, FleetStats, QueryId, SpaceQuery, World};

use crate::space::WireSpace;
use crate::wire::{read_message, write_message, ErrorCode, Message};

/// Configuration of a [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetServerConfig {
    /// Shard/worker configuration of the underlying [`FleetEngine`].
    pub fleet: FleetConfig,
    /// The first tick fires only once this many sessions have ever
    /// registered (a start barrier, so a fleet connecting one by one is
    /// ticked as one batch from tick 0). `0`/`1` means tick as soon as
    /// any session is ready.
    pub min_clients: usize,
    /// Depth of each session's bounded write queue (messages). A
    /// session that falls this far behind is disconnected instead of
    /// stalling the fleet.
    pub write_queue: usize,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            fleet: FleetConfig::default(),
            min_clients: 1,
            write_queue: 64,
        }
    }
}

impl NetServerConfig {
    /// A configuration whose first tick waits for `n` registrations.
    pub fn with_min_clients(n: usize) -> NetServerConfig {
        NetServerConfig {
            min_clients: n,
            ..NetServerConfig::default()
        }
    }
}

/// One live session: the engine-side state of a connected client.
struct Session<S: WireSpace> {
    /// The position for the next tick, if the client has sent one since
    /// the last tick (several coalesce; the last one wins).
    pending: Option<S::Pos>,
    /// The bounded write queue drained by this session's writer thread.
    tx: SyncSender<Message>,
    /// The epoch this session last saw (bind epoch at registration,
    /// then the epoch of every pushed notify/result).
    last_epoch: insq_server::Epoch,
}

/// Everything the mutex protects: the engine and the session table are
/// updated together, so their invariant — engine queries ⟺ sessions,
/// 1:1 by [`QueryId`] — holds at every lock release.
struct State<S: WireSpace> {
    engine: FleetEngine<S::Index, SpaceQuery<S>>,
    sessions: HashMap<u64, Session<S>>,
    /// Total registrations over the server's lifetime (the
    /// `min_clients` start barrier counts these, not live sessions).
    registered_ever: u64,
    /// Raw connection handles (keyed by an accept counter), used to
    /// unblock reader threads at shutdown.
    conns: HashMap<u64, TcpStream>,
    next_conn: u64,
    /// Connection-thread handles, joined at shutdown.
    threads: Vec<JoinHandle<()>>,
}

struct Shared<S: WireSpace> {
    world: Arc<World<S::Index>>,
    state: Mutex<State<S>>,
    wake: Condvar,
    shutdown: AtomicBool,
    cfg: NetServerConfig,
    ticks: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

impl<S: WireSpace> Shared<S> {
    fn lock(&self) -> MutexGuard<'_, State<S>> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A TCP serving frontend for one space's fleet engine. See the module
/// docs for the protocol; `examples/net_fleet.rs` for a complete run.
pub struct NetServer<S: WireSpace> {
    shared: Arc<Shared<S>>,
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    ticker: Option<JoinHandle<()>>,
}

impl<S: WireSpace> std::fmt::Debug for NetServer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("sessions", &self.live_sessions())
            .field("ticks", &self.ticks())
            .finish_non_exhaustive()
    }
}

impl<S: WireSpace> NetServer<S> {
    /// Binds a listener and starts serving `world` (accept thread + tick
    /// thread start immediately). Bind to port 0 to let the OS pick.
    pub fn bind(
        addr: impl ToSocketAddrs,
        world: Arc<World<S::Index>>,
        cfg: NetServerConfig,
    ) -> io::Result<NetServer<S>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let engine = FleetEngine::new(Arc::clone(&world), cfg.fleet);
        let shared = Arc::new(Shared {
            world,
            state: Mutex::new(State {
                engine,
                sessions: HashMap::new(),
                registered_ever: 0,
                conns: HashMap::new(),
                next_conn: 0,
                threads: Vec::new(),
            }),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            cfg,
            ticks: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
        });
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(shared, listener))
        };
        let ticker = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || tick_loop(shared))
        };
        Ok(NetServer {
            shared,
            addr: local,
            accept: Some(accept),
            ticker: Some(ticker),
        })
    }

    /// The bound address (use after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served world — publish or apply epochs through this handle;
    /// sessions are notified at their next tick.
    pub fn world(&self) -> &Arc<World<S::Index>> {
        &self.shared.world
    }

    /// Live (registered, connected) sessions.
    pub fn live_sessions(&self) -> usize {
        self.shared.lock().sessions.len()
    }

    /// The ids of all live queries, ascending — 1:1 with sessions.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.shared.lock().engine.ids()
    }

    /// Aggregated statistics of the underlying fleet engine.
    pub fn stats(&self) -> FleetStats {
        self.shared.lock().engine.stats()
    }

    /// Fleet ticks completed since the server started.
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }

    /// Wire bytes `(received, sent)` over all sessions so far.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (
            self.shared.bytes_in.load(Ordering::Relaxed),
            self.shared.bytes_out.load(Ordering::Relaxed),
        )
    }

    /// Stops accepting, disconnects every session, and joins all server
    /// threads. Called automatically on drop; calling it explicitly
    /// surfaces the join points in the caller's control flow.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        // The flag is flipped and the condvar notified while holding the
        // state mutex: the tick loop checks the flag under the same
        // mutex before waiting, so it is either before its check (and
        // will see the flag) or already waiting (and gets the notify) —
        // never in between losing the wakeup.
        {
            let st = self.shared.lock();
            self.shared.shutdown.store(true, Ordering::SeqCst);
            self.shared.wake.notify_all();
            // Unblock every reader thread (registered or not).
            for conn in st.conns.values() {
                let _ = conn.shutdown(Shutdown::Both);
            }
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
        // Connection threads observe the closed sockets and finish their
        // cleanup; the accept loop has stopped, so no new ones appear.
        let threads = std::mem::take(&mut self.shared.lock().threads);
        for h in threads {
            let _ = h.join();
        }
    }
}

impl<S: WireSpace> Drop for NetServer<S> {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

fn accept_loop<S: WireSpace>(shared: Arc<Shared<S>>, listener: TcpListener) {
    while !shared.shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // On some platforms (BSD-derived, Windows) accepted
                // sockets inherit the listener's non-blocking mode; the
                // per-connection reader/writer threads want blocking
                // I/O.
                if stream.set_nonblocking(false).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let Ok(raw) = stream.try_clone() else {
                    continue;
                };
                let mut st = shared.lock();
                if shared.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let conn_id = st.next_conn;
                st.next_conn += 1;
                st.conns.insert(conn_id, raw);
                let handle = {
                    let shared = Arc::clone(&shared);
                    std::thread::spawn(move || serve_conn(shared, stream, conn_id))
                };
                st.threads.push(handle);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Sends a final error frame directly on `stream` (best effort — the
/// peer may already be gone).
fn send_error(stream: &mut TcpStream, code: ErrorCode, detail: &str) {
    let msg = Message::Error {
        code,
        detail: detail.to_string(),
    };
    let _ = write_message(stream, &msg);
    let _ = stream.flush();
}

/// The per-connection reader: handshake, then the position-update loop.
fn serve_conn<S: WireSpace>(shared: Arc<Shared<S>>, mut stream: TcpStream, conn_id: u64) {
    let registered = handshake_and_serve(&shared, &mut stream);
    // Cleanup: drop the session (if one was registered) and the raw
    // connection handle; wake the tick loop so the barrier stops
    // counting this session.
    {
        let mut st = shared.lock();
        st.conns.remove(&conn_id);
        if let Some((qid, writer)) = registered {
            st.sessions.remove(&qid.0);
            st.engine.deregister(qid);
            drop(st);
            let _ = stream.shutdown(Shutdown::Both);
            let _ = writer.join();
        }
    }
    shared.wake.notify_all();
}

/// Runs a connection to completion. Returns the session's query id and
/// writer-thread handle if registration succeeded (the caller cleans
/// them up).
fn handshake_and_serve<S: WireSpace>(
    shared: &Arc<Shared<S>>,
    stream: &mut TcpStream,
) -> Option<(QueryId, JoinHandle<()>)> {
    let Ok(read_half) = stream.try_clone() else {
        return None;
    };
    let mut reader = BufReader::new(read_half);

    // Handshake: the first frame must be a valid Register.
    let (k, rho, wire_pos) = match read_message(&mut reader) {
        Ok(Some((Message::Register { space, k, rho, pos }, n))) => {
            shared.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
            if space != S::KIND {
                send_error(
                    stream,
                    ErrorCode::SpaceMismatch,
                    &format!("this server serves {:?}", S::KIND),
                );
                return None;
            }
            (k, rho, pos)
        }
        Ok(Some((_, _))) => {
            send_error(
                stream,
                ErrorCode::NotRegistered,
                "first frame must register",
            );
            return None;
        }
        Ok(None) => return None,
        Err(e) => {
            send_error(stream, ErrorCode::Malformed, &e.to_string());
            return None;
        }
    };
    let (_, snapshot) = shared.world.snapshot();
    let pos = match S::pos_from_wire(&snapshot, wire_pos) {
        Ok(p) => p,
        Err(e) => {
            send_error(stream, ErrorCode::BadPosition, &e.to_string());
            return None;
        }
    };
    let query = match SpaceQuery::<S>::new(&shared.world, InsConfig::new(k as usize, rho)) {
        Ok(q) => q,
        Err(e) => {
            send_error(stream, ErrorCode::BadConfig, &e.to_string());
            return None;
        }
    };

    // Register engine query + session atomically.
    let (qid, rx) = {
        let mut st = shared.lock();
        if shared.shutdown.load(Ordering::SeqCst) {
            send_error(stream, ErrorCode::Overloaded, "server shutting down");
            return None;
        }
        let qid = st.engine.register(query);
        let bound = st
            .engine
            .query(qid)
            .map(insq_server::FleetQuery::bound_epoch)
            .unwrap_or_default();
        let (tx, rx) = sync_channel::<Message>(shared.cfg.write_queue.max(1));
        st.sessions.insert(
            qid.0,
            Session {
                pending: Some(pos),
                tx,
                last_epoch: bound,
            },
        );
        st.registered_ever += 1;
        (qid, rx)
    };
    shared.wake.notify_all();

    // Writer: drains the bounded queue onto the socket until the session
    // drops its sender or the peer goes away.
    let writer = {
        let shared = Arc::clone(shared);
        let Ok(mut write_half) = stream.try_clone() else {
            // Can't write results — undo the registration.
            let mut st = shared.lock();
            st.sessions.remove(&qid.0);
            st.engine.deregister(qid);
            return None;
        };
        std::thread::spawn(move || {
            while let Ok(msg) = rx.recv() {
                match write_message(&mut write_half, &msg) {
                    Ok(n) => {
                        shared.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                    }
                    Err(_) => break,
                }
            }
            let _ = write_half.shutdown(Shutdown::Both);
        })
    };

    // Update loop.
    loop {
        match read_message(&mut reader) {
            Ok(Some((Message::PositionUpdate { pos }, n))) => {
                shared.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                let (_, snapshot) = shared.world.snapshot();
                match S::pos_from_wire(&snapshot, pos) {
                    Ok(p) => {
                        let mut st = shared.lock();
                        if let Some(sess) = st.sessions.get_mut(&qid.0) {
                            sess.pending = Some(p);
                        }
                        drop(st);
                        shared.wake.notify_all();
                    }
                    Err(e) => {
                        // An unusable position would stall the whole
                        // fleet at the tick barrier — close the session.
                        send_error(stream, ErrorCode::BadPosition, &e.to_string());
                        break;
                    }
                }
            }
            Ok(Some((Message::Deregister, n))) => {
                shared.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                break;
            }
            Ok(Some((Message::Register { .. }, n))) => {
                shared.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                send_error(
                    stream,
                    ErrorCode::AlreadyRegistered,
                    "session already registered",
                );
                break;
            }
            Ok(Some((_, n))) => {
                shared.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                send_error(stream, ErrorCode::Malformed, "server-bound frame expected");
                break;
            }
            Ok(None) => break, // clean EOF
            Err(e) if e.kind() == io::ErrorKind::InvalidData => {
                send_error(stream, ErrorCode::Malformed, &e.to_string());
                break;
            }
            Err(_) => break, // connection reset / shutdown
        }
    }
    Some((qid, writer))
}

/// The tick loop: waits until every live session has a fresh position
/// (and the start barrier is met), then runs one deterministic engine
/// tick and pushes each session its result.
fn tick_loop<S: WireSpace>(shared: Arc<Shared<S>>) {
    let mut outcomes: Vec<(QueryId, insq_core::TickOutcome)> = Vec::new();
    loop {
        let mut st = shared.lock();
        loop {
            if shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let ready = !st.sessions.is_empty()
                && st.registered_ever >= shared.cfg.min_clients as u64
                && st.sessions.values().all(|s| s.pending.is_some());
            if ready {
                break;
            }
            st = shared.wake.wait(st).unwrap_or_else(PoisonError::into_inner);
        }

        // Batch: take every pending position. Registration and
        // deregistration lock the same mutex, so the batch covers the
        // engine's query set exactly.
        let state = &mut *st;
        let batch: HashMap<u64, S::Pos> = state
            .sessions
            .iter_mut()
            .map(|(&id, sess)| (id, sess.pending.take().expect("barrier checked")))
            .collect();
        let summary = state
            .engine
            .tick_all_outcomes(|id| batch[&id.0], &mut outcomes);
        let epoch = summary.epoch;

        // Pair each outcome with its query's kNN in one O(n) pass:
        // `for_each_query` visits in exactly the (deterministic) shard
        // order `tick_all_outcomes` reported in, and nothing mutated the
        // engine in between (we hold the state mutex throughout).
        let mut results: Vec<(QueryId, Message)> = Vec::with_capacity(outcomes.len());
        let mut at = 0usize;
        state.engine.for_each_query(|qid, q| {
            use insq_core::MovingKnn;
            let (oid, outcome) = outcomes[at];
            at += 1;
            assert_eq!(oid, qid, "outcome order matches query order");
            let ids: Vec<u32> = q.current_knn().into_iter().map(S::id_to_wire).collect();
            results.push((
                qid,
                Message::KnnResult {
                    epoch: epoch.0,
                    ids,
                    outcome: outcome.into(),
                },
            ));
        });

        // Push per-session results (epoch notify first where due); a
        // full or closed queue drops the session silently — its writer
        // may be wedged mid-frame, so no error frame can be interleaved.
        let mut dead: Vec<QueryId> = Vec::new();
        for (qid, result) in results {
            let Some(sess) = state.sessions.get_mut(&qid.0) else {
                continue;
            };
            if sess.last_epoch != epoch {
                sess.last_epoch = epoch;
                if !push(&sess.tx, Message::EpochNotify { epoch: epoch.0 }) {
                    dead.push(qid);
                    continue;
                }
            }
            if !push(&sess.tx, result) {
                dead.push(qid);
            }
        }
        for qid in dead {
            // Dropping the sender ends the writer thread; the reader
            // notices the socket close and finishes its own cleanup.
            state.sessions.remove(&qid.0);
            state.engine.deregister(qid);
        }
        shared.ticks.fetch_add(1, Ordering::Relaxed);
        drop(st);
    }
}

/// Non-blocking bounded-queue send; `false` means the session is dead
/// (queue overflow or writer gone).
fn push(tx: &SyncSender<Message>, msg: Message) -> bool {
    match tx.try_send(msg) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
    }
}

//! The INSQ TCP server: an event-driven reactor in front of a
//! [`World`] + [`FleetEngine`].
//!
//! [`NetServer`] owns the epoch-versioned world and the fleet engine
//! and serves them from **one readiness-driven event loop** over
//! non-blocking sockets (an in-tree [`crate::sys::Readiness`] backend —
//! `epoll` on Linux, portable `poll(2)` elsewhere, selectable via
//! [`NetServerConfig::readiness`]) — not a thread per connection, so
//! live sessions are bounded by file descriptors, not threads.
//! Interest registration is **persistent**: a socket is registered once
//! on accept, its write interest toggled only on buffer-empty
//! transitions, and deregistered on drop, so a wakeup costs O(ready
//! events) on `epoll` — not O(live sessions), and never an interest-set
//! rebuild:
//!
//! * each accepted connection becomes a **session** after a valid
//!   `Register` frame — one [`SpaceQuery`] in the engine, mapped 1:1 to
//!   a [`QueryId`] (ids are never reused, so a dropped session can
//!   never alias a live one). Inbound bytes are reassembled
//!   incrementally ([`crate::FrameBuf`]) — a frame may arrive split
//!   across any number of readiness wakeups;
//! * the loop drives accept → decode → batch → tick → push. When to
//!   tick is an explicit [`TickPolicy`] ([`NetServerConfig::policy`]):
//!   under `Barrier` the fleet advances only when every live session
//!   has a fresh position (the deterministic lockstep spec — result
//!   streams are bit-identical to [`FleetEngine::tick_all`] fed the
//!   same positions, which `tests/loopback_soak.rs` proves across a
//!   delta-epoch swap); under `Deadline { max_staleness }` the fleet
//!   advances on whatever positions have arrived (paced by
//!   [`NetServerConfig::tick_interval`]), **re-serving** each stale
//!   session its cached last result and force-ticking any session held
//!   past `max_staleness` — one slow phone no longer stalls the fleet;
//! * results are pushed through **bounded per-session write buffers**
//!   ([`crate::WriteBuf`], [`NetServerConfig::write_buf`] bytes) with
//!   partial-write continuation under `POLLOUT`. A session whose
//!   buffer would overflow (slow consumer) is disconnected rather than
//!   growing without bound; a disconnect — graceful `Deregister`,
//!   dropped socket, or overflow — deregisters the query and the
//!   remaining sessions keep ticking undisturbed;
//! * epoch swaps ([`World::publish`] / [`World::apply`] on
//!   [`NetServer::world`]) are **pushed**: each session gets an
//!   `EpochNotify` before its first result computed against the new
//!   epoch (re-served stale results are from the old epoch and carry
//!   no notify — the session's query has not rebound yet).
//!
//! The engine lives behind a plain mutex: the reactor thread locks it
//! to register/deregister/tick, the owner's API calls ([`stats`],
//! [`query_ids`]) lock it to read — there is no condvar and no
//! lock-order graph, and the engine's own scoped-thread pool still
//! parallelises the tick itself.
//!
//! [`stats`]: NetServer::stats
//! [`query_ids`]: NetServer::query_ids

use std::collections::HashMap;
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use insq_core::InsConfig;
use insq_server::{
    Epoch, FleetConfig, FleetEngine, FleetStats, QueryId, SpaceQuery, TickDisposition, TickPolicy,
    TickPos, World,
};

use crate::buffer::{FrameBuf, WriteBuf, READ_CHUNK};
use crate::space::WireSpace;
use crate::sys::{self, Event, Readiness, ReadinessKind};
use crate::wire::{ErrorCode, Message};

/// Configuration of a [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetServerConfig {
    /// Shard/worker configuration of the underlying [`FleetEngine`].
    pub fleet: FleetConfig,
    /// When the reactor ticks the fleet. [`TickPolicy::Barrier`] (the
    /// default) is the deterministic lockstep spec;
    /// [`TickPolicy::Deadline`] is the event-driven mode.
    pub policy: TickPolicy,
    /// The first tick fires only once this many sessions have ever
    /// registered (a start barrier, so a fleet connecting one by one is
    /// ticked as one batch from tick 0). `0`/`1` means tick as soon as
    /// any session is ready.
    pub min_clients: usize,
    /// Byte bound of each session's outbound write buffer (clamped up
    /// so one maximal frame always fits). A session that falls this far
    /// behind is disconnected instead of growing without bound.
    pub write_buf: usize,
    /// Under [`TickPolicy::Deadline`], how long the reactor batches
    /// freshly arrived positions before ticking a partially fresh fleet
    /// (a fully fresh fleet ticks immediately). Ignored under
    /// `Barrier`.
    pub tick_interval: Duration,
    /// Hard cap on concurrent connections; beyond it the reactor stops
    /// accepting until a session closes (`0` means no cap).
    pub max_sessions: usize,
    /// Partition-backend mode: the replication margin this server's
    /// world is guaranteed complete within. When set, every fresh
    /// [`Message::KnnResult`] carries
    /// [`crate::wire::FLAG_UNCERTIFIED`] unless the query's k-th
    /// neighbor distance (at its tick position) is ≤ this margin and a
    /// full k neighbors exist — i.e. the served index provably contains
    /// every site that could beat the result. `None` (the default, a
    /// whole-world server) always certifies.
    pub certify_within: Option<f64>,
    /// Which readiness backend drives the reactor. The default defers
    /// to the `INSQ_READINESS` environment variable (so a CI matrix can
    /// force the portable backend suite-wide) and otherwise
    /// auto-selects `epoll` on Linux, `poll(2)` elsewhere.
    pub readiness: ReadinessKind,
    /// Kernel send-buffer bound applied (best effort) to every accepted
    /// session. Setting it locks the buffer against kernel autotuning,
    /// so a slow reader's backlog lands in the session's accountable
    /// [`WriteBuf`] (bounded by [`NetServerConfig::write_buf`]) instead
    /// of ballooning invisible kernel memory. `None` (the default)
    /// leaves the kernel's autotuning in charge.
    pub sndbuf: Option<usize>,
}

impl Default for NetServerConfig {
    fn default() -> NetServerConfig {
        NetServerConfig {
            fleet: FleetConfig::default(),
            policy: TickPolicy::Barrier,
            min_clients: 1,
            write_buf: 64 * 1024,
            tick_interval: Duration::from_millis(5),
            max_sessions: 0,
            certify_within: None,
            readiness: ReadinessKind::from_env(),
            sndbuf: None,
        }
    }
}

impl NetServerConfig {
    /// A configuration whose first tick waits for `n` registrations.
    pub fn with_min_clients(n: usize) -> NetServerConfig {
        NetServerConfig {
            min_clients: n,
            ..NetServerConfig::default()
        }
    }

    /// A configuration serving under the given [`TickPolicy`].
    pub fn with_policy(policy: TickPolicy) -> NetServerConfig {
        NetServerConfig {
            policy,
            ..NetServerConfig::default()
        }
    }
}

/// State shared between the reactor thread and the owner's API calls.
struct Shared<S: WireSpace> {
    world: Arc<World<S::Index>>,
    engine: Mutex<FleetEngine<S::Index, SpaceQuery<S>>>,
    cfg: NetServerConfig,
    shutdown: AtomicBool,
    ticks: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
    live: AtomicUsize,
    buf_high_water: AtomicU64,
}

impl<S: WireSpace> Shared<S> {
    fn engine(&self) -> MutexGuard<'_, FleetEngine<S::Index, SpaceQuery<S>>> {
        self.engine.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A TCP serving frontend for one space's fleet engine. See the module
/// docs for the protocol; `examples/net_fleet.rs` for a complete run.
pub struct NetServer<S: WireSpace> {
    shared: Arc<Shared<S>>,
    addr: SocketAddr,
    reactor: Option<JoinHandle<()>>,
}

impl<S: WireSpace> std::fmt::Debug for NetServer<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("sessions", &self.live_sessions())
            .field("ticks", &self.ticks())
            .finish_non_exhaustive()
    }
}

impl<S: WireSpace> NetServer<S> {
    /// Binds a listener and starts serving `world` (the reactor thread
    /// starts immediately). Bind to port 0 to let the OS pick.
    pub fn bind(
        addr: impl ToSocketAddrs,
        world: Arc<World<S::Index>>,
        cfg: NetServerConfig,
    ) -> io::Result<NetServer<S>> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        // Open the readiness backend here, not in the reactor thread,
        // so an unsupported `ReadinessKind` fails the bind call.
        let readiness = Readiness::new(cfg.readiness)?;
        let engine = FleetEngine::new(Arc::clone(&world), cfg.fleet);
        let shared = Arc::new(Shared {
            world,
            engine: Mutex::new(engine),
            cfg,
            shutdown: AtomicBool::new(false),
            ticks: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
            live: AtomicUsize::new(0),
            buf_high_water: AtomicU64::new(0),
        });
        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || Reactor::new(shared, listener, readiness).run())
        };
        Ok(NetServer {
            shared,
            addr: local,
            reactor: Some(reactor),
        })
    }

    /// The bound address (use after binding port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The served world — publish or apply epochs through this handle;
    /// sessions are notified at their next result of the new epoch.
    pub fn world(&self) -> &Arc<World<S::Index>> {
        &self.shared.world
    }

    /// Live (registered, connected) sessions.
    pub fn live_sessions(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// The ids of all live queries, ascending — 1:1 with sessions.
    pub fn query_ids(&self) -> Vec<QueryId> {
        self.shared.engine().ids()
    }

    /// Aggregated statistics of the underlying fleet engine.
    pub fn stats(&self) -> FleetStats {
        self.shared.engine().stats()
    }

    /// Fleet ticks completed since the server started.
    pub fn ticks(&self) -> u64 {
        self.shared.ticks.load(Ordering::Relaxed)
    }

    /// Wire bytes `(received, sent)` over all sessions so far.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (
            self.shared.bytes_in.load(Ordering::Relaxed),
            self.shared.bytes_out.load(Ordering::Relaxed),
        )
    }

    /// The largest read+write buffer footprint any single session has
    /// reached so far, in bytes — the soak harness asserts this stays
    /// bounded at 10k+ sessions.
    pub fn buffer_high_water(&self) -> u64 {
        self.shared.buf_high_water.load(Ordering::Relaxed)
    }

    /// Stops accepting, disconnects every session, and joins the
    /// reactor. Called automatically on drop; calling it explicitly
    /// surfaces the join point in the caller's control flow.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        // The reactor's poll wakes within its timeout slice and
        // observes the flag; no pipe trick needed at these latencies.
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }
}

impl<S: WireSpace> Drop for NetServer<S> {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

/// One connection's reactor-side state.
struct Conn<S: WireSpace> {
    stream: TcpStream,
    rbuf: FrameBuf,
    wbuf: WriteBuf,
    /// `Some` once the session registered (1:1 with an engine query).
    qid: Option<QueryId>,
    /// A fresh position received since the last tick (several coalesce;
    /// the last one wins).
    pending: Option<S::Pos>,
    /// The last position this session ever supplied — what a deadline
    /// tick holds a stale query at.
    last_pos: Option<S::Pos>,
    /// The encoded frame of the last result pushed, re-served verbatim
    /// when a deadline tick leaves this session stale.
    last_result: Option<Vec<u8>>,
    /// The epoch this session last saw in a pushed result.
    last_epoch: Epoch,
    /// Half-closed: no more reads; flush `wbuf`, then drop the socket.
    closing: bool,
    /// The `(read, write)` interest currently registered with the
    /// readiness backend — [`Reactor::sync_interest`] issues a `modify`
    /// only when the desired interest diverges from this.
    reg: (bool, bool),
}

/// How many [`READ_CHUNK`]s one session may consume per wakeup before
/// yielding to its peers (level-triggered readiness re-reports the
/// rest — both backends register level-triggered; see
/// [`crate::sys::epoll`]).
const READS_PER_WAKEUP: usize = 4;

/// The listener's readiness token (no conn slot can reach it: slots
/// occupy the low 32 bits and generations the high 32, and a
/// generation never reaches `u32::MAX` — it would take 2^32 drops of
/// one slot).
const LISTENER_TOKEN: u64 = u64::MAX;

/// How long the reactor stops accepting after a resource-exhaustion
/// accept error (`EMFILE`/`ENFILE`/`ENOBUFS`). With level-triggered
/// readiness the listener would otherwise re-report readable instantly
/// and the loop would spin at 100% CPU exactly when the server is
/// fullest; pausing briefly lets live sessions keep being served and
/// retries once descriptors may have freed.
const ACCEPT_ERROR_PAUSE: Duration = Duration::from_millis(25);

/// The readiness token of connection `slot` in its `gen`-th occupancy.
/// The generation tag keeps a recycled slot from consuming an event
/// batch's stale entries for its previous occupant.
fn conn_token(gen: u32, slot: usize) -> u64 {
    ((gen as u64) << 32) | slot as u64
}

/// The single-threaded event loop: accept → decode → batch → tick →
/// push, all driven by backend readiness events.
struct Reactor<S: WireSpace> {
    shared: Arc<Shared<S>>,
    listener: TcpListener,
    readiness: Readiness,
    events: Vec<Event>,
    conns: Vec<Option<Conn<S>>>,
    /// Occupancy generation per slot, bumped on every drop (see
    /// [`conn_token`]).
    gens: Vec<u32>,
    free: Vec<usize>,
    /// Registered sessions: query id → conn slot.
    by_qid: HashMap<u64, usize>,
    registered_ever: u64,
    /// Registered sessions holding an unconsumed `pending` position —
    /// maintained incrementally so tick-readiness is O(1) per wakeup,
    /// not an O(live) recount.
    fresh: usize,
    last_tick: Instant,
    /// Whether the listener is currently in the readiness set (it
    /// leaves when the session cap is reached or after an
    /// exhaustion-error pause).
    listener_armed: bool,
    accept_pause_until: Option<Instant>,
    scratch: Vec<u8>,
}

impl<S: WireSpace> Reactor<S> {
    fn new(shared: Arc<Shared<S>>, listener: TcpListener, readiness: Readiness) -> Reactor<S> {
        Reactor {
            shared,
            listener,
            readiness,
            events: Vec::new(),
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            by_qid: HashMap::new(),
            registered_ever: 0,
            fresh: 0,
            last_tick: Instant::now(),
            listener_armed: false,
            accept_pause_until: None,
            scratch: vec![0u8; READ_CHUNK],
        }
    }

    fn run(mut self) {
        let poll_slice = self
            .shared
            .cfg
            .tick_interval
            .max(Duration::from_millis(1))
            .min(Duration::from_millis(10));
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            self.sync_listener();
            let mut events = std::mem::take(&mut self.events);
            if self.readiness.wait(Some(poll_slice), &mut events).is_err() {
                // Transient wait failure: pace and retry (shutdown is
                // still observed at the loop head).
                std::thread::sleep(poll_slice);
                self.events = events;
                continue;
            }
            for ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                    continue;
                }
                let slot = (ev.token & u32::MAX as u64) as usize;
                let gen = (ev.token >> 32) as u32;
                if slot >= self.gens.len() || self.gens[slot] != gen {
                    // The occupant this event was for is already gone
                    // (dropped earlier in this same batch).
                    continue;
                }
                if ev.readable() {
                    self.read_ready(slot);
                }
                if ev.writable() {
                    self.write_ready(slot);
                }
                self.sync_interest(slot);
            }
            self.events = events;
            self.maybe_tick();
        }
        self.close_all();
    }

    /// Arms or disarms the listener to match whether the reactor can
    /// take a connection right now (below the session cap, not inside
    /// an exhaustion-error pause).
    fn sync_listener(&mut self) {
        if let Some(t) = self.accept_pause_until {
            if Instant::now() >= t {
                self.accept_pause_until = None;
            }
        }
        let cap = self.shared.cfg.max_sessions;
        let open = self.conns.len() - self.free.len();
        let want = (cap == 0 || open < cap) && self.accept_pause_until.is_none();
        if want && !self.listener_armed {
            self.listener_armed = self
                .readiness
                .register(sys::raw_fd(&self.listener), LISTENER_TOKEN, true, false)
                .is_ok();
        } else if !want && self.listener_armed {
            let _ = self.readiness.deregister(sys::raw_fd(&self.listener));
            self.listener_armed = false;
        }
    }

    /// Brings `slot`'s registered interest in line with its state: read
    /// while not closing, write while the write buffer is non-empty.
    /// No-op (no syscall) unless a transition actually happened.
    fn sync_interest(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        let want = (!conn.closing, !conn.wbuf.is_empty());
        if want == conn.reg {
            return;
        }
        conn.reg = want;
        let fd = sys::raw_fd(&conn.stream);
        let tok = conn_token(self.gens[slot], slot);
        if self.readiness.modify(fd, tok, want.0, want.1).is_err() {
            self.drop_conn(slot);
        }
    }

    /// Records `conn`'s buffer footprint into the shared high-water
    /// mark (called where the footprint can grow: reads and result
    /// pushes).
    fn note_buffers(&self, conn: &Conn<S>) {
        let footprint = (conn.rbuf.high_water() + conn.wbuf.high_water()) as u64;
        self.shared
            .buf_high_water
            .fetch_max(footprint, Ordering::Relaxed);
    }

    fn accept_ready(&mut self) {
        loop {
            let cap = self.shared.cfg.max_sessions;
            if cap != 0 && self.conns.len() - self.free.len() >= cap {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    if let Some(bytes) = self.shared.cfg.sndbuf {
                        let _ = sys::set_send_buffer(sys::raw_fd(&stream), bytes);
                    }
                    let conn = Conn {
                        stream,
                        rbuf: FrameBuf::new(),
                        wbuf: WriteBuf::with_capacity(self.shared.cfg.write_buf),
                        qid: None,
                        pending: None,
                        last_pos: None,
                        last_result: None,
                        last_epoch: Epoch::default(),
                        closing: false,
                        reg: (true, false),
                    };
                    let slot = match self.free.pop() {
                        Some(slot) => {
                            self.conns[slot] = Some(conn);
                            slot
                        }
                        None => {
                            self.conns.push(Some(conn));
                            self.gens.push(0);
                            self.conns.len() - 1
                        }
                    };
                    let fd = sys::raw_fd(&self.conns[slot].as_ref().expect("just placed").stream);
                    let tok = conn_token(self.gens[slot], slot);
                    if self.readiness.register(fd, tok, true, false).is_err() {
                        // Can't watch it, can't serve it. Close without
                        // the usual deregister bookkeeping (it never
                        // entered the readiness set).
                        let conn = self.conns[slot].take().expect("just placed");
                        let _ = conn.stream.shutdown(Shutdown::Both);
                        self.gens[slot] = self.gens[slot].wrapping_add(1);
                        self.free.push(slot);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e)
                    if e.kind() == io::ErrorKind::Interrupted
                        || e.kind() == io::ErrorKind::ConnectionAborted =>
                {
                    continue;
                }
                Err(_) => {
                    // Resource exhaustion (EMFILE/ENFILE/ENOBUFS…): the
                    // listener stays level-triggered readable, so
                    // returning here without disarming it would spin
                    // the loop at 100% CPU. Pause accepting; live
                    // sessions keep being served meanwhile.
                    self.accept_pause_until = Some(Instant::now() + ACCEPT_ERROR_PAUSE);
                    return;
                }
            }
        }
    }

    /// Drains the socket (bounded per wakeup) and processes every
    /// complete frame.
    fn read_ready(&mut self, slot: usize) {
        for _ in 0..READS_PER_WAKEUP {
            let Some(conn) = self.conns[slot].as_mut() else {
                return;
            };
            if conn.closing {
                return;
            }
            match conn.stream.read(&mut self.scratch) {
                Ok(0) => {
                    // EOF: equivalent to a graceful deregister when at
                    // a frame boundary; either way the session ends.
                    self.finish(slot);
                    return;
                }
                Ok(n) => {
                    self.shared.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                    let conn = self.conns[slot].as_mut().expect("checked above");
                    conn.rbuf.extend(&self.scratch[..n]);
                    self.note_buffers(self.conns[slot].as_ref().expect("checked above"));
                    if !self.drain_messages(slot) {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_conn(slot);
                    return;
                }
            }
        }
    }

    /// Decodes and handles every complete frame buffered on `slot`.
    /// Returns `false` once the connection is closing or gone.
    fn drain_messages(&mut self, slot: usize) -> bool {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else {
                return false;
            };
            if conn.closing {
                return false;
            }
            match conn.rbuf.next_message() {
                Ok(Some((msg, _n))) => {
                    if !self.handle_message(slot, msg) {
                        return false;
                    }
                }
                Ok(None) => return true,
                Err(e) => {
                    // Framing is lost — no recovery beyond this frame.
                    self.fail(slot, ErrorCode::Malformed, &e.to_string());
                    return false;
                }
            }
        }
    }

    /// Handles one decoded client frame. Returns `false` once the
    /// connection is closing or gone.
    fn handle_message(&mut self, slot: usize, msg: Message) -> bool {
        let registered = self.conns[slot].as_ref().is_some_and(|c| c.qid.is_some());
        match (registered, msg) {
            (false, Message::Register { space, k, rho, pos }) => {
                if space != S::KIND {
                    self.fail(
                        slot,
                        ErrorCode::SpaceMismatch,
                        &format!("this server serves {:?}", S::KIND),
                    );
                    return false;
                }
                let (_, snapshot) = self.shared.world.snapshot();
                let pos = match S::pos_from_wire(&snapshot, pos) {
                    Ok(p) => p,
                    Err(e) => {
                        self.fail(slot, ErrorCode::BadPosition, &e.to_string());
                        return false;
                    }
                };
                let query =
                    match SpaceQuery::<S>::new(&self.shared.world, InsConfig::new(k as usize, rho))
                    {
                        Ok(q) => q,
                        Err(e) => {
                            self.fail(slot, ErrorCode::BadConfig, &e.to_string());
                            return false;
                        }
                    };
                let (qid, bound) = {
                    let mut engine = self.shared.engine();
                    let qid = engine.register(query);
                    let bound = engine
                        .query(qid)
                        .map(insq_server::FleetQuery::bound_epoch)
                        .unwrap_or_default();
                    (qid, bound)
                };
                let conn = self.conns[slot].as_mut().expect("checked above");
                conn.qid = Some(qid);
                conn.pending = Some(pos);
                conn.last_pos = Some(pos);
                conn.last_epoch = bound;
                self.by_qid.insert(qid.0, slot);
                self.registered_ever += 1;
                self.fresh += 1;
                self.shared.live.fetch_add(1, Ordering::Relaxed);
                true
            }
            (false, _) => {
                self.fail(slot, ErrorCode::NotRegistered, "first frame must register");
                false
            }
            (true, Message::PositionUpdate { pos }) => {
                let (_, snapshot) = self.shared.world.snapshot();
                match S::pos_from_wire(&snapshot, pos) {
                    Ok(p) => {
                        let conn = self.conns[slot].as_mut().expect("checked above");
                        if conn.pending.is_none() {
                            self.fresh += 1;
                        }
                        conn.pending = Some(p);
                        true
                    }
                    Err(e) => {
                        // An unusable position would hold the session
                        // at the barrier forever — close it.
                        self.fail(slot, ErrorCode::BadPosition, &e.to_string());
                        false
                    }
                }
            }
            (true, Message::Deregister) => {
                self.finish(slot);
                false
            }
            (true, Message::Register { .. }) => {
                self.fail(
                    slot,
                    ErrorCode::AlreadyRegistered,
                    "session already registered",
                );
                false
            }
            (true, _) => {
                self.fail(slot, ErrorCode::Malformed, "server-bound frame expected");
                false
            }
        }
    }

    /// Flushes what the socket will take; drops the connection on a
    /// write error or once a closing session has fully drained.
    fn write_ready(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        match conn.wbuf.write_to(&mut conn.stream) {
            Ok(n) => {
                self.shared.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                let conn = self.conns[slot].as_mut().expect("checked above");
                if conn.closing && conn.wbuf.is_empty() {
                    self.drop_conn(slot);
                }
            }
            Err(_) => self.drop_conn(slot),
        }
    }

    /// Ends a session with a final error frame (best effort: queued
    /// behind whatever is pending, flushed, then closed).
    fn fail(&mut self, slot: usize, code: ErrorCode, detail: &str) {
        let frame = Message::Error {
            code,
            detail: detail.to_string(),
        }
        .encode_frame();
        self.deregister_slot(slot);
        if let Some(conn) = self.conns[slot].as_mut() {
            let _ = conn.wbuf.push(&frame);
            conn.closing = true;
        }
        self.write_ready(slot);
        self.sync_interest(slot);
    }

    /// Ends a session gracefully (deregister/EOF): no error frame,
    /// pending results still flush.
    fn finish(&mut self, slot: usize) {
        self.deregister_slot(slot);
        if let Some(conn) = self.conns[slot].as_mut() {
            conn.closing = true;
            if conn.wbuf.is_empty() {
                self.drop_conn(slot);
                return;
            }
        }
        self.write_ready(slot);
        self.sync_interest(slot);
    }

    /// Removes the session's engine query (if registered), leaving the
    /// connection itself to drain.
    fn deregister_slot(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].as_mut() else {
            return;
        };
        if let Some(qid) = conn.qid.take() {
            if conn.pending.take().is_some() {
                self.fresh -= 1;
            }
            self.by_qid.remove(&qid.0);
            self.shared.engine().deregister(qid);
            self.shared.live.fetch_sub(1, Ordering::Relaxed);
        }
    }

    /// Hard-closes a connection and frees its slot.
    fn drop_conn(&mut self, slot: usize) {
        self.deregister_slot(slot);
        if let Some(conn) = self.conns[slot].take() {
            self.note_buffers(&conn);
            // Detach from the readiness set before the descriptor
            // closes (a closed fd left registered would poll NVAL
            // forever on the portable backend).
            let _ = self.readiness.deregister(sys::raw_fd(&conn.stream));
            self.gens[slot] = self.gens[slot].wrapping_add(1);
            let _ = conn.stream.shutdown(Shutdown::Both);
            self.free.push(slot);
        }
    }

    /// Ticks the fleet if the configured policy says the moment has
    /// come.
    fn maybe_tick(&mut self) {
        let live = self.by_qid.len();
        if live == 0 || self.registered_ever < self.shared.cfg.min_clients as u64 {
            return;
        }
        // `fresh` is maintained incrementally on position arrival and
        // session teardown — no O(live) recount per wakeup.
        let fresh = self.fresh;
        match self.shared.cfg.policy {
            TickPolicy::Barrier => {
                if fresh < live {
                    return;
                }
            }
            TickPolicy::Deadline { .. } => {
                if fresh == 0 {
                    return;
                }
                if fresh < live && self.last_tick.elapsed() < self.shared.cfg.tick_interval {
                    return;
                }
            }
        }
        self.tick();
    }

    /// One fleet tick: batch positions, advance the engine under the
    /// policy, push each session its (possibly re-served) result.
    fn tick(&mut self) {
        self.last_tick = Instant::now();
        let policy = self.shared.cfg.policy;

        // Batch: consume every pending position. `Q::Pos` is `Copy`, so
        // the feed map costs one word-sized copy per session.
        let mut feed: HashMap<u64, TickPos<S::Pos>> = HashMap::with_capacity(self.by_qid.len());
        for (&qid, &slot) in &self.by_qid {
            let conn = self.conns[slot].as_mut().expect("by_qid slots are live");
            let tp = match conn.pending.take() {
                Some(p) => {
                    conn.last_pos = Some(p);
                    TickPos::Fresh(p)
                }
                None => match conn.last_pos {
                    Some(p) => TickPos::Held(p),
                    None => TickPos::Missing,
                },
            };
            feed.insert(qid, tp);
        }
        // Every pending position was just consumed.
        self.fresh = 0;

        // Tick + pair each disposition with its query's kNN in one O(n)
        // pass: `for_each_query` visits in exactly the (deterministic)
        // shard order `tick` reported in, and nothing mutates the
        // engine in between (the reactor holds the lock throughout).
        let mut dispositions: Vec<(QueryId, TickDisposition)> = Vec::new();
        let mut results: Vec<(QueryId, Option<Message>)> = Vec::with_capacity(self.by_qid.len());
        let epoch = {
            let mut engine = self.shared.engine();
            let summary = engine.tick(policy, |id| feed[&id.0], &mut dispositions);
            let mut at = 0usize;
            engine.for_each_query(|qid, q| {
                use insq_core::MovingKnn;
                let (did, disposition) = dispositions[at];
                at += 1;
                debug_assert_eq!(did, qid, "disposition order matches query order");
                let msg = disposition.outcome().map(|outcome| {
                    let ids: Vec<u32> = q.current_knn().into_iter().map(S::id_to_wire).collect();
                    let flags = match self.shared.cfg.certify_within {
                        Some(margin) => {
                            let p = q.processor();
                            let knn = p.current_knn_with_dists();
                            let full = knn.len() >= p.config().k;
                            let kth = knn.last().map_or(f64::INFINITY, |&(_, d)| d);
                            if full && kth <= margin {
                                0
                            } else {
                                crate::wire::FLAG_UNCERTIFIED
                            }
                        }
                        None => 0,
                    };
                    Message::KnnResult {
                        epoch: summary.epoch.0,
                        ids,
                        outcome: outcome.into(),
                        flags,
                    }
                });
                results.push((qid, msg));
            });
            summary.epoch
        };

        // Push: fresh results (epoch notify first where due) or the
        // cached last frame for re-served sessions. A session whose
        // write buffer can't take its result is dropped — bounded
        // memory beats a complete stream for a consumer this far gone.
        for (qid, msg) in results {
            let Some(&slot) = self.by_qid.get(&qid.0) else {
                continue;
            };
            let conn = self.conns[slot].as_mut().expect("by_qid slots are live");
            match msg {
                Some(msg) => {
                    if conn.last_epoch != epoch {
                        conn.last_epoch = epoch;
                        let notify = Message::EpochNotify { epoch: epoch.0 }.encode_frame();
                        if !conn.wbuf.push(&notify) {
                            self.drop_conn(slot);
                            continue;
                        }
                    }
                    let frame = msg.encode_frame();
                    let conn = self.conns[slot].as_mut().expect("by_qid slots are live");
                    if !conn.wbuf.push(&frame) {
                        self.drop_conn(slot);
                        continue;
                    }
                    conn.last_result = Some(frame);
                }
                None => {
                    // Re-serve: a session registers with a position, so
                    // its first tick should always be Fresh and a
                    // cached result should exist by the time a deadline
                    // tick leaves it stale. Should that invariant ever
                    // break (a hostile client finding a path around
                    // it), drop the one session — never panic the
                    // reactor every other session depends on.
                    let Some(frame) = conn.last_result.clone() else {
                        self.drop_conn(slot);
                        continue;
                    };
                    if !conn.wbuf.push(&frame) {
                        self.drop_conn(slot);
                        continue;
                    }
                }
            }
            if let Some(conn) = self.conns[slot].as_ref() {
                self.note_buffers(conn);
            }
            // Optimistic flush: most sessions take their frame in one
            // write, so write interest stays rare (armed by the
            // interest sync below only when the flush left a residue).
            self.write_ready(slot);
            self.sync_interest(slot);
        }
        self.shared.ticks.fetch_add(1, Ordering::Relaxed);
    }

    fn close_all(&mut self) {
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.drop_conn(slot);
            }
        }
    }
}

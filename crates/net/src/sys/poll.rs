//! The portable `poll(2)` readiness backend.
//!
//! Two layers live here: the raw [`poll`] call (also used directly by
//! the blocking client helpers in [`super`]), and [`PollBackend`] — a
//! persistent interest registry over it that presents the same
//! register/modify/deregister/wait surface as the epoll backend. The
//! kernel still scans the whole interest set per wakeup (that is this
//! backend's O(live) wall), but userspace no longer rebuilds it.

use std::collections::HashMap;
use std::io;
use std::time::Duration;

use super::{Event, RawFd, WaitDeadline};

/// One descriptor's poll request/response pair, matching the C
/// `struct pollfd` layout.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

impl PollFd {
    /// Interest in `fd` becoming readable and/or writable.
    pub fn new(fd: RawFd, read: bool, write: bool) -> PollFd {
        let mut events = 0;
        if read {
            events |= POLLIN;
        }
        if write {
            events |= POLLOUT;
        }
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// Readable — or hung up / in error, which a read will surface.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Writable — or hung up / in error, which a write will surface.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR) != 0
    }

    /// Any readiness at all (including error states).
    pub fn ready(&self) -> bool {
        self.revents != 0
    }

    fn error(&self) -> bool {
        self.revents & (POLLERR | POLLHUP | POLLNVAL) != 0
    }
}

#[cfg(unix)]
mod imp {
    use super::*;

    #[cfg(target_os = "linux")]
    type NfdsT = std::ffi::c_ulong;
    #[cfg(all(unix, not(target_os = "linux")))]
    type NfdsT = std::ffi::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: std::ffi::c_int) -> std::ffi::c_int;
    }

    pub fn poll_impl(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let deadline = WaitDeadline::new(timeout);
        loop {
            // SAFETY: `fds` is a live, exclusively borrowed slice of
            // `#[repr(C)]` pollfd structs; the kernel writes only the
            // `revents` fields within its bounds.
            let rc = unsafe {
                poll(
                    fds.as_mut_ptr(),
                    fds.len() as NfdsT,
                    deadline.remaining_millis(),
                )
            };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry with whatever remains of the original
            // deadline, never the full timeout again.
            if deadline.expired() {
                return Ok(0);
            }
        }
    }
}

#[cfg(not(unix))]
mod imp {
    use super::*;

    /// Degraded but correct fallback: sleep briefly, then claim every
    /// descriptor is ready. Non-blocking reads/writes that are not in
    /// fact ready return `WouldBlock` and get retried, so the reactor
    /// becomes a paced busy-poll.
    pub fn poll_impl(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let pause = timeout
            .unwrap_or(Duration::from_millis(1))
            .min(Duration::from_millis(1));
        std::thread::sleep(pause);
        for f in fds.iter_mut() {
            f.revents = f.events;
        }
        Ok(fds.len())
    }
}

/// Waits until at least one descriptor in `fds` is ready or the
/// timeout passes (`None` blocks indefinitely). Returns the number of
/// ready descriptors. Sub-millisecond timeouts are rounded **up** (a
/// short deadline must block, not degenerate into a busy poll), and an
/// `EINTR` restart retries with the remaining time to the original
/// deadline.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    imp::poll_impl(fds, timeout)
}

/// Persistent-interest registry over [`poll`]: the interest set is
/// mutated on register/modify/deregister transitions and handed to the
/// kernel as-is on every wait, instead of being rebuilt per wakeup.
#[derive(Debug, Default)]
pub struct PollBackend {
    fds: Vec<PollFd>,
    tokens: Vec<u64>,
    index: HashMap<RawFd, usize>,
}

impl PollBackend {
    /// An empty registry.
    pub fn new() -> PollBackend {
        PollBackend::default()
    }

    /// Adds `fd` to the interest set.
    pub fn register(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        if self.index.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.index.insert(fd, self.fds.len());
        self.fds.push(PollFd::new(fd, read, write));
        self.tokens.push(token);
        Ok(())
    }

    /// Replaces the interest (and token) of a registered descriptor.
    pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        let &i = self
            .index
            .get(&fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds[i] = PollFd::new(fd, read, write);
        self.tokens[i] = token;
        Ok(())
    }

    /// Removes a descriptor from the interest set. Call before closing
    /// the descriptor (a closed fd left in the set polls `POLLNVAL`
    /// forever).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        let i = self
            .index
            .remove(&fd)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "fd not registered"))?;
        self.fds.swap_remove(i);
        self.tokens.swap_remove(i);
        if i < self.fds.len() {
            // A descriptor moved into the vacated slot; re-point it.
            self.index.insert(self.fds[i].fd, i);
        }
        Ok(())
    }

    /// Waits for ready descriptors (see [`super::Readiness::wait`] for
    /// the shared timeout contract).
    pub fn wait(
        &mut self,
        timeout: Option<Duration>,
        events: &mut Vec<Event>,
    ) -> io::Result<usize> {
        events.clear();
        for f in self.fds.iter_mut() {
            f.revents = 0;
        }
        let n = poll(&mut self.fds, timeout)?;
        if n > 0 {
            for (f, &token) in self.fds.iter().zip(&self.tokens) {
                if f.ready() {
                    events.push(Event::new(token, f.readable(), f.writable(), f.error()));
                }
            }
        }
        Ok(events.len())
    }

    /// Registered descriptors.
    pub fn len(&self) -> usize {
        self.fds.len()
    }

    /// True when no descriptor is registered.
    pub fn is_empty(&self) -> bool {
        self.fds.is_empty()
    }
}

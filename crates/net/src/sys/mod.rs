//! Minimal OS readiness primitives behind one backend-neutral facade.
//!
//! The reactors in [`crate::server`] (and the cluster router) need
//! exactly one thing from the OS that `std` does not expose: "which of
//! these sockets are readable or writable right now?". This module
//! provides it with the same offline-deps discipline as
//! `crates/compat/` — hand-written FFI bindings, no external crates —
//! behind a [`Readiness`] abstraction with **persistent interest
//! registration**:
//!
//! * [`epoll`] (Linux) — the scaling backend. Interest lives in the
//!   kernel; a wakeup costs O(ready), not O(live), so 100k mostly-idle
//!   sessions cost nothing per wakeup. Registered **level-triggered**
//!   (no `EPOLLET`), deliberately: the reactors bound work per wakeup
//!   (`READS_PER_WAKEUP`) and rely on unconsumed readiness being
//!   re-reported by the next wait.
//! * [`poll`] (portable fallback) — the original `poll(2)` wrapper,
//!   wrapped in a persistent interest registry so both backends expose
//!   the identical register/modify/deregister/wait surface. The kernel
//!   still scans O(live) descriptors per wakeup — that is the wall this
//!   backend hits around 20k sessions — but the interest set is no
//!   longer rebuilt per wakeup either.
//!
//! Which backend serves is runtime-selectable ([`ReadinessKind`],
//! surfaced on `NetServerConfig`/`RouterConfig` and overridable via the
//! `INSQ_READINESS` environment variable) so both stay tested by the
//! same suites.
//!
//! Both backends share the same timeout contract, pinned by unit tests:
//! sub-millisecond timeouts are rounded **up** to the next millisecond
//! (never truncated to a non-blocking zero — callers pacing on short
//! deadlines must block, not busy-spin), and an `EINTR` restart retries
//! with the **remaining** time to a fixed deadline, so repeated signals
//! cannot extend the wait unboundedly.
//!
//! On non-Unix targets there is a degraded but correct fallback: the
//! raw [`poll`] call sleeps a millisecond and reports every descriptor
//! ready, so the reactor becomes a paced busy-poll (non-blocking
//! reads/writes that aren't actually ready return `WouldBlock` and are
//! retried).

#![allow(unsafe_code)]

use std::io;
use std::time::{Duration, Instant};

#[cfg(target_os = "linux")]
pub mod epoll;
mod poll;

pub use poll::{poll, PollBackend, PollFd};

/// The raw socket descriptor type fed to the readiness backends.
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;

/// The raw socket descriptor type fed to the readiness backends
/// (placeholder off Unix; see the module docs for the fallback
/// semantics).
#[cfg(not(unix))]
pub type RawFd = i32;

/// Extracts the raw descriptor of a socket for readiness registration.
#[cfg(unix)]
pub fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> RawFd {
    t.as_raw_fd()
}

/// Extracts the raw descriptor of a socket for readiness registration
/// (dummy off Unix; the fallback [`poll`] reports every descriptor
/// ready anyway).
#[cfg(not(unix))]
pub fn raw_fd<T>(_t: &T) -> RawFd {
    0
}

/// Which readiness backend a reactor runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReadinessKind {
    /// Pick the best available: `epoll` on Linux, `poll` elsewhere.
    #[default]
    Auto,
    /// Force the portable `poll(2)` backend (O(live) kernel scan per
    /// wakeup; the conformance baseline).
    Poll,
    /// Force the Linux `epoll` backend (O(ready) wakeups); binding
    /// fails on targets without it.
    Epoll,
}

impl ReadinessKind {
    /// The kind named by the `INSQ_READINESS` environment variable
    /// (`poll` / `epoll` / `auto`, case-insensitive), or `Auto` when
    /// unset or unrecognised. Server config defaults route through
    /// this, so a CI matrix can force the fallback backend across an
    /// entire test suite without touching any call site.
    pub fn from_env() -> ReadinessKind {
        match std::env::var("INSQ_READINESS") {
            Ok(v) if v.eq_ignore_ascii_case("poll") => ReadinessKind::Poll,
            Ok(v) if v.eq_ignore_ascii_case("epoll") => ReadinessKind::Epoll,
            _ => ReadinessKind::Auto,
        }
    }
}

/// One ready descriptor, as reported by [`Readiness::wait`]. Carries
/// the caller's registration token, not the descriptor — reactors map
/// tokens to their own connection slots (with a generation tag, so a
/// slot recycled mid-batch never aliases a stale event).
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The token supplied at registration.
    pub token: u64,
    readable: bool,
    writable: bool,
    error: bool,
}

impl Event {
    pub(crate) fn new(token: u64, readable: bool, writable: bool, error: bool) -> Event {
        Event {
            token,
            readable,
            writable,
            error,
        }
    }

    /// Readable — or at EOF/error, which a read will surface.
    pub fn readable(&self) -> bool {
        self.readable || self.error
    }

    /// Writable — or in error, which a write will surface.
    pub fn writable(&self) -> bool {
        self.writable || self.error
    }

    /// The descriptor is in an error state.
    pub fn error(&self) -> bool {
        self.error
    }
}

/// A readiness backend with persistent interest registration: register
/// a descriptor once, adjust its interest on state transitions, wait
/// for whatever is ready. Backed by `epoll` on Linux or the portable
/// `poll(2)` registry — enum dispatch, no boxing on the wakeup path.
#[derive(Debug)]
pub enum Readiness {
    /// The portable `poll(2)` registry backend.
    Poll(PollBackend),
    /// The Linux `epoll` backend.
    #[cfg(target_os = "linux")]
    Epoll(epoll::EpollBackend),
}

impl Readiness {
    /// Opens a backend of the requested kind. `Auto` resolves to
    /// `epoll` on Linux and `poll` elsewhere; an explicit `Epoll` on a
    /// target without it is an `Unsupported` error.
    pub fn new(kind: ReadinessKind) -> io::Result<Readiness> {
        match kind {
            ReadinessKind::Poll => Ok(Readiness::Poll(PollBackend::new())),
            #[cfg(target_os = "linux")]
            ReadinessKind::Auto | ReadinessKind::Epoll => {
                Ok(Readiness::Epoll(epoll::EpollBackend::new()?))
            }
            #[cfg(not(target_os = "linux"))]
            ReadinessKind::Auto => Ok(Readiness::Poll(PollBackend::new())),
            #[cfg(not(target_os = "linux"))]
            ReadinessKind::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend requires Linux",
            )),
        }
    }

    /// The resolved backend kind (never `Auto`).
    pub fn kind(&self) -> ReadinessKind {
        match self {
            Readiness::Poll(_) => ReadinessKind::Poll,
            #[cfg(target_os = "linux")]
            Readiness::Epoll(_) => ReadinessKind::Epoll,
        }
    }

    /// Registers `fd` with interest in readability and/or writability.
    /// `token` comes back verbatim on every [`Event`] for this
    /// descriptor. Registering an already-registered descriptor is an
    /// error.
    pub fn register(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        match self {
            Readiness::Poll(b) => b.register(fd, token, read, write),
            #[cfg(target_os = "linux")]
            Readiness::Epoll(b) => b.register(fd, token, read, write),
        }
    }

    /// Replaces the interest (and token) of a registered descriptor.
    pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        match self {
            Readiness::Poll(b) => b.modify(fd, token, read, write),
            #[cfg(target_os = "linux")]
            Readiness::Epoll(b) => b.modify(fd, token, read, write),
        }
    }

    /// Removes a descriptor from the interest set. Must be called
    /// **before** the descriptor is closed (the poll registry keys by
    /// fd, and a closed fd in its set would poll as `POLLNVAL`
    /// forever).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            Readiness::Poll(b) => b.deregister(fd),
            #[cfg(target_os = "linux")]
            Readiness::Epoll(b) => b.deregister(fd),
        }
    }

    /// Waits until at least one registered descriptor is ready or the
    /// timeout passes (`None` waits indefinitely), filling `events`
    /// with what is ready. Returns the number of events. Sub-ms
    /// timeouts block (rounded up); `EINTR` restarts with the
    /// remaining time.
    pub fn wait(
        &mut self,
        timeout: Option<Duration>,
        events: &mut Vec<Event>,
    ) -> io::Result<usize> {
        match self {
            Readiness::Poll(b) => b.wait(timeout, events),
            #[cfg(target_os = "linux")]
            Readiness::Epoll(b) => b.wait(timeout, events),
        }
    }

    /// Registered descriptors (live interest set size).
    pub fn len(&self) -> usize {
        match self {
            Readiness::Poll(b) => b.len(),
            #[cfg(target_os = "linux")]
            Readiness::Epoll(b) => b.len(),
        }
    }

    /// Whether no descriptor is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A fixed wait deadline surviving `EINTR` restarts: each retry blocks
/// only for what remains, so repeated signals cannot extend the total
/// wait beyond the original timeout.
#[derive(Debug, Clone, Copy)]
pub(crate) struct WaitDeadline {
    until: Option<Instant>,
}

impl WaitDeadline {
    pub(crate) fn new(timeout: Option<Duration>) -> WaitDeadline {
        WaitDeadline {
            until: timeout.map(|d| Instant::now() + d),
        }
    }

    /// The remaining wait in syscall form: `-1` for "forever", else
    /// whole milliseconds **rounded up** (a 100µs remainder must block
    /// ~1ms, not busy-spin on 0). `0` means the deadline has passed.
    pub(crate) fn remaining_millis(&self) -> i32 {
        match self.until {
            None => -1,
            Some(t) => ceil_millis(t.saturating_duration_since(Instant::now())),
        }
    }

    /// Whether a finite deadline has fully elapsed.
    pub(crate) fn expired(&self) -> bool {
        self.until
            .is_some_and(|t| t.saturating_duration_since(Instant::now()).is_zero())
    }
}

/// `Duration` → whole milliseconds, rounded up and clamped to `i32`.
pub(crate) fn ceil_millis(d: Duration) -> i32 {
    d.as_nanos().div_ceil(1_000_000).min(i32::MAX as u128) as i32
}

/// Blocks until `fd` is readable (used by the blocking client wrappers
/// around the non-blocking [`crate::ClientCore`]).
pub fn wait_readable(fd: RawFd) -> io::Result<()> {
    let mut fds = [PollFd::new(fd, true, false)];
    loop {
        poll(&mut fds, None)?;
        if fds[0].ready() {
            return Ok(());
        }
    }
}

/// Blocks until `fd` is writable.
pub fn wait_writable(fd: RawFd) -> io::Result<()> {
    let mut fds = [PollFd::new(fd, false, true)];
    loop {
        poll(&mut fds, None)?;
        if fds[0].ready() {
            return Ok(());
        }
    }
}

#[cfg(unix)]
mod imp {
    use super::*;

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }
    #[cfg(target_os = "linux")]
    const RLIMIT_NOFILE: std::ffi::c_int = 7;
    #[cfg(all(unix, not(target_os = "linux")))]
    const RLIMIT_NOFILE: std::ffi::c_int = 8;
    extern "C" {
        fn getrlimit(resource: std::ffi::c_int, rlim: *mut RLimit) -> std::ffi::c_int;
        fn setrlimit(resource: std::ffi::c_int, rlim: *const RLimit) -> std::ffi::c_int;
    }

    pub fn max_open_files_impl() -> io::Result<u64> {
        let mut lim = RLimit { cur: 0, max: 0 };
        // SAFETY: plain C struct out-parameter of the documented shape
        // for these two syscalls on 64-bit Unix.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.cur < lim.max {
            let raised = RLimit {
                cur: lim.max,
                max: lim.max,
            };
            // SAFETY: as above; raising the soft limit to the hard
            // limit is always permitted.
            if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
                lim.cur = lim.max;
            }
        }
        Ok(lim.cur)
    }

    pub fn set_open_file_limit_impl(n: u64) -> io::Result<()> {
        let mut lim = RLimit { cur: 0, max: 0 };
        // SAFETY: as in `max_open_files_impl`.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        let lowered = RLimit {
            cur: n.min(lim.max),
            max: lim.max,
        };
        // SAFETY: lowering (or restoring up to the hard limit) the
        // soft limit is always permitted.
        if unsafe { setrlimit(RLIMIT_NOFILE, &lowered) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn process_cpu_time_impl() -> io::Result<Duration> {
        #[repr(C)]
        struct Timespec {
            sec: i64,
            nsec: i64,
        }
        const CLOCK_PROCESS_CPUTIME_ID: std::ffi::c_int = 2;
        extern "C" {
            fn clock_gettime(clock: std::ffi::c_int, tp: *mut Timespec) -> std::ffi::c_int;
        }
        let mut ts = Timespec { sec: 0, nsec: 0 };
        // SAFETY: documented out-parameter shape for clock_gettime on
        // 64-bit Unix.
        if unsafe { clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &mut ts) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(Duration::new(ts.sec as u64, ts.nsec as u32))
    }

    #[cfg(target_os = "linux")]
    const SOL_SOCKET: std::ffi::c_int = 1;
    #[cfg(target_os = "linux")]
    const SO_SNDBUF: std::ffi::c_int = 7;
    #[cfg(target_os = "linux")]
    const SO_RCVBUF: std::ffi::c_int = 8;
    #[cfg(all(unix, not(target_os = "linux")))]
    const SOL_SOCKET: std::ffi::c_int = 0xffff;
    #[cfg(all(unix, not(target_os = "linux")))]
    const SO_SNDBUF: std::ffi::c_int = 0x1001;
    #[cfg(all(unix, not(target_os = "linux")))]
    const SO_RCVBUF: std::ffi::c_int = 0x1002;

    fn set_buf_opt(fd: RawFd, name: std::ffi::c_int, bytes: usize) -> io::Result<()> {
        extern "C" {
            fn setsockopt(
                fd: std::ffi::c_int,
                level: std::ffi::c_int,
                name: std::ffi::c_int,
                value: *const std::ffi::c_void,
                len: u32,
            ) -> std::ffi::c_int;
        }
        let v: std::ffi::c_int = bytes.min(i32::MAX as usize) as std::ffi::c_int;
        // SAFETY: passes a live c_int by pointer with its exact size;
        // the kernel only reads `len` bytes from it.
        let rc = unsafe {
            setsockopt(
                fd,
                SOL_SOCKET,
                name,
                (&v as *const std::ffi::c_int).cast(),
                std::mem::size_of::<std::ffi::c_int>() as u32,
            )
        };
        if rc != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    pub fn set_recv_buffer_impl(fd: RawFd, bytes: usize) -> io::Result<()> {
        set_buf_opt(fd, SO_RCVBUF, bytes)
    }

    pub fn set_send_buffer_impl(fd: RawFd, bytes: usize) -> io::Result<()> {
        set_buf_opt(fd, SO_SNDBUF, bytes)
    }
}

#[cfg(not(unix))]
mod imp {
    use super::*;

    pub fn max_open_files_impl() -> io::Result<u64> {
        Ok(u64::MAX)
    }

    pub fn set_open_file_limit_impl(_n: u64) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "no rlimits"))
    }

    pub fn process_cpu_time_impl() -> io::Result<Duration> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "no cpu clock"))
    }

    pub fn set_recv_buffer_impl(_fd: RawFd, _bytes: usize) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "no setsockopt"))
    }

    pub fn set_send_buffer_impl(_fd: RawFd, _bytes: usize) -> io::Result<()> {
        Err(io::Error::new(io::ErrorKind::Unsupported, "no setsockopt"))
    }
}

/// Raises the process's open-file soft limit to its hard limit (best
/// effort) and returns the resulting soft limit. The 20k-session soak
/// needs one descriptor per session server-side (two through the
/// router).
pub fn max_open_files() -> io::Result<u64> {
    imp::max_open_files_impl()
}

/// Sets the open-file **soft** limit (clamped to the hard limit) —
/// test scaffolding for descriptor-exhaustion regressions, which need
/// a limit low enough to hit without hoarding tens of thousands of
/// descriptors.
pub fn set_open_file_limit(n: u64) -> io::Result<()> {
    imp::set_open_file_limit_impl(n)
}

/// CPU time consumed by this process (all threads). Reactor regression
/// tests use it to assert an error-path wait is actually a wait, not a
/// busy spin.
pub fn process_cpu_time() -> io::Result<Duration> {
    imp::process_cpu_time_impl()
}

/// Shrinks a socket's kernel receive buffer — test scaffolding to
/// force partial writes (and therefore write-interest arm/disarm
/// transitions) on the peer without moving megabytes.
pub fn set_recv_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    imp::set_recv_buffer_impl(fd, bytes)
}

/// Bounds (and locks — the kernel stops autotuning it) a socket's
/// kernel send buffer. The reactor applies this to accepted sessions
/// when [`crate::NetServerConfig::sndbuf`] is set, so a slow reader's
/// backlog accumulates in the accountable per-session
/// [`crate::WriteBuf`] instead of invisibly ballooning kernel memory.
pub fn set_send_buffer(fd: RawFd, bytes: usize) -> io::Result<()> {
    imp::set_send_buffer_impl(fd, bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poll_reports_readable_after_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        // Nothing written yet: not readable within a short timeout
        // (the degraded non-Unix fallback reports ready; skip there).
        #[cfg(unix)]
        {
            let mut fds = [PollFd::new(raw_fd(&rx), true, false)];
            let n = poll(&mut fds, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0, "no data yet");
            assert!(!fds[0].readable());
        }

        tx.write_all(b"ping").unwrap();
        tx.flush().unwrap();
        let mut fds = [PollFd::new(raw_fd(&rx), true, false)];
        let n = poll(&mut fds, Some(Duration::from_millis(1000))).unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable());
        // A fresh socket with room in its send buffer is writable.
        let mut wfds = [PollFd::new(raw_fd(&tx), false, true)];
        poll(&mut wfds, Some(Duration::from_millis(1000))).unwrap();
        assert!(wfds[0].writable());
    }

    #[test]
    fn max_open_files_reports_a_sane_limit() {
        let n = max_open_files().unwrap();
        assert!(n >= 256, "limit {n} too small to serve anything");
    }

    fn backends() -> Vec<ReadinessKind> {
        #[cfg(target_os = "linux")]
        return vec![ReadinessKind::Poll, ReadinessKind::Epoll];
        #[cfg(not(target_os = "linux"))]
        return vec![ReadinessKind::Poll];
    }

    /// The sub-millisecond truncation bug: a 100µs timeout must block,
    /// not degenerate into a non-blocking poll that callers spin on.
    #[cfg(unix)]
    #[test]
    fn submillisecond_timeout_blocks_instead_of_truncating_to_zero() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let _tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();

        let t0 = Instant::now();
        let mut fds = [PollFd::new(raw_fd(&rx), true, false)];
        let n = poll(&mut fds, Some(Duration::from_micros(100))).unwrap();
        let waited = t0.elapsed();
        assert_eq!(n, 0, "nothing was sent");
        assert!(
            waited >= Duration::from_micros(100),
            "poll returned in {waited:?} — sub-ms timeout truncated to a busy poll"
        );

        // Same contract through the backend facade, on every backend
        // this target offers.
        for kind in backends() {
            let mut r = Readiness::new(kind).unwrap();
            r.register(raw_fd(&rx), 7, true, false).unwrap();
            let mut events = Vec::new();
            let t0 = Instant::now();
            let n = r
                .wait(Some(Duration::from_micros(100)), &mut events)
                .unwrap();
            let waited = t0.elapsed();
            assert_eq!(n, 0, "{kind:?}: nothing was sent");
            assert!(
                waited >= Duration::from_micros(100),
                "{kind:?}: wait returned in {waited:?}"
            );
        }
    }

    /// Register → event → modify (disarm/re-arm) → deregister, on every
    /// backend: the persistent-interest lifecycle the reactors rely on.
    #[cfg(unix)]
    #[test]
    fn backend_interest_lifecycle_is_conformant() {
        for kind in backends() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let addr = listener.local_addr().unwrap();
            let mut tx = TcpStream::connect(addr).unwrap();
            let (rx, _) = listener.accept().unwrap();
            rx.set_nonblocking(true).unwrap();

            let mut r = Readiness::new(kind).unwrap();
            r.register(raw_fd(&rx), 42, true, false).unwrap();
            assert_eq!(r.len(), 1);

            // Not readable yet.
            let mut events = Vec::new();
            let n = r.wait(Some(Duration::from_millis(5)), &mut events).unwrap();
            assert_eq!(n, 0, "{kind:?}: spurious readiness");

            tx.write_all(b"x").unwrap();
            let n = r
                .wait(Some(Duration::from_millis(1000)), &mut events)
                .unwrap();
            assert_eq!(n, 1, "{kind:?}: write not reported");
            assert_eq!(events[0].token, 42);
            assert!(events[0].readable());

            // Level-triggered: unconsumed readiness is re-reported.
            let n = r
                .wait(Some(Duration::from_millis(1000)), &mut events)
                .unwrap();
            assert_eq!(n, 1, "{kind:?}: level-triggered re-report missing");

            // Disarm read interest: the data still sits unread, but no
            // event may fire.
            r.modify(raw_fd(&rx), 42, false, false).unwrap();
            let n = r.wait(Some(Duration::from_millis(5)), &mut events).unwrap();
            assert_eq!(n, 0, "{kind:?}: disarmed descriptor still fired");

            // Re-arm with a new token: fires again, new token attached.
            r.modify(raw_fd(&rx), 43, true, false).unwrap();
            let n = r
                .wait(Some(Duration::from_millis(1000)), &mut events)
                .unwrap();
            assert_eq!(n, 1, "{kind:?}: re-armed descriptor silent");
            assert_eq!(events[0].token, 43);

            // Deregister: silent again, and the registry empties.
            r.deregister(raw_fd(&rx)).unwrap();
            assert!(r.is_empty());
            let n = r.wait(Some(Duration::from_millis(5)), &mut events).unwrap();
            assert_eq!(n, 0, "{kind:?}: deregistered descriptor fired");

            // Double-register is an error; modify after deregister too.
            r.register(raw_fd(&rx), 1, true, false).unwrap();
            assert!(r.register(raw_fd(&rx), 2, true, false).is_err());
            r.deregister(raw_fd(&rx)).unwrap();
            assert!(r.modify(raw_fd(&rx), 1, true, false).is_err());
        }
    }

    #[test]
    fn ceil_millis_rounds_up_and_zero_stays_zero() {
        assert_eq!(ceil_millis(Duration::ZERO), 0);
        assert_eq!(ceil_millis(Duration::from_nanos(1)), 1);
        assert_eq!(ceil_millis(Duration::from_micros(100)), 1);
        assert_eq!(ceil_millis(Duration::from_millis(1)), 1);
        assert_eq!(ceil_millis(Duration::from_micros(1001)), 2);
        assert_eq!(ceil_millis(Duration::from_secs(1 << 40)), i32::MAX);
    }

    #[test]
    fn wait_deadline_tracks_remaining_time_not_original() {
        let d = WaitDeadline::new(None);
        assert_eq!(d.remaining_millis(), -1);
        assert!(!d.expired());

        let d = WaitDeadline::new(Some(Duration::from_millis(50)));
        let first = d.remaining_millis();
        assert!((1..=50).contains(&first));
        std::thread::sleep(Duration::from_millis(20));
        let second = d.remaining_millis();
        assert!(
            second < first,
            "an EINTR retry must not restart the full timeout ({second} >= {first})"
        );
        std::thread::sleep(Duration::from_millis(40));
        assert!(d.expired());
        assert_eq!(d.remaining_millis(), 0);
    }

    #[cfg(unix)]
    #[test]
    fn process_cpu_time_is_monotonic() {
        let a = process_cpu_time().unwrap();
        // Burn a little CPU so the clock visibly advances.
        let mut x = 0u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_add(i).rotate_left(7);
        }
        std::hint::black_box(x);
        let b = process_cpu_time().unwrap();
        assert!(b >= a);
    }
}

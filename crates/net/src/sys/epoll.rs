//! The Linux `epoll` readiness backend.
//!
//! Interest registration lives in the kernel, so a wakeup costs
//! O(ready events), not O(registered descriptors) — the property that
//! carries the reactor past the `poll(2)` scan wall. Descriptors are
//! registered **level-triggered** (no `EPOLLET`): the reactors bound
//! work per wakeup (`READS_PER_WAKEUP`) and depend on unconsumed
//! readiness being re-reported by the next `epoll_wait`, exactly as
//! `poll(2)` behaves. This keeps the two backends semantically
//! interchangeable, which the conformance suites assert by comparing
//! result streams bit-for-bit.

use std::collections::HashMap;
use std::io;
use std::time::Duration;

use super::{Event, RawFd, WaitDeadline};

const EPOLL_CLOEXEC: std::ffi::c_int = 0x80000;
const EPOLL_CTL_ADD: std::ffi::c_int = 1;
const EPOLL_CTL_DEL: std::ffi::c_int = 2;
const EPOLL_CTL_MOD: std::ffi::c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;

/// The kernel's event record. x86-64 is the one ABI where this struct
/// is packed (a 32-bit mask directly followed by a 64-bit payload);
/// every other architecture uses natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: std::ffi::c_int) -> std::ffi::c_int;
    fn epoll_ctl(
        epfd: std::ffi::c_int,
        op: std::ffi::c_int,
        fd: std::ffi::c_int,
        event: *mut EpollEvent,
    ) -> std::ffi::c_int;
    fn epoll_wait(
        epfd: std::ffi::c_int,
        events: *mut EpollEvent,
        maxevents: std::ffi::c_int,
        timeout: std::ffi::c_int,
    ) -> std::ffi::c_int;
    fn close(fd: std::ffi::c_int) -> std::ffi::c_int;
}

fn interest_mask(read: bool, write: bool) -> u32 {
    let mut m = 0;
    if read {
        m |= EPOLLIN;
    }
    if write {
        m |= EPOLLOUT;
    }
    m
}

/// Persistent-interest backend over an `epoll` instance. Tracks the
/// registered set only to report [`len`](EpollBackend::len) and to
/// keep register/deregister misuse errors identical to the poll
/// backend; the kernel owns the real interest list.
#[derive(Debug)]
pub struct EpollBackend {
    epfd: RawFd,
    registered: HashMap<RawFd, ()>,
    buf: Vec<EpollEvent>,
}

impl EpollBackend {
    /// Opens a fresh `epoll` instance (close-on-exec).
    pub fn new() -> io::Result<EpollBackend> {
        // SAFETY: plain syscall, no pointers.
        let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
        if epfd < 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(EpollBackend {
            epfd,
            registered: HashMap::new(),
            buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
        })
    }

    fn ctl(&mut self, op: std::ffi::c_int, fd: RawFd, mask: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: mask,
            data: token,
        };
        // SAFETY: `ev` outlives the call; the kernel copies it.
        if unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) } != 0 {
            return Err(io::Error::last_os_error());
        }
        Ok(())
    }

    /// Adds `fd` to the kernel interest list (level-triggered).
    pub fn register(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        if self.registered.contains_key(&fd) {
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                "fd already registered",
            ));
        }
        self.ctl(EPOLL_CTL_ADD, fd, interest_mask(read, write), token)?;
        self.registered.insert(fd, ());
        Ok(())
    }

    /// Replaces the interest (and token) of a registered descriptor.
    pub fn modify(&mut self, fd: RawFd, token: u64, read: bool, write: bool) -> io::Result<()> {
        if !self.registered.contains_key(&fd) {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        self.ctl(EPOLL_CTL_MOD, fd, interest_mask(read, write), token)
    }

    /// Removes a descriptor from the kernel interest list. Call before
    /// closing the descriptor.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        if self.registered.remove(&fd).is_none() {
            return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
        }
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    /// Waits for ready descriptors (see [`super::Readiness::wait`] for
    /// the shared timeout contract).
    pub fn wait(
        &mut self,
        timeout: Option<Duration>,
        events: &mut Vec<Event>,
    ) -> io::Result<usize> {
        events.clear();
        if self.registered.is_empty() {
            // epoll_wait on an empty set would still block; honour the
            // timeout as a sleep so an idle reactor paces identically
            // to the poll backend.
            if let Some(d) = timeout {
                std::thread::sleep(d);
                return Ok(0);
            }
        }
        let deadline = WaitDeadline::new(timeout);
        let n = loop {
            // SAFETY: `buf` is a live Vec of `repr(C)` event structs;
            // the kernel writes at most `maxevents` entries into it.
            let rc = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as std::ffi::c_int,
                    deadline.remaining_millis(),
                )
            };
            if rc >= 0 {
                break rc as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry with the remaining time, never the full
            // original timeout.
            if deadline.expired() {
                break 0;
            }
        };
        for ev in &self.buf[..n] {
            let mask = ev.events;
            events.push(Event::new(
                ev.data,
                mask & EPOLLIN != 0,
                mask & EPOLLOUT != 0,
                mask & (EPOLLERR | EPOLLHUP) != 0,
            ));
        }
        if n == self.buf.len() {
            // The batch filled the buffer; more may be pending. Grow so
            // heavy wakeups drain in one syscall next time (with
            // level-triggered registration the overflow is re-reported
            // immediately, so nothing is lost either way).
            self.buf
                .resize(self.buf.len() * 2, EpollEvent { events: 0, data: 0 });
        }
        Ok(events.len())
    }

    /// Registered descriptors.
    pub fn len(&self) -> usize {
        self.registered.len()
    }

    /// True when no descriptor is registered.
    pub fn is_empty(&self) -> bool {
        self.registered.is_empty()
    }
}

impl Drop for EpollBackend {
    fn drop(&mut self) {
        // SAFETY: closing the epoll fd we own; registered descriptors
        // are detached automatically by the kernel.
        unsafe { close(self.epfd) };
    }
}

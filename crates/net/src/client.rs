//! The INSQ TCP client: a non-blocking core with blocking helpers on
//! top.
//!
//! [`ClientCore`] is the event-driven half: a non-blocking socket, an
//! incremental frame reassembler ([`crate::FrameBuf`]) and a bounded
//! write buffer ([`crate::WriteBuf`]). [`ClientCore::try_send_update`]
//! and [`ClientCore::poll_event`] never block, so thousands of client
//! sessions can be driven from one thread and one `poll(2)` loop — the
//! soak harness and the reactor fuzz tests do exactly that.
//!
//! [`NetClient`] is the original blocking convenience API
//! (`register` / `update` / `next_knn`), re-expressed as thin waits
//! around the core: block until the socket is writable, flush; block
//! until readable, poll. It keeps wire-byte accounting so callers (the
//! `e_net` experiment) can report *measured* bytes per tick next to the
//! paper's model-level communication counter.

use std::io::{self, Read};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

use insq_server::Epoch;

use crate::buffer::{FrameBuf, WriteBuf, READ_CHUNK};
use crate::space::WireSpace;
use crate::sys;
use crate::wire::{ErrorCode, Message, SpaceKind, WireOutcome};

/// Client-side protocol errors.
#[derive(Debug)]
pub enum NetError {
    /// Transport or framing failure (malformed frames surface as
    /// `InvalidData`).
    Io(io::Error),
    /// The server sent an [`Message::Error`] frame.
    Server {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The server closed the stream where a message was expected.
    Closed,
    /// The server sent a client→server message (protocol violation).
    Unexpected(Message),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o: {e}"),
            NetError::Server { code, detail } => write!(f, "server error {code:?}: {detail}"),
            NetError::Closed => write!(f, "connection closed by server"),
            NetError::Unexpected(m) => write!(f, "unexpected server frame {m:?}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

/// One tick's answer as seen by the client, with any epoch
/// notifications that preceded it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnnUpdate {
    /// The world epoch the result was computed against.
    pub epoch: u64,
    /// The kNN ids (wire ordinals), ascending by distance, ties by id.
    pub ids: Vec<u32>,
    /// What the INS protocol had to do this tick.
    pub outcome: WireOutcome,
    /// Result qualifiers ([`crate::wire::FLAG_UNCERTIFIED`]); 0 on a
    /// single-world server.
    pub flags: u8,
    /// Epochs announced by `EpochNotify` frames since the last result.
    pub notified: Vec<u64>,
}

/// A typed server frame, as surfaced by [`ClientCore::poll_event`].
#[derive(Debug, Clone, PartialEq)]
pub enum ClientEvent {
    /// A kNN result for one tick.
    Result {
        /// The world epoch the result was computed against.
        epoch: u64,
        /// The kNN ids (wire ordinals), ascending by distance.
        ids: Vec<u32>,
        /// What the INS protocol had to do this tick.
        outcome: WireOutcome,
        /// Result qualifiers ([`crate::wire::FLAG_UNCERTIFIED`]).
        flags: u8,
    },
    /// The server published a new index epoch.
    Epoch(u64),
    /// The server rejected something; the session is about to close.
    ServerError {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// A client→server message arrived (protocol violation).
    Unexpected(Message),
    /// The server closed the stream.
    Closed,
}

/// Bound on a client's outbound buffer: far more than any sane number
/// of coalescing position updates, still finite.
const CLIENT_WRITE_BUF: usize = 1 << 20;

/// The non-blocking client core: one socket, zero blocking calls.
///
/// Sends queue into a bounded write buffer and flush opportunistically
/// ([`ClientCore::try_send`] reports `WouldBlock` only if the buffer is
/// full even after a flush attempt); receives reassemble frames
/// incrementally and surface them as typed [`ClientEvent`]s. Callers
/// multiplex many cores over [`crate::sys::poll`] using
/// [`ClientCore::raw_fd`].
#[derive(Debug)]
pub struct ClientCore {
    stream: TcpStream,
    rbuf: FrameBuf,
    wbuf: WriteBuf,
    bytes_out: u64,
    bytes_in: u64,
    eof: bool,
}

impl ClientCore {
    /// Connects and switches the socket to non-blocking mode.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<ClientCore> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_nonblocking(true)?;
        Ok(ClientCore {
            stream,
            rbuf: FrameBuf::new(),
            wbuf: WriteBuf::with_capacity(CLIENT_WRITE_BUF),
            bytes_out: 0,
            bytes_in: 0,
            eof: false,
        })
    }

    /// The raw descriptor, for multiplexing many cores over
    /// [`crate::sys::poll`].
    pub fn raw_fd(&self) -> sys::RawFd {
        sys::raw_fd(&self.stream)
    }

    /// Queues a message and flushes what the socket takes right now.
    /// `WouldBlock` means the write buffer is full even after flushing
    /// — poll for writability and retry.
    pub fn try_send(&mut self, msg: &Message) -> io::Result<()> {
        let frame = msg.encode_frame();
        if !self.wbuf.push(&frame) {
            self.flush()?;
            if !self.wbuf.push(&frame) {
                return Err(io::ErrorKind::WouldBlock.into());
            }
        }
        self.flush()?;
        Ok(())
    }

    /// Queues the next tick's position (the non-blocking
    /// [`NetClient::update`]).
    pub fn try_send_update<S: WireSpace>(&mut self, pos: S::Pos) -> io::Result<()> {
        self.try_send(&Message::PositionUpdate {
            pos: S::pos_to_wire(pos),
        })
    }

    /// Writes as much queued output as the socket takes; `Ok(true)`
    /// means the buffer is fully drained.
    pub fn flush(&mut self) -> io::Result<bool> {
        self.bytes_out += self.wbuf.write_to(&mut self.stream)? as u64;
        Ok(self.wbuf.is_empty())
    }

    /// Bytes queued and not yet written.
    pub fn pending_out(&self) -> usize {
        self.wbuf.pending()
    }

    /// Whether the server has closed its end of the stream.
    pub fn is_eof(&self) -> bool {
        self.eof
    }

    /// Decodes the next buffered frame, reading whatever the socket has
    /// — never blocking. `Ok(None)` means no complete frame yet (poll
    /// for readability); EOF is reported via [`ClientCore::is_eof`].
    pub fn poll_message(&mut self) -> io::Result<Option<Message>> {
        loop {
            if let Some((msg, _)) = self.rbuf.next_message().map_err(io::Error::from)? {
                return Ok(Some(msg));
            }
            if self.eof {
                return Ok(None);
            }
            let mut chunk = [0u8; READ_CHUNK];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.eof = true;
                    if !self.rbuf.at_frame_boundary() {
                        return Err(io::ErrorKind::UnexpectedEof.into());
                    }
                    return Ok(None);
                }
                Ok(n) => {
                    self.bytes_in += n as u64;
                    self.rbuf.extend(&chunk[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(None),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// [`ClientCore::poll_message`] typed: `Ok(None)` means nothing to
    /// surface yet; a clean EOF becomes [`ClientEvent::Closed`].
    pub fn poll_event(&mut self) -> io::Result<Option<ClientEvent>> {
        let event = match self.poll_message()? {
            Some(Message::KnnResult {
                epoch,
                ids,
                outcome,
                flags,
            }) => ClientEvent::Result {
                epoch,
                ids,
                outcome,
                flags,
            },
            Some(Message::EpochNotify { epoch }) => ClientEvent::Epoch(epoch),
            Some(Message::Error { code, detail }) => ClientEvent::ServerError { code, detail },
            Some(other) => ClientEvent::Unexpected(other),
            None if self.eof => ClientEvent::Closed,
            None => return Ok(None),
        };
        Ok(Some(event))
    }

    /// Half-closes the write side (after a graceful deregister).
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(Shutdown::Write)
    }

    /// Wire bytes `(sent, received)` by this core so far.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (self.bytes_out, self.bytes_in)
    }
}

/// A blocking client session against a [`crate::NetServer`] — the
/// original convenience API, re-expressed as readiness waits around a
/// [`ClientCore`].
#[derive(Debug)]
pub struct NetClient {
    core: ClientCore,
}

impl NetClient {
    /// Connects (no registration yet).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        Ok(NetClient {
            core: ClientCore::connect(addr)?,
        })
    }

    /// The non-blocking core, for mixing blocking and event-driven use.
    pub fn core(&mut self) -> &mut ClientCore {
        &mut self.core
    }

    /// Unwraps into the non-blocking core.
    pub fn into_core(self) -> ClientCore {
        self.core
    }

    /// Sends a raw protocol message, blocking until it is fully on the
    /// wire.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        loop {
            match self.core.try_send(msg) {
                Ok(()) => break,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    sys::wait_writable(self.core.raw_fd())?;
                    self.core.flush()?;
                }
                Err(e) => return Err(e),
            }
        }
        while !self.core.flush()? {
            sys::wait_writable(self.core.raw_fd())?;
        }
        Ok(())
    }

    /// Registers a moving kNN query in space `S`; `pos` doubles as the
    /// position for the session's first tick.
    pub fn register<S: WireSpace>(&mut self, k: usize, rho: f64, pos: S::Pos) -> io::Result<()> {
        self.send(&Message::Register {
            space: S::KIND,
            k: k as u32,
            rho,
            pos: S::pos_to_wire(pos),
        })
    }

    /// Registers with an explicit [`SpaceKind`] discriminant (lets tests
    /// probe a server with the wrong space).
    pub fn register_raw(
        &mut self,
        space: SpaceKind,
        k: usize,
        rho: f64,
        pos: crate::wire::WirePos,
    ) -> io::Result<()> {
        self.send(&Message::Register {
            space,
            k: k as u32,
            rho,
            pos,
        })
    }

    /// Sends the position for the next tick.
    pub fn update<S: WireSpace>(&mut self, pos: S::Pos) -> io::Result<()> {
        self.send(&Message::PositionUpdate {
            pos: S::pos_to_wire(pos),
        })
    }

    /// Closes the session cleanly.
    pub fn deregister(&mut self) -> io::Result<()> {
        self.send(&Message::Deregister)?;
        self.core.shutdown_write()
    }

    /// Receives the next server frame, blocking (`None` on clean EOF).
    pub fn recv(&mut self) -> io::Result<Option<Message>> {
        loop {
            if let Some(msg) = self.core.poll_message()? {
                return Ok(Some(msg));
            }
            if self.core.is_eof() {
                return Ok(None);
            }
            sys::wait_readable(self.core.raw_fd())?;
        }
    }

    /// Blocks until the next [`Message::KnnResult`], collecting epoch
    /// notifications along the way; server errors and protocol
    /// violations surface as [`NetError`].
    pub fn next_result(&mut self) -> Result<KnnUpdate, NetError> {
        let mut notified = Vec::new();
        loop {
            match self.recv()? {
                Some(Message::KnnResult {
                    epoch,
                    ids,
                    outcome,
                    flags,
                }) => {
                    return Ok(KnnUpdate {
                        epoch,
                        ids,
                        outcome,
                        flags,
                        notified,
                    })
                }
                Some(Message::EpochNotify { epoch }) => notified.push(epoch),
                Some(Message::Error { code, detail }) => {
                    return Err(NetError::Server { code, detail })
                }
                Some(other) => return Err(NetError::Unexpected(other)),
                None => return Err(NetError::Closed),
            }
        }
    }

    /// [`NetClient::next_result`] with ids converted to `S`'s site-id
    /// type and the epoch as a typed [`Epoch`].
    pub fn next_knn<S: WireSpace>(
        &mut self,
    ) -> Result<(Epoch, Vec<S::SiteId>, WireOutcome), NetError> {
        let upd = self.next_result()?;
        let ids = upd.ids.into_iter().map(S::id_from_wire).collect();
        Ok((Epoch(upd.epoch), ids, upd.outcome))
    }

    /// Wire bytes `(sent, received)` by this client so far.
    pub fn wire_bytes(&self) -> (u64, u64) {
        self.core.wire_bytes()
    }
}

//! The blocking INSQ TCP client.
//!
//! [`NetClient`] is a thin, synchronous library over one socket: frame
//! in, frame out, with wire-byte accounting so callers (the `e_net`
//! experiment) can report *measured* bytes per tick next to the paper's
//! model-level communication counter. The space-typed helpers
//! ([`NetClient::register`], [`NetClient::update`]) convert native
//! positions through [`WireSpace`]; everything else speaks raw
//! [`Message`]s.

use std::io::{self, BufReader};
use std::net::{Shutdown, TcpStream, ToSocketAddrs};

use insq_server::Epoch;

use crate::space::WireSpace;
use crate::wire::{read_message, write_message, ErrorCode, Message, SpaceKind, WireOutcome};

/// Client-side protocol errors.
#[derive(Debug)]
pub enum NetError {
    /// Transport or framing failure (malformed frames surface as
    /// `InvalidData`).
    Io(io::Error),
    /// The server sent an [`Message::Error`] frame.
    Server {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail.
        detail: String,
    },
    /// The server closed the stream where a message was expected.
    Closed,
    /// The server sent a client→server message (protocol violation).
    Unexpected(Message),
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "i/o: {e}"),
            NetError::Server { code, detail } => write!(f, "server error {code:?}: {detail}"),
            NetError::Closed => write!(f, "connection closed by server"),
            NetError::Unexpected(m) => write!(f, "unexpected server frame {m:?}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<io::Error> for NetError {
    fn from(e: io::Error) -> NetError {
        NetError::Io(e)
    }
}

/// One tick's answer as seen by the client, with any epoch
/// notifications that preceded it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KnnUpdate {
    /// The world epoch the result was computed against.
    pub epoch: u64,
    /// The kNN ids (wire ordinals), ascending by distance, ties by id.
    pub ids: Vec<u32>,
    /// What the INS protocol had to do this tick.
    pub outcome: WireOutcome,
    /// Epochs announced by `EpochNotify` frames since the last result.
    pub notified: Vec<u64>,
}

/// A blocking client session against a [`crate::NetServer`].
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
    bytes_out: u64,
    bytes_in: u64,
}

impl NetClient {
    /// Connects (no registration yet).
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<NetClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(NetClient {
            stream,
            reader,
            bytes_out: 0,
            bytes_in: 0,
        })
    }

    /// Sends a raw protocol message.
    pub fn send(&mut self, msg: &Message) -> io::Result<()> {
        self.bytes_out += write_message(&mut self.stream, msg)? as u64;
        Ok(())
    }

    /// Registers a moving kNN query in space `S`; `pos` doubles as the
    /// position for the session's first tick.
    pub fn register<S: WireSpace>(&mut self, k: usize, rho: f64, pos: S::Pos) -> io::Result<()> {
        self.send(&Message::Register {
            space: S::KIND,
            k: k as u32,
            rho,
            pos: S::pos_to_wire(pos),
        })
    }

    /// Registers with an explicit [`SpaceKind`] discriminant (lets tests
    /// probe a server with the wrong space).
    pub fn register_raw(
        &mut self,
        space: SpaceKind,
        k: usize,
        rho: f64,
        pos: crate::wire::WirePos,
    ) -> io::Result<()> {
        self.send(&Message::Register {
            space,
            k: k as u32,
            rho,
            pos,
        })
    }

    /// Sends the position for the next tick.
    pub fn update<S: WireSpace>(&mut self, pos: S::Pos) -> io::Result<()> {
        self.send(&Message::PositionUpdate {
            pos: S::pos_to_wire(pos),
        })
    }

    /// Closes the session cleanly.
    pub fn deregister(&mut self) -> io::Result<()> {
        self.send(&Message::Deregister)?;
        self.stream.shutdown(Shutdown::Write)
    }

    /// Receives the next server frame (`None` on clean EOF).
    pub fn recv(&mut self) -> io::Result<Option<Message>> {
        match read_message(&mut self.reader)? {
            Some((msg, n)) => {
                self.bytes_in += n as u64;
                Ok(Some(msg))
            }
            None => Ok(None),
        }
    }

    /// Blocks until the next [`Message::KnnResult`], collecting epoch
    /// notifications along the way; server errors and protocol
    /// violations surface as [`NetError`].
    pub fn next_result(&mut self) -> Result<KnnUpdate, NetError> {
        let mut notified = Vec::new();
        loop {
            match self.recv()? {
                Some(Message::KnnResult {
                    epoch,
                    ids,
                    outcome,
                }) => {
                    return Ok(KnnUpdate {
                        epoch,
                        ids,
                        outcome,
                        notified,
                    })
                }
                Some(Message::EpochNotify { epoch }) => notified.push(epoch),
                Some(Message::Error { code, detail }) => {
                    return Err(NetError::Server { code, detail })
                }
                Some(other) => return Err(NetError::Unexpected(other)),
                None => return Err(NetError::Closed),
            }
        }
    }

    /// [`NetClient::next_result`] with ids converted to `S`'s site-id
    /// type and the epoch as a typed [`Epoch`].
    pub fn next_knn<S: WireSpace>(
        &mut self,
    ) -> Result<(Epoch, Vec<S::SiteId>, WireOutcome), NetError> {
        let upd = self.next_result()?;
        let ids = upd.ids.into_iter().map(S::id_from_wire).collect();
        Ok((Epoch(upd.epoch), ids, upd.outcome))
    }

    /// Wire bytes `(sent, received)` by this client so far.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (self.bytes_out, self.bytes_in)
    }
}

//! Minimal OS readiness primitives: an in-tree `poll(2)` wrapper.
//!
//! The reactor in [`crate::server`] needs exactly one thing from the
//! OS that `std` does not expose: "which of these sockets are readable
//! or writable right now?". This module provides it with the same
//! offline-deps discipline as `crates/compat/` — a hand-written FFI
//! binding to `poll(2)` on Unix, no external crates.
//!
//! [`PollFd`] is layout-compatible with the C `struct pollfd`, so a
//! `&mut [PollFd]` passes to the syscall without any translation copy —
//! polling 10k sessions allocates nothing.
//!
//! On non-Unix targets there is a degraded but correct fallback:
//! [`poll`] sleeps a millisecond and reports every descriptor ready, so
//! the reactor becomes a paced busy-poll (non-blocking reads/writes
//! that aren't actually ready return `WouldBlock` and are retried).

#![allow(unsafe_code)]

use std::io;
use std::time::Duration;

/// The raw socket descriptor type fed to [`poll`].
#[cfg(unix)]
pub type RawFd = std::os::unix::io::RawFd;

/// The raw socket descriptor type fed to [`poll`] (placeholder off
/// Unix; see the module docs for the fallback semantics).
#[cfg(not(unix))]
pub type RawFd = i32;

/// Extracts the raw descriptor of a socket for [`poll`].
#[cfg(unix)]
pub fn raw_fd<T: std::os::unix::io::AsRawFd>(t: &T) -> RawFd {
    t.as_raw_fd()
}

/// Extracts the raw descriptor of a socket for [`poll`] (dummy off
/// Unix; the fallback [`poll`] reports every descriptor ready anyway).
#[cfg(not(unix))]
pub fn raw_fd<T>(_t: &T) -> RawFd {
    0
}

const POLLIN: i16 = 0x001;
const POLLOUT: i16 = 0x004;
const POLLERR: i16 = 0x008;
const POLLHUP: i16 = 0x010;
const POLLNVAL: i16 = 0x020;

/// One descriptor's interest + readiness for a [`poll`] call.
/// Layout-compatible with the C `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    fd: RawFd,
    events: i16,
    revents: i16,
}

impl PollFd {
    /// Registers `fd` with interest in readability and/or writability.
    pub fn new(fd: RawFd, read: bool, write: bool) -> PollFd {
        let mut events = 0;
        if read {
            events |= POLLIN;
        }
        if write {
            events |= POLLOUT;
        }
        PollFd {
            fd,
            events,
            revents: 0,
        }
    }

    /// The registered descriptor.
    pub fn fd(&self) -> RawFd {
        self.fd
    }

    /// Readable — or at EOF/error, which a read will surface.
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLHUP | POLLERR) != 0
    }

    /// Writable — or in error, which a write will surface.
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLHUP | POLLERR) != 0
    }

    /// The descriptor is in an error state (including `POLLNVAL`).
    pub fn error(&self) -> bool {
        self.revents & (POLLERR | POLLNVAL) != 0
    }

    /// Any readiness at all was reported.
    pub fn ready(&self) -> bool {
        self.revents != 0
    }
}

#[cfg(unix)]
mod imp {
    use super::*;

    #[cfg(target_os = "linux")]
    type NfdsT = std::ffi::c_ulong;
    #[cfg(all(unix, not(target_os = "linux")))]
    type NfdsT = std::ffi::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: std::ffi::c_int) -> std::ffi::c_int;
    }

    pub fn poll_impl(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        let millis: std::ffi::c_int = match timeout {
            None => -1,
            Some(d) => d.as_millis().min(i32::MAX as u128) as std::ffi::c_int,
        };
        loop {
            // SAFETY: `PollFd` is `#[repr(C)]` with the exact field
            // layout of `struct pollfd`; the pointer/length pair comes
            // from a live mutable slice, and `poll` writes only the
            // `revents` fields within it.
            let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as NfdsT, millis) };
            if rc >= 0 {
                return Ok(rc as usize);
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry with the same timeout (worst case the caller
            // waits a little longer; every caller loops anyway).
        }
    }

    pub fn max_open_files_impl() -> io::Result<u64> {
        #[repr(C)]
        struct RLimit {
            cur: u64,
            max: u64,
        }
        #[cfg(target_os = "linux")]
        const RLIMIT_NOFILE: std::ffi::c_int = 7;
        #[cfg(all(unix, not(target_os = "linux")))]
        const RLIMIT_NOFILE: std::ffi::c_int = 8;
        extern "C" {
            fn getrlimit(resource: std::ffi::c_int, rlim: *mut RLimit) -> std::ffi::c_int;
            fn setrlimit(resource: std::ffi::c_int, rlim: *const RLimit) -> std::ffi::c_int;
        }
        let mut lim = RLimit { cur: 0, max: 0 };
        // SAFETY: plain C struct out-parameter of the documented shape
        // for these two syscalls on 64-bit Unix.
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return Err(io::Error::last_os_error());
        }
        if lim.cur < lim.max {
            let raised = RLimit {
                cur: lim.max,
                max: lim.max,
            };
            // SAFETY: as above; raising the soft limit to the hard
            // limit is always permitted.
            if unsafe { setrlimit(RLIMIT_NOFILE, &raised) } == 0 {
                lim.cur = lim.max;
            }
        }
        Ok(lim.cur)
    }
}

#[cfg(not(unix))]
mod imp {
    use super::*;

    pub fn poll_impl(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
        // Degraded fallback: claim everything ready after a short pace
        // nap; not-actually-ready sockets return `WouldBlock` and the
        // caller retries next round.
        std::thread::sleep(
            timeout
                .unwrap_or(Duration::from_millis(1))
                .min(Duration::from_millis(1)),
        );
        for fd in fds.iter_mut() {
            fd.revents = fd.events;
        }
        Ok(fds.len())
    }

    pub fn max_open_files_impl() -> io::Result<u64> {
        Ok(u64::MAX)
    }
}

/// Waits until at least one registered descriptor is ready (or the
/// timeout passes — `None` waits indefinitely). Returns how many are.
pub fn poll(fds: &mut [PollFd], timeout: Option<Duration>) -> io::Result<usize> {
    imp::poll_impl(fds, timeout)
}

/// Blocks until `fd` is readable (used by the blocking client wrappers
/// around the non-blocking [`crate::ClientCore`]).
pub fn wait_readable(fd: RawFd) -> io::Result<()> {
    let mut fds = [PollFd::new(fd, true, false)];
    loop {
        poll(&mut fds, None)?;
        if fds[0].ready() {
            return Ok(());
        }
    }
}

/// Blocks until `fd` is writable.
pub fn wait_writable(fd: RawFd) -> io::Result<()> {
    let mut fds = [PollFd::new(fd, false, true)];
    loop {
        poll(&mut fds, None)?;
        if fds[0].ready() {
            return Ok(());
        }
    }
}

/// Raises the process's open-file soft limit to its hard limit (best
/// effort) and returns the resulting soft limit. The 10k-session soak
/// needs roughly two descriptors per session server-side.
pub fn max_open_files() -> io::Result<u64> {
    imp::max_open_files_impl()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poll_reports_readable_after_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut tx = TcpStream::connect(addr).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        // Nothing written yet: not readable within a short timeout
        // (the degraded non-Unix fallback reports ready; skip there).
        #[cfg(unix)]
        {
            let mut fds = [PollFd::new(raw_fd(&rx), true, false)];
            let n = poll(&mut fds, Some(Duration::from_millis(10))).unwrap();
            assert_eq!(n, 0, "no data yet");
            assert!(!fds[0].readable());
        }

        tx.write_all(b"ping").unwrap();
        tx.flush().unwrap();
        let mut fds = [PollFd::new(raw_fd(&rx), true, false)];
        let n = poll(&mut fds, Some(Duration::from_millis(1000))).unwrap();
        assert!(n >= 1);
        assert!(fds[0].readable());
        // A fresh socket with room in its send buffer is writable.
        let mut wfds = [PollFd::new(raw_fd(&tx), false, true)];
        poll(&mut wfds, Some(Duration::from_millis(1000))).unwrap();
        assert!(wfds[0].writable());
    }

    #[test]
    fn max_open_files_reports_a_sane_limit() {
        let n = max_open_files().unwrap();
        assert!(n >= 256, "limit {n} too small to serve anything");
    }
}

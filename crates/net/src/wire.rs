//! The INSQ wire protocol: a dependency-free, length-prefixed binary
//! codec.
//!
//! Every message travels as one **frame**:
//!
//! ```text
//! ┌────────────┬───────────┬───────┬──────────────────┐
//! │ len: u32le │ ver: u8   │ tag:  │ body …           │
//! │ (payload   │ (== 1)    │ u8    │ (per-message     │
//! │  bytes)    │           │       │  fields, LE)     │
//! └────────────┴───────────┴───────┴──────────────────┘
//! ```
//!
//! `len` counts the payload (version byte onward) and is bounded by
//! [`MAX_PAYLOAD_LEN`] **before** any allocation happens, so a hostile
//! length prefix can neither over-allocate nor wedge the reader. All
//! integers and floats are little-endian fixed-width; variable-length
//! fields (`ids`, error detail strings) carry their own `u32` count,
//! which the decoder checks against both a hard cap and the bytes
//! actually remaining in the frame before allocating.
//!
//! The codec is deliberately serde-free (same offline-deps discipline as
//! `crates/compat/`): [`Encode`] appends bytes to a `Vec<u8>`, [`Decode`]
//! reads them back from a bounds-checked [`Reader`] cursor. Decoding
//! never panics on untrusted input — every malformed byte sequence comes
//! back as a [`DecodeError`] (`tests/codec_fuzz.rs` hammers this;
//! `tests/codec_props.rs` proves `decode(encode(m)) == m` for arbitrary
//! messages).

use std::io::{self, Read, Write};

/// Protocol version carried by every frame. A decoder rejects frames
/// whose version byte differs — bump this when the message set changes
/// incompatibly.
///
/// Version history: 1 = PR 5/6 message set; 2 = [`Message::KnnResult`]
/// carries a `flags` byte (partition certification) and
/// [`ErrorCode::Unavailable`] exists (router backend loss).
pub const WIRE_VERSION: u8 = 2;

/// [`Message::KnnResult`] flag bit: the serving partition could not
/// certify this result against the global site set — the query's k-th
/// neighbor distance exceeded the partition's replication margin (or the
/// partition holds fewer than k sites), so a site owned by another
/// partition *may* be closer. Degraded, never silently wrong: the ids
/// are still the exact kNN over the partition's replicated site set.
pub const FLAG_UNCERTIFIED: u8 = 1;

/// Hard upper bound on a frame's payload length. Checked against the
/// length prefix before anything is allocated; generous enough for a
/// [`Message::KnnResult`] carrying [`MAX_IDS`] ids with room to spare.
pub const MAX_PAYLOAD_LEN: usize = 1 << 19;

/// Hard upper bound on the number of ids in one [`Message::KnnResult`].
pub const MAX_IDS: usize = 1 << 16;

/// Hard upper bound on the byte length of an error detail string.
pub const MAX_DETAIL_LEN: usize = 1 << 10;

/// Why a byte sequence failed to decode. Every variant is a clean error
/// return — the decoder has no panicking path on untrusted input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value's fixed-width fields did.
    Truncated,
    /// A frame's payload contained bytes after the message body.
    TrailingBytes {
        /// How many bytes were left unread.
        extra: usize,
    },
    /// The frame's version byte is not [`WIRE_VERSION`].
    BadVersion(u8),
    /// The payload's message tag byte is unknown.
    BadTag(u8),
    /// A length prefix exceeded its hard cap or the remaining input.
    LengthOutOfBounds {
        /// What the prefix claimed.
        claimed: u64,
        /// The cap it violated (either a `MAX_*` constant or the bytes
        /// remaining in the frame).
        limit: usize,
    },
    /// An enum discriminant byte held an unassigned value.
    BadDiscriminant {
        /// Which field rejected it.
        what: &'static str,
        /// The offending byte.
        value: u8,
    },
    /// An error detail string was not valid UTF-8.
    BadUtf8,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated"),
            DecodeError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing byte(s) after message body")
            }
            DecodeError::BadVersion(v) => {
                write!(f, "unsupported wire version {v} (expected {WIRE_VERSION})")
            }
            DecodeError::BadTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::LengthOutOfBounds { claimed, limit } => {
                write!(f, "length prefix {claimed} exceeds limit {limit}")
            }
            DecodeError::BadDiscriminant { what, value } => {
                write!(f, "bad {what} discriminant {value}")
            }
            DecodeError::BadUtf8 => write!(f, "error detail is not valid UTF-8"),
        }
    }
}

impl std::error::Error for DecodeError {}

impl From<DecodeError> for io::Error {
    fn from(e: DecodeError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e)
    }
}

/// A bounds-checked read cursor over one frame's payload.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    /// A cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, at: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.at
    }

    /// Consumes exactly `n` bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::Truncated);
        }
        let out = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(out)
    }

    fn array<const N: usize>(&mut self) -> Result<[u8; N], DecodeError> {
        let bytes = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(bytes);
        Ok(out)
    }
}

/// Appends a value's wire representation to a byte buffer.
pub trait Encode {
    /// Serialises `self` onto the end of `out`.
    fn encode(&self, out: &mut Vec<u8>);
}

/// Reads a value's wire representation back from a [`Reader`].
pub trait Decode: Sized {
    /// Deserialises one value, consuming exactly the bytes [`Encode`]
    /// produced for it. Never panics: malformed input is a
    /// [`DecodeError`].
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError>;
}

macro_rules! impl_le_codec {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
        }
        impl Decode for $t {
            fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
                Ok(<$t>::from_le_bytes(r.array()?))
            }
        }
    )*};
}

impl_le_codec!(u8, u32, u64);

impl Encode for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_bits().to_le_bytes());
    }
}

impl Decode for f64 {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        Ok(f64::from_bits(u64::from_le_bytes(r.array()?)))
    }
}

/// Decodes a `u32` length prefix, rejecting it if it exceeds `cap` or
/// would claim more than `bytes_each`-sized items than the frame has
/// bytes left — the bound is enforced **before** any allocation.
fn decode_len(r: &mut Reader<'_>, cap: usize, bytes_each: usize) -> Result<usize, DecodeError> {
    let claimed = u32::decode(r)? as usize;
    if claimed > cap {
        return Err(DecodeError::LengthOutOfBounds {
            claimed: claimed as u64,
            limit: cap,
        });
    }
    // Each item still has to fit in the remaining payload; this caps the
    // allocation at the (already bounded) frame size.
    let need = claimed.saturating_mul(bytes_each.max(1));
    if need > r.remaining() {
        return Err(DecodeError::LengthOutOfBounds {
            claimed: claimed as u64,
            limit: r.remaining() / bytes_each.max(1),
        });
    }
    Ok(claimed)
}

impl Encode for Vec<u32> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for v in self {
            v.encode(out);
        }
    }
}

impl Decode for Vec<u32> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = decode_len(r, MAX_IDS, 4)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(u32::decode(r)?);
        }
        Ok(out)
    }
}

impl Encode for String {
    fn encode(&self, out: &mut Vec<u8>) {
        let bytes = self.as_bytes();
        let n = bytes.len().min(MAX_DETAIL_LEN);
        // Truncate on a char boundary so the wire never carries split
        // UTF-8 (only reachable for absurdly long detail strings).
        let n = (0..=n)
            .rev()
            .find(|&i| self.is_char_boundary(i))
            .unwrap_or(0);
        (n as u32).encode(out);
        out.extend_from_slice(&bytes[..n]);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        let n = decode_len(r, MAX_DETAIL_LEN, 1)?;
        let bytes = r.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError::BadUtf8)
    }
}

/// Which [`insq_core::Space`] a session runs in. Sent in
/// [`Message::Register`]; a server rejects sessions whose kind does not
/// match the space it serves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceKind {
    /// 2-D Euclidean (`insq_core::Euclidean`, positions are points).
    Euclidean,
    /// Road network (`insq_core::Network`, positions are
    /// vertex/on-edge).
    Network,
    /// Weighted Euclidean (`insq_core::WeightedEuclidean`).
    WeightedEuclidean,
}

impl Encode for SpaceKind {
    fn encode(&self, out: &mut Vec<u8>) {
        let b: u8 = match self {
            SpaceKind::Euclidean => 0,
            SpaceKind::Network => 1,
            SpaceKind::WeightedEuclidean => 2,
        };
        b.encode(out);
    }
}

impl Decode for SpaceKind {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(SpaceKind::Euclidean),
            1 => Ok(SpaceKind::Network),
            2 => Ok(SpaceKind::WeightedEuclidean),
            value => Err(DecodeError::BadDiscriminant {
                what: "space kind",
                value,
            }),
        }
    }
}

/// A space-agnostic query position: what clients put on the wire.
/// Euclidean spaces use [`WirePos::Point`]; road networks use
/// [`WirePos::Vertex`] / [`WirePos::OnEdge`] (mirroring
/// `insq_roadnet::NetPosition`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WirePos {
    /// A planar point (Euclidean and weighted-Euclidean spaces).
    Point {
        /// Horizontal coordinate.
        x: f64,
        /// Vertical coordinate.
        y: f64,
    },
    /// Exactly at a road-network vertex (by vertex id).
    Vertex(u32),
    /// On a road-network edge interior.
    OnEdge {
        /// The edge id.
        edge: u32,
        /// Distance from the edge's `u` endpoint, network units.
        offset: f64,
    },
}

impl Encode for WirePos {
    fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            WirePos::Point { x, y } => {
                0u8.encode(out);
                x.encode(out);
                y.encode(out);
            }
            WirePos::Vertex(v) => {
                1u8.encode(out);
                v.encode(out);
            }
            WirePos::OnEdge { edge, offset } => {
                2u8.encode(out);
                edge.encode(out);
                offset.encode(out);
            }
        }
    }
}

impl Decode for WirePos {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(WirePos::Point {
                x: f64::decode(r)?,
                y: f64::decode(r)?,
            }),
            1 => Ok(WirePos::Vertex(u32::decode(r)?)),
            2 => Ok(WirePos::OnEdge {
                edge: u32::decode(r)?,
                offset: f64::decode(r)?,
            }),
            value => Err(DecodeError::BadDiscriminant {
                what: "position",
                value,
            }),
        }
    }
}

/// [`insq_core::TickOutcome`] on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireOutcome {
    /// The result was still valid (no change).
    Valid,
    /// Update case (i): one object swapped locally.
    Swap,
    /// Update case (ii): multi-object local re-rank.
    LocalRerank,
    /// Update case (iii): full recomputation.
    Recompute,
}

impl From<insq_core::TickOutcome> for WireOutcome {
    fn from(o: insq_core::TickOutcome) -> WireOutcome {
        match o {
            insq_core::TickOutcome::Valid => WireOutcome::Valid,
            insq_core::TickOutcome::Swap => WireOutcome::Swap,
            insq_core::TickOutcome::LocalRerank => WireOutcome::LocalRerank,
            insq_core::TickOutcome::Recompute => WireOutcome::Recompute,
        }
    }
}

impl Encode for WireOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        let b: u8 = match self {
            WireOutcome::Valid => 0,
            WireOutcome::Swap => 1,
            WireOutcome::LocalRerank => 2,
            WireOutcome::Recompute => 3,
        };
        b.encode(out);
    }
}

impl Decode for WireOutcome {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(WireOutcome::Valid),
            1 => Ok(WireOutcome::Swap),
            2 => Ok(WireOutcome::LocalRerank),
            3 => Ok(WireOutcome::Recompute),
            value => Err(DecodeError::BadDiscriminant {
                what: "tick outcome",
                value,
            }),
        }
    }
}

/// Machine-readable cause of a server-sent [`Message::Error`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The session registered for a space this server does not serve.
    SpaceMismatch,
    /// A position update or deregister arrived before registration.
    NotRegistered,
    /// A second register arrived on an already-registered session.
    AlreadyRegistered,
    /// The query configuration (k, ρ) was rejected.
    BadConfig,
    /// A frame failed to decode.
    Malformed,
    /// The position did not name a valid location in the served index.
    BadPosition,
    /// The server refused the registration (it is shutting down). Note
    /// that a write-queue overflow (slow consumer) disconnects the
    /// session *without* an error frame: its writer may be wedged
    /// mid-frame, so nothing can be safely interleaved on the socket.
    Overloaded,
    /// The partition backend serving this session was lost (router
    /// deployments only). The session is closed; re-registering opens a
    /// fresh one.
    Unavailable,
}

impl Encode for ErrorCode {
    fn encode(&self, out: &mut Vec<u8>) {
        let b: u8 = match self {
            ErrorCode::SpaceMismatch => 0,
            ErrorCode::NotRegistered => 1,
            ErrorCode::AlreadyRegistered => 2,
            ErrorCode::BadConfig => 3,
            ErrorCode::Malformed => 4,
            ErrorCode::BadPosition => 5,
            ErrorCode::Overloaded => 6,
            ErrorCode::Unavailable => 7,
        };
        b.encode(out);
    }
}

impl Decode for ErrorCode {
    fn decode(r: &mut Reader<'_>) -> Result<Self, DecodeError> {
        match u8::decode(r)? {
            0 => Ok(ErrorCode::SpaceMismatch),
            1 => Ok(ErrorCode::NotRegistered),
            2 => Ok(ErrorCode::AlreadyRegistered),
            3 => Ok(ErrorCode::BadConfig),
            4 => Ok(ErrorCode::Malformed),
            5 => Ok(ErrorCode::BadPosition),
            6 => Ok(ErrorCode::Overloaded),
            7 => Ok(ErrorCode::Unavailable),
            value => Err(DecodeError::BadDiscriminant {
                what: "error code",
                value,
            }),
        }
    }
}

/// The INSQ protocol message set, version [`WIRE_VERSION`].
///
/// Client → server: [`Message::Register`], [`Message::PositionUpdate`],
/// [`Message::Deregister`]. Server → client: [`Message::KnnResult`],
/// [`Message::EpochNotify`], [`Message::Error`].
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Opens a session: registers one moving kNN query. `pos` doubles as
    /// the position update for the session's first tick.
    Register {
        /// The space the client expects the server to operate in.
        space: SpaceKind,
        /// Number of nearest neighbors to maintain (k ≥ 1).
        k: u32,
        /// Prefetch ratio ρ ≥ 1 (paper §III).
        rho: f64,
        /// The query's starting position.
        pos: WirePos,
    },
    /// The client moved: its position for the next server tick. Several
    /// updates between ticks coalesce — the last one wins.
    PositionUpdate {
        /// The new position.
        pos: WirePos,
    },
    /// Closes the session cleanly (same effect as dropping the
    /// connection, minus the error log line).
    Deregister,
    /// One tick's result for this session's query.
    KnnResult {
        /// The world epoch the result was computed against.
        epoch: u64,
        /// The kNN ids, ascending by distance (ties by id).
        ids: Vec<u32>,
        /// What the INS protocol had to do this tick.
        outcome: WireOutcome,
        /// Result qualifiers ([`FLAG_UNCERTIFIED`]); 0 on a single-world
        /// server. Unknown bits are reserved and must be ignored.
        flags: u8,
    },
    /// The server published a new index epoch; the session's query
    /// rebinds at its next tick. Pushed at most once per epoch per
    /// session, before the first [`Message::KnnResult`] of that epoch.
    EpochNotify {
        /// The new epoch number.
        epoch: u64,
    },
    /// The server rejected a frame or is closing the session.
    Error {
        /// Machine-readable cause.
        code: ErrorCode,
        /// Human-readable detail (bounded at [`MAX_DETAIL_LEN`] bytes).
        detail: String,
    },
}

impl Message {
    const TAG_REGISTER: u8 = 0;
    const TAG_POSITION_UPDATE: u8 = 1;
    const TAG_DEREGISTER: u8 = 2;
    const TAG_KNN_RESULT: u8 = 3;
    const TAG_EPOCH_NOTIFY: u8 = 4;
    const TAG_ERROR: u8 = 5;

    /// Serialises the frame payload: version byte, tag byte, body.
    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        WIRE_VERSION.encode(out);
        match self {
            Message::Register { space, k, rho, pos } => {
                Self::TAG_REGISTER.encode(out);
                space.encode(out);
                k.encode(out);
                rho.encode(out);
                pos.encode(out);
            }
            Message::PositionUpdate { pos } => {
                Self::TAG_POSITION_UPDATE.encode(out);
                pos.encode(out);
            }
            Message::Deregister => {
                Self::TAG_DEREGISTER.encode(out);
            }
            Message::KnnResult {
                epoch,
                ids,
                outcome,
                flags,
            } => {
                Self::TAG_KNN_RESULT.encode(out);
                epoch.encode(out);
                ids.encode(out);
                outcome.encode(out);
                flags.encode(out);
            }
            Message::EpochNotify { epoch } => {
                Self::TAG_EPOCH_NOTIFY.encode(out);
                epoch.encode(out);
            }
            Message::Error { code, detail } => {
                Self::TAG_ERROR.encode(out);
                code.encode(out);
                detail.encode(out);
            }
        }
    }

    /// Deserialises one frame payload. The whole payload must be
    /// consumed — trailing bytes are an error, so a frame decodes to
    /// exactly one message or not at all.
    pub fn decode_payload(payload: &[u8]) -> Result<Message, DecodeError> {
        let mut r = Reader::new(payload);
        let version = u8::decode(&mut r)?;
        if version != WIRE_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let msg = match u8::decode(&mut r)? {
            Self::TAG_REGISTER => Message::Register {
                space: SpaceKind::decode(&mut r)?,
                k: u32::decode(&mut r)?,
                rho: f64::decode(&mut r)?,
                pos: WirePos::decode(&mut r)?,
            },
            Self::TAG_POSITION_UPDATE => Message::PositionUpdate {
                pos: WirePos::decode(&mut r)?,
            },
            Self::TAG_DEREGISTER => Message::Deregister,
            Self::TAG_KNN_RESULT => Message::KnnResult {
                epoch: u64::decode(&mut r)?,
                ids: Vec::<u32>::decode(&mut r)?,
                outcome: WireOutcome::decode(&mut r)?,
                flags: u8::decode(&mut r)?,
            },
            Self::TAG_EPOCH_NOTIFY => Message::EpochNotify {
                epoch: u64::decode(&mut r)?,
            },
            Self::TAG_ERROR => Message::Error {
                code: ErrorCode::decode(&mut r)?,
                detail: String::decode(&mut r)?,
            },
            tag => return Err(DecodeError::BadTag(tag)),
        };
        if r.remaining() != 0 {
            return Err(DecodeError::TrailingBytes {
                extra: r.remaining(),
            });
        }
        Ok(msg)
    }

    /// Serialises the complete frame (length prefix + payload).
    pub fn encode_frame(&self) -> Vec<u8> {
        let mut payload = Vec::with_capacity(32);
        self.encode_payload(&mut payload);
        debug_assert!(payload.len() <= MAX_PAYLOAD_LEN);
        let mut frame = Vec::with_capacity(4 + payload.len());
        (payload.len() as u32).encode(&mut frame);
        frame.extend_from_slice(&payload);
        frame
    }
}

/// Writes one framed message; returns the bytes put on the wire
/// (`4 + payload`).
pub fn write_message<W: Write>(w: &mut W, msg: &Message) -> io::Result<usize> {
    let frame = msg.encode_frame();
    w.write_all(&frame)?;
    Ok(frame.len())
}

/// Reads one frame's payload. Returns `Ok(None)` on a clean EOF at a
/// frame boundary; a length prefix above [`MAX_PAYLOAD_LEN`] (or below
/// the 2-byte version+tag minimum) is rejected *before* any allocation
/// and surfaces as `InvalidData`.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len_bytes = [0u8; 4];
    // A clean EOF before the first length byte ends the stream; EOF
    // mid-prefix is an error.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_bytes[filled..])? {
            0 if filled == 0 => return Ok(None),
            0 => return Err(io::ErrorKind::UnexpectedEof.into()),
            n => filled += n,
        }
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if !(2..=MAX_PAYLOAD_LEN).contains(&len) {
        return Err(DecodeError::LengthOutOfBounds {
            claimed: len as u64,
            limit: MAX_PAYLOAD_LEN,
        }
        .into());
    }
    let mut payload = vec![0u8; len];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Reads and decodes one framed [`Message`]. Returns the message and the
/// total bytes consumed from the wire, or `Ok(None)` on clean EOF.
pub fn read_message<R: Read>(r: &mut R) -> io::Result<Option<(Message, usize)>> {
    let Some(payload) = read_frame(r)? else {
        return Ok(None);
    };
    let msg = Message::decode_payload(&payload)?;
    Ok(Some((msg, 4 + payload.len())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_over_io() {
        let msg = Message::KnnResult {
            epoch: 7,
            ids: vec![3, 1, 4, 1, 5],
            outcome: WireOutcome::Swap,
            flags: FLAG_UNCERTIFIED,
        };
        let mut wire = Vec::new();
        let wrote = write_message(&mut wire, &msg).unwrap();
        assert_eq!(wrote, wire.len());
        let mut cursor = io::Cursor::new(&wire);
        let (back, read) = read_message(&mut cursor).unwrap().expect("one frame");
        assert_eq!(back, msg);
        assert_eq!(read, wrote);
        // And a clean EOF after it.
        assert!(read_message(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocating() {
        let mut wire = Vec::new();
        (u32::MAX).encode(&mut wire);
        wire.extend_from_slice(&[0u8; 16]);
        let err = read_frame(&mut io::Cursor::new(&wire)).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn long_error_details_truncate_on_a_char_boundary() {
        let detail = "é".repeat(MAX_DETAIL_LEN); // 2 bytes per char
        let msg = Message::Error {
            code: ErrorCode::Malformed,
            detail,
        };
        let frame = msg.encode_frame();
        let back = Message::decode_payload(&frame[4..]).unwrap();
        match back {
            Message::Error { detail, .. } => {
                assert!(detail.len() <= MAX_DETAIL_LEN);
                assert!(detail.chars().all(|c| c == 'é'));
            }
            other => panic!("wrong message {other:?}"),
        }
    }
}

//! Bridging [`insq_core::Space`]s onto the wire.
//!
//! The codec is space-agnostic: positions travel as [`WirePos`], site
//! ids as raw `u32`. [`WireSpace`] supplies the per-space conversions —
//! a [`SpaceKind`] discriminant checked at registration, a *validated*
//! wire→native position decode (untrusted positions are range-checked
//! against the served index, never trusted), and id mappings. All three
//! in-tree spaces implement it, so [`crate::NetServer`] and
//! [`crate::NetClient`] are generic over the space exactly like the rest
//! of the stack.

use insq_core::{Euclidean, Network, Space, WeightedEuclidean};
use insq_geom::Point;
use insq_roadnet::{EdgeId, NetPosition, SiteIdx, VertexId};
use insq_voronoi::SiteId;

use crate::wire::{SpaceKind, WirePos};

/// Why a [`WirePos`] was rejected for a space.
#[derive(Debug, Clone, PartialEq)]
pub enum PosError {
    /// The position variant does not exist in this space (e.g. a
    /// road-network vertex sent to a Euclidean server).
    WrongKind,
    /// A coordinate or offset was NaN/infinite.
    NotFinite,
    /// A vertex or edge id exceeded the served road network.
    OutOfRange,
}

impl std::fmt::Display for PosError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PosError::WrongKind => write!(f, "position variant not valid in this space"),
            PosError::NotFinite => write!(f, "position coordinate is not finite"),
            PosError::OutOfRange => write!(f, "vertex/edge id out of range"),
        }
    }
}

impl std::error::Error for PosError {}

/// A [`Space`] that can serve TCP sessions: wire-level conversions for
/// its position and site-id types.
pub trait WireSpace: Space {
    /// The discriminant clients put in `Register.space`.
    const KIND: SpaceKind;

    /// Decodes and **validates** an untrusted wire position against the
    /// served index snapshot.
    fn pos_from_wire(index: &Self::Index, pos: WirePos) -> Result<Self::Pos, PosError>;

    /// Encodes a native position (the client-side direction).
    fn pos_to_wire(pos: Self::Pos) -> WirePos;

    /// A site id as its raw wire ordinal.
    fn id_to_wire(id: Self::SiteId) -> u32;

    /// A raw wire ordinal as a site id (results only flow server →
    /// client, so this direction needs no index validation).
    fn id_from_wire(raw: u32) -> Self::SiteId;
}

fn planar_pos(pos: WirePos) -> Result<Point, PosError> {
    match pos {
        WirePos::Point { x, y } => {
            if x.is_finite() && y.is_finite() {
                Ok(Point::new(x, y))
            } else {
                Err(PosError::NotFinite)
            }
        }
        _ => Err(PosError::WrongKind),
    }
}

impl WireSpace for Euclidean {
    const KIND: SpaceKind = SpaceKind::Euclidean;

    fn pos_from_wire(_index: &Self::Index, pos: WirePos) -> Result<Point, PosError> {
        planar_pos(pos)
    }

    fn pos_to_wire(pos: Point) -> WirePos {
        WirePos::Point { x: pos.x, y: pos.y }
    }

    fn id_to_wire(id: SiteId) -> u32 {
        id.0
    }

    fn id_from_wire(raw: u32) -> SiteId {
        SiteId(raw)
    }
}

impl WireSpace for WeightedEuclidean {
    const KIND: SpaceKind = SpaceKind::WeightedEuclidean;

    fn pos_from_wire(_index: &Self::Index, pos: WirePos) -> Result<Point, PosError> {
        planar_pos(pos)
    }

    fn pos_to_wire(pos: Point) -> WirePos {
        WirePos::Point { x: pos.x, y: pos.y }
    }

    fn id_to_wire(id: SiteId) -> u32 {
        id.0
    }

    fn id_from_wire(raw: u32) -> SiteId {
        SiteId(raw)
    }
}

impl WireSpace for Network {
    const KIND: SpaceKind = SpaceKind::Network;

    fn pos_from_wire(index: &Self::Index, pos: WirePos) -> Result<NetPosition, PosError> {
        match pos {
            WirePos::Vertex(v) => {
                if (v as usize) < index.net.num_vertices() {
                    Ok(NetPosition::Vertex(VertexId(v)))
                } else {
                    Err(PosError::OutOfRange)
                }
            }
            WirePos::OnEdge { edge, offset } => {
                // `on_edge` canonicalises (clamps the offset, collapses
                // endpoints to vertices) and rejects bad edges/offsets.
                NetPosition::on_edge(&index.net, EdgeId(edge), offset).map_err(|_| {
                    if offset.is_finite() {
                        PosError::OutOfRange
                    } else {
                        PosError::NotFinite
                    }
                })
            }
            WirePos::Point { .. } => Err(PosError::WrongKind),
        }
    }

    fn pos_to_wire(pos: NetPosition) -> WirePos {
        match pos {
            NetPosition::Vertex(v) => WirePos::Vertex(v.0),
            NetPosition::OnEdge { edge, offset } => WirePos::OnEdge {
                edge: edge.0,
                offset,
            },
        }
    }

    fn id_to_wire(id: SiteIdx) -> u32 {
        id.0
    }

    fn id_from_wire(raw: u32) -> SiteIdx {
        SiteIdx(raw)
    }
}

//! Per-session byte buffers: incremental frame reassembly and bounded
//! write queues.
//!
//! The reactor never blocks on a socket, so a frame can arrive split
//! across arbitrarily many readiness wakeups and a result can leave in
//! arbitrarily small pieces. [`FrameBuf`] reassembles inbound frames
//! incrementally (`tests/reactor_fuzz.rs` feeds it every chunking);
//! [`WriteBuf`] queues outbound frames up to a hard byte bound so one
//! slow consumer occupies bounded memory — overflow is a disconnect
//! decision surfaced to the caller, never an unbounded queue.
//!
//! Both track a high-water mark, which the soak harness asserts against
//! to prove per-session memory stays bounded at 10k+ sessions.

use std::io::{self, Write};

use crate::wire::{DecodeError, Message, MAX_PAYLOAD_LEN};

/// How many buffered bytes a [`FrameBuf`] may hold: one maximal frame
/// (4-byte length prefix + payload) plus one reactor read chunk that
/// may complete it.
pub const MAX_FRAME_BUF: usize = 4 + MAX_PAYLOAD_LEN + READ_CHUNK;

/// The reactor's per-wakeup socket read size. Every complete frame is
/// decoded before the next read, so a session buffers at most one
/// partial frame plus one chunk.
pub const READ_CHUNK: usize = 16 * 1024;

/// Incremental frame reassembly: bytes in (any chunking), decoded
/// [`Message`]s out.
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted lazily).
    start: usize,
    high_water: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Appends raw bytes read off the socket.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
        self.high_water = self.high_water.max(self.buffered());
    }

    /// Unconsumed bytes currently buffered.
    pub fn buffered(&self) -> usize {
        self.buf.len() - self.start
    }

    /// The most bytes ever buffered at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Decodes the next complete frame, if the buffer holds one.
    ///
    /// `Ok(Some((msg, n)))` consumed `n` wire bytes; `Ok(None)` means
    /// more bytes are needed (wait for the next readiness wakeup); a
    /// [`DecodeError`] (hostile length prefix, malformed payload) is
    /// fatal for the stream — framing is lost, the session must close.
    pub fn next_message(&mut self) -> Result<Option<(Message, usize)>, DecodeError> {
        let avail = &self.buf[self.start..];
        if avail.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes([avail[0], avail[1], avail[2], avail[3]]) as usize;
        // Same bound as the blocking reader: rejected before the
        // payload is awaited, so a hostile prefix can't make the
        // session buffer (or stall) its way toward `claimed` bytes.
        if !(2..=MAX_PAYLOAD_LEN).contains(&len) {
            return Err(DecodeError::LengthOutOfBounds {
                claimed: len as u64,
                limit: MAX_PAYLOAD_LEN,
            });
        }
        if avail.len() < 4 + len {
            return Ok(None);
        }
        let msg = Message::decode_payload(&avail[4..4 + len])?;
        self.start += 4 + len;
        self.compact();
        Ok(Some((msg, 4 + len)))
    }

    /// Whether a clean EOF here is actually clean (no partial frame).
    pub fn at_frame_boundary(&self) -> bool {
        self.buffered() == 0
    }

    fn compact(&mut self) {
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
    }
}

/// A bounded outbound byte queue with partial-write support.
#[derive(Debug)]
pub struct WriteBuf {
    buf: Vec<u8>,
    start: usize,
    cap: usize,
    high_water: usize,
}

impl WriteBuf {
    /// An empty queue holding at most `cap` pending bytes (clamped so
    /// one maximal frame always fits — otherwise a full-size result
    /// could never be queued at all).
    pub fn with_capacity(cap: usize) -> WriteBuf {
        WriteBuf {
            buf: Vec::new(),
            start: 0,
            cap: cap.max(4 + MAX_PAYLOAD_LEN),
            high_water: 0,
        }
    }

    /// Queues one encoded frame. `false` means the frame does not fit —
    /// the session is too far behind and should be disconnected (the
    /// frame was not queued; partially sent frames are never torn).
    #[must_use]
    pub fn push(&mut self, frame: &[u8]) -> bool {
        if self.pending() + frame.len() > self.cap {
            return false;
        }
        self.buf.extend_from_slice(frame);
        self.high_water = self.high_water.max(self.pending());
        true
    }

    /// Bytes queued and not yet written.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.start
    }

    /// Whether everything queued has been written.
    pub fn is_empty(&self) -> bool {
        self.pending() == 0
    }

    /// The most bytes ever pending at once.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Writes as much as the socket will take right now; returns the
    /// bytes written. `WouldBlock` stops the drain (register `POLLOUT`
    /// interest and retry next wakeup); other errors are fatal.
    pub fn write_to<W: Write>(&mut self, w: &mut W) -> io::Result<usize> {
        let mut written = 0;
        while self.pending() > 0 {
            match w.write(&self.buf[self.start..]) {
                Ok(0) => return Err(io::ErrorKind::WriteZero.into()),
                Ok(n) => {
                    self.start += n;
                    written += n;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        if self.start == self.buf.len() {
            self.buf.clear();
            self.start = 0;
        } else if self.start >= 4096 && self.start * 2 >= self.buf.len() {
            self.buf.drain(..self.start);
            self.start = 0;
        }
        Ok(written)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::WireOutcome;

    fn sample(i: u64) -> Message {
        Message::KnnResult {
            epoch: i,
            ids: vec![i as u32, i as u32 + 1],
            outcome: WireOutcome::Valid,
            flags: 0,
        }
    }

    #[test]
    fn reassembles_byte_at_a_time() {
        let msgs: Vec<Message> = (0..5).map(sample).collect();
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&m.encode_frame());
        }
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        for b in wire {
            fb.extend(&[b]);
            while let Some((m, _)) = fb.next_message().unwrap() {
                got.push(m);
            }
        }
        assert_eq!(got, msgs);
        assert!(fb.at_frame_boundary());
    }

    #[test]
    fn hostile_length_prefix_is_rejected_before_buffering() {
        let mut fb = FrameBuf::new();
        fb.extend(&u32::MAX.to_le_bytes());
        assert!(matches!(
            fb.next_message(),
            Err(DecodeError::LengthOutOfBounds { .. })
        ));
    }

    #[test]
    fn write_buf_bounds_and_partial_writes() {
        let frame = sample(1).encode_frame();
        let mut wb = WriteBuf::with_capacity(0); // clamps to one max frame
        assert!(wb.push(&frame));
        let mut taken = 0usize;
        // A sink that takes 3 bytes per call.
        struct Trickle<'a>(&'a mut usize, Vec<u8>);
        impl Write for Trickle<'_> {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                let n = buf.len().min(3);
                *self.0 += n;
                self.1.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut sink = Trickle(&mut taken, Vec::new());
        while !wb.is_empty() {
            wb.write_to(&mut sink).unwrap();
        }
        assert_eq!(sink.1, frame);
        assert!(wb.high_water() >= frame.len());
    }
}

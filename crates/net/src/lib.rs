//! # insq-net
//!
//! The TCP serving surface of the INSQ system. The paper's INS protocol
//! is explicitly a client/server *communication-minimisation* scheme —
//! the server ships `R ∪ I(R)` so the moving client can self-validate —
//! and this crate turns the in-process fleet engine into an actual
//! service, so the model-level communication counters correspond to
//! real bytes on a real socket:
//!
//! * [`wire`] — a dependency-free, versioned, length-prefixed binary
//!   codec ([`Encode`]/[`Decode`], no serde) for the six-message
//!   protocol: `Register`, `PositionUpdate`, `Deregister` (client →
//!   server), `KnnResult`, `EpochNotify`, `Error` (server → client).
//!   Decoding never panics or over-allocates on untrusted bytes.
//! * [`WireSpace`] — wire conversions per [`insq_core::Space`]
//!   (positions are validated against the served index; all three
//!   in-tree spaces implement it).
//! * [`NetServer`] — a **readiness-driven reactor** over an
//!   epoch-versioned `World` + `FleetEngine`: one event loop on
//!   non-blocking sockets (an in-tree [`sys::Readiness`] backend —
//!   `epoll` on Linux for O(ready) wakeups, portable `poll(2)` as the
//!   fallback, selectable via [`NetServerConfig::readiness`] or the
//!   `INSQ_READINESS` environment variable; same no-deps discipline as
//!   `crates/compat/`) drives accept → decode → batch → tick → push
//!   with persistent interest registration (register on accept, modify
//!   on write-buffer transitions, deregister on drop).
//!   Sessions map 1:1 to never-reused `QueryId`s;
//!   inbound frames reassemble incrementally ([`FrameBuf`]) across
//!   arbitrary packet boundaries; results and epoch-swap notifications
//!   push through bounded per-session write buffers ([`WriteBuf`]) —
//!   so per-session memory is bounded and live sessions are limited by
//!   file descriptors, not threads. *When* the fleet ticks is an
//!   explicit `TickPolicy` ([`NetServerConfig::policy`]): `Barrier`
//!   (lockstep, deterministic) or `Deadline` (event-driven — stale
//!   sessions are re-served their last result instead of stalling the
//!   fleet).
//! * [`ClientCore`] / [`NetClient`] — the client library, split into a
//!   non-blocking core (`try_send_update` / `poll_event` returning
//!   typed [`ClientEvent`]s, so one thread can drive thousands of
//!   sessions) and the blocking convenience API re-expressed on top,
//!   with wire-byte accounting (the `e_net` experiment reports measured
//!   bytes/tick next to the paper's `comm` counter).
//!
//! ## Determinism
//!
//! Under the default `Barrier` policy the reactor ticks the whole fleet
//! only when every live session has a fresh position, through the same
//! deterministic sharded engine as the in-process path — so per-session
//! result streams over real TCP are **bit-identical** to
//! `FleetEngine::tick_all` fed the same positions, across delta-epoch
//! swaps and at any worker-thread count (`tests/loopback_soak.rs`
//! asserts exactly this, for the Euclidean and road-network spaces).
//! `Deadline` trades that lockstep for liveness; its semantics are
//! pinned by the engine-level suite in
//! `crates/server/tests/tick_policy.rs`.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use insq_core::Euclidean;
//! use insq_geom::{Aabb, Point};
//! use insq_index::VorTree;
//! use insq_net::{NetClient, NetServer, NetServerConfig};
//! use insq_server::World;
//!
//! let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
//! let pts = (0..100).map(|i| Point::new((i % 10) as f64 * 10.0, (i / 10) as f64 * 10.0 + 0.25)).collect();
//! let world = Arc::new(World::new(VorTree::build(pts, bounds.inflated(10.0)).unwrap()));
//! let server: NetServer<Euclidean> =
//!     NetServer::bind("127.0.0.1:0", Arc::clone(&world), NetServerConfig::default()).unwrap();
//!
//! let mut client = NetClient::connect(server.local_addr()).unwrap();
//! client.register::<Euclidean>(3, 1.6, Point::new(50.0, 50.0)).unwrap();
//! let (epoch, knn, _outcome) = client.next_knn::<Euclidean>().unwrap();
//! assert_eq!((epoch.0, knn.len()), (0, 3));
//!
//! for tick in 1..5 {
//!     client.update::<Euclidean>(Point::new(50.0 + tick as f64, 50.0)).unwrap();
//!     let (_, knn, _) = client.next_knn::<Euclidean>().unwrap();
//!     assert_eq!(knn.len(), 3);
//! }
//! client.deregister().unwrap();
//! server.shutdown();
//! ```

#![warn(missing_docs)]
// `deny`, not `forbid`: the `sys` module opts back in for the
// hand-audited FFI calls (`poll`, `epoll_*`, `get/setrlimit`,
// `clock_gettime`, `setsockopt`) behind the reactor. Everything else
// in the crate still refuses unsafe code.
#![deny(unsafe_code)]

pub mod buffer;
pub mod client;
pub mod server;
pub mod space;
pub mod sys;
pub mod wire;

pub use buffer::{FrameBuf, WriteBuf};
pub use client::{ClientCore, ClientEvent, KnnUpdate, NetClient, NetError};
pub use server::{NetServer, NetServerConfig};
pub use space::{PosError, WireSpace};
pub use sys::ReadinessKind;
pub use wire::{
    Decode, DecodeError, Encode, ErrorCode, Message, Reader, SpaceKind, WireOutcome, WirePos,
    FLAG_UNCERTIFIED, MAX_IDS, MAX_PAYLOAD_LEN, WIRE_VERSION,
};

//! Loopback determinism soak: N clients over **real TCP**, with a
//! mid-run `World::apply` delta epoch, must produce per-client kNN
//! streams **bit-identical** to the in-process `FleetEngine` run of the
//! same `FleetScenario` — for the Euclidean and road-network spaces, at
//! two engine worker-thread counts each and on **every readiness
//! backend this target offers** (`poll` everywhere, `epoll` on Linux —
//! the backends must be observationally interchangeable) — plus the
//! dropped-session / never-reused-`QueryId` regression over a real
//! socket.
//!
//! The protocol makes this well-defined: the server ticks the fleet only
//! when every live session has a fresh position, so driving the clients
//! in lockstep (send all updates, then read all results) pins exactly
//! which server tick every position lands in, and the test can apply the
//! delta epoch at a deterministic tick boundary (after collecting tick
//! `t-1`'s results, before sending tick `t`'s updates).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use insq_core::{DeltaIndex, InsConfig, MovingKnn, TickOutcome};
use insq_index::SiteDelta;
use insq_net::{NetClient, NetServer, NetServerConfig, ReadinessKind, WireOutcome, WireSpace};
use insq_roadnet::{EdgeId, EdgeWeight, NetDelta, NetSiteDelta, SiteIdx, VertexId};
use insq_server::{FleetConfig, FleetEngine, QueryId, SpaceQuery, World};
use insq_workload::{FleetScenario, SpaceWorkload};

/// One client's observed stream: `(epoch, knn wire ids, outcome)` per
/// tick.
type Stream = Vec<(u64, Vec<u32>, WireOutcome)>;

/// The in-process reference: the same scenario through `FleetEngine`
/// directly, recording every client's per-tick result.
fn inproc_streams<S>(
    sc: &FleetScenario,
    fleet_state: &S::Fleet,
    idx0: &Arc<S::Index>,
    threads: usize,
    delta_at: usize,
    delta: &<S::Index as DeltaIndex>::Delta,
) -> Vec<Stream>
where
    S: SpaceWorkload + WireSpace,
    S::Index: DeltaIndex,
    <S::Index as DeltaIndex>::Error: std::fmt::Debug,
{
    let world = Arc::new(World::from_arc(Arc::clone(idx0)));
    let mut engine: FleetEngine<S::Index, SpaceQuery<S>> =
        FleetEngine::new(Arc::clone(&world), FleetConfig { shards: 8, threads });
    let ids: Vec<QueryId> = (0..sc.clients)
        .map(|_| {
            engine.register(
                SpaceQuery::<S>::new(&world, InsConfig::new(sc.k, sc.rho)).expect("valid config"),
            )
        })
        .collect();
    let mut streams: Vec<Stream> = vec![Vec::new(); sc.clients];
    let mut outcomes: Vec<(QueryId, TickOutcome)> = Vec::new();
    for tick in 0..sc.ticks {
        if tick == delta_at {
            world.apply(delta).expect("delta applies");
        }
        let positions: Vec<S::Pos> = (0..sc.clients)
            .map(|c| S::position(sc, fleet_state, c, tick))
            .collect();
        let summary = engine.tick_all_outcomes(|id| positions[id.index()], &mut outcomes);
        let by_id: HashMap<u64, TickOutcome> = outcomes.iter().map(|&(q, o)| (q.0, o)).collect();
        for (c, qid) in ids.iter().enumerate() {
            let q = engine.query(*qid).expect("live");
            let knn: Vec<u32> = q.current_knn().into_iter().map(S::id_to_wire).collect();
            streams[c].push((summary.epoch.0, knn, WireOutcome::from(by_id[&qid.0])));
        }
    }
    streams
}

/// Spin-waits for `cond` (session registration/cleanup is asynchronous
/// on the server side; everything it gates is then deterministic).
fn wait_for(what: &str, cond: impl Fn() -> bool) {
    let t0 = Instant::now();
    while !cond() {
        assert!(
            t0.elapsed() < Duration::from_secs(30),
            "timed out waiting for {what}"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// The TCP run: same scenario, same engine configuration, over
/// loopback sockets in lockstep.
fn tcp_streams<S>(
    sc: &FleetScenario,
    fleet_state: &S::Fleet,
    idx0: &Arc<S::Index>,
    threads: usize,
    delta_at: usize,
    delta: &<S::Index as DeltaIndex>::Delta,
    readiness: ReadinessKind,
) -> Vec<Stream>
where
    S: SpaceWorkload + WireSpace,
    S::Index: DeltaIndex,
    <S::Index as DeltaIndex>::Error: std::fmt::Debug,
{
    let world = Arc::new(World::from_arc(Arc::clone(idx0)));
    let server: NetServer<S> = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&world),
        NetServerConfig {
            fleet: FleetConfig { shards: 8, threads },
            min_clients: sc.clients,
            readiness,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");

    // Sequential connect + registration barrier per client pins the
    // client-index ↔ QueryId mapping.
    let mut clients: Vec<NetClient> = Vec::with_capacity(sc.clients);
    for c in 0..sc.clients {
        let mut cl = NetClient::connect(server.local_addr()).expect("connect");
        cl.register::<S>(sc.k, sc.rho, S::position(sc, fleet_state, c, 0))
            .expect("register");
        wait_for("registration", || server.live_sessions() == c + 1);
        clients.push(cl);
    }

    let mut streams: Vec<Stream> = vec![Vec::new(); sc.clients];
    for tick in 0..sc.ticks {
        if tick == delta_at {
            // All of tick t-1's results are in: the server is idle at the
            // tick boundary, so this lands before tick t everywhere.
            server.world().apply(delta).expect("delta applies");
        }
        if tick > 0 {
            for (c, cl) in clients.iter_mut().enumerate() {
                cl.update::<S>(S::position(sc, fleet_state, c, tick))
                    .expect("update");
            }
        }
        for (c, cl) in clients.iter_mut().enumerate() {
            let upd = cl.next_result().expect("result");
            // The epoch swap is pushed exactly once, right before the
            // first result of the new epoch.
            let expect_notify: &[u64] = if tick == delta_at { &[1] } else { &[] };
            assert_eq!(upd.notified, expect_notify, "client {c} tick {tick}");
            streams[c].push((upd.epoch, upd.ids, upd.outcome));
        }
    }

    for cl in &mut clients {
        cl.deregister().expect("clean close");
    }
    wait_for("drain", || server.live_sessions() == 0);
    let (bytes_in, bytes_out) = server.wire_bytes();
    assert!(bytes_in > 0 && bytes_out > 0, "bytes actually moved");
    server.shutdown();
    streams
}

/// Full protocol: TCP streams must equal the in-process streams
/// bit-for-bit, at every thread count asked for.
fn soak<S>(sc: &FleetScenario, make_delta: impl Fn(&S::Index) -> <S::Index as DeltaIndex>::Delta)
where
    S: SpaceWorkload + WireSpace,
    S::Index: DeltaIndex,
    <S::Index as DeltaIndex>::Error: std::fmt::Debug,
{
    let fleet_state = S::make_fleet(sc);
    let idx0 = Arc::new(S::build_index(sc, &fleet_state, 0));
    let delta = make_delta(&idx0);
    let delta_at = sc.ticks / 2;

    let reference = inproc_streams::<S>(sc, &fleet_state, &idx0, 1, delta_at, &delta);
    for threads in [1usize, 4] {
        let inproc = inproc_streams::<S>(sc, &fleet_state, &idx0, threads, delta_at, &delta);
        assert_eq!(
            inproc, reference,
            "in-process determinism at {threads} threads"
        );
        for backend in backend_kinds() {
            let tcp = tcp_streams::<S>(sc, &fleet_state, &idx0, threads, delta_at, &delta, backend);
            for (c, (got, want)) in tcp.iter().zip(reference.iter()).enumerate() {
                assert_eq!(
                    got, want,
                    "TCP stream diverged for client {c} at {threads} engine threads \
                     on the {backend:?} backend"
                );
            }
        }
    }
}

/// Every readiness backend available on this target.
fn backend_kinds() -> Vec<ReadinessKind> {
    #[cfg(target_os = "linux")]
    return vec![ReadinessKind::Poll, ReadinessKind::Epoll];
    #[cfg(not(target_os = "linux"))]
    return vec![ReadinessKind::Poll];
}

fn euclidean_scenario() -> FleetScenario {
    FleetScenario {
        clients: 10,
        n: 400,
        k: 4,
        ticks: 30,
        updates: vec![],
        seed: 20160716,
        ..Default::default()
    }
}

#[test]
fn euclidean_tcp_streams_match_in_process_across_delta_epoch() {
    soak::<insq_core::Euclidean>(&euclidean_scenario(), |_idx| SiteDelta {
        added: vec![
            insq_geom::Point::new(41.5, 58.25),
            insq_geom::Point::new(77.0, 12.5),
        ],
        removed: vec![insq_voronoi::SiteId(7), insq_voronoi::SiteId(120)],
    });
}

#[test]
fn network_tcp_streams_match_in_process_across_delta_epoch() {
    let sc = FleetScenario {
        clients: 6,
        n: 90,
        k: 3,
        ticks: 20,
        speed: 0.25,
        updates: vec![],
        seed: 20160717,
        ..euclidean_scenario()
    };
    soak::<insq_core::Network>(&sc, |idx| {
        // Insert a site at the first free vertex, remove site 1 — both
        // derived deterministically from the shared initial snapshot —
        // and congest two edges 1.8x, so the mid-run epoch is a full
        // traffic delta (site churn + re-weights) over the wire.
        let free = (0..idx.net.num_vertices() as u32)
            .map(VertexId)
            .find(|&v| idx.sites.site_at(v).is_none())
            .expect("a free vertex exists");
        NetDelta::from(NetSiteDelta {
            added: vec![free],
            removed: vec![SiteIdx(1)],
        })
        .with_weights(vec![
            EdgeWeight::scaled(&idx.net, EdgeId(0), 1.8),
            EdgeWeight::scaled(&idx.net, EdgeId(3), 1.8),
        ])
    });
}

/// The "QueryIds are never reused" invariant over a real socket: a
/// session dropped mid-run (raw disconnect, no `Deregister`) frees its
/// query, the surviving sessions' streams and statistics are unaffected
/// (bit-identical to an in-process run doing the same deregistration),
/// and a later registration gets a *fresh* id.
#[test]
fn dropped_tcp_session_keeps_survivor_streams_and_ids_stable() {
    type S = insq_core::Euclidean;
    let sc = FleetScenario {
        clients: 6,
        n: 300,
        k: 3,
        ticks: 20,
        updates: vec![],
        seed: 20160718,
        ..Default::default()
    };
    let drop_client = 2usize;
    let drop_at = 10usize; // ticks the dropped client participates in
    let late_client = sc.clients; // joins for ticks drop_at..
                                  // One spare trajectory for the late client (per-client trajectories
                                  // derive from the client index alone, so 0..clients are unchanged).
    let sc_fleet = FleetScenario {
        clients: sc.clients + 1,
        ..sc.clone()
    };
    let fleet_state = <S as SpaceWorkload>::make_fleet(&sc_fleet);
    let idx0 = Arc::new(<S as SpaceWorkload>::build_index(&sc, &fleet_state, 0));

    // ---- In-process reference doing the same mid-run churn.
    let world = Arc::new(World::from_arc(Arc::clone(&idx0)));
    let mut engine: FleetEngine<<S as insq_core::Space>::Index, SpaceQuery<S>> = FleetEngine::new(
        Arc::clone(&world),
        FleetConfig {
            shards: 4,
            threads: 2,
        },
    );
    for _ in 0..sc.clients {
        engine.register(SpaceQuery::<S>::new(&world, InsConfig::new(sc.k, sc.rho)).unwrap());
    }
    let mut ref_streams: Vec<Stream> = vec![Vec::new(); sc.clients + 1];
    let mut outcomes = Vec::new();
    for tick in 0..sc.ticks {
        if tick == drop_at {
            let gone = engine.deregister(QueryId(drop_client as u64));
            assert!(gone.is_some());
            let late = engine
                .register(SpaceQuery::<S>::new(&world, InsConfig::new(sc.k, sc.rho)).unwrap());
            assert_eq!(late, QueryId(sc.clients as u64), "fresh id, never reused");
        }
        let positions: Vec<_> = (0..=sc.clients)
            .map(|c| <S as SpaceWorkload>::position(&sc, &fleet_state, c, tick))
            .collect();
        let summary = engine.tick_all_outcomes(|id| positions[id.index()], &mut outcomes);
        let by_id: HashMap<u64, TickOutcome> = outcomes.iter().map(|&(q, o)| (q.0, o)).collect();
        for c in 0..=sc.clients {
            if c == drop_client && tick >= drop_at {
                continue;
            }
            let Some(q) = engine.query(QueryId(c as u64)) else {
                continue; // the late client before drop_at
            };
            let knn: Vec<u32> = q
                .current_knn()
                .into_iter()
                .map(<S as WireSpace>::id_to_wire)
                .collect();
            ref_streams[c].push((summary.epoch.0, knn, WireOutcome::from(by_id[&(c as u64)])));
        }
    }
    let ref_stats = engine.stats();

    // ---- The same churn over TCP.
    let world = Arc::new(World::from_arc(Arc::clone(&idx0)));
    let server: NetServer<S> = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&world),
        NetServerConfig {
            fleet: FleetConfig {
                shards: 4,
                threads: 2,
            },
            min_clients: sc.clients,
            ..NetServerConfig::default()
        },
    )
    .unwrap();
    let mut clients: Vec<Option<NetClient>> = Vec::new();
    for c in 0..sc.clients {
        let mut cl = NetClient::connect(server.local_addr()).unwrap();
        cl.register::<S>(
            sc.k,
            sc.rho,
            <S as SpaceWorkload>::position(&sc, &fleet_state, c, 0),
        )
        .unwrap();
        wait_for("registration", || server.live_sessions() == c + 1);
        clients.push(Some(cl));
    }
    assert_eq!(
        server.query_ids(),
        (0..sc.clients as u64).map(QueryId).collect::<Vec<_>>()
    );

    let mut tcp_streams: Vec<Stream> = vec![Vec::new(); sc.clients + 1];
    for tick in 0..sc.ticks {
        if tick == drop_at {
            // Raw disconnect — no Deregister frame. The server must
            // notice, deregister QueryId(drop_client), and keep ticking
            // the survivors.
            clients[drop_client] = None;
            wait_for("drop cleanup", || server.live_sessions() == sc.clients - 1);
            let mut ids = server.query_ids();
            assert!(!ids.contains(&QueryId(drop_client as u64)), "id freed");
            // A new session gets a fresh id — never drop_client's.
            let mut late = NetClient::connect(server.local_addr()).unwrap();
            late.register::<S>(
                sc.k,
                sc.rho,
                <S as SpaceWorkload>::position(&sc, &fleet_state, late_client, tick),
            )
            .unwrap();
            wait_for("late registration", || server.live_sessions() == sc.clients);
            ids = server.query_ids();
            assert!(ids.contains(&QueryId(sc.clients as u64)), "fresh id");
            assert!(!ids.contains(&QueryId(drop_client as u64)), "no reuse");
            clients.push(Some(late));
        }
        for (c, slot) in clients.iter_mut().enumerate() {
            let Some(cl) = slot else { continue };
            let pos_index = if c == sc.clients { late_client } else { c };
            // The late client's registration already carried this
            // tick's position.
            if tick > 0 && !(c == sc.clients && tick == drop_at) {
                cl.update::<S>(<S as SpaceWorkload>::position(
                    &sc,
                    &fleet_state,
                    pos_index,
                    tick,
                ))
                .unwrap();
            }
        }
        for (c, slot) in clients.iter_mut().enumerate() {
            let Some(cl) = slot else { continue };
            let stream_index = if c == sc.clients { late_client } else { c };
            let upd = cl.next_result().expect("result");
            tcp_streams[stream_index].push((upd.epoch, upd.ids, upd.outcome));
        }
    }

    assert_eq!(tcp_streams, ref_streams, "survivor + late streams");
    // Statistics merge per shard, in shard order, exactly as in-process.
    let tcp_stats = server.stats();
    assert_eq!(tcp_stats.per_shard, ref_stats.per_shard, "shard merge");
    assert_eq!(tcp_stats.total, ref_stats.total, "fleet totals");
    assert_eq!(tcp_stats.queries, ref_stats.queries);
    server.shutdown();
}

//! Malformed-input fuzzing for the wire codec: on truncated frames,
//! wrong version bytes, absurd length prefixes, bit flips and plain
//! random byte soup, the decoder must return `Err` — it must never
//! panic and never allocate more than the (bounded) input it was given.
//!
//! All inputs derive from a fixed-seed RNG, so a failure reproduces
//! exactly. Panics would propagate and fail the test harness, so simply
//! *calling* the decoder on hostile bytes is the assertion that none
//! exist; allocation is bounded structurally (every length prefix is
//! checked against both its cap and the remaining input before any
//! buffer is reserved), which the absurd-length cases exercise.

use std::io::Cursor;

use insq_net::wire::{read_frame, read_message, Encode, Message, MAX_PAYLOAD_LEN, WIRE_VERSION};
use insq_net::{DecodeError, ErrorCode, SpaceKind, WireOutcome, WirePos};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A corpus of one valid message per type (and per position variant).
fn corpus() -> Vec<Message> {
    vec![
        Message::Register {
            space: SpaceKind::Euclidean,
            k: 5,
            rho: 1.6,
            pos: WirePos::Point { x: 12.5, y: -3.25 },
        },
        Message::Register {
            space: SpaceKind::Network,
            k: 3,
            rho: 2.0,
            pos: WirePos::OnEdge {
                edge: 17,
                offset: 4.5,
            },
        },
        Message::PositionUpdate {
            pos: WirePos::Vertex(123_456),
        },
        Message::Deregister,
        Message::KnnResult {
            epoch: 42,
            ids: vec![9, 1, 7, 0, u32::MAX],
            outcome: WireOutcome::LocalRerank,
            flags: insq_net::wire::FLAG_UNCERTIFIED,
        },
        Message::EpochNotify { epoch: u64::MAX },
        Message::Error {
            code: ErrorCode::Overloaded,
            detail: "write queue full".to_string(),
        },
    ]
}

#[test]
fn every_strict_prefix_of_a_valid_payload_is_an_error() {
    for msg in corpus() {
        let frame = msg.encode_frame();
        let payload = &frame[4..];
        for cut in 0..payload.len() {
            let res = Message::decode_payload(&payload[..cut]);
            assert!(
                res.is_err(),
                "prefix {cut}/{} of {msg:?} decoded to {res:?}",
                payload.len()
            );
        }
    }
}

#[test]
fn appended_garbage_is_trailing_bytes() {
    for msg in corpus() {
        let frame = msg.encode_frame();
        let mut payload = frame[4..].to_vec();
        payload.push(0xAA);
        assert_eq!(
            Message::decode_payload(&payload),
            Err(DecodeError::TrailingBytes { extra: 1 }),
            "message {msg:?}"
        );
    }
}

#[test]
fn wrong_version_bytes_are_rejected() {
    for msg in corpus() {
        let frame = msg.encode_frame();
        let mut payload = frame[4..].to_vec();
        for bad in [0u8, WIRE_VERSION + 1, 0x7F, 0xFF] {
            payload[0] = bad;
            assert_eq!(
                Message::decode_payload(&payload),
                Err(DecodeError::BadVersion(bad))
            );
        }
    }
}

#[test]
fn unknown_tags_are_rejected() {
    for bad in 6u8..=255 {
        let payload = [WIRE_VERSION, bad];
        assert_eq!(
            Message::decode_payload(&payload),
            Err(DecodeError::BadTag(bad))
        );
    }
}

#[test]
fn absurd_frame_length_prefixes_are_rejected_without_allocating() {
    // Length prefixes far beyond MAX_PAYLOAD_LEN (up to u32::MAX ≈ 4 GiB)
    // must be refused before any buffer is reserved — if the decoder
    // trusted them, this test would OOM or crawl, not finish instantly.
    for len in [
        MAX_PAYLOAD_LEN as u32 + 1,
        1 << 20,
        1 << 24,
        1 << 30,
        u32::MAX,
    ] {
        let mut wire = Vec::new();
        len.encode(&mut wire);
        wire.extend_from_slice(&[0u8; 64]);
        let err = read_frame(&mut Cursor::new(wire.as_slice())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "len {len}");
    }
    // Below the version+tag minimum: also structurally invalid.
    for len in [0u32, 1] {
        let mut wire = Vec::new();
        len.encode(&mut wire);
        wire.push(0);
        let err = read_frame(&mut Cursor::new(wire.as_slice())).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "len {len}");
    }
}

#[test]
fn in_bounds_length_prefix_with_missing_bytes_is_eof_not_hang() {
    // A legal-looking length whose bytes never arrive: clean I/O error.
    let mut wire = Vec::new();
    1_000u32.encode(&mut wire);
    wire.extend_from_slice(&[1u8; 10]);
    let err = read_frame(&mut Cursor::new(wire.as_slice())).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    // EOF mid-length-prefix is an error too (not a silent None).
    let err = read_frame(&mut Cursor::new(&[0x10u8, 0x00][..])).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

#[test]
fn absurd_ids_and_detail_counts_are_rejected_against_remaining_input() {
    // KnnResult whose ids count claims far more than the payload holds.
    for claim in [100u32, 10_000, 1 << 16, u32::MAX] {
        let mut payload = Vec::new();
        WIRE_VERSION.encode(&mut payload);
        3u8.encode(&mut payload); // KnnResult
        0u64.encode(&mut payload); // epoch
        claim.encode(&mut payload); // ids count
        payload.extend_from_slice(&[0u8; 12]); // far fewer bytes than claimed
        assert!(
            matches!(
                Message::decode_payload(&payload),
                Err(DecodeError::LengthOutOfBounds { .. })
            ),
            "claim {claim}"
        );
    }
    // Error whose detail length outruns the payload.
    for claim in [64u32, 1 << 10, u32::MAX] {
        let mut payload = Vec::new();
        WIRE_VERSION.encode(&mut payload);
        5u8.encode(&mut payload); // Error
        0u8.encode(&mut payload); // code
        claim.encode(&mut payload); // detail length
        payload.extend_from_slice(&[b'x'; 8]);
        assert!(
            matches!(
                Message::decode_payload(&payload),
                Err(DecodeError::LengthOutOfBounds { .. })
            ),
            "claim {claim}"
        );
    }
}

#[test]
fn invalid_utf8_details_are_rejected() {
    let mut payload = Vec::new();
    WIRE_VERSION.encode(&mut payload);
    5u8.encode(&mut payload); // Error
    0u8.encode(&mut payload); // code
    4u32.encode(&mut payload); // detail length
    payload.extend_from_slice(&[0xFF, 0xFE, 0x80, 0x41]);
    assert_eq!(Message::decode_payload(&payload), Err(DecodeError::BadUtf8));
}

#[test]
fn single_byte_corruptions_never_panic() {
    for msg in corpus() {
        let frame = msg.encode_frame();
        let payload = &frame[4..];
        for at in 0..payload.len() {
            for flip in [0x01u8, 0x80, 0xFF] {
                let mut corrupted = payload.to_vec();
                corrupted[at] ^= flip;
                // Ok (the corruption landed in a don't-care bit pattern)
                // or Err are both fine; panicking is the only failure.
                let _ = Message::decode_payload(&corrupted);
            }
        }
    }
}

#[test]
fn random_byte_soup_never_panics() {
    let mut rng = StdRng::seed_from_u64(0x1A5E_2016);
    for case in 0..4_000 {
        let len = rng.random_range(0usize..256);
        let mut soup: Vec<u8> = (0..len)
            .map(|_| rng.random_range(0u32..256) as u8)
            .collect();
        let _ = Message::decode_payload(&soup);

        // Again with a valid version byte up front, to fuzz deeper than
        // the version check.
        if soup.is_empty() {
            soup.push(WIRE_VERSION);
        } else {
            soup[0] = WIRE_VERSION;
        }
        let _ = Message::decode_payload(&soup);

        // And through the framed stream reader: arbitrary bytes must
        // produce messages or clean errors, never a panic or a hang.
        let mut cursor = Cursor::new(soup.as_slice());
        for _ in 0..8 {
            match read_message(&mut cursor) {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
        let _ = case;
    }
}

//! Reactor robustness: frames split arbitrarily across readiness
//! wakeups.
//!
//! The event loop never sees whole frames — the kernel hands it
//! whatever bytes happen to be in the socket buffer. These tests prove
//! the incremental reassembly path ([`FrameBuf`]) and the full reactor
//! behind it survive every chunking:
//!
//! * property-style: random message sequences cut at random (and
//!   byte-at-a-time) boundaries reassemble bit-identically;
//! * hostile: random byte soup and bit-flipped valid streams produce
//!   clean `Err`s, never panics, and never buffer beyond the hard
//!   frame bound;
//! * end-to-end: a client that trickles its frames one byte per write
//!   (plus a no-op `TcpStream` coalescing case that concatenates many
//!   frames into one write) still gets bit-exact results from a live
//!   `NetServer`, and a non-blocking [`ClientCore`] drives a whole
//!   session through `poll_event` without ever blocking;
//! * backpressure: a client that stops reading while large results
//!   accumulate forces the reactor through its persistent-interest
//!   `POLLOUT` arm/disarm transitions, and still drains bit-identically
//!   once it resumes.
//!
//! Every end-to-end case runs against each readiness backend this
//! target offers (`poll` everywhere, `epoll` on Linux). All inputs
//! derive from fixed-seed RNGs, so a failure reproduces exactly.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use insq_core::Euclidean;
use insq_geom::{Aabb, Point};
use insq_index::VorTree;
use insq_net::wire::{Message, MAX_PAYLOAD_LEN};
use insq_net::{
    sys, ClientCore, ClientEvent, FrameBuf, NetClient, NetServer, NetServerConfig, ReadinessKind,
    SpaceKind, WireOutcome, WirePos,
};
use insq_server::World;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn corpus(rng: &mut StdRng, len: usize) -> Vec<Message> {
    (0..len)
        .map(|i| match rng.random_range(0..5u32) {
            0 => Message::Register {
                space: SpaceKind::Euclidean,
                k: rng.random_range(1..16u32),
                rho: 1.0 + f64::from(rng.random_range(0..200u32)) / 100.0,
                pos: WirePos::Point {
                    x: f64::from(rng.random_range(0..1000u32)) / 7.0,
                    y: f64::from(rng.random_range(0..1000u32)) / 11.0,
                },
            },
            1 => Message::PositionUpdate {
                pos: WirePos::OnEdge {
                    edge: rng.random_range(0..10_000u32),
                    offset: f64::from(rng.random_range(0..500u32)) / 13.0,
                },
            },
            2 => Message::KnnResult {
                epoch: i as u64,
                ids: (0..rng.random_range(0..64u32)).collect(),
                outcome: WireOutcome::Swap,
                flags: 0,
            },
            3 => Message::EpochNotify { epoch: i as u64 },
            _ => Message::Deregister,
        })
        .collect()
}

#[test]
fn random_chunkings_reassemble_bit_identically() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for round in 0..50 {
        let msgs = corpus(&mut rng, 40);
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&m.encode_frame());
        }
        let mut fb = FrameBuf::new();
        let mut got = Vec::new();
        let mut at = 0usize;
        while at < wire.len() {
            let take = (rng.random_range(1..64usize)).min(wire.len() - at);
            fb.extend(&wire[at..at + take]);
            at += take;
            while let Some((m, _)) = fb.next_message().unwrap_or_else(|e| {
                panic!("round {round}: decode failed mid-stream at byte {at}: {e}")
            }) {
                got.push(m);
            }
            // The reassembly buffer never holds more than one partial
            // frame plus the chunk that extended it.
            assert!(
                fb.buffered() <= 4 + MAX_PAYLOAD_LEN + 64,
                "round {round}: buffered {} bytes",
                fb.buffered()
            );
        }
        assert_eq!(got, msgs, "round {round}");
        assert!(fb.at_frame_boundary(), "round {round}: trailing bytes");
    }
}

#[test]
fn random_byte_soup_never_panics_or_overbuffers() {
    let mut rng = StdRng::seed_from_u64(0xBADF00D);
    for _ in 0..200 {
        let mut fb = FrameBuf::new();
        let n = rng.random_range(1..2048usize);
        let soup: Vec<u8> = (0..n).map(|_| rng.random_range(0..=255u32) as u8).collect();
        for chunk in soup.chunks(rng.random_range(1..97usize)) {
            fb.extend(chunk);
            // Calling the decoder IS the assertion: hostile bytes may
            // yield messages or errors, never a panic. After the first
            // error framing is lost, which is exactly when a real
            // session closes — stop like the reactor does.
            match fb.next_message() {
                Ok(_) => {}
                Err(_) => break,
            }
        }
        assert!(fb.high_water() <= 4 + MAX_PAYLOAD_LEN + 2048);
    }
}

#[test]
fn bit_flips_in_valid_streams_error_cleanly() {
    let mut rng = StdRng::seed_from_u64(0x5EED);
    let msgs = corpus(&mut rng, 10);
    let mut wire = Vec::new();
    for m in &msgs {
        wire.extend_from_slice(&m.encode_frame());
    }
    for _ in 0..300 {
        let mut mutated = wire.clone();
        let at = rng.random_range(0..mutated.len());
        mutated[at] ^= 1 << rng.random_range(0..8u32);
        let mut fb = FrameBuf::new();
        fb.extend(&mutated);
        // Drain until quiet or the first error; no panic, no runaway.
        for _ in 0..msgs.len() + 1 {
            match fb.next_message() {
                Ok(Some(_)) => {}
                Ok(None) | Err(_) => break,
            }
        }
    }
}

/// Every readiness backend available on this target.
fn backend_kinds() -> Vec<ReadinessKind> {
    #[cfg(target_os = "linux")]
    return vec![ReadinessKind::Poll, ReadinessKind::Epoll];
    #[cfg(not(target_os = "linux"))]
    return vec![ReadinessKind::Poll];
}

fn euclid_world(n: usize) -> Arc<World<VorTree>> {
    let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let pts = (0..n)
        .map(|i| {
            Point::new(
                (i % 10) as f64 * 10.0 + 0.25,
                (i / 10) as f64 * 10.0 + 0.125 * (i % 7) as f64,
            )
        })
        .collect();
    Arc::new(World::new(
        VorTree::build(pts, bounds.inflated(10.0)).unwrap(),
    ))
}

/// A client whose every frame reaches the server one byte per `write`
/// call must see the same results as a well-behaved one — on every
/// readiness backend.
#[test]
fn byte_at_a_time_client_is_served_bit_identically() {
    for kind in backend_kinds() {
        byte_at_a_time_roundtrip(kind);
    }
}

fn byte_at_a_time_roundtrip(readiness: ReadinessKind) {
    let world = euclid_world(100);
    let server: NetServer<Euclidean> = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&world),
        NetServerConfig {
            readiness,
            ..NetServerConfig::with_min_clients(2)
        },
    )
    .unwrap();

    // Reference client on the same server, same trajectory.
    let mut smooth = NetClient::connect(server.local_addr()).unwrap();
    // Trickling client: raw socket, frames written one byte at a time.
    let mut trickle = TcpStream::connect(server.local_addr()).unwrap();
    trickle.set_nodelay(true).unwrap();

    let pos =
        |tick: usize, phase: f64| Point::new(30.0 + tick as f64 + phase, 40.0 + 0.5 * tick as f64);
    let register = Message::Register {
        space: SpaceKind::Euclidean,
        k: 3,
        rho: 1.6,
        pos: WirePos::Point {
            x: pos(0, 0.0).x,
            y: pos(0, 0.0).y,
        },
    };
    for byte in register.encode_frame() {
        trickle.write_all(&[byte]).unwrap();
    }
    smooth.register::<Euclidean>(3, 1.6, pos(0, 0.0)).unwrap();

    let mut trickle_rx = FrameBuf::new();
    let mut trickle_results: Vec<(u64, Vec<u32>)> = Vec::new();
    let mut smooth_results: Vec<(u64, Vec<u32>)> = Vec::new();

    use std::io::Read;
    trickle.set_nonblocking(true).unwrap();
    let read_trickle =
        |trickle: &mut TcpStream, trickle_rx: &mut FrameBuf, out: &mut Vec<(u64, Vec<u32>)>| {
            let mut chunk = [0u8; 4096];
            loop {
                match trickle.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => {
                        trickle_rx.extend(&chunk[..n]);
                        while let Some((msg, _)) = trickle_rx.next_message().unwrap() {
                            if let Message::KnnResult { epoch, ids, .. } = msg {
                                out.push((epoch, ids));
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => panic!("trickle read: {e}"),
                }
            }
        };

    for tick in 1..20usize {
        // The smooth client's blocking next_result drives the barrier:
        // once it has its result, the trickler's is on the wire too.
        let upd = smooth.next_result().unwrap();
        smooth_results.push((upd.epoch, upd.ids));
        let deadline = Instant::now() + Duration::from_secs(10);
        while trickle_results.len() < tick {
            assert!(Instant::now() < deadline, "trickle result {tick} missing");
            read_trickle(&mut trickle, &mut trickle_rx, &mut trickle_results);
            std::thread::sleep(Duration::from_millis(1));
        }

        let update = Message::PositionUpdate {
            pos: WirePos::Point {
                x: pos(tick, 1.0).x,
                y: pos(tick, 1.0).y,
            },
        };
        for byte in update.encode_frame() {
            trickle.write_all(&[byte]).unwrap();
        }
        smooth.update::<Euclidean>(pos(tick, 0.0)).unwrap();
    }
    let upd = smooth.next_result().unwrap();
    smooth_results.push((upd.epoch, upd.ids));
    let deadline = Instant::now() + Duration::from_secs(10);
    while trickle_results.len() < 20 {
        assert!(Instant::now() < deadline, "final trickle result missing");
        read_trickle(&mut trickle, &mut trickle_rx, &mut trickle_results);
        std::thread::sleep(Duration::from_millis(1));
    }

    // Both clients saw every tick at the same epochs; the trickler's
    // streams are complete and well-formed despite 1-byte framing.
    assert_eq!(trickle_results.len(), smooth_results.len());
    for (t, ((te, tids), (se, sids))) in trickle_results.iter().zip(&smooth_results).enumerate() {
        assert_eq!(te, se, "epoch diverged at tick {t}");
        assert_eq!(tids.len(), sids.len(), "k diverged at tick {t}");
    }
    drop(trickle);
    server.shutdown();
}

/// A non-blocking [`ClientCore`] session driven entirely through
/// `try_send_update` / `poll_event` — no blocking call anywhere, on
/// every readiness backend.
#[test]
fn client_core_drives_a_session_without_blocking() {
    for kind in backend_kinds() {
        client_core_roundtrip(kind);
    }
}

fn client_core_roundtrip(readiness: ReadinessKind) {
    let world = euclid_world(100);
    let server: NetServer<Euclidean> = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&world),
        NetServerConfig {
            readiness,
            ..NetServerConfig::default()
        },
    )
    .unwrap();

    let mut core = ClientCore::connect(server.local_addr()).unwrap();
    core.try_send(&Message::Register {
        space: SpaceKind::Euclidean,
        k: 4,
        rho: 1.6,
        pos: WirePos::Point { x: 50.0, y: 50.0 },
    })
    .unwrap();

    let mut results = 0usize;
    let deadline = Instant::now() + Duration::from_secs(20);
    while results < 10 {
        assert!(Instant::now() < deadline, "stalled at {results} results");
        match core.poll_event().unwrap() {
            Some(ClientEvent::Result { epoch, ids, .. }) => {
                assert_eq!(epoch, 0);
                assert_eq!(ids.len(), 4);
                results += 1;
                if results < 10 {
                    core.try_send_update::<Euclidean>(Point::new(50.0 + results as f64, 50.0))
                        .unwrap();
                }
            }
            Some(ClientEvent::Closed) => panic!("server closed early"),
            Some(other) => panic!("unexpected event {other:?}"),
            None => {
                let _ = core.flush().unwrap();
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }
    let (sent, received) = core.wire_bytes();
    assert!(sent > 0 && received > 0);
    server.shutdown();
}

/// A dense uniform world (1024 sites inside the 0..100 bounds) so a
/// k=512 query produces multi-kilobyte result frames.
#[cfg(unix)]
fn dense_world() -> Arc<World<VorTree>> {
    let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let pts = (0..1024)
        .map(|i| {
            Point::new(
                (i % 32) as f64 * 3.0 + 1.0,
                (i / 32) as f64 * 3.0 + 1.0 + 0.01 * (i % 5) as f64,
            )
        })
        .collect();
    Arc::new(World::new(
        VorTree::build(pts, bounds.inflated(10.0)).unwrap(),
    ))
}

/// Backpressure through the persistent-interest write path: a client
/// with a floor-sized kernel receive buffer stops reading while ~150
/// large (k=512, ≈2 KiB) results are pushed at it. The socket clogs,
/// the reactor must buffer in its per-session [`insq_net::WriteBuf`]
/// and arm `POLLOUT` (then disarm it once the drain completes — a
/// stuck-armed arm would busy-wake, a never-armed one would stall the
/// drain forever). When the client finally reads, its stream must be
/// bit-identical to a well-behaved client on the same trajectory.
#[cfg(unix)]
#[test]
fn stalled_reader_arms_pollout_and_drains_bit_identically() {
    for kind in backend_kinds() {
        stalled_reader_roundtrip(kind);
    }
}

#[cfg(unix)]
fn stalled_reader_roundtrip(readiness: ReadinessKind) {
    const TICKS: usize = 150;
    let world = dense_world();
    let server: NetServer<Euclidean> = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&world),
        NetServerConfig {
            readiness,
            // Lock the kernel send buffer small: the ~300 KiB backlog
            // must surface in the reactor's WriteBuf, not be silently
            // absorbed by sndbuf autotuning.
            sndbuf: Some(4096),
            ..NetServerConfig::with_min_clients(2)
        },
    )
    .unwrap();

    let mut smooth = NetClient::connect(server.local_addr()).unwrap();
    let mut stalled = TcpStream::connect(server.local_addr()).unwrap();
    stalled.set_nodelay(true).unwrap();
    // Lock the stalled socket's receive buffer at the window already
    // granted during the handshake (shrinking below it would make the
    // kernel *drop* in-window segments, and the drain would then crawl
    // on retransmission timers). The window now closes cleanly after
    // ~128 KiB; the rest of the ~300 KiB backlog has nowhere to go but
    // the reactor's WriteBuf.
    sys::set_recv_buffer(sys::raw_fd(&stalled), 64 * 1024).unwrap();

    let traj = |tick: usize| Point::new(10.0 + 0.4 * tick as f64, 20.0 + 0.35 * tick as f64);
    let register = Message::Register {
        space: SpaceKind::Euclidean,
        k: 512,
        rho: 1.6,
        pos: WirePos::Point {
            x: traj(0).x,
            y: traj(0).y,
        },
    };
    stalled.write_all(&register.encode_frame()).unwrap();
    smooth.register::<Euclidean>(512, 1.6, traj(0)).unwrap();

    // Lockstep drive under the Barrier policy: the smooth client's
    // blocking next_result paces the ticks; the stalled client sends
    // every position update but never reads a byte back.
    let mut smooth_results: Vec<(u64, Vec<u32>)> = Vec::new();
    for tick in 0..TICKS {
        let upd = smooth.next_result().unwrap();
        assert_eq!(upd.ids.len(), 512, "k at tick {tick}");
        smooth_results.push((upd.epoch, upd.ids));
        if tick + 1 < TICKS {
            let p = traj(tick + 1);
            let update = Message::PositionUpdate {
                pos: WirePos::Point { x: p.x, y: p.y },
            };
            stalled.write_all(&update.encode_frame()).unwrap();
            smooth.update::<Euclidean>(p).unwrap();
        }
    }

    // The clog showed up as reactor-side buffering (POLLOUT was armed),
    // far beyond what any smooth session ever holds.
    assert!(
        server.buffer_high_water() > 32 * 1024,
        "expected the stalled session to buffer server-side, high water was {} bytes \
         on the {readiness:?} backend",
        server.buffer_high_water()
    );

    // Resume reading: the buffered backlog must drain completely and
    // decode to the exact stream the smooth client saw (identical
    // trajectory => identical kNN ids, tick for tick). Re-enlarge the
    // receive buffer first — draining 300 KiB through a floor-sized
    // window crawls on retransmission timers, which is TCP's problem,
    // not the reactor's.
    sys::set_recv_buffer(sys::raw_fd(&stalled), 1 << 20).unwrap();
    use std::io::Read;
    stalled
        .set_read_timeout(Some(Duration::from_secs(30)))
        .unwrap();
    let mut rx = FrameBuf::new();
    let mut stalled_results: Vec<(u64, Vec<u32>)> = Vec::new();
    let mut chunk = [0u8; 16 * 1024];
    while stalled_results.len() < TICKS {
        let n = stalled.read(&mut chunk).expect("drain stalled backlog");
        assert!(n > 0, "server closed before the backlog drained");
        rx.extend(&chunk[..n]);
        while let Some((msg, _)) = rx.next_message().unwrap() {
            if let Message::KnnResult { epoch, ids, .. } = msg {
                stalled_results.push((epoch, ids));
            }
        }
    }
    assert_eq!(
        stalled_results, smooth_results,
        "stalled client's drained stream diverged on the {readiness:?} backend"
    );
    drop(stalled);
    server.shutdown();
}

//! Descriptor-exhaustion regression: a reactor whose `accept(2)` fails
//! with `EMFILE` must **back off**, not spin.
//!
//! With a level-triggered readiness backend the listener stays readable
//! while a connection it cannot accept waits in the backlog, so
//! returning from the accept loop without disarming it re-wakes the
//! reactor immediately — 100% CPU until a descriptor frees up. The fix
//! pauses accepting (`ACCEPT_ERROR_PAUSE`) and disarms the listener for
//! the duration; this test pins both halves of the contract, on every
//! readiness backend:
//!
//! * **liveness**: an established session keeps round-tripping while
//!   the process is out of descriptors and a victim connection sits
//!   un-acceptable in the backlog;
//! * **no spin**: across an idle window mid-starvation the process
//!   burns (far) less CPU time than the wall-clock window — a hot
//!   accept loop on this 1-CPU class of container would burn ~all of
//!   it;
//! * **recovery**: once descriptors free up, the backlogged connection
//!   is accepted and served without reconnecting.
//!
//! One `#[test]` on purpose: the fd hoard is process-global state, and
//! a sibling test running concurrently would see spurious `EMFILE`.

#![cfg(target_os = "linux")]

use std::fs::File;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use insq_core::Euclidean;
use insq_geom::{Aabb, Point};
use insq_index::VorTree;
use insq_net::wire::Message;
use insq_net::{
    sys, FrameBuf, NetClient, NetServer, NetServerConfig, ReadinessKind, SpaceKind, WirePos,
};
use insq_server::World;

const EMFILE: i32 = 24;

fn euclid_world() -> Arc<World<VorTree>> {
    let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let pts = (0..100)
        .map(|i| Point::new((i % 10) as f64 * 10.0 + 0.25, (i / 10) as f64 * 10.0 + 0.5))
        .collect();
    Arc::new(World::new(
        VorTree::build(pts, bounds.inflated(10.0)).unwrap(),
    ))
}

/// Opens `/dev/null` until the process hits `EMFILE`, then returns the
/// hoard. Dropping entries frees descriptors one by one.
fn hoard_all_fds() -> Vec<File> {
    let mut hoard = Vec::new();
    loop {
        match File::open("/dev/null") {
            Ok(f) => hoard.push(f),
            Err(e) => {
                assert_eq!(
                    e.raw_os_error(),
                    Some(EMFILE),
                    "expected EMFILE while hoarding, got {e}"
                );
                return hoard;
            }
        }
        assert!(hoard.len() < 100_000, "fd limit never engaged");
    }
}

#[test]
fn reactor_survives_fd_exhaustion_without_spinning() {
    // Low enough to exhaust with a small hoard; applies to the whole
    // process for both backend passes.
    sys::set_open_file_limit(256).unwrap();

    let backends: Vec<ReadinessKind> = vec![ReadinessKind::Poll, ReadinessKind::Epoll];
    for readiness in backends {
        let world = euclid_world();
        let server: NetServer<Euclidean> = NetServer::bind(
            "127.0.0.1:0",
            Arc::clone(&world),
            NetServerConfig {
                readiness,
                ..NetServerConfig::default()
            },
        )
        .unwrap();

        // Session A is established and registered before the famine.
        let mut a = NetClient::connect(server.local_addr()).unwrap();
        a.register::<Euclidean>(3, 1.6, Point::new(50.0, 50.0))
            .unwrap();
        let first = a.next_result().unwrap();
        assert_eq!(first.ids.len(), 3);

        // Exhaust the process's descriptors, then hand the single
        // descriptor we free back to the *client side* of a new
        // connection: the TCP handshake completes in the listener
        // backlog, but the server's accept(2) has nothing left and
        // fails with EMFILE.
        let mut hoard = hoard_all_fds();
        drop(hoard.pop());
        let mut b = TcpStream::connect(server.local_addr()).unwrap();
        b.set_nodelay(true).unwrap();

        // Liveness: the starved reactor keeps serving session A.
        for tick in 1..4u64 {
            a.update::<Euclidean>(Point::new(50.0 + tick as f64, 50.0))
                .unwrap();
            let upd = a.next_result().unwrap();
            assert_eq!(
                upd.ids.len(),
                3,
                "live session starved out at tick {tick} on {readiness:?}"
            );
        }

        // No spin: over an idle window the whole process must use far
        // less CPU than wall clock. A hot accept/EMFILE loop would use
        // ~the entire window.
        let window = Duration::from_millis(600);
        let cpu0 = sys::process_cpu_time().unwrap();
        std::thread::sleep(window);
        let burned = sys::process_cpu_time().unwrap() - cpu0;
        assert!(
            burned < window / 2,
            "reactor burned {burned:?} CPU over an idle {window:?} starvation window \
             on {readiness:?} — accept loop is spinning"
        );

        // Recovery: free the descriptors; the backlogged connection is
        // accepted (the accept pause expires on its own), registers,
        // and is served alongside A.
        drop(hoard);
        let register = Message::Register {
            space: SpaceKind::Euclidean,
            k: 3,
            rho: 1.6,
            pos: WirePos::Point { x: 30.0, y: 30.0 },
        };
        b.write_all(&register.encode_frame()).unwrap();
        b.set_nonblocking(true).unwrap();

        let mut rx = FrameBuf::new();
        let mut b_results = 0usize;
        let deadline = Instant::now() + Duration::from_secs(20);
        let mut round = 0u64;
        while b_results < 3 {
            assert!(
                Instant::now() < deadline,
                "recovered session got only {b_results} results on {readiness:?}"
            );
            round += 1;
            if round > 1 {
                // Keep B fresh so the barrier never stalls on it once
                // it is registered (ordering of the two updates within
                // a tick is the reactor's problem, not ours).
                let update = Message::PositionUpdate {
                    pos: WirePos::Point {
                        x: 30.0 + round as f64 * 0.1,
                        y: 30.0,
                    },
                };
                b.write_all(&update.encode_frame()).unwrap();
            }
            a.update::<Euclidean>(Point::new(40.0 + round as f64 * 0.1, 50.0))
                .unwrap();
            let upd = a.next_result().unwrap();
            assert_eq!(upd.ids.len(), 3);
            let mut chunk = [0u8; 4096];
            loop {
                match b.read(&mut chunk) {
                    Ok(0) => panic!("server closed the recovered session on {readiness:?}"),
                    Ok(n) => {
                        rx.extend(&chunk[..n]);
                        while let Some((msg, _)) = rx.next_message().unwrap() {
                            if let Message::KnnResult { ids, .. } = msg {
                                assert_eq!(ids.len(), 3);
                                b_results += 1;
                            }
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => panic!("recovered session read: {e}"),
                }
            }
        }
        drop(b);
        server.shutdown();
    }
}

//! Codec round-trip properties: for every message type of the wire
//! protocol, arbitrary values satisfy `decode(encode(m)) == m` — through
//! both the payload codec and the framed I/O layer — including the
//! empty-`ids` and maximum-size edge cases.

use std::io::Cursor;

use insq_net::wire::{
    read_message, Decode, DecodeError, Encode, Message, Reader, MAX_IDS, MAX_PAYLOAD_LEN,
};
use insq_net::{ErrorCode, SpaceKind, WireOutcome, WirePos};
use proptest::prelude::*;

fn arb_pos() -> BoxedStrategy<WirePos> {
    prop_oneof![
        (-1e12f64..1e12, -1e12f64..1e12).prop_map(|(x, y)| WirePos::Point { x, y }),
        (0u32..u32::MAX).prop_map(WirePos::Vertex),
        ((0u32..u32::MAX), (0f64..1e9)).prop_map(|(edge, offset)| WirePos::OnEdge { edge, offset }),
    ]
    .boxed()
}

fn arb_space() -> BoxedStrategy<SpaceKind> {
    prop_oneof![
        Just(SpaceKind::Euclidean),
        Just(SpaceKind::Network),
        Just(SpaceKind::WeightedEuclidean),
    ]
    .boxed()
}

fn arb_outcome() -> BoxedStrategy<WireOutcome> {
    prop_oneof![
        Just(WireOutcome::Valid),
        Just(WireOutcome::Swap),
        Just(WireOutcome::LocalRerank),
        Just(WireOutcome::Recompute),
    ]
    .boxed()
}

fn arb_code() -> BoxedStrategy<ErrorCode> {
    prop_oneof![
        Just(ErrorCode::SpaceMismatch),
        Just(ErrorCode::NotRegistered),
        Just(ErrorCode::AlreadyRegistered),
        Just(ErrorCode::BadConfig),
        Just(ErrorCode::Malformed),
        Just(ErrorCode::BadPosition),
        Just(ErrorCode::Overloaded),
        Just(ErrorCode::Unavailable),
    ]
    .boxed()
}

fn arb_ids() -> BoxedStrategy<Vec<u32>> {
    prop::collection::vec(0u32..u32::MAX, 0..80).boxed()
}

fn arb_detail() -> BoxedStrategy<String> {
    prop::collection::vec(0u32..0xFFFF, 0..60)
        .prop_map(|cs| cs.into_iter().filter_map(char::from_u32).collect())
        .boxed()
}

fn arb_message() -> BoxedStrategy<Message> {
    prop_oneof![
        (arb_space(), 1u32..1_000, 1f64..8.0, arb_pos())
            .prop_map(|(space, k, rho, pos)| Message::Register { space, k, rho, pos }),
        arb_pos().prop_map(|pos| Message::PositionUpdate { pos }),
        Just(Message::Deregister),
        ((0u64..u64::MAX), arb_ids(), arb_outcome(), 0u32..256).prop_map(
            |(epoch, ids, outcome, flags)| Message::KnnResult {
                epoch,
                ids,
                outcome,
                flags: flags as u8,
            }
        ),
        (0u64..u64::MAX).prop_map(|epoch| Message::EpochNotify { epoch }),
        (arb_code(), arb_detail()).prop_map(|(code, detail)| Message::Error { code, detail }),
    ]
    .boxed()
}

/// Round-trips one message through both layers of the codec.
fn roundtrip(msg: &Message) -> Result<(), TestCaseError> {
    // Payload layer.
    let frame = msg.encode_frame();
    prop_assert!(frame.len() <= 4 + MAX_PAYLOAD_LEN);
    let back = Message::decode_payload(&frame[4..]);
    prop_assert_eq!(back, Ok(msg.clone()));
    // Framed I/O layer: message, byte count, then clean EOF.
    let mut cursor = Cursor::new(frame.as_slice());
    let (m, n) = read_message(&mut cursor)
        .expect("valid frame")
        .expect("one frame");
    prop_assert_eq!(&m, msg);
    prop_assert_eq!(n, frame.len());
    prop_assert!(read_message(&mut cursor).expect("eof ok").is_none());
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn register_roundtrips(space in arb_space(), k in 1u32..100_000, rho in 1f64..16.0, pos in arb_pos()) {
        roundtrip(&Message::Register { space, k, rho, pos })?;
    }

    #[test]
    fn position_update_roundtrips(pos in arb_pos()) {
        roundtrip(&Message::PositionUpdate { pos })?;
    }

    #[test]
    fn knn_result_roundtrips(epoch in 0u64..u64::MAX, ids in arb_ids(), outcome in arb_outcome(), flags in 0u32..256) {
        roundtrip(&Message::KnnResult { epoch, ids, outcome, flags: flags as u8 })?;
    }

    #[test]
    fn epoch_notify_roundtrips(epoch in 0u64..u64::MAX) {
        roundtrip(&Message::EpochNotify { epoch })?;
    }

    #[test]
    fn error_roundtrips(code in arb_code(), detail in arb_detail()) {
        roundtrip(&Message::Error { code, detail })?;
    }

    #[test]
    fn any_message_roundtrips(msg in arb_message()) {
        roundtrip(&msg)?;
    }

    // Concatenated frames stream back out one by one, in order.
    #[test]
    fn frame_streams_roundtrip(msgs in prop::collection::vec(arb_message(), 0..8)) {
        let mut wire = Vec::new();
        for m in &msgs {
            wire.extend_from_slice(&m.encode_frame());
        }
        let mut cursor = Cursor::new(wire.as_slice());
        for m in &msgs {
            let (back, _) = read_message(&mut cursor).expect("valid").expect("frame");
            prop_assert_eq!(&back, m);
        }
        prop_assert!(read_message(&mut cursor).expect("eof ok").is_none());
    }
}

#[test]
fn deregister_roundtrips() {
    let frame = Message::Deregister.encode_frame();
    assert_eq!(
        Message::decode_payload(&frame[4..]),
        Ok(Message::Deregister)
    );
}

#[test]
fn empty_ids_roundtrip() {
    let msg = Message::KnnResult {
        epoch: 0,
        ids: vec![],
        outcome: WireOutcome::Valid,
        flags: 0,
    };
    let frame = msg.encode_frame();
    assert_eq!(Message::decode_payload(&frame[4..]), Ok(msg));
}

#[test]
fn max_size_ids_roundtrip() {
    // The largest legal result: MAX_IDS ids still fits a frame.
    let msg = Message::KnnResult {
        epoch: u64::MAX,
        ids: (0..MAX_IDS as u32).collect(),
        outcome: WireOutcome::Recompute,
        flags: insq_net::wire::FLAG_UNCERTIFIED,
    };
    let frame = msg.encode_frame();
    assert!(frame.len() - 4 <= MAX_PAYLOAD_LEN);
    assert_eq!(Message::decode_payload(&frame[4..]), Ok(msg));
}

#[test]
fn one_past_max_ids_is_rejected() {
    // Hand-encode a KnnResult claiming MAX_IDS + 1 ids: the decoder must
    // reject the count against its cap, not trust it.
    let mut payload = Vec::new();
    insq_net::wire::WIRE_VERSION.encode(&mut payload); // version
    3u8.encode(&mut payload); // KnnResult tag
    7u64.encode(&mut payload); // epoch
    ((MAX_IDS + 1) as u32).encode(&mut payload); // ids count: over cap
    for i in 0..(MAX_IDS + 1) as u32 {
        i.encode(&mut payload);
    }
    WireOutcome::Valid.encode(&mut payload);
    assert_eq!(
        Message::decode_payload(&payload),
        Err(DecodeError::LengthOutOfBounds {
            claimed: (MAX_IDS + 1) as u64,
            limit: MAX_IDS,
        })
    );
}

#[test]
fn primitive_codecs_roundtrip_at_extremes() {
    fn rt<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: T) {
        let mut buf = Vec::new();
        v.encode(&mut buf);
        let mut r = Reader::new(&buf);
        assert_eq!(T::decode(&mut r).unwrap(), v);
        assert_eq!(r.remaining(), 0);
    }
    rt(0u8);
    rt(u8::MAX);
    rt(0u32);
    rt(u32::MAX);
    rt(0u64);
    rt(u64::MAX);
    rt(0.0f64);
    rt(-0.0f64);
    rt(f64::MAX);
    rt(f64::MIN_POSITIVE);
    rt(f64::INFINITY);
    rt(f64::NEG_INFINITY);
    rt(String::new());
    rt("κNN ✓".to_string());
    rt(Vec::<u32>::new());
}

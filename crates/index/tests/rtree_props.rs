//! Property-based tests for the R-tree: arbitrary interleavings of bulk
//! load, insert and remove must preserve query correctness against a
//! shadow brute-force model.

use insq_geom::{Aabb, Point};
use insq_index::rtree::Entry;
use insq_index::{RTree, VorTree};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert { x: f64, y: f64 },
    RemoveNth(usize),
    Knn { x: f64, y: f64, k: usize },
    Range { x: f64, y: f64, w: f64, h: f64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Op::Insert { x, y }),
        1 => (0usize..400).prop_map(Op::RemoveNth),
        2 => (0.0f64..100.0, 0.0f64..100.0, 1usize..12)
            .prop_map(|(x, y, k)| Op::Knn { x, y, k }),
        1 => (0.0f64..90.0, 0.0f64..90.0, 1.0f64..40.0, 1.0f64..40.0)
            .prop_map(|(x, y, w, h)| Op::Range { x, y, w, h }),
    ]
}

fn brute_knn(model: &[(Point, u32)], q: Point, k: usize) -> Vec<u32> {
    let mut v: Vec<&(Point, u32)> = model.iter().collect();
    v.sort_by(|a, b| {
        a.0.distance_sq(q)
            .total_cmp(&b.0.distance_sq(q))
            .then(a.1.cmp(&b.1))
    });
    v.into_iter().take(k).map(|e| e.1).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(60))]

    #[test]
    fn mixed_operations_match_model(
        initial in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 0..120),
        ops in prop::collection::vec(op_strategy(), 1..80),
    ) {
        let mut next_id: u32 = 0;
        let mut model: Vec<(Point, u32)> = Vec::new();
        let entries: Vec<Entry> = initial
            .iter()
            .map(|&(x, y)| {
                let e = Entry { point: Point::new(x, y), id: next_id };
                model.push((e.point, e.id));
                next_id += 1;
                e
            })
            .collect();
        let mut tree = RTree::bulk_load(entries);

        for op in ops {
            match op {
                Op::Insert { x, y } => {
                    let p = Point::new(x, y);
                    tree.insert(p, next_id);
                    model.push((p, next_id));
                    next_id += 1;
                }
                Op::RemoveNth(i) => {
                    if !model.is_empty() {
                        let (p, id) = model.swap_remove(i % model.len());
                        prop_assert!(tree.remove(p, id), "existing entry removable");
                    }
                }
                Op::Knn { x, y, k } => {
                    let q = Point::new(x, y);
                    let got: Vec<u32> = tree.knn(q, k).into_iter().map(|(e, _)| e.id).collect();
                    prop_assert_eq!(got, brute_knn(&model, q, k));
                }
                Op::Range { x, y, w, h } => {
                    let region = Aabb::new(Point::new(x, y), Point::new(x + w, y + h));
                    let mut got: Vec<u32> =
                        tree.range(&region).into_iter().map(|e| e.id).collect();
                    got.sort_unstable();
                    let mut want: Vec<u32> = model
                        .iter()
                        .filter(|(p, _)| region.contains(*p))
                        .map(|&(_, id)| id)
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants();
    }

    #[test]
    fn bulk_load_equals_incremental(pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..150)) {
        let entries: Vec<Entry> = pts
            .iter()
            .enumerate()
            .map(|(i, &(x, y))| Entry { point: Point::new(x, y), id: i as u32 })
            .collect();
        let bulk = RTree::bulk_load(entries.clone());
        let mut incr = RTree::new();
        for e in &entries {
            incr.insert(e.point, e.id);
        }
        bulk.check_invariants();
        incr.check_invariants();
        // Same answers to the same queries.
        for &(x, y) in pts.iter().take(10) {
            let q = Point::new(x + 0.1, y - 0.1);
            let a: Vec<u32> = bulk.knn(q, 5).into_iter().map(|(e, _)| e.id).collect();
            let b: Vec<u32> = incr.knn(q, 5).into_iter().map(|(e, _)| e.id).collect();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn vortree_knn_equals_rtree_knn(pts in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 8..100), qx in -20.0f64..120.0, qy in -20.0f64..120.0, k in 1usize..10) {
        // Distinct points required by the Voronoi construction.
        let mut seen = std::collections::HashSet::new();
        let points: Vec<Point> = pts
            .into_iter()
            .map(|(x, y)| Point::new(x, y))
            .filter(|p| seen.insert((p.x.to_bits(), p.y.to_bits())))
            .collect();
        prop_assume!(points.len() >= 4);
        let bounds = Aabb::new(Point::new(-30.0, -30.0), Point::new(130.0, 130.0));
        let tree = match VorTree::build(points, bounds) {
            Ok(t) => t,
            Err(_) => return Ok(()), // collinear sets rejected upstream
        };
        let q = Point::new(qx, qy);
        let via_voronoi: Vec<u32> = tree.knn(q, k).into_iter().map(|(s, _)| s.0).collect();
        let via_rtree: Vec<u32> = tree.rtree().knn(q, k).into_iter().map(|(e, _)| e.id).collect();
        prop_assert_eq!(via_voronoi, via_rtree);
    }
}

//! Incremental-maintenance conformance: a [`VorTree`] maintained through
//! arbitrary interleaved `insert_site` / `remove_site` / `apply` sequences
//! must answer `knn` **bit-identically** to a `VorTree::build` from
//! scratch over the same (identically ordered) site array — and both must
//! match the brute-force oracle. This is the trusted-batch-vs-optimized-
//! incremental validation discipline the delta-epoch server path rests on.

use insq_geom::{Aabb, Point};
use insq_index::{SiteDelta, VorTree};
use insq_voronoi::SiteId;
use proptest::prelude::*;

const BOUNDS_PAD: f64 = 10.0;

fn bounds() -> Aabb {
    Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)).inflated(BOUNDS_PAD)
}

/// Asserts that the incrementally maintained tree answers every probe
/// query bit-identically to a from-scratch rebuild on the same site
/// array, and that both agree with the brute-force oracle.
fn assert_conformant(tree: &VorTree, queries: &[Point], ks: &[usize]) -> Result<(), TestCaseError> {
    let rebuilt = VorTree::build(tree.voronoi().points().to_vec(), tree.voronoi().bounds())
        .expect("rebuild of a live site set");
    prop_assert_eq!(tree.len(), rebuilt.len());
    for &q in queries {
        for &k in ks {
            let inc = tree.knn(q, k);
            let batch = rebuilt.knn(q, k);
            prop_assert_eq!(
                &inc,
                &batch,
                "incremental vs rebuilt diverged (q={:?}, k={}, n={})",
                q,
                k,
                tree.len()
            );
            let brute = tree.voronoi().knn_brute(q, k.min(tree.len()));
            let inc_ids: Vec<SiteId> = inc.iter().map(|&(s, _)| s).collect();
            prop_assert_eq!(
                &inc_ids,
                &brute,
                "incremental vs brute-force diverged (q={:?}, k={})",
                q,
                k
            );
        }
    }
    Ok(())
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Insert { x: f64, y: f64 },
    RemoveNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Op::Insert { x, y }),
        2 => (0usize..10_000).prop_map(Op::RemoveNth),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The headline property: after EVERY step of a random interleaved
    /// insert/remove sequence, incremental knn == rebuilt-from-scratch knn
    /// == brute force, across several query points and k values.
    #[test]
    fn interleaved_updates_answer_knn_like_a_rebuild(
        initial in prop::collection::vec((0.0f64..100.0, 0.0f64..100.0), 8..40),
        ops in prop::collection::vec(op_strategy(), 1..40),
        queries in prop::collection::vec((-20.0f64..120.0, -20.0f64..120.0), 3..6),
    ) {
        let mut pts: Vec<Point> = initial.iter().map(|&(x, y)| Point::new(x, y)).collect();
        pts.sort_by(|a, b| a.lex_cmp(*b));
        pts.dedup();
        if pts.len() < 4 {
            return Ok(());
        }
        let mut tree = VorTree::build(pts, bounds()).expect("valid initial set");
        let queries: Vec<Point> = queries.iter().map(|&(x, y)| Point::new(x, y)).collect();
        let ks = [1usize, 3, 8];

        for op in ops {
            match op {
                Op::Insert { x, y } => {
                    let p = Point::new(x, y);
                    // Skip exact duplicates (rejected by design).
                    if tree.voronoi().points().contains(&p) {
                        continue;
                    }
                    let id = tree.insert_site(p).expect("insert distinct site");
                    prop_assert_eq!(id.idx(), tree.len() - 1);
                }
                Op::RemoveNth(i) => {
                    if tree.len() <= 4 {
                        continue;
                    }
                    let s = SiteId((i % tree.len()) as u32);
                    match tree.remove_site(s) {
                        Ok(_) => {}
                        // A removal that would leave all sites collinear
                        // is refused and must leave the index untouched.
                        Err(insq_voronoi::VoronoiError::AllCollinear) => {}
                        Err(e) => prop_assert!(false, "unexpected removal error: {}", e),
                    }
                }
            }
            assert_conformant(&tree, &queries, &ks)?;
        }
    }
}

/// Batched deltas through `VorTree::apply` conform too, including the
/// documented removal order (descending pre-delta ids, swap-remove).
#[test]
fn batched_delta_apply_conforms() {
    let mut state = 0x5eed_cafeu64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    let pts: Vec<Point> = (0..60)
        .map(|_| Point::new(next() * 100.0, next() * 100.0))
        .collect();
    let mut tree = VorTree::build(pts, bounds()).unwrap();
    let queries: Vec<Point> = (0..5)
        .map(|_| Point::new(next() * 140.0 - 20.0, next() * 140.0 - 20.0))
        .collect();

    for round in 0..12 {
        let n_add = 1 + (next() * 6.0) as usize;
        let n_rem = (next() * 5.0) as usize;
        let mut delta = SiteDelta::default();
        for _ in 0..n_add {
            delta.added.push(Point::new(next() * 100.0, next() * 100.0));
        }
        let mut used = std::collections::BTreeSet::new();
        for _ in 0..n_rem.min(tree.len().saturating_sub(8)) {
            used.insert(SiteId((next() * tree.len() as f64) as u32));
        }
        delta.removed = used.into_iter().collect();
        tree.apply(&delta).expect("delta applies cleanly");

        let rebuilt = VorTree::build(tree.voronoi().points().to_vec(), bounds()).unwrap();
        for &q in &queries {
            for k in [1usize, 4, 10] {
                assert_eq!(
                    tree.knn(q, k),
                    rebuilt.knn(q, k),
                    "delta round {round}: incremental vs rebuilt (q={q:?}, k={k})"
                );
            }
        }
    }
}

/// Degenerate inputs: a cocircular/collinear integer grid under churn.
/// Different valid Delaunay triangulations may disagree on degenerate
/// neighbor links, but the *query answers* must still match the oracle.
#[test]
fn degenerate_grid_churn_answers_exactly() {
    let mut pts = Vec::new();
    for i in 0..6 {
        for j in 0..6 {
            pts.push(Point::new(i as f64 * 10.0, j as f64 * 10.0));
        }
    }
    let mut tree = VorTree::build(pts, bounds()).unwrap();
    let queries = [
        Point::new(25.0, 25.0),
        Point::new(0.0, 0.0),
        Point::new(52.5, 17.5),
        Point::new(-15.0, 70.0),
    ];
    let mut state: u64 = 0x0dd0_601d;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 11) as f64) / ((1u64 << 53) as f64)
    };
    for step in 0..60 {
        if step % 3 == 0 && tree.len() > 8 {
            let s = SiteId((next() * tree.len() as f64) as u32);
            let _ = tree.remove_site(s);
        } else {
            // Half-integer lattice points keep the degeneracy high.
            let p = Point::new((next() * 12.0).round() * 5.0, (next() * 12.0).round() * 5.0);
            if !tree.voronoi().points().contains(&p) {
                tree.insert_site(p).unwrap();
            }
        }
        for &q in &queries {
            for k in [1usize, 4, 9] {
                let got: Vec<SiteId> = tree.knn(q, k).into_iter().map(|(s, _)| s).collect();
                let want = tree.voronoi().knn_brute(q, k.min(tree.len()));
                assert_eq!(got, want, "degenerate churn step {step} (q={q:?}, k={k})");
            }
        }
    }
}

//! Site deltas: batched incremental updates to a [`crate::VorTree`].
//!
//! A [`SiteDelta`] describes a data-object update as the paper's server
//! sees it — "if there are data object updates" (§III) — without implying
//! a rebuild: `insq-server`'s `World::apply` patches the published index
//! in place of constructing a new one, at cost proportional to the delta.

use insq_geom::Point;
use insq_voronoi::SiteId;

/// A batch of site insertions and removals, applied atomically by
/// [`crate::VorTree::apply`] (and, one level up, by
/// `insq_server::World::apply` as a single epoch bump).
///
/// # Id semantics
///
/// `removed` ids refer to the index state *before* the delta. Removals
/// are applied first, in descending id order, each with swap-remove
/// semantics (the then-last site takes the removed id); insertions are
/// appended afterwards in order, receiving the next dense ids. Two
/// deltas with the same contents therefore produce bit-identical site
/// orderings — which is what the conformance suite's
/// rebuilt-from-scratch reference relies on.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteDelta {
    /// Sites to add (positions must be finite, inside the index bounds,
    /// and distinct from every surviving site).
    pub added: Vec<Point>,
    /// Ids of sites to remove, relative to the pre-delta index.
    pub removed: Vec<SiteId>,
}

impl SiteDelta {
    /// A delta that only inserts.
    pub fn insert(added: Vec<Point>) -> SiteDelta {
        SiteDelta {
            added,
            removed: Vec::new(),
        }
    }

    /// A delta that only removes.
    pub fn remove(removed: Vec<SiteId>) -> SiteDelta {
        SiteDelta {
            added: Vec::new(),
            removed,
        }
    }

    /// Number of individual site changes.
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// Whether the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_len() {
        let d = SiteDelta::insert(vec![Point::new(1.0, 2.0)]);
        assert_eq!(d.len(), 1);
        assert!(!d.is_empty());
        let d = SiteDelta::remove(vec![SiteId(3), SiteId(1)]);
        assert_eq!(d.len(), 2);
        assert!(SiteDelta::default().is_empty());
    }
}

//! Weighted (anisotropic) Euclidean indexing: per-axis scaled L2.
//!
//! A [`WeightedVorTree`] answers kNN queries under the metric
//!
//! ```text
//! d_w(p, q) = sqrt( wx²·(px − qx)² + wy²·(py − qy)² )
//! ```
//!
//! — the natural model for travel *time* in a space where the two axes
//! have different speeds (a city with fast east–west avenues and slow
//! north–south streets, prevailing-wind flight planning, …).
//!
//! The implementation is a coordinate transform over the ordinary
//! [`VorTree`]: scaling every point by `(wx, wy)` turns the weighted
//! metric into plain L2, so the scaled space's Voronoi diagram *is* the
//! weighted Voronoi diagram of the original points, and every INS
//! theorem (Voronoi-neighbor containment of the MIS, order-k cell
//! validity) carries over verbatim. Queries enter in original
//! coordinates and are scaled on the way in; distances come back in the
//! weighted metric.

use insq_geom::{Aabb, Point};
use insq_voronoi::{SiteId, Voronoi, VoronoiError};

use crate::delta::SiteDelta;
use crate::vortree::VorTree;

/// Per-axis weights of the scaled-L2 metric (finite and positive).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AxisWeights {
    /// Weight of the x axis.
    pub x: f64,
    /// Weight of the y axis.
    pub y: f64,
}

impl AxisWeights {
    /// Weights `(x, y)`; returns `None` unless both are finite and > 0.
    pub fn new(x: f64, y: f64) -> Option<AxisWeights> {
        if x.is_finite() && y.is_finite() && x > 0.0 && y > 0.0 {
            Some(AxisWeights { x, y })
        } else {
            None
        }
    }

    /// The isotropic unit weights (plain L2).
    pub const UNIT: AxisWeights = AxisWeights { x: 1.0, y: 1.0 };

    /// Maps a point from original to scaled coordinates.
    #[inline]
    pub fn scale(&self, p: Point) -> Point {
        Point::new(p.x * self.x, p.y * self.y)
    }

    /// Maps a point from scaled back to original coordinates.
    #[inline]
    pub fn unscale(&self, p: Point) -> Point {
        Point::new(p.x / self.x, p.y / self.y)
    }

    /// The weighted distance between two original-coordinate points.
    #[inline]
    pub fn distance(&self, a: Point, b: Point) -> f64 {
        self.scale(a).distance(self.scale(b))
    }
}

/// A [`VorTree`] under a per-axis weighted L2 metric.
///
/// All public positions (construction input, query positions, delta
/// insertions) are in **original** coordinates; all returned distances
/// are in the **weighted** metric. Internally the tree lives entirely in
/// scaled coordinates.
#[derive(Debug, Clone)]
pub struct WeightedVorTree {
    weights: AxisWeights,
    tree: VorTree,
}

impl WeightedVorTree {
    /// Builds the weighted index over `points` (original coordinates),
    /// clipping the scaled-space Voronoi diagram to the scaled `bounds`.
    pub fn build(
        points: Vec<Point>,
        bounds: Aabb,
        weights: AxisWeights,
    ) -> Result<WeightedVorTree, VoronoiError> {
        let scaled: Vec<Point> = points.into_iter().map(|p| weights.scale(p)).collect();
        let scaled_bounds = Aabb::new(weights.scale(bounds.min), weights.scale(bounds.max));
        Ok(WeightedVorTree {
            weights,
            tree: VorTree::build(scaled, scaled_bounds)?,
        })
    }

    /// The axis weights.
    #[inline]
    pub fn weights(&self) -> AxisWeights {
        self.weights
    }

    /// The scaled-space VoR-tree (the weighted Voronoi diagram of the
    /// original points).
    #[inline]
    pub fn tree(&self) -> &VorTree {
        &self.tree
    }

    /// The scaled-space Voronoi diagram.
    #[inline]
    pub fn voronoi(&self) -> &Voronoi {
        self.tree.voronoi()
    }

    /// Number of sites.
    #[inline]
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Whether the index is empty (never true once built).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Position of a site in original coordinates.
    #[inline]
    pub fn point(&self, s: SiteId) -> Point {
        self.weights.unscale(self.tree.point(s))
    }

    /// The weighted distance from site `s` to `q` (original coordinates).
    #[inline]
    pub fn distance(&self, s: SiteId, q: Point) -> f64 {
        self.tree.point(s).distance(self.weights.scale(q))
    }

    /// The k nearest sites to `q` (original coordinates) under the
    /// weighted metric, ascending by weighted distance (ties by id).
    pub fn knn(&self, q: Point, k: usize) -> Vec<(SiteId, f64)> {
        self.tree.knn(self.weights.scale(q), k)
    }

    /// Allocation-free [`WeightedVorTree::knn`]: same scratch contract
    /// as [`VorTree::knn_into`].
    pub fn knn_into(
        &self,
        scratch: &mut crate::vortree::VorTreeScratch,
        q: Point,
        k: usize,
        out: &mut Vec<(SiteId, f64)>,
    ) {
        self.tree.knn_into(scratch, self.weights.scale(q), k, out)
    }

    /// Brute-force weighted kNN — the conformance reference (the batched
    /// SoA kernel of [`VorTree::brute_knn`], which matches
    /// `Voronoi::knn_brute` exactly).
    pub fn knn_brute(&self, q: Point, k: usize) -> Vec<SiteId> {
        self.tree.brute_knn(self.weights.scale(q), k)
    }

    /// Applies a batched [`SiteDelta`] (insertions in original
    /// coordinates, removal ids relative to the pre-delta index). Same
    /// semantics as [`VorTree::apply`].
    pub fn apply(&mut self, delta: &SiteDelta) -> Result<(), VoronoiError> {
        let scaled = SiteDelta {
            added: delta.added.iter().map(|&p| self.weights.scale(p)).collect(),
            removed: delta.removed.clone(),
        };
        self.tree.apply(&scaled)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn build(n: usize, seed: u64, w: AxisWeights) -> (Vec<Point>, WeightedVorTree) {
        let mut next = lcg(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let bounds = Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0));
        let tree = WeightedVorTree::build(points.clone(), bounds, w).unwrap();
        (points, tree)
    }

    #[test]
    fn rejects_bad_weights() {
        assert!(AxisWeights::new(0.0, 1.0).is_none());
        assert!(AxisWeights::new(1.0, -2.0).is_none());
        assert!(AxisWeights::new(f64::NAN, 1.0).is_none());
        assert!(AxisWeights::new(1.0, f64::INFINITY).is_none());
        assert!(AxisWeights::new(2.0, 0.5).is_some());
    }

    #[test]
    fn knn_matches_weighted_brute_force() {
        let w = AxisWeights::new(1.0, 3.0).unwrap();
        let (points, tree) = build(250, 11, w);
        let mut next = lcg(5);
        for _ in 0..40 {
            let q = Point::new(next() * 100.0, next() * 100.0);
            for k in [1usize, 4, 9] {
                let got: Vec<SiteId> = tree.knn(q, k).into_iter().map(|(s, _)| s).collect();
                // Reference: rank by the weighted metric directly.
                let mut ranked: Vec<(SiteId, f64)> = points
                    .iter()
                    .enumerate()
                    .map(|(i, &p)| (SiteId(i as u32), w.distance(p, q)))
                    .collect();
                ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
                let want: Vec<SiteId> = ranked[..k].iter().map(|&(s, _)| s).collect();
                assert_eq!(got, want, "k={k} q={q:?}");
            }
        }
    }

    #[test]
    fn unit_weights_reduce_to_plain_l2() {
        let (_, wtree) = build(120, 3, AxisWeights::UNIT);
        let (_, ref_tree) = build(120, 3, AxisWeights::new(1.0, 1.0).unwrap());
        let q = Point::new(41.0, 58.0);
        assert_eq!(wtree.knn(q, 7), ref_tree.tree().knn(q, 7));
    }

    #[test]
    fn points_round_trip_and_distances_agree() {
        let w = AxisWeights::new(2.5, 0.5).unwrap();
        let (points, tree) = build(80, 21, w);
        for (i, &p) in points.iter().enumerate() {
            let s = SiteId(i as u32);
            assert!(tree.point(s).distance(p) < 1e-9);
            let q = Point::new(50.0, 50.0);
            assert!((tree.distance(s, q) - w.distance(p, q)).abs() < 1e-9);
        }
    }

    #[test]
    fn apply_delta_scales_insertions() {
        let w = AxisWeights::new(1.0, 2.0).unwrap();
        let (_, mut tree) = build(60, 9, w);
        let n0 = tree.len();
        let p = Point::new(51.37, 48.92);
        tree.apply(&SiteDelta::insert(vec![p])).unwrap();
        assert_eq!(tree.len(), n0 + 1);
        let s = SiteId(n0 as u32);
        assert!(
            tree.point(s).distance(p) < 1e-9,
            "stored in original coords"
        );
        // The new site is its own nearest neighbor at its position.
        assert_eq!(tree.knn(p, 1)[0].0, s);
        tree.apply(&SiteDelta::remove(vec![s])).unwrap();
        assert_eq!(tree.len(), n0);
    }
}

//! # insq-index
//!
//! Spatial indexes for the INSQ moving-kNN system:
//!
//! * [`RTree`] — a dynamic point R-tree (STR bulk load, insert/remove,
//!   range queries, best-first kNN), used directly by the naive baseline
//!   that recomputes the kNN set at every timestamp;
//! * [`VorTree`] — the VoR-tree of Sharifzadeh & Shahabi (reference \[7\] of
//!   the paper): the same R-tree bundled with the precomputed Voronoi
//!   diagram, so kNN search can expand Voronoi neighbor links after a
//!   single best-first descent and the INS construction gets its neighbor
//!   lists for free;
//! * [`SiteDelta`] — a batched incremental update
//!   ([`VorTree::insert_site`] / [`VorTree::remove_site`] /
//!   [`VorTree::apply`]) that patches both structures locally instead of
//!   rebuilding, proven equivalent to a from-scratch build by
//!   `tests/incremental_conformance.rs`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delta;
pub mod rtree;
pub mod vortree;
pub mod weighted;

pub use delta::SiteDelta;
pub use rtree::{Entry, RTree, RTreeScratch};
pub use vortree::{VorTree, VorTreeScratch};
pub use weighted::{AxisWeights, WeightedVorTree};

//! The VoR-tree: an R-tree whose entries carry Voronoi information
//! (Sharifzadeh & Shahabi, PVLDB 2010 — reference \[7\] of the INSQ paper).
//!
//! The INSQ system "precompute\[s\] the Voronoi diagram of O and index\[es\] it
//! with an VoR-tree" (paper §III). The practical payoff is twofold:
//!
//! * kNN search: after locating the 1NN with a best-first R-tree descent,
//!   the remaining k−1 neighbors are found by expanding Voronoi neighbor
//!   links only — the second-nearest neighbor is always a Voronoi neighbor
//!   of the first, and inductively the (i+1)-th nearest is a Voronoi
//!   neighbor of one of the first i (the classical VoR-tree property).
//! * the neighbor lists retrieved along the way are exactly what the INS
//!   construction `I(R) = ⋃ N_O(p) \ R` needs, with no extra I/O.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use insq_geom::{Aabb, DistEntry, GenMarks, Point};
use insq_voronoi::{SiteId, Voronoi, VoronoiError};

use crate::delta::SiteDelta;
use crate::rtree::{Entry, RTree, RTreeScratch};

/// An R-tree over Voronoi sites, bundled with the diagram it indexes.
///
/// Site coordinates are additionally mirrored into struct-of-arrays
/// lanes (`xs` / `ys`), so the §III-A validation scan and
/// [`VorTree::brute_knn`] run as batched distance kernels over two flat
/// `f64` arrays instead of chasing `Point` structs — same arithmetic,
/// same results, autovectorizable layout.
#[derive(Debug, Clone)]
pub struct VorTree {
    rtree: RTree,
    voronoi: Voronoi,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

/// Reusable per-query scratch for [`VorTree::knn_into`]: the best-first
/// R-tree descent state, the Voronoi-expansion frontier heap, and the
/// generation-stamped visited marks. One scratch per worker makes
/// steady-state kNN recomputes allocation-free; reuse is bit-identical
/// to a fresh scratch per call (see the scratch-pollution suite).
#[derive(Debug, Clone, Default)]
pub struct VorTreeScratch {
    rtree: RTreeScratch,
    frontier: BinaryHeap<Reverse<DistEntry<SiteId>>>,
    marks: GenMarks,
}

impl VorTree {
    /// Builds the Voronoi diagram of `points` (clipped to `bounds`) and
    /// bulk-loads an R-tree over the sites.
    pub fn build(points: Vec<Point>, bounds: Aabb) -> Result<VorTree, VoronoiError> {
        let voronoi = Voronoi::build(points, bounds)?;
        Ok(Self::from_voronoi(voronoi))
    }

    /// Wraps an existing Voronoi diagram (freezing its neighbor lists —
    /// a published index starts immutable).
    pub fn from_voronoi(mut voronoi: Voronoi) -> VorTree {
        voronoi.freeze();
        let entries: Vec<Entry> = voronoi
            .points()
            .iter()
            .enumerate()
            .map(|(i, &p)| Entry {
                point: p,
                id: i as u32,
            })
            .collect();
        let xs: Vec<f64> = voronoi.points().iter().map(|p| p.x).collect();
        let ys: Vec<f64> = voronoi.points().iter().map(|p| p.y).collect();
        VorTree {
            rtree: RTree::bulk_load(entries),
            voronoi,
            xs,
            ys,
        }
    }

    /// The underlying Voronoi diagram.
    #[inline]
    pub fn voronoi(&self) -> &Voronoi {
        &self.voronoi
    }

    /// The underlying R-tree.
    #[inline]
    pub fn rtree(&self) -> &RTree {
        &self.rtree
    }

    /// Number of sites.
    #[inline]
    pub fn len(&self) -> usize {
        self.voronoi.len()
    }

    /// Whether the index is empty (never true once built).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.voronoi.is_empty()
    }

    /// Position of a site.
    #[inline]
    pub fn point(&self, s: SiteId) -> Point {
        self.voronoi.point(s)
    }

    /// Squared distance from site `s` to `q`, read from the SoA
    /// coordinate lanes — bit-identical to
    /// `self.point(s).distance_sq(q)` (same operand order), without the
    /// strided `Point` load.
    #[inline]
    pub fn dist_sq(&self, s: SiteId, q: Point) -> f64 {
        self.dist_sq_idx(s.idx(), q)
    }

    #[inline]
    fn dist_sq_idx(&self, i: usize, q: Point) -> f64 {
        let dx = self.xs[i] - q.x;
        let dy = self.ys[i] - q.y;
        dx * dx + dy * dy
    }

    /// Inserts a new site, patching the diagram and the R-tree locally
    /// (the R-tree's nearest-site probe doubles as the point-location
    /// hint, so the Delaunay walk is O(1)). Returns the new site's id,
    /// always `SiteId(len - 1)`.
    pub fn insert_site(&mut self, p: Point) -> Result<SiteId, VoronoiError> {
        let hint = self.rtree.nearest(p).map(|(e, _)| SiteId(e.id));
        let id = self.voronoi.insert_site(p, hint)?;
        self.rtree.insert(p, id.0);
        self.xs.push(p.x);
        self.ys.push(p.y);
        Ok(id)
    }

    /// Removes site `s` with swap-remove semantics: when `s` is not the
    /// last site, the last site is renumbered to `s` (the R-tree entry is
    /// re-keyed to match) and the moved site's old id is returned.
    pub fn remove_site(&mut self, s: SiteId) -> Result<Option<SiteId>, VoronoiError> {
        if s.idx() >= self.voronoi.len() {
            return Err(VoronoiError::SiteOutOfRange {
                site: s.idx(),
                len: self.voronoi.len(),
            });
        }
        let p = self.voronoi.point(s);
        let moved = self.voronoi.remove_site(s)?;
        // Mirror the diagram's swap-remove in the SoA lanes.
        self.xs.swap_remove(s.idx());
        self.ys.swap_remove(s.idx());
        let found = self.rtree.remove(p, s.0);
        debug_assert!(found, "R-tree entry for a live site");
        if let Some(old) = moved {
            let q = self.voronoi.point(s);
            let found = self.rtree.remove(q, old.0);
            debug_assert!(found, "R-tree entry for the moved site");
            self.rtree.insert(q, s.0);
        }
        Ok(moved)
    }

    /// Applies a batched [`SiteDelta`]: removals first (descending
    /// pre-delta ids, swap-remove semantics), then insertions in order.
    /// See [`SiteDelta`] for the id semantics; on error the index is left
    /// with the delta partially applied — callers that need atomicity
    /// (like `insq_server::World::apply`) patch a clone and publish only
    /// on success.
    pub fn apply(&mut self, delta: &SiteDelta) -> Result<(), VoronoiError> {
        // Deltas are almost always already sorted and deduplicated; only
        // clone when they actually need normalising.
        let needs_normalising = delta.removed.windows(2).any(|w| w[0] >= w[1]);
        let normalised;
        let removed: &[SiteId] = if needs_normalising {
            let mut r = delta.removed.clone();
            r.sort_unstable();
            r.dedup();
            normalised = r;
            &normalised
        } else {
            &delta.removed
        };
        for &s in removed.iter().rev() {
            self.remove_site(s)?;
        }
        for &p in &delta.added {
            self.insert_site(p)?;
        }
        // The patched diagram is about to be published as an immutable
        // epoch snapshot: re-freeze the neighbor lists into CSR.
        self.voronoi.freeze();
        Ok(())
    }

    /// The k nearest sites to `q`, ascending by distance, found by the
    /// VoR-tree strategy: one best-first R-tree descent for the 1NN, then
    /// incremental expansion over Voronoi neighbor links.
    ///
    /// Ties are broken by site id, matching [`RTree::knn`].
    pub fn knn(&self, q: Point, k: usize) -> Vec<(SiteId, f64)> {
        let mut scratch = VorTreeScratch::default();
        let mut result = Vec::with_capacity(k);
        self.knn_into(&mut scratch, q, k, &mut result);
        result
    }

    /// Allocation-free [`VorTree::knn`]: all per-query transients (the
    /// R-tree descent heap, the expansion frontier, the visited marks)
    /// live in `scratch`, and results are written into `out` (cleared
    /// first). Bit-identical to the allocating form.
    pub fn knn_into(
        &self,
        scratch: &mut VorTreeScratch,
        q: Point,
        k: usize,
        out: &mut Vec<(SiteId, f64)>,
    ) {
        out.clear();
        if k == 0 || self.voronoi.is_empty() {
            return;
        }
        let (first, first_dist) = match self.rtree.nearest_with(&mut scratch.rtree, q) {
            Some((e, d)) => (SiteId(e.id), d),
            None => return,
        };

        // Min-heap of frontier sites keyed by distance (ties by id);
        // the generation-stamped marks replace a `vec![false; n]`.
        let heap = &mut scratch.frontier;
        heap.clear();
        let marks = &mut scratch.marks;
        marks.begin(self.voronoi.len());
        heap.push(Reverse(DistEntry {
            dist: first_dist,
            id: first,
        }));
        marks.mark(first.idx());

        while let Some(Reverse(DistEntry { dist, id: site })) = heap.pop() {
            out.push((site, dist));
            if out.len() == k {
                break;
            }
            for &nb in self.voronoi.neighbors(site) {
                if marks.mark(nb.idx()) {
                    heap.push(Reverse(DistEntry {
                        dist: self.dist_sq_idx(nb.idx(), q).sqrt(),
                        id: nb,
                    }));
                }
            }
        }
    }

    /// Brute-force k nearest site ids, ascending by `(distance, id)` —
    /// one batched pass over the SoA coordinate lanes. Matches
    /// [`Voronoi::knn_brute`] exactly (its stable sort on ascending ids
    /// resolves ties by id, which `(distance, id)` reproduces).
    pub fn brute_knn(&self, q: Point, k: usize) -> Vec<SiteId> {
        let n = self.len();
        let mut scored: Vec<(f64, u32)> =
            (0..n).map(|i| (self.dist_sq_idx(i, q), i as u32)).collect();
        let cmp = |a: &(f64, u32), b: &(f64, u32)| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1));
        if k > 0 && scored.len() > k {
            scored.select_nth_unstable_by(k - 1, cmp);
            scored.truncate(k);
        }
        scored.sort_unstable_by(cmp);
        scored.truncate(k);
        scored.into_iter().map(|(_, i)| SiteId(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn build_random(n: usize, seed: u64) -> VorTree {
        let mut next = lcg(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let bounds = Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0));
        VorTree::build(points, bounds).unwrap()
    }

    #[test]
    fn knn_matches_rtree_knn() {
        let tree = build_random(300, 2024);
        let mut next = lcg(1);
        for _ in 0..50 {
            let q = Point::new(next() * 100.0, next() * 100.0);
            for k in [1usize, 4, 16] {
                let via_voronoi: Vec<u32> = tree.knn(q, k).into_iter().map(|(s, _)| s.0).collect();
                let via_rtree: Vec<u32> = tree
                    .rtree()
                    .knn(q, k)
                    .into_iter()
                    .map(|(e, _)| e.id)
                    .collect();
                assert_eq!(via_voronoi, via_rtree, "k={k} q={q:?}");
            }
        }
    }

    #[test]
    fn knn_outside_data_region() {
        // Query far outside the hull: the expansion must still find the
        // true k nearest.
        let tree = build_random(100, 5);
        let q = Point::new(-500.0, 900.0);
        let via_voronoi: Vec<u32> = tree.knn(q, 10).into_iter().map(|(s, _)| s.0).collect();
        let via_rtree: Vec<u32> = tree
            .rtree()
            .knn(q, 10)
            .into_iter()
            .map(|(e, _)| e.id)
            .collect();
        assert_eq!(via_voronoi, via_rtree);
    }

    #[test]
    fn knn_k_exceeds_sites() {
        let tree = build_random(10, 8);
        let res = tree.knn(Point::new(50.0, 50.0), 50);
        assert_eq!(res.len(), 10, "expansion reaches every site");
    }

    #[test]
    fn reused_scratch_is_bit_identical_to_fresh() {
        let tree = build_random(250, 99);
        let mut scratch = VorTreeScratch::default();
        let mut out = Vec::new();
        let mut next = lcg(42);
        for i in 0..120 {
            let q = Point::new(next() * 100.0, next() * 100.0);
            let k = 1 + (i % 9);
            tree.knn_into(&mut scratch, q, k, &mut out);
            assert_eq!(out, tree.knn(q, k), "k={k} q={q:?}");
        }
    }

    #[test]
    fn brute_knn_matches_diagram_oracle() {
        let tree = build_random(180, 7);
        let mut next = lcg(13);
        for _ in 0..60 {
            let q = Point::new(next() * 120.0 - 10.0, next() * 120.0 - 10.0);
            for k in [0usize, 1, 5, 180] {
                assert_eq!(tree.brute_knn(q, k), tree.voronoi().knn_brute(q, k));
            }
        }
    }

    #[test]
    fn soa_lanes_track_updates() {
        let mut tree = build_random(40, 3);
        let mut next = lcg(77);
        for step in 0..30 {
            if tree.len() <= 5 || next() < 0.6 {
                tree.insert_site(Point::new(next() * 100.0, next() * 100.0))
                    .unwrap();
            } else {
                let s = SiteId((next() * tree.len() as f64) as u32);
                tree.remove_site(s).unwrap();
            }
            if step % 7 == 0 {
                for i in 0..tree.len() as u32 {
                    let p = tree.point(SiteId(i));
                    let q = Point::new(1.25, -3.5);
                    assert_eq!(tree.dist_sq(SiteId(i), q), p.distance_sq(q));
                }
            }
        }
    }

    #[test]
    fn distances_ascending_and_consistent() {
        let tree = build_random(200, 77);
        let q = Point::new(33.0, 66.0);
        let res = tree.knn(q, 25);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        for (s, d) in res {
            assert!((tree.point(s).distance(q) - d).abs() < 1e-12);
        }
    }
}

//! The VoR-tree: an R-tree whose entries carry Voronoi information
//! (Sharifzadeh & Shahabi, PVLDB 2010 — reference \[7\] of the INSQ paper).
//!
//! The INSQ system "precompute\[s\] the Voronoi diagram of O and index\[es\] it
//! with an VoR-tree" (paper §III). The practical payoff is twofold:
//!
//! * kNN search: after locating the 1NN with a best-first R-tree descent,
//!   the remaining k−1 neighbors are found by expanding Voronoi neighbor
//!   links only — the second-nearest neighbor is always a Voronoi neighbor
//!   of the first, and inductively the (i+1)-th nearest is a Voronoi
//!   neighbor of one of the first i (the classical VoR-tree property).
//! * the neighbor lists retrieved along the way are exactly what the INS
//!   construction `I(R) = ⋃ N_O(p) \ R` needs, with no extra I/O.

use insq_geom::{Aabb, Point};
use insq_voronoi::{SiteId, Voronoi, VoronoiError};

use crate::delta::SiteDelta;
use crate::rtree::{Entry, RTree};

/// An R-tree over Voronoi sites, bundled with the diagram it indexes.
#[derive(Debug, Clone)]
pub struct VorTree {
    rtree: RTree,
    voronoi: Voronoi,
}

impl VorTree {
    /// Builds the Voronoi diagram of `points` (clipped to `bounds`) and
    /// bulk-loads an R-tree over the sites.
    pub fn build(points: Vec<Point>, bounds: Aabb) -> Result<VorTree, VoronoiError> {
        let voronoi = Voronoi::build(points, bounds)?;
        Ok(Self::from_voronoi(voronoi))
    }

    /// Wraps an existing Voronoi diagram.
    pub fn from_voronoi(voronoi: Voronoi) -> VorTree {
        let entries: Vec<Entry> = voronoi
            .points()
            .iter()
            .enumerate()
            .map(|(i, &p)| Entry {
                point: p,
                id: i as u32,
            })
            .collect();
        VorTree {
            rtree: RTree::bulk_load(entries),
            voronoi,
        }
    }

    /// The underlying Voronoi diagram.
    #[inline]
    pub fn voronoi(&self) -> &Voronoi {
        &self.voronoi
    }

    /// The underlying R-tree.
    #[inline]
    pub fn rtree(&self) -> &RTree {
        &self.rtree
    }

    /// Number of sites.
    #[inline]
    pub fn len(&self) -> usize {
        self.voronoi.len()
    }

    /// Whether the index is empty (never true once built).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.voronoi.is_empty()
    }

    /// Position of a site.
    #[inline]
    pub fn point(&self, s: SiteId) -> Point {
        self.voronoi.point(s)
    }

    /// Inserts a new site, patching the diagram and the R-tree locally
    /// (the R-tree's nearest-site probe doubles as the point-location
    /// hint, so the Delaunay walk is O(1)). Returns the new site's id,
    /// always `SiteId(len - 1)`.
    pub fn insert_site(&mut self, p: Point) -> Result<SiteId, VoronoiError> {
        let hint = self.rtree.nearest(p).map(|(e, _)| SiteId(e.id));
        let id = self.voronoi.insert_site(p, hint)?;
        self.rtree.insert(p, id.0);
        Ok(id)
    }

    /// Removes site `s` with swap-remove semantics: when `s` is not the
    /// last site, the last site is renumbered to `s` (the R-tree entry is
    /// re-keyed to match) and the moved site's old id is returned.
    pub fn remove_site(&mut self, s: SiteId) -> Result<Option<SiteId>, VoronoiError> {
        if s.idx() >= self.voronoi.len() {
            return Err(VoronoiError::SiteOutOfRange {
                site: s.idx(),
                len: self.voronoi.len(),
            });
        }
        let p = self.voronoi.point(s);
        let moved = self.voronoi.remove_site(s)?;
        let found = self.rtree.remove(p, s.0);
        debug_assert!(found, "R-tree entry for a live site");
        if let Some(old) = moved {
            let q = self.voronoi.point(s);
            let found = self.rtree.remove(q, old.0);
            debug_assert!(found, "R-tree entry for the moved site");
            self.rtree.insert(q, s.0);
        }
        Ok(moved)
    }

    /// Applies a batched [`SiteDelta`]: removals first (descending
    /// pre-delta ids, swap-remove semantics), then insertions in order.
    /// See [`SiteDelta`] for the id semantics; on error the index is left
    /// with the delta partially applied — callers that need atomicity
    /// (like `insq_server::World::apply`) patch a clone and publish only
    /// on success.
    pub fn apply(&mut self, delta: &SiteDelta) -> Result<(), VoronoiError> {
        let mut removed = delta.removed.clone();
        removed.sort_unstable();
        removed.dedup();
        for &s in removed.iter().rev() {
            self.remove_site(s)?;
        }
        for &p in &delta.added {
            self.insert_site(p)?;
        }
        Ok(())
    }

    /// The k nearest sites to `q`, ascending by distance, found by the
    /// VoR-tree strategy: one best-first R-tree descent for the 1NN, then
    /// incremental expansion over Voronoi neighbor links.
    ///
    /// Ties are broken by site id, matching [`RTree::knn`].
    pub fn knn(&self, q: Point, k: usize) -> Vec<(SiteId, f64)> {
        let mut result: Vec<(SiteId, f64)> = Vec::with_capacity(k);
        if k == 0 || self.voronoi.is_empty() {
            return result;
        }
        let (first, first_dist) = match self.rtree.nearest(q) {
            Some((e, d)) => (SiteId(e.id), d),
            None => return result,
        };

        // Min-heap of frontier sites keyed by distance (ties by id).
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<HeapSite>> =
            std::collections::BinaryHeap::new();
        let mut enqueued = vec![false; self.voronoi.len()];
        heap.push(std::cmp::Reverse(HeapSite {
            dist: first_dist,
            site: first,
        }));
        enqueued[first.idx()] = true;

        while let Some(std::cmp::Reverse(HeapSite { dist, site })) = heap.pop() {
            result.push((site, dist));
            if result.len() == k {
                break;
            }
            for &nb in self.voronoi.neighbors(site) {
                if !enqueued[nb.idx()] {
                    enqueued[nb.idx()] = true;
                    heap.push(std::cmp::Reverse(HeapSite {
                        dist: self.voronoi.point(nb).distance(q),
                        site: nb,
                    }));
                }
            }
        }
        result
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HeapSite {
    dist: f64,
    site: SiteId,
}

impl Eq for HeapSite {}
impl PartialOrd for HeapSite {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapSite {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.site.cmp(&other.site))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn build_random(n: usize, seed: u64) -> VorTree {
        let mut next = lcg(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let bounds = Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0));
        VorTree::build(points, bounds).unwrap()
    }

    #[test]
    fn knn_matches_rtree_knn() {
        let tree = build_random(300, 2024);
        let mut next = lcg(1);
        for _ in 0..50 {
            let q = Point::new(next() * 100.0, next() * 100.0);
            for k in [1usize, 4, 16] {
                let via_voronoi: Vec<u32> = tree.knn(q, k).into_iter().map(|(s, _)| s.0).collect();
                let via_rtree: Vec<u32> = tree
                    .rtree()
                    .knn(q, k)
                    .into_iter()
                    .map(|(e, _)| e.id)
                    .collect();
                assert_eq!(via_voronoi, via_rtree, "k={k} q={q:?}");
            }
        }
    }

    #[test]
    fn knn_outside_data_region() {
        // Query far outside the hull: the expansion must still find the
        // true k nearest.
        let tree = build_random(100, 5);
        let q = Point::new(-500.0, 900.0);
        let via_voronoi: Vec<u32> = tree.knn(q, 10).into_iter().map(|(s, _)| s.0).collect();
        let via_rtree: Vec<u32> = tree
            .rtree()
            .knn(q, 10)
            .into_iter()
            .map(|(e, _)| e.id)
            .collect();
        assert_eq!(via_voronoi, via_rtree);
    }

    #[test]
    fn knn_k_exceeds_sites() {
        let tree = build_random(10, 8);
        let res = tree.knn(Point::new(50.0, 50.0), 50);
        assert_eq!(res.len(), 10, "expansion reaches every site");
    }

    #[test]
    fn distances_ascending_and_consistent() {
        let tree = build_random(200, 77);
        let q = Point::new(33.0, 66.0);
        let res = tree.knn(q, 25);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        for (s, d) in res {
            assert!((tree.point(s).distance(q) - d).abs() < 1e-12);
        }
    }
}

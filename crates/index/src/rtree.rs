//! A point R-tree: STR bulk loading, dynamic insert/remove, range search
//! and best-first kNN.
//!
//! The tree stores `(Point, u32)` entries — position plus caller-chosen id
//! (the INSQ system stores [`insq_voronoi::SiteId`] values). Best-first kNN
//! over `MINDIST` lower bounds (Roussopoulos et al.) is the search kernel
//! both the naive baseline and the VoR-tree build on.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use insq_geom::{Aabb, Point};

/// Maximum entries/children per node.
pub const MAX_ENTRIES: usize = 16;
/// Minimum fill (except the root).
pub const MIN_ENTRIES: usize = 6;

/// An entry stored in the tree: a position and an opaque id.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Entry position.
    pub point: Point,
    /// Caller-chosen identifier.
    pub id: u32,
}

/// Search-effort statistics of one kNN query.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KnnStats {
    /// Tree nodes popped from the priority queue.
    pub nodes_visited: usize,
    /// Leaf entries whose distance was evaluated.
    pub entries_scanned: usize,
}

#[derive(Debug, Clone)]
enum NodeKind {
    Internal { children: Vec<u32> },
    Leaf { entries: Vec<Entry> },
}

#[derive(Debug, Clone)]
struct Node {
    bbox: Aabb,
    kind: NodeKind,
}

impl Node {
    fn new_leaf() -> Node {
        Node {
            bbox: Aabb::empty(),
            kind: NodeKind::Leaf {
                entries: Vec::with_capacity(MAX_ENTRIES + 1),
            },
        }
    }

    fn len(&self) -> usize {
        match &self.kind {
            NodeKind::Internal { children } => children.len(),
            NodeKind::Leaf { entries } => entries.len(),
        }
    }
}

/// A dynamic R-tree over 2-D points.
#[derive(Debug, Clone)]
pub struct RTree {
    nodes: Vec<Node>,
    free: Vec<u32>,
    root: u32,
    /// Height of the root: 0 when the root is a leaf.
    height: u32,
    size: usize,
}

impl Default for RTree {
    fn default() -> Self {
        Self::new()
    }
}

impl RTree {
    /// Creates an empty tree.
    pub fn new() -> RTree {
        RTree {
            nodes: vec![Node::new_leaf()],
            free: Vec::new(),
            root: 0,
            height: 0,
            size: 0,
        }
    }

    /// Bulk-loads a tree with the Sort-Tile-Recursive (STR) algorithm:
    /// entries are tiled into vertical slabs by `x`, each slab sorted by
    /// `y`, and packed into full leaves; upper levels are packed the same
    /// way over child centers.
    pub fn bulk_load(mut items: Vec<Entry>) -> RTree {
        if items.is_empty() {
            return RTree::new();
        }
        let mut tree = RTree {
            nodes: Vec::new(),
            free: Vec::new(),
            root: 0,
            height: 0,
            size: items.len(),
        };

        // --- Leaf level ---
        let n = items.len();
        let leaf_count = n.div_ceil(MAX_ENTRIES);
        let slab_count = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slab = n.div_ceil(slab_count);
        items.sort_by(|a, b| a.point.x.total_cmp(&b.point.x));

        let mut level: Vec<u32> = Vec::with_capacity(leaf_count);
        for slab in items.chunks_mut(per_slab.max(1)) {
            slab.sort_by(|a, b| a.point.y.total_cmp(&b.point.y));
            for group in slab.chunks(MAX_ENTRIES) {
                let bbox =
                    Aabb::of_points(group.iter().map(|e| e.point)).expect("group is non-empty");
                let id = tree.alloc(Node {
                    bbox,
                    kind: NodeKind::Leaf {
                        entries: group.to_vec(),
                    },
                });
                level.push(id);
            }
        }

        // --- Upper levels ---
        let mut height = 0u32;
        while level.len() > 1 {
            height += 1;
            let count = level.len().div_ceil(MAX_ENTRIES);
            let slabs = (count as f64).sqrt().ceil() as usize;
            let per_slab = level.len().div_ceil(slabs);
            level.sort_by(|&a, &b| {
                tree.nodes[a as usize]
                    .bbox
                    .center()
                    .x
                    .total_cmp(&tree.nodes[b as usize].bbox.center().x)
            });
            let mut next_level = Vec::with_capacity(count);
            let mut slab_buf: Vec<u32> = Vec::new();
            for slab in level.chunks(per_slab.max(1)) {
                slab_buf.clear();
                slab_buf.extend_from_slice(slab);
                slab_buf.sort_by(|&a, &b| {
                    tree.nodes[a as usize]
                        .bbox
                        .center()
                        .y
                        .total_cmp(&tree.nodes[b as usize].bbox.center().y)
                });
                for group in slab_buf.chunks(MAX_ENTRIES) {
                    let bbox = group.iter().fold(Aabb::empty(), |acc, &c| {
                        acc.union(&tree.nodes[c as usize].bbox)
                    });
                    let id = tree.alloc(Node {
                        bbox,
                        kind: NodeKind::Internal {
                            children: group.to_vec(),
                        },
                    });
                    next_level.push(id);
                }
            }
            level = next_level;
        }

        tree.root = level[0];
        tree.height = height;
        tree
    }

    /// Number of stored entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.size
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.size == 0
    }

    /// Bounding box of all entries ([`Aabb::empty`] when empty).
    pub fn bounds(&self) -> Aabb {
        self.nodes[self.root as usize].bbox
    }

    fn alloc(&mut self, node: Node) -> u32 {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    // ---------------------------------------------------------------- insert

    /// Inserts an entry.
    pub fn insert(&mut self, point: Point, id: u32) {
        let entry = Entry { point, id };
        self.size += 1;
        if let Some((sibling, sibling_bbox)) = self.insert_rec(self.root, entry) {
            // Root split: grow the tree.
            let old_root = self.root;
            let old_bbox = self.nodes[old_root as usize].bbox;
            let new_root = self.alloc(Node {
                bbox: old_bbox.union(&sibling_bbox),
                kind: NodeKind::Internal {
                    children: vec![old_root, sibling],
                },
            });
            self.root = new_root;
            self.height += 1;
        }
    }

    /// Recursive insert; returns a new sibling (id, bbox) when `node` split.
    fn insert_rec(&mut self, node: u32, entry: Entry) -> Option<(u32, Aabb)> {
        let ni = node as usize;
        self.nodes[ni].bbox.expand_to(entry.point);
        match &mut self.nodes[ni].kind {
            NodeKind::Leaf { entries } => {
                entries.push(entry);
                if entries.len() > MAX_ENTRIES {
                    return Some(self.split_leaf(node));
                }
                None
            }
            NodeKind::Internal { children } => {
                // Choose the child needing least area enlargement.
                let mut best = children[0];
                let mut best_enlarge = f64::INFINITY;
                let mut best_area = f64::INFINITY;
                let children_snapshot = children.clone();
                for &c in &children_snapshot {
                    let bb = self.nodes[c as usize].bbox;
                    let mut grown = bb;
                    grown.expand_to(entry.point);
                    let enlarge = grown.area() - bb.area();
                    let area = bb.area();
                    if enlarge < best_enlarge || (enlarge == best_enlarge && area < best_area) {
                        best = c;
                        best_enlarge = enlarge;
                        best_area = area;
                    }
                }
                if let Some((sibling, sibling_bbox)) = self.insert_rec(best, entry) {
                    let NodeKind::Internal { children } = &mut self.nodes[ni].kind else {
                        unreachable!("node kind cannot change during insert")
                    };
                    children.push(sibling);
                    self.nodes[ni].bbox = self.nodes[ni].bbox.union(&sibling_bbox);
                    if self.nodes[ni].len() > MAX_ENTRIES {
                        return Some(self.split_internal(node));
                    }
                }
                None
            }
        }
    }

    /// Quadratic split of an overflowing leaf; returns the new sibling.
    fn split_leaf(&mut self, node: u32) -> (u32, Aabb) {
        let NodeKind::Leaf { entries } = &mut self.nodes[node as usize].kind else {
            unreachable!("split_leaf on internal node")
        };
        let items = std::mem::take(entries);
        let (a, b) = quadratic_split(items, |e| Aabb::of_point(e.point));
        let bbox_a = Aabb::of_points(a.iter().map(|e| e.point)).expect("split halves non-empty");
        let bbox_b = Aabb::of_points(b.iter().map(|e| e.point)).expect("split halves non-empty");
        self.nodes[node as usize] = Node {
            bbox: bbox_a,
            kind: NodeKind::Leaf { entries: a },
        };
        let sibling = self.alloc(Node {
            bbox: bbox_b,
            kind: NodeKind::Leaf { entries: b },
        });
        (sibling, bbox_b)
    }

    /// Quadratic split of an overflowing internal node.
    fn split_internal(&mut self, node: u32) -> (u32, Aabb) {
        let NodeKind::Internal { children } = &mut self.nodes[node as usize].kind else {
            unreachable!("split_internal on leaf")
        };
        let items = std::mem::take(children);
        let boxes: Vec<Aabb> = items.iter().map(|&c| self.nodes[c as usize].bbox).collect();
        let idx: Vec<usize> = (0..items.len()).collect();
        let (a_idx, b_idx) = quadratic_split(idx, |&i| boxes[i]);
        let a: Vec<u32> = a_idx.iter().map(|&i| items[i]).collect();
        let b: Vec<u32> = b_idx.iter().map(|&i| items[i]).collect();
        let bbox_of = |ids: &[u32], nodes: &[Node]| {
            ids.iter()
                .fold(Aabb::empty(), |acc, &c| acc.union(&nodes[c as usize].bbox))
        };
        let bbox_a = bbox_of(&a, &self.nodes);
        let bbox_b = bbox_of(&b, &self.nodes);
        self.nodes[node as usize] = Node {
            bbox: bbox_a,
            kind: NodeKind::Internal { children: a },
        };
        let sibling = self.alloc(Node {
            bbox: bbox_b,
            kind: NodeKind::Internal { children: b },
        });
        (sibling, bbox_b)
    }

    // ---------------------------------------------------------------- remove

    /// Removes the entry with exactly this position and id. Returns whether
    /// it was found.
    pub fn remove(&mut self, point: Point, id: u32) -> bool {
        let mut orphans: Vec<Entry> = Vec::new();
        let found = self.remove_rec(self.root, point, id, &mut orphans);
        if !found {
            return false;
        }
        self.size -= 1;
        // Shrink the root while it is an internal node with one child.
        loop {
            let ri = self.root as usize;
            match &self.nodes[ri].kind {
                NodeKind::Internal { children } if children.len() == 1 => {
                    let only = children[0];
                    self.free.push(self.root);
                    self.root = only;
                    self.height -= 1;
                }
                NodeKind::Internal { children } if children.is_empty() => {
                    // All entries gone: reset to an empty leaf root.
                    self.nodes[ri] = Node::new_leaf();
                    self.height = 0;
                    break;
                }
                _ => break,
            }
        }
        // Reinsert orphaned entries.
        for e in orphans {
            self.size -= 1; // insert() will re-add
            self.insert(e.point, e.id);
        }
        true
    }

    /// Recursive removal; collects entries of condensed nodes in `orphans`.
    fn remove_rec(&mut self, node: u32, point: Point, id: u32, orphans: &mut Vec<Entry>) -> bool {
        let ni = node as usize;
        match &mut self.nodes[ni].kind {
            NodeKind::Leaf { entries } => {
                let before = entries.len();
                entries.retain(|e| !(e.id == id && e.point == point));
                if entries.len() == before {
                    return false;
                }
                self.recompute_bbox(node);
                true
            }
            NodeKind::Internal { children } => {
                let kids = children.clone();
                for &c in &kids {
                    if !self.nodes[c as usize].bbox.contains(point) {
                        continue;
                    }
                    if self.remove_rec(c, point, id, orphans) {
                        // Condense: drop underfull children, orphaning
                        // their entries.
                        if self.nodes[c as usize].len() < MIN_ENTRIES {
                            self.collect_entries(c, orphans);
                            self.free.push(c);
                            let NodeKind::Internal { children } = &mut self.nodes[ni].kind else {
                                unreachable!()
                            };
                            children.retain(|&x| x != c);
                        }
                        self.recompute_bbox(node);
                        return true;
                    }
                }
                false
            }
        }
    }

    fn collect_entries(&mut self, node: u32, out: &mut Vec<Entry>) {
        match std::mem::replace(
            &mut self.nodes[node as usize].kind,
            NodeKind::Leaf {
                entries: Vec::new(),
            },
        ) {
            NodeKind::Leaf { entries } => out.extend(entries),
            NodeKind::Internal { children } => {
                for c in children {
                    self.collect_entries(c, out);
                    self.free.push(c);
                }
            }
        }
    }

    fn recompute_bbox(&mut self, node: u32) {
        let bbox = match &self.nodes[node as usize].kind {
            NodeKind::Leaf { entries } => {
                Aabb::of_points(entries.iter().map(|e| e.point)).unwrap_or_else(Aabb::empty)
            }
            NodeKind::Internal { children } => children.iter().fold(Aabb::empty(), |acc, &c| {
                acc.union(&self.nodes[c as usize].bbox)
            }),
        };
        self.nodes[node as usize].bbox = bbox;
    }

    // ---------------------------------------------------------------- search

    /// All entries whose point lies in `region` (boundary inclusive).
    pub fn range(&self, region: &Aabb) -> Vec<Entry> {
        let mut out = Vec::new();
        if self.size == 0 {
            return out;
        }
        let mut stack = vec![self.root];
        while let Some(node) = stack.pop() {
            let n = &self.nodes[node as usize];
            if !n.bbox.intersects(region) {
                continue;
            }
            match &n.kind {
                NodeKind::Leaf { entries } => {
                    out.extend(entries.iter().filter(|e| region.contains(e.point)));
                }
                NodeKind::Internal { children } => stack.extend_from_slice(children),
            }
        }
        out
    }

    /// The `k` entries nearest to `q`, ascending by distance (ties broken
    /// by id for determinism). Returns fewer when the tree holds fewer.
    pub fn knn(&self, q: Point, k: usize) -> Vec<(Entry, f64)> {
        self.knn_with_stats(q, k).0
    }

    /// [`RTree::knn`] plus search-effort statistics.
    pub fn knn_with_stats(&self, q: Point, k: usize) -> (Vec<(Entry, f64)>, KnnStats) {
        let mut scratch = RTreeScratch::default();
        let mut result = Vec::with_capacity(k);
        let stats = self.knn_into(&mut scratch, q, k, &mut result);
        (result, stats)
    }

    /// Allocation-free [`RTree::knn_with_stats`]: the best-first frontier
    /// lives in `scratch` (reused across calls) and results are written
    /// into `out` (cleared first). Bit-identical to the allocating form.
    pub fn knn_into(
        &self,
        scratch: &mut RTreeScratch,
        q: Point,
        k: usize,
        out: &mut Vec<(Entry, f64)>,
    ) -> KnnStats {
        out.clear();
        let mut stats = KnnStats::default();
        if k == 0 || self.size == 0 {
            return stats;
        }
        // Best-first search over MINDIST lower bounds.
        let heap = &mut scratch.heap;
        heap.clear();
        heap.push(QueueItem {
            dist_sq: self.nodes[self.root as usize].bbox.min_dist_sq(q),
            tie: 0,
            kind: ItemKind::Node(self.root),
        });
        while let Some(item) = heap.pop() {
            match item.kind {
                ItemKind::Node(id) => {
                    stats.nodes_visited += 1;
                    match &self.nodes[id as usize].kind {
                        NodeKind::Leaf { entries } => {
                            stats.entries_scanned += entries.len();
                            for e in entries {
                                heap.push(QueueItem {
                                    dist_sq: e.point.distance_sq(q),
                                    tie: e.id,
                                    kind: ItemKind::Entry(*e),
                                });
                            }
                        }
                        NodeKind::Internal { children } => {
                            for &c in children {
                                heap.push(QueueItem {
                                    dist_sq: self.nodes[c as usize].bbox.min_dist_sq(q),
                                    tie: 0,
                                    kind: ItemKind::Node(c),
                                });
                            }
                        }
                    }
                }
                ItemKind::Entry(e) => {
                    out.push((e, item.dist_sq.sqrt()));
                    if out.len() == k {
                        break;
                    }
                }
            }
        }
        stats
    }

    /// The nearest entry to `q`, if any.
    pub fn nearest(&self, q: Point) -> Option<(Entry, f64)> {
        self.knn(q, 1).pop()
    }

    /// Allocation-free [`RTree::nearest`]: reuses `scratch` for both the
    /// frontier heap and the one-element result buffer.
    pub fn nearest_with(&self, scratch: &mut RTreeScratch, q: Point) -> Option<(Entry, f64)> {
        let mut buf = std::mem::take(&mut scratch.nearest_buf);
        self.knn_into(scratch, q, 1, &mut buf);
        let hit = buf.pop();
        buf.clear();
        scratch.nearest_buf = buf;
        hit
    }

    /// Iterates over all entries (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = Entry> + '_ {
        let mut stack = vec![self.root];
        let mut buf: Vec<Entry> = Vec::new();
        std::iter::from_fn(move || loop {
            if let Some(e) = buf.pop() {
                return Some(e);
            }
            let node = stack.pop()?;
            match &self.nodes[node as usize].kind {
                NodeKind::Leaf { entries } => buf.extend_from_slice(entries),
                NodeKind::Internal { children } => stack.extend_from_slice(children),
            }
        })
    }

    /// Validates structural invariants (bbox containment, fill factors,
    /// balanced depth). Test/debug helper; panics on violation.
    pub fn check_invariants(&self) {
        if self.size == 0 {
            return;
        }
        let mut leaf_depths = Vec::new();
        self.check_rec(self.root, 0, &mut leaf_depths, true);
        let first = leaf_depths[0];
        assert!(
            leaf_depths.iter().all(|&d| d == first),
            "unbalanced leaf depths: {leaf_depths:?}"
        );
        assert_eq!(first, self.height, "height bookkeeping");
    }

    fn check_rec(&self, node: u32, depth: u32, leaf_depths: &mut Vec<u32>, is_root: bool) {
        let n = &self.nodes[node as usize];
        match &n.kind {
            NodeKind::Leaf { entries } => {
                for e in entries {
                    assert!(n.bbox.contains(e.point), "entry outside leaf bbox");
                }
                assert!(entries.len() <= MAX_ENTRIES, "leaf overflow");
                leaf_depths.push(depth);
            }
            NodeKind::Internal { children } => {
                assert!(!children.is_empty());
                assert!(children.len() <= MAX_ENTRIES, "internal overflow");
                if !is_root {
                    // Bulk-loaded trees may have one underfull node per
                    // level; accept >= 1 rather than strict MIN_ENTRIES.
                    assert!(!children.is_empty(), "empty internal node");
                }
                for &c in children {
                    assert!(
                        n.bbox.contains_box(&self.nodes[c as usize].bbox),
                        "child bbox escapes parent"
                    );
                    self.check_rec(c, depth + 1, leaf_depths, false);
                }
            }
        }
    }
}

/// Guttman's quadratic split over any items with a bbox projection.
fn quadratic_split<T, F: Fn(&T) -> Aabb>(items: Vec<T>, bbox_of: F) -> (Vec<T>, Vec<T>) {
    debug_assert!(items.len() >= 2);
    // Pick the pair wasting the most area as seeds.
    let boxes: Vec<Aabb> = items.iter().map(&bbox_of).collect();
    let (mut seed_a, mut seed_b, mut worst) = (0usize, 1usize, f64::NEG_INFINITY);
    for i in 0..items.len() {
        for j in (i + 1)..items.len() {
            let waste = boxes[i].union(&boxes[j]).area() - boxes[i].area() - boxes[j].area();
            if waste > worst {
                worst = waste;
                seed_a = i;
                seed_b = j;
            }
        }
    }
    let mut group_a: Vec<usize> = vec![seed_a];
    let mut group_b: Vec<usize> = vec![seed_b];
    let mut bbox_a = boxes[seed_a];
    let mut bbox_b = boxes[seed_b];
    let total = items.len();
    let mut rest: Vec<usize> = (0..total).filter(|&i| i != seed_a && i != seed_b).collect();

    while let Some(pos) = pick_next(&rest, &boxes, &bbox_a, &bbox_b) {
        let i = rest.swap_remove(pos);
        // Force-assign to honour minimum fill.
        let need_a = MIN_ENTRIES.saturating_sub(group_a.len());
        let need_b = MIN_ENTRIES.saturating_sub(group_b.len());
        let remaining = rest.len() + 1;
        let to_a = if need_a >= remaining {
            true
        } else if need_b >= remaining {
            false
        } else {
            let grow_a = bbox_a.union(&boxes[i]).area() - bbox_a.area();
            let grow_b = bbox_b.union(&boxes[i]).area() - bbox_b.area();
            grow_a < grow_b || (grow_a == grow_b && group_a.len() <= group_b.len())
        };
        if to_a {
            group_a.push(i);
            bbox_a = bbox_a.union(&boxes[i]);
        } else {
            group_b.push(i);
            bbox_b = bbox_b.union(&boxes[i]);
        }
    }

    // Materialise preserving the original values.
    let mut tagged: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let take = |ids: &[usize], tagged: &mut Vec<Option<T>>| {
        ids.iter()
            .map(|&i| tagged[i].take().expect("each index assigned once"))
            .collect::<Vec<T>>()
    };
    let a = take(&group_a, &mut tagged);
    let b = take(&group_b, &mut tagged);
    (a, b)
}

/// Next item with the maximum preference between the two groups.
fn pick_next(rest: &[usize], boxes: &[Aabb], bbox_a: &Aabb, bbox_b: &Aabb) -> Option<usize> {
    if rest.is_empty() {
        return None;
    }
    let mut best_pos = 0;
    let mut best_pref = f64::NEG_INFINITY;
    for (pos, &i) in rest.iter().enumerate() {
        let grow_a = bbox_a.union(&boxes[i]).area() - bbox_a.area();
        let grow_b = bbox_b.union(&boxes[i]).area() - bbox_b.area();
        let pref = (grow_a - grow_b).abs();
        if pref > best_pref {
            best_pref = pref;
            best_pos = pos;
        }
    }
    Some(best_pos)
}

/// Reusable per-query state for the best-first kNN descent
/// ([`RTree::knn_into`] / [`RTree::nearest_with`]).
///
/// Holding one of these per worker (not per call) makes repeated kNN
/// probes allocation-free once the heap has grown to its working size.
#[derive(Debug, Clone, Default)]
pub struct RTreeScratch {
    heap: BinaryHeap<QueueItem>,
    nearest_buf: Vec<(Entry, f64)>,
}

// Priority-queue plumbing: min-heap on squared distance with id tie-breaks.

#[derive(Debug, Clone, Copy)]
enum ItemKind {
    Node(u32),
    Entry(Entry),
}

#[derive(Debug, Clone, Copy)]
struct QueueItem {
    dist_sq: f64,
    tie: u32,
    kind: ItemKind,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap, we need the smallest distance
        // first. Nodes sort before entries at equal distance so bounds are
        // expanded before results are emitted; entry ties break by id.
        other
            .dist_sq
            .total_cmp(&self.dist_sq)
            .then_with(|| {
                let rank = |k: &ItemKind| match k {
                    ItemKind::Node(_) => 0u8,
                    ItemKind::Entry(_) => 1,
                };
                rank(&other.kind).cmp(&rank(&self.kind))
            })
            .then_with(|| other.tie.cmp(&self.tie))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn random_entries(n: usize, seed: u64) -> Vec<Entry> {
        let mut next = lcg(seed);
        (0..n)
            .map(|i| Entry {
                point: Point::new(next() * 100.0, next() * 100.0),
                id: i as u32,
            })
            .collect()
    }

    fn brute_knn(items: &[Entry], q: Point, k: usize) -> Vec<u32> {
        let mut v: Vec<&Entry> = items.iter().collect();
        v.sort_by(|a, b| {
            a.point
                .distance_sq(q)
                .total_cmp(&b.point.distance_sq(q))
                .then(a.id.cmp(&b.id))
        });
        v.into_iter().take(k).map(|e| e.id).collect()
    }

    #[test]
    fn bulk_load_structure() {
        for n in [1usize, 5, 16, 17, 100, 1000] {
            let tree = RTree::bulk_load(random_entries(n, 42));
            assert_eq!(tree.len(), n);
            tree.check_invariants();
        }
    }

    #[test]
    fn empty_tree_queries() {
        let tree = RTree::new();
        assert!(tree.is_empty());
        assert!(tree.knn(Point::ORIGIN, 3).is_empty());
        assert!(tree.nearest(Point::ORIGIN).is_none());
        assert!(tree.range(&Aabb::unit()).is_empty());
    }

    #[test]
    fn knn_matches_brute_force_bulk() {
        let items = random_entries(500, 7);
        let tree = RTree::bulk_load(items.clone());
        let mut next = lcg(99);
        for _ in 0..50 {
            let q = Point::new(next() * 100.0, next() * 100.0);
            for k in [1usize, 3, 10, 40] {
                let got: Vec<u32> = tree.knn(q, k).into_iter().map(|(e, _)| e.id).collect();
                let want = brute_knn(&items, q, k);
                assert_eq!(got, want, "k={k} q={q:?}");
            }
        }
    }

    #[test]
    fn knn_distances_ascending() {
        let tree = RTree::bulk_load(random_entries(200, 3));
        let res = tree.knn(Point::new(50.0, 50.0), 20);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(res.len(), 20);
    }

    #[test]
    fn knn_k_larger_than_size() {
        let items = random_entries(5, 11);
        let tree = RTree::bulk_load(items);
        assert_eq!(tree.knn(Point::ORIGIN, 100).len(), 5);
    }

    #[test]
    fn incremental_insert_matches_brute() {
        let items = random_entries(300, 17);
        let mut tree = RTree::new();
        for e in &items {
            tree.insert(e.point, e.id);
        }
        tree.check_invariants();
        assert_eq!(tree.len(), 300);
        let mut next = lcg(5);
        for _ in 0..30 {
            let q = Point::new(next() * 100.0, next() * 100.0);
            let got: Vec<u32> = tree.knn(q, 7).into_iter().map(|(e, _)| e.id).collect();
            assert_eq!(got, brute_knn(&items, q, 7));
        }
    }

    #[test]
    fn range_query() {
        let items = random_entries(400, 23);
        let tree = RTree::bulk_load(items.clone());
        let region = Aabb::new(Point::new(20.0, 20.0), Point::new(60.0, 50.0));
        let mut got: Vec<u32> = tree.range(&region).into_iter().map(|e| e.id).collect();
        got.sort_unstable();
        let mut want: Vec<u32> = items
            .iter()
            .filter(|e| region.contains(e.point))
            .map(|e| e.id)
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
        assert!(!got.is_empty(), "test region should be non-trivial");
    }

    #[test]
    fn remove_and_requery() {
        let items = random_entries(150, 31);
        let mut tree = RTree::bulk_load(items.clone());
        // Remove every third entry.
        let mut live: Vec<Entry> = Vec::new();
        for (i, e) in items.iter().enumerate() {
            if i % 3 == 0 {
                assert!(tree.remove(e.point, e.id), "entry must be found");
            } else {
                live.push(*e);
            }
        }
        tree.check_invariants();
        assert_eq!(tree.len(), live.len());
        let mut next = lcg(77);
        for _ in 0..20 {
            let q = Point::new(next() * 100.0, next() * 100.0);
            let got: Vec<u32> = tree.knn(q, 5).into_iter().map(|(e, _)| e.id).collect();
            assert_eq!(got, brute_knn(&live, q, 5));
        }
        // Removing a non-existent entry fails gracefully.
        assert!(!tree.remove(Point::new(-1000.0, -1000.0), 9999));
    }

    #[test]
    fn remove_everything() {
        let items = random_entries(60, 13);
        let mut tree = RTree::bulk_load(items.clone());
        for e in &items {
            assert!(tree.remove(e.point, e.id));
        }
        assert!(tree.is_empty());
        assert!(tree.knn(Point::ORIGIN, 1).is_empty());
        // Tree remains usable.
        tree.insert(Point::new(1.0, 1.0), 7);
        assert_eq!(tree.nearest(Point::ORIGIN).unwrap().0.id, 7);
    }

    #[test]
    fn iter_visits_all() {
        let items = random_entries(100, 53);
        let tree = RTree::bulk_load(items.clone());
        let mut ids: Vec<u32> = tree.iter().map(|e| e.id).collect();
        ids.sort_unstable();
        let want: Vec<u32> = (0..100).collect();
        assert_eq!(ids, want);
    }

    #[test]
    fn duplicate_positions_allowed() {
        // R-trees happily store coincident points with distinct ids.
        let mut tree = RTree::new();
        for id in 0..20 {
            tree.insert(Point::new(1.0, 1.0), id);
        }
        tree.insert(Point::new(2.0, 2.0), 100);
        let got: Vec<u32> = tree
            .knn(Point::new(1.0, 1.0), 21)
            .iter()
            .map(|(e, _)| e.id)
            .collect();
        assert_eq!(got.len(), 21);
        assert_eq!(got[20], 100, "farther point comes last");
    }
}

//! The V*-diagram baseline (Nutanong et al., PVLDB 2008) — the relaxed
//! safe-region competitor the paper positions INS against.
//!
//! Faithful functional model (see DESIGN.md, *Substitutions*): at each
//! retrieval position `q0` the client fetches the `k + x` nearest objects.
//! The *known region* is the disk of radius `r_kr = d(q0, p_{k+x})` around
//! `q0`: every unretrieved object is provably at distance
//! `≥ r_kr − d(q, q0)` from any later position `q`. The current kNN is the
//! top-k of the retrieved set; it is certifiably correct while
//!
//! ```text
//! d(q, k-th retrieved NN) ≤ r_kr − d(q, q0)
//! ```
//!
//! Construction is trivial (no region geometry at all) and the result can
//! change within the retrieved set without server contact ("local
//! re-rank"); the price is a *smaller* effective safe region than the
//! order-k Voronoi cell, hence more frequent retrievals — precisely the
//! trade-off the paper describes for relaxed safe regions (\[5\]).

use insq_core::{CoreError, MovingKnn, QueryStats, TickOutcome};
use insq_geom::Point;
use insq_index::VorTree;
use insq_voronoi::SiteId;

/// Configuration of the V* baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VStarConfig {
    /// Number of nearest neighbors to report (k ≥ 1).
    pub k: usize,
    /// Auxiliary objects retrieved beyond k (x ≥ 1). The V* paper
    /// recommends a small constant x; the benchmark default is
    /// `clamp(k/2, 2, 8)`.
    pub x: usize,
}

impl VStarConfig {
    /// Default auxiliary count: `clamp(k/2, 2, 8)` — the V* paper
    /// recommends a small constant x (the safe region is limited by the
    /// nearest unretrieved object, so large x buys little).
    pub fn with_k(k: usize) -> VStarConfig {
        VStarConfig {
            k,
            x: (k / 2).clamp(2, 8),
        }
    }
}

/// V*-diagram style moving kNN processor.
#[derive(Debug, Clone)]
pub struct VStarProcessor<'a> {
    index: &'a VorTree,
    cfg: VStarConfig,
    /// Retrieval anchor.
    q0: Point,
    /// Known-region radius at the anchor.
    known_radius: f64,
    /// The k + x retrieved objects (ids; distances recomputed per tick).
    retrieved: Vec<SiteId>,
    /// Current kNN, ascending by distance from the last position.
    knn: Vec<(SiteId, f64)>,
    stats: QueryStats,
    initialized: bool,
}

impl<'a> VStarProcessor<'a> {
    /// Creates the processor; fails on `k = 0`, `x = 0`, or `k + x > n`.
    pub fn new(index: &'a VorTree, cfg: VStarConfig) -> Result<VStarProcessor<'a>, CoreError> {
        if cfg.k == 0 {
            return Err(CoreError::BadConfig {
                reason: "k must be at least 1",
            });
        }
        if cfg.x == 0 {
            return Err(CoreError::BadConfig {
                reason: "x must be at least 1 (the known region needs an outer witness)",
            });
        }
        if cfg.k + cfg.x > index.len() {
            return Err(CoreError::BadConfig {
                reason: "k + x exceeds the number of data objects",
            });
        }
        Ok(VStarProcessor {
            index,
            cfg,
            q0: Point::ORIGIN,
            known_radius: 0.0,
            retrieved: Vec::new(),
            knn: Vec::new(),
            stats: QueryStats::default(),
            initialized: false,
        })
    }

    /// The configuration.
    pub fn config(&self) -> VStarConfig {
        self.cfg
    }

    /// Current kNN with distances.
    pub fn current_knn_with_dists(&self) -> &[(SiteId, f64)] {
        &self.knn
    }

    /// Remaining safe margin at `q`: how much farther the k-th neighbor may
    /// drift before a retrieval is forced (negative = invalid).
    pub fn safety_margin(&self, q: Point) -> f64 {
        let kth = self.knn.last().map(|&(_, d)| d).unwrap_or(f64::INFINITY);
        (self.known_radius - q.distance(self.q0)) - kth
    }

    fn retrieve(&mut self, q: Point) {
        let m = (self.cfg.k + self.cfg.x).min(self.index.len());
        let (res, st) = self.index.rtree().knn_with_stats(q, m);
        self.stats.search_ops += (st.nodes_visited + st.entries_scanned) as u64;
        // Communication: objects not already held.
        let newly = res
            .iter()
            .filter(|(e, _)| !self.retrieved.contains(&SiteId(e.id)))
            .count() as u64;
        self.stats.comm_objects += newly;
        self.known_radius = res.last().map(|&(_, d)| d).unwrap_or(0.0);
        self.retrieved = res.iter().map(|&(e, _)| SiteId(e.id)).collect();
        self.knn = res[..self.cfg.k]
            .iter()
            .map(|&(e, d)| (SiteId(e.id), d))
            .collect();
        self.q0 = q;
    }

    /// Re-ranks the retrieved set at `q`; returns whether the top-k can be
    /// certified against the known region.
    fn rerank(&mut self, q: Point) -> bool {
        let mut ranked: Vec<(SiteId, f64)> = self
            .retrieved
            .iter()
            .map(|&s| (s, self.index.point(s).distance(q)))
            .collect();
        self.stats.validation_ops += ranked.len() as u64;
        ranked.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        let kth = ranked[self.cfg.k - 1].1;
        let safe = kth <= self.known_radius - q.distance(self.q0);
        if safe {
            self.knn = ranked[..self.cfg.k].to_vec();
        }
        safe
    }
}

impl MovingKnn<Point, SiteId> for VStarProcessor<'_> {
    fn name(&self) -> &'static str {
        "V*"
    }

    fn tick(&mut self, pos: Point) -> TickOutcome {
        if !self.initialized {
            self.retrieve(pos);
            self.initialized = true;
            let outcome = TickOutcome::Recompute;
            self.stats.record(outcome);
            return outcome;
        }
        let before: Vec<SiteId> = self.knn.iter().map(|&(s, _)| s).collect();
        let outcome = if self.rerank(pos) {
            let after: Vec<SiteId> = self.knn.iter().map(|&(s, _)| s).collect();
            let changed = {
                let mut a = before;
                let mut b = after;
                a.sort_unstable();
                b.sort_unstable();
                a != b
            };
            if changed {
                // The result changed but was repaired from the retrieved
                // set — V*'s selling point.
                TickOutcome::LocalRerank
            } else {
                TickOutcome::Valid
            }
        } else {
            self.retrieve(pos);
            TickOutcome::Recompute
        };
        self.stats.record(outcome);
        outcome
    }

    fn current_knn(&self) -> Vec<SiteId> {
        self.knn.iter().map(|&(s, _)| s).collect()
    }

    fn stats(&self) -> &QueryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_geom::Aabb;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn build(n: usize, seed: u64) -> VorTree {
        let mut next = lcg(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        VorTree::build(
            points,
            Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0)),
        )
        .unwrap()
    }

    #[test]
    fn matches_brute_force_along_walk() {
        let idx = build(250, 23);
        let mut p = VStarProcessor::new(&idx, VStarConfig { k: 4, x: 3 }).unwrap();
        let mut next = lcg(9);
        let mut pos = Point::new(50.0, 50.0);
        let mut target = Point::new(next() * 100.0, next() * 100.0);
        for _ in 0..400 {
            if pos.distance(target) < 1.0 {
                target = Point::new(next() * 100.0, next() * 100.0);
            }
            let dir = (target - pos)
                .normalized()
                .unwrap_or(insq_geom::Vector::ZERO);
            pos += dir * 0.7;
            p.tick(pos);
            let mut got = p.current_knn();
            got.sort_unstable();
            let mut want = idx.voronoi().knn_brute(pos, 4);
            want.sort_unstable();
            assert_eq!(got, want, "kNN mismatch at {pos:?}");
        }
    }

    #[test]
    fn recomputes_more_often_than_ins() {
        // The paper's core comparison: V*'s relaxed region forces more
        // retrievals than the (maximal) region the INS guards.
        let idx = build(300, 31);
        let mut vstar = VStarProcessor::new(&idx, VStarConfig::with_k(4)).unwrap();
        let mut ins =
            insq_core::InsProcessor::new(&idx, insq_core::InsConfig::new(4, 1.6)).unwrap();
        let mut next = lcg(13);
        let mut pos = Point::new(50.0, 50.0);
        let mut target = Point::new(next() * 100.0, next() * 100.0);
        for _ in 0..800 {
            if pos.distance(target) < 1.0 {
                target = Point::new(next() * 100.0, next() * 100.0);
            }
            let dir = (target - pos)
                .normalized()
                .unwrap_or(insq_geom::Vector::ZERO);
            pos += dir * 0.5;
            vstar.tick(pos);
            ins.tick(pos);
        }
        assert!(
            vstar.stats().recomputations > ins.stats().recomputations,
            "V* {} vs INS {}",
            vstar.stats().recomputations,
            ins.stats().recomputations
        );
    }

    #[test]
    fn stationary_is_all_valid() {
        let idx = build(80, 3);
        let mut p = VStarProcessor::new(&idx, VStarConfig { k: 3, x: 2 }).unwrap();
        let q = Point::new(30.0, 30.0);
        p.tick(q);
        for _ in 0..5 {
            assert_eq!(p.tick(q), TickOutcome::Valid);
        }
    }

    #[test]
    fn safety_margin_shrinks_with_movement() {
        let idx = build(150, 4);
        let mut p = VStarProcessor::new(&idx, VStarConfig { k: 3, x: 3 }).unwrap();
        let q = Point::new(50.0, 50.0);
        p.tick(q);
        let m0 = p.safety_margin(q);
        assert!(m0 >= 0.0);
        let m1 = p.safety_margin(Point::new(51.0, 50.0));
        assert!(m1 <= m0);
    }

    #[test]
    fn bad_configs() {
        let idx = build(10, 5);
        assert!(VStarProcessor::new(&idx, VStarConfig { k: 0, x: 2 }).is_err());
        assert!(VStarProcessor::new(&idx, VStarConfig { k: 3, x: 0 }).is_err());
        assert!(VStarProcessor::new(&idx, VStarConfig { k: 8, x: 3 }).is_err());
    }
}

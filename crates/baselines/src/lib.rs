//! # insq-baselines
//!
//! The competing moving-kNN methods the INSQ paper measures INS against,
//! all implementing the shared [`insq_core::MovingKnn`] interface:
//!
//! * [`NaiveProcessor`] / [`NetNaiveProcessor`] — recompute every
//!   timestamp (no safe region at all);
//! * [`OkvProcessor`] — strict order-k Voronoi cell safe regions (the
//!   early approaches \[2\], \[6\] of the paper): maximal region, minimal
//!   recomputation frequency, prohibitive construction cost;
//! * [`VStarProcessor`] — the V\*-diagram (\[5\]): relaxed safe regions with
//!   cheap construction but more frequent recomputation.
//!
//! Together with `insq_core::InsProcessor` these populate the evaluation
//! matrix of EXPERIMENTS.md: INS is the only method cheap on *both* axes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod naive;
pub mod network_naive;
pub mod okv;
pub mod vstar;

pub use naive::NaiveProcessor;
pub use network_naive::NetNaiveProcessor;
pub use okv::OkvProcessor;
pub use vstar::{VStarConfig, VStarProcessor};

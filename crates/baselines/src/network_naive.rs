//! The naive road-network baseline: a fresh Incremental Network Expansion
//! at every timestamp.

use insq_core::{CoreError, MovingKnn, QueryStats, TickOutcome};
use insq_roadnet::ine::network_knn_with_stats;
use insq_roadnet::{NetPosition, RoadNetwork, SiteIdx, SiteSet};

/// Recompute-per-tick network moving kNN.
#[derive(Debug)]
pub struct NetNaiveProcessor<'a> {
    net: &'a RoadNetwork,
    sites: &'a SiteSet,
    k: usize,
    knn: Vec<(SiteIdx, f64)>,
    stats: QueryStats,
}

impl<'a> NetNaiveProcessor<'a> {
    /// Creates the processor; fails on `k = 0` or `k > m`.
    pub fn new(
        net: &'a RoadNetwork,
        sites: &'a SiteSet,
        k: usize,
    ) -> Result<NetNaiveProcessor<'a>, CoreError> {
        if k == 0 {
            return Err(CoreError::BadConfig {
                reason: "k must be at least 1",
            });
        }
        if k > sites.len() {
            return Err(CoreError::BadConfig {
                reason: "k exceeds the number of data objects",
            });
        }
        Ok(NetNaiveProcessor {
            net,
            sites,
            k,
            knn: Vec::new(),
            stats: QueryStats::default(),
        })
    }

    /// Current kNN with network distances.
    pub fn current_knn_with_dists(&self) -> &[(SiteIdx, f64)] {
        &self.knn
    }
}

impl MovingKnn<NetPosition, SiteIdx> for NetNaiveProcessor<'_> {
    fn name(&self) -> &'static str {
        "Naive-road"
    }

    fn tick(&mut self, pos: NetPosition) -> TickOutcome {
        let (res, st) = network_knn_with_stats(self.net, self.sites, pos, self.k);
        self.stats.search_ops += st.settled as u64;
        self.stats.comm_objects += res.len() as u64;
        let changed = {
            let mut a: Vec<SiteIdx> = self.knn.iter().map(|&(s, _)| s).collect();
            let mut b: Vec<SiteIdx> = res.iter().map(|&(s, _)| s).collect();
            a.sort_unstable();
            b.sort_unstable();
            a != b
        };
        self.knn = res;
        let outcome = if changed {
            TickOutcome::Recompute
        } else {
            TickOutcome::Valid
        };
        self.stats.record(outcome);
        outcome
    }

    fn current_knn(&self) -> Vec<SiteIdx> {
        self.knn.iter().map(|&(s, _)| s).collect()
    }

    fn stats(&self) -> &QueryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
    use insq_roadnet::VertexId;

    fn setup() -> (RoadNetwork, SiteSet) {
        let net = grid_network(&GridConfig::default(), 3).unwrap();
        let sv = random_site_vertices(&net, 15, 3).unwrap();
        let sites = SiteSet::new(&net, sv).unwrap();
        (net, sites)
    }

    #[test]
    fn comm_is_k_per_tick() {
        let (net, sites) = setup();
        let mut p = NetNaiveProcessor::new(&net, &sites, 3).unwrap();
        for v in 0..20u32 {
            p.tick(NetPosition::Vertex(VertexId(v)));
        }
        assert_eq!(p.stats().comm_objects, 60);
        assert!(p.stats().search_ops > 0);
    }

    #[test]
    fn results_sorted() {
        let (net, sites) = setup();
        let mut p = NetNaiveProcessor::new(&net, &sites, 5).unwrap();
        p.tick(NetPosition::Vertex(VertexId(50)));
        let res = p.current_knn_with_dists();
        assert_eq!(res.len(), 5);
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn bad_configs() {
        let (net, sites) = setup();
        assert!(NetNaiveProcessor::new(&net, &sites, 0).is_err());
        assert!(NetNaiveProcessor::new(&net, &sites, 16).is_err());
    }
}

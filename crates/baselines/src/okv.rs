//! The strict safe-region baseline: order-k Voronoi cells (OkV).
//!
//! The approach of the earlier studies the paper discusses (\[2\], \[6\]): on
//! every recomputation, materialise the order-k Voronoi cell `V^k(kNN)` as
//! a polygon; per timestamp, validate with a point-in-polygon test.
//!
//! The safe region is maximal — identical to the region the INS guards
//! implicitly — so OkV ties INS on recomputation frequency and
//! communication. What it loses is *construction* cost: every
//! recomputation pays a cascade of half-plane clips to build the polygon
//! (the paper: "the computation cost of computing order-k Voronoi cells on
//! the fly is prohibitively high"), which the op counters here make
//! visible. Its validation is cheaper per tick than the INS scan
//! (`O(cell edges)` vs `O(k + |INS|)` — both small), which is the honest
//! trade-off the benchmarks report.

use insq_core::{influential_neighbor_set, CoreError, MovingKnn, QueryStats, TickOutcome};
use insq_geom::{ConvexPolygon, HalfPlane, Point};
use insq_index::VorTree;
use insq_voronoi::SiteId;

/// Order-k Voronoi cell safe-region moving kNN.
#[derive(Debug, Clone)]
pub struct OkvProcessor<'a> {
    index: &'a VorTree,
    k: usize,
    knn: Vec<(SiteId, f64)>,
    region: ConvexPolygon,
    stats: QueryStats,
    initialized: bool,
}

impl<'a> OkvProcessor<'a> {
    /// Creates the processor; fails on `k = 0` or `k > n`.
    pub fn new(index: &'a VorTree, k: usize) -> Result<OkvProcessor<'a>, CoreError> {
        if k == 0 {
            return Err(CoreError::BadConfig {
                reason: "k must be at least 1",
            });
        }
        if k > index.len() {
            return Err(CoreError::BadConfig {
                reason: "k exceeds the number of data objects",
            });
        }
        Ok(OkvProcessor {
            index,
            k,
            knn: Vec::new(),
            region: ConvexPolygon::empty(),
            stats: QueryStats::default(),
            initialized: false,
        })
    }

    /// The current safe region polygon (`V^k(kNN)` clipped to the data
    /// bounds).
    pub fn safe_region(&self) -> &ConvexPolygon {
        &self.region
    }

    /// Current kNN with distances from the last recomputation point.
    pub fn current_knn_with_dists(&self) -> &[(SiteId, f64)] {
        &self.knn
    }

    fn recompute(&mut self, q: Point) {
        let (res, st) = self.index.rtree().knn_with_stats(q, self.k);
        self.stats.search_ops += (st.nodes_visited + st.entries_scanned) as u64;
        self.knn = res.into_iter().map(|(e, d)| (SiteId(e.id), d)).collect();
        // The server ships the k result objects.
        self.stats.comm_objects += self.knn.len() as u64;

        // Materialise the order-k cell, counting every vertex the clip
        // cascade touches — the construction overhead this baseline pays.
        let voronoi = self.index.voronoi();
        let knn_ids: Vec<SiteId> = self.knn.iter().map(|&(s, _)| s).collect();
        // Candidates: the INS (sound and exact since MIS ⊆ INS). A real
        // system without neighbor lists would use a far larger candidate
        // set; using the INS makes this baseline *optimistic*.
        let candidates = influential_neighbor_set(voronoi, &knn_ids);
        let mut region = ConvexPolygon::from_aabb(&voronoi.bounds());
        let mut scratch: Vec<Point> = Vec::with_capacity(16);
        let mut ops = 0u64;
        'outer: for &p in &knn_ids {
            let pp = voronoi.point(p);
            for &s in &candidates {
                let h = HalfPlane::closer_to(pp, voronoi.point(s));
                ops += region.len() as u64 + 1;
                region.clip_halfplane_in_place(&h, &mut scratch);
                if region.is_empty() {
                    break 'outer;
                }
            }
        }
        self.stats.construction_ops += ops;
        // The client validates with a point-in-polygon test, so the region
        // geometry itself must be shipped along with the k results — one
        // point-sized payload per polygon vertex.
        self.stats.comm_objects += region.len() as u64;
        self.region = region;
    }
}

impl MovingKnn<Point, SiteId> for OkvProcessor<'_> {
    fn name(&self) -> &'static str {
        "OkV"
    }

    fn tick(&mut self, pos: Point) -> TickOutcome {
        if !self.initialized {
            self.recompute(pos);
            self.initialized = true;
            let outcome = TickOutcome::Recompute;
            self.stats.record(outcome);
            return outcome;
        }
        // Point-in-polygon validation.
        self.stats.validation_ops += self.region.len().max(1) as u64;
        let outcome = if self.region.contains(pos) {
            TickOutcome::Valid
        } else {
            self.recompute(pos);
            TickOutcome::Recompute
        };
        self.stats.record(outcome);
        outcome
    }

    fn current_knn(&self) -> Vec<SiteId> {
        self.knn.iter().map(|&(s, _)| s).collect()
    }

    fn stats(&self) -> &QueryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_geom::Aabb;

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn build(n: usize, seed: u64) -> VorTree {
        let mut next = lcg(seed);
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        VorTree::build(
            points,
            Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0)),
        )
        .unwrap()
    }

    #[test]
    fn matches_brute_force_along_walk() {
        let idx = build(250, 17);
        let mut p = OkvProcessor::new(&idx, 4).unwrap();
        let mut next = lcg(3);
        let mut pos = Point::new(50.0, 50.0);
        let mut target = Point::new(next() * 100.0, next() * 100.0);
        for _ in 0..400 {
            if pos.distance(target) < 1.0 {
                target = Point::new(next() * 100.0, next() * 100.0);
            }
            let dir = (target - pos)
                .normalized()
                .unwrap_or(insq_geom::Vector::ZERO);
            pos += dir * 0.7;
            p.tick(pos);
            let mut got = p.current_knn();
            got.sort_unstable();
            let mut want = idx.voronoi().knn_brute(pos, 4);
            want.sort_unstable();
            assert_eq!(got, want, "kNN mismatch at {pos:?}");
        }
        // Construction cost must dominate validation — the baseline's
        // signature inefficiency.
        let s = p.stats();
        assert!(s.construction_ops > s.validation_ops, "{s:?}");
    }

    #[test]
    fn safe_region_contains_query_while_valid() {
        let idx = build(120, 5);
        let mut p = OkvProcessor::new(&idx, 3).unwrap();
        let q = Point::new(40.0, 40.0);
        p.tick(q);
        assert!(p.safe_region().contains(q));
        assert_eq!(p.tick(q), TickOutcome::Valid);
    }

    #[test]
    fn region_exit_forces_recompute() {
        let idx = build(150, 6);
        let mut p = OkvProcessor::new(&idx, 2).unwrap();
        p.tick(Point::new(20.0, 20.0));
        let outcome = p.tick(Point::new(80.0, 80.0));
        assert_eq!(outcome, TickOutcome::Recompute);
    }

    #[test]
    fn bad_configs() {
        let idx = build(10, 7);
        assert!(OkvProcessor::new(&idx, 0).is_err());
        assert!(OkvProcessor::new(&idx, 11).is_err());
    }
}

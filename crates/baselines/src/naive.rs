//! The naive baseline: recompute the kNN set at every timestamp.
//!
//! No safe region, no guards — the client sends its position every tick
//! and receives k fresh objects back. Maximal communication and per-tick
//! search cost, zero validation machinery. Every other method is measured
//! against this floor/ceiling.

use insq_core::{CoreError, MovingKnn, QueryStats, TickOutcome};
use insq_geom::Point;
use insq_index::RTree;
use insq_voronoi::SiteId;

/// Recompute-per-tick moving kNN over an R-tree.
#[derive(Debug, Clone)]
pub struct NaiveProcessor<'a> {
    rtree: &'a RTree,
    k: usize,
    knn: Vec<(SiteId, f64)>,
    stats: QueryStats,
}

impl<'a> NaiveProcessor<'a> {
    /// Creates the processor; fails on `k = 0` or `k > n`.
    pub fn new(rtree: &'a RTree, k: usize) -> Result<NaiveProcessor<'a>, CoreError> {
        if k == 0 {
            return Err(CoreError::BadConfig {
                reason: "k must be at least 1",
            });
        }
        if k > rtree.len() {
            return Err(CoreError::BadConfig {
                reason: "k exceeds the number of data objects",
            });
        }
        Ok(NaiveProcessor {
            rtree,
            k,
            knn: Vec::new(),
            stats: QueryStats::default(),
        })
    }

    /// Current kNN with distances.
    pub fn current_knn_with_dists(&self) -> &[(SiteId, f64)] {
        &self.knn
    }
}

impl MovingKnn<Point, SiteId> for NaiveProcessor<'_> {
    fn name(&self) -> &'static str {
        "Naive"
    }

    fn tick(&mut self, pos: Point) -> TickOutcome {
        let (res, st) = self.rtree.knn_with_stats(pos, self.k);
        self.stats.search_ops += (st.nodes_visited + st.entries_scanned) as u64;
        // The server ships k objects every timestamp.
        self.stats.comm_objects += res.len() as u64;
        let new: Vec<(SiteId, f64)> = res.into_iter().map(|(e, d)| (SiteId(e.id), d)).collect();
        let changed = {
            let mut a: Vec<SiteId> = self.knn.iter().map(|&(s, _)| s).collect();
            let mut b: Vec<SiteId> = new.iter().map(|&(s, _)| s).collect();
            a.sort_unstable();
            b.sort_unstable();
            a != b
        };
        self.knn = new;
        let outcome = if changed {
            TickOutcome::Recompute
        } else {
            // Still a full recomputation — the naive method cannot know the
            // result was stable — but we classify unchanged results as
            // Valid so result-churn statistics remain comparable across
            // methods. The search/comm costs above tell the true story.
            TickOutcome::Valid
        };
        self.stats.record(outcome);
        outcome
    }

    fn current_knn(&self) -> Vec<SiteId> {
        self.knn.iter().map(|&(s, _)| s).collect()
    }

    fn stats(&self) -> &QueryStats {
        &self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = QueryStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_index::rtree::Entry;

    fn build(n: usize, seed: u64) -> RTree {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        RTree::bulk_load(
            (0..n)
                .map(|i| Entry {
                    point: Point::new(next() * 100.0, next() * 100.0),
                    id: i as u32,
                })
                .collect(),
        )
    }

    #[test]
    fn comm_is_k_per_tick() {
        let tree = build(100, 1);
        let mut p = NaiveProcessor::new(&tree, 5).unwrap();
        for i in 0..10 {
            p.tick(Point::new(i as f64, i as f64));
        }
        assert_eq!(p.stats().comm_objects, 50);
        assert_eq!(p.stats().ticks, 10);
        assert!(p.stats().search_ops > 0);
    }

    #[test]
    fn results_sorted_by_distance() {
        let tree = build(200, 2);
        let mut p = NaiveProcessor::new(&tree, 8).unwrap();
        p.tick(Point::new(50.0, 50.0));
        let res = p.current_knn_with_dists();
        for w in res.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(res.len(), 8);
    }

    #[test]
    fn bad_configs() {
        let tree = build(10, 3);
        assert!(NaiveProcessor::new(&tree, 0).is_err());
        assert!(NaiveProcessor::new(&tree, 11).is_err());
    }
}

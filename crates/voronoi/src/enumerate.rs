//! Enumeration of all order-k Voronoi cells of a diagram.
//!
//! The paper (§I) notes that "precomputing the order-k Voronoi cells is
//! unpractical due to the rapid increase in the number of order-k Voronoi
//! cells as k increases" — this module makes that statement measurable.
//! Starting from the cell of one realisable k-set, a breadth-first search
//! over the swap adjacency (each boundary edge of a cell leads to the
//! neighbor cell differing in exactly one object) visits every order-k
//! cell intersecting the window. Intended for analysis, figures and tests
//! on small-to-medium inputs, not for the query path.

use std::collections::{HashMap, VecDeque};

use insq_geom::Point;

use crate::diagram::{SiteId, Voronoi};
use crate::order_k::order_k_cell_tagged;

/// One enumerated order-k cell.
#[derive(Debug, Clone)]
pub struct OrderKCell {
    /// The k-set of the cell, sorted by site id.
    pub knn_set: Vec<SiteId>,
    /// Cell area (clipped to the diagram window).
    pub area: f64,
    /// The k-sets of the adjacent cells (sorted ids each).
    pub neighbors: Vec<Vec<SiteId>>,
}

/// Enumerates every order-k Voronoi cell of the diagram (clipped to its
/// window), via BFS over swap adjacency from the cell containing `seed`.
///
/// Every point of the window belongs to some order-k cell and the cells'
/// adjacency graph is connected, so the BFS is exhaustive. Runtime is
/// `O(#cells · k · |INS| · cell-size)` — exponential-feeling in k, which
/// is precisely the phenomenon the paper cites; see
/// [`cell_count_growth`] for the
/// measured curve.
pub fn enumerate_order_k_cells(voronoi: &Voronoi, k: usize, seed: Point) -> Vec<OrderKCell> {
    assert!(k >= 1 && k <= voronoi.len(), "1 <= k <= n required");
    let mut start = voronoi.knn_brute(seed, k);
    start.sort_unstable();

    let mut seen: HashMap<Vec<SiteId>, usize> = HashMap::new();
    let mut out: Vec<OrderKCell> = Vec::new();
    let mut queue: VecDeque<Vec<SiteId>> = VecDeque::new();
    seen.insert(start.clone(), 0);
    queue.push_back(start);

    while let Some(set) = queue.pop_front() {
        // Clip against the INS of the set — exact (MIS ⊆ INS) and far
        // cheaper than all-sites clipping.
        let ins = influential_neighbors(voronoi, &set);
        let cell = order_k_cell_tagged(voronoi.points(), &set, &ins, &voronoi.bounds());
        let mut neighbors: Vec<Vec<SiteId>> = Vec::new();
        if !cell.is_empty() {
            for (inside, outside) in cell.boundary_swaps() {
                let mut nb: Vec<SiteId> = set
                    .iter()
                    .copied()
                    .filter(|&s| s != inside)
                    .chain(std::iter::once(outside))
                    .collect();
                nb.sort_unstable();
                neighbors.push(nb.clone());
                if !seen.contains_key(&nb) {
                    seen.insert(nb.clone(), usize::MAX); // placeholder
                    queue.push_back(nb);
                }
            }
        }
        let idx = out.len();
        seen.insert(set.clone(), idx);
        out.push(OrderKCell {
            knn_set: set,
            area: cell.polygon().area(),
            neighbors,
        });
    }
    // Window-boundary effects can enqueue a swap whose cell is empty
    // inside the window; drop those.
    out.retain(|c| c.area > 0.0);
    out
}

fn influential_neighbors(voronoi: &Voronoi, set: &[SiteId]) -> Vec<SiteId> {
    let mut ins: Vec<SiteId> = Vec::with_capacity(set.len() * 6);
    for &p in set {
        ins.extend_from_slice(voronoi.neighbors(p));
    }
    ins.sort_unstable();
    ins.dedup();
    ins.retain(|s| !set.contains(s));
    ins
}

/// The number of order-k cells for `k = 1..=k_max` — the growth curve
/// behind the paper's "rapid increase" remark.
pub fn cell_count_growth(voronoi: &Voronoi, k_max: usize, seed: Point) -> Vec<(usize, usize)> {
    (1..=k_max.min(voronoi.len()))
        .map(|k| (k, enumerate_order_k_cells(voronoi, k, seed).len()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_geom::Aabb;

    fn random_voronoi(n: usize, seed: u64) -> Voronoi {
        let mut state = seed;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let points: Vec<Point> = (0..n)
            .map(|_| Point::new(next() * 10.0, next() * 10.0))
            .collect();
        Voronoi::build(
            points,
            Aabb::new(Point::new(-2.0, -2.0), Point::new(12.0, 12.0)),
        )
        .unwrap()
    }

    #[test]
    fn order_1_enumeration_matches_sites() {
        let v = random_voronoi(25, 3);
        let cells = enumerate_order_k_cells(&v, 1, Point::new(5.0, 5.0));
        // One cell per site (every order-1 cell intersects the window).
        assert_eq!(cells.len(), v.len());
        let total: f64 = cells.iter().map(|c| c.area).sum();
        assert!((total - v.bounds().area()).abs() < 1e-6);
    }

    #[test]
    fn cells_partition_window_for_k_2_and_3() {
        let v = random_voronoi(18, 7);
        for k in [2usize, 3] {
            let cells = enumerate_order_k_cells(&v, k, Point::new(5.0, 5.0));
            let total: f64 = cells.iter().map(|c| c.area).sum();
            assert!(
                (total - v.bounds().area()).abs() < 1e-6,
                "k={k}: {} vs {}",
                total,
                v.bounds().area()
            );
            // Each cell's set has exactly k members, all distinct.
            for c in &cells {
                assert_eq!(c.knn_set.len(), k);
                let mut s = c.knn_set.clone();
                s.dedup();
                assert_eq!(s.len(), k);
            }
        }
    }

    #[test]
    fn adjacency_is_symmetric() {
        let v = random_voronoi(15, 11);
        let cells = enumerate_order_k_cells(&v, 2, Point::new(5.0, 5.0));
        let index: std::collections::HashMap<&[SiteId], usize> = cells
            .iter()
            .enumerate()
            .map(|(i, c)| (c.knn_set.as_slice(), i))
            .collect();
        for c in &cells {
            for nb in &c.neighbors {
                if let Some(&j) = index.get(nb.as_slice()) {
                    assert!(
                        cells[j].neighbors.contains(&c.knn_set),
                        "adjacency must be symmetric: {:?} <-> {:?}",
                        c.knn_set,
                        nb
                    );
                }
            }
        }
    }

    #[test]
    fn growth_curve_increases_with_k() {
        // The paper's "rapid increase in the number of order-k cells".
        let v = random_voronoi(20, 5);
        let curve = cell_count_growth(&v, 4, Point::new(5.0, 5.0));
        assert_eq!(curve[0].0, 1);
        assert_eq!(curve[0].1, 20);
        for w in curve.windows(2) {
            assert!(
                w[1].1 >= w[0].1,
                "cell count should not shrink with k on this density: {curve:?}"
            );
        }
        assert!(
            curve.last().unwrap().1 > 2 * curve[0].1,
            "noticeable growth by k=4: {curve:?}"
        );
    }

    #[test]
    fn every_cell_is_a_realisable_knn_set() {
        let v = random_voronoi(16, 13);
        let cells = enumerate_order_k_cells(&v, 2, Point::new(5.0, 5.0));
        for c in &cells {
            // Re-derive the cell and sample its centroid.
            let ins = super::influential_neighbors(&v, &c.knn_set);
            let cell = crate::order_k::order_k_cell(v.points(), &c.knn_set, &ins, &v.bounds());
            if let Some(centroid) = cell.centroid() {
                if cell.contains(centroid) {
                    let mut brute = v.knn_brute(centroid, 2);
                    brute.sort_unstable();
                    assert_eq!(brute, c.knn_set, "centroid's 2NN is the cell's set");
                }
            }
        }
    }
}

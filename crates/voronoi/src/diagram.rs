//! The order-1 Voronoi diagram: cells and neighbor sets.
//!
//! Built once over the data set, as prescribed by the INSQ paper (§III:
//! "we precompute the Voronoi diagram of O"), then maintained
//! *incrementally* under site insertions and removals: the underlying
//! [`DynamicDelaunay`] repairs only the triangles of the affected cavity,
//! and the per-site neighbor lists are refreshed for exactly the sites
//! whose cells changed. Update cost is therefore proportional to the size
//! of the delta's neighborhood, not the diagram — the substrate of the
//! delta-epoch index maintenance in `insq-index` / `insq-server`.

use insq_geom::{Aabb, ConvexPolygon, HalfPlane, Point};

use crate::delaunay::Triangulation;
use crate::dynamic::DynamicDelaunay;
use crate::VoronoiError;

/// Identifier of a data object (site) — an index into the site array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The site id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// A frozen, flat (CSR) snapshot of the per-site neighbor lists.
///
/// One contiguous `targets` array plus an `offsets` fence per site:
/// the neighbor expansion of a kNN query then walks a single cache-line
/// friendly slice instead of chasing one heap pointer per visited site.
/// Only valid while the diagram is immutable — any insert/remove drops
/// it and reads fall back to the nested lists.
#[derive(Debug, Clone)]
struct AdjCsr {
    /// `offsets[s]..offsets[s + 1]` indexes `targets` for site `s`
    /// (length `n + 1`).
    offsets: Vec<u32>,
    /// All neighbor lists, concatenated in site order (each sorted
    /// ascending, exactly like the nested form).
    targets: Vec<SiteId>,
}

/// An order-1 Voronoi diagram over a set of sites, clipped to a bounding
/// window, maintainable under site insertions and removals.
#[derive(Debug, Clone)]
pub struct Voronoi {
    points: Vec<Point>,
    bounds: Aabb,
    tri: DynamicDelaunay,
    /// Per-site Voronoi neighbor lists, each sorted ascending.
    adj: Vec<Vec<SiteId>>,
    /// CSR view of `adj`, present iff the diagram is frozen (no
    /// mutation since the last [`Voronoi::freeze`]).
    csr: Option<AdjCsr>,
}

impl Voronoi {
    /// Builds the Voronoi diagram of `points`, clipping all cells to
    /// `bounds`. `bounds` must contain every site.
    pub fn build(points: Vec<Point>, bounds: Aabb) -> Result<Voronoi, VoronoiError> {
        let triangulation = Triangulation::build(&points)?;
        let n = points.len();
        let tri = DynamicDelaunay::from_triangulation(triangulation, n);

        let mut adj: Vec<Vec<SiteId>> = vec![Vec::new(); n];
        for (u, v) in tri.edges() {
            adj[u as usize].push(SiteId(v));
            adj[v as usize].push(SiteId(u));
        }
        for list in &mut adj {
            list.sort_unstable();
        }

        let mut v = Voronoi {
            points,
            bounds,
            tri,
            adj,
            csr: None,
        };
        v.freeze();
        Ok(v)
    }

    /// Freezes the neighbor lists into a flat CSR layout.
    ///
    /// Epoch snapshots are immutable, so the index layer calls this at
    /// publish time (after a build or a delta apply); subsequent
    /// [`Voronoi::neighbors`] reads come from one contiguous array.
    /// A later [`Voronoi::insert_site`] / [`Voronoi::remove_site`]
    /// silently drops the frozen view and falls back to the nested
    /// lists — freezing is a layout change, never a semantic one.
    pub fn freeze(&mut self) {
        let total: usize = self.adj.iter().map(Vec::len).sum();
        debug_assert!(total <= u32::MAX as usize, "adjacency exceeds u32 range");
        let mut offsets = Vec::with_capacity(self.adj.len() + 1);
        let mut targets = Vec::with_capacity(total);
        offsets.push(0u32);
        for list in &self.adj {
            targets.extend_from_slice(list);
            offsets.push(targets.len() as u32);
        }
        self.csr = Some(AdjCsr { offsets, targets });
    }

    /// Whether the diagram currently carries a frozen CSR neighbor view.
    #[inline]
    pub fn is_frozen(&self) -> bool {
        self.csr.is_some()
    }

    /// Inserts a new site at `p` (which must lie inside the clipping
    /// window), repairing the diagram locally. `hint` — typically the
    /// nearest known site, e.g. from an R-tree probe — makes point
    /// location O(1); without it, location walks from an arbitrary
    /// triangle.
    ///
    /// Returns the new site's id, which is always `SiteId(len - 1)` of
    /// the grown diagram.
    pub fn insert_site(&mut self, p: Point, hint: Option<SiteId>) -> Result<SiteId, VoronoiError> {
        if !p.is_finite() {
            return Err(VoronoiError::NonFinite {
                index: self.points.len(),
            });
        }
        self.csr = None;
        let v = self.points.len() as u32;
        self.points.push(p);
        match self.tri.insert(&self.points, v, hint.map(|s| s.0)) {
            Ok(affected) => {
                self.adj.push(Vec::new());
                self.refresh_adjacency(&affected);
                Ok(SiteId(v))
            }
            Err(e) => {
                self.points.pop();
                self.tri.truncate_vertices(self.points.len());
                Err(e)
            }
        }
    }

    /// Removes site `s`, repairing the diagram locally.
    ///
    /// Site ids are dense, so the removal uses *swap-remove semantics*:
    /// when `s` is not the last site, the last site is renumbered to `s`
    /// and `Some(old_id)` of the moved site is returned (callers holding
    /// external per-site state — like the VoR-tree's R-tree entries —
    /// must apply the same rename). Removal keeps at least 3 sites and
    /// refuses to leave an all-collinear site set.
    pub fn remove_site(&mut self, s: SiteId) -> Result<Option<SiteId>, VoronoiError> {
        let n = self.points.len();
        if s.idx() >= n {
            return Err(VoronoiError::SiteOutOfRange {
                site: s.idx(),
                len: n,
            });
        }
        if n <= 3 {
            return Err(VoronoiError::TooFewSites { needed: 4, got: n });
        }
        self.csr = None;
        let affected = self.tri.remove(&self.points, s.0)?;
        let last = (n - 1) as u32;
        let moved = if s.0 != last {
            self.tri.relabel(last, s.0);
            Some(SiteId(last))
        } else {
            None
        };
        self.points.swap_remove(s.idx());
        self.adj.swap_remove(s.idx());
        self.tri.truncate_vertices(self.points.len());

        let mut to_fix: Vec<u32> = affected
            .into_iter()
            .map(|w| if w == last { s.0 } else { w })
            .collect();
        if moved.is_some() {
            to_fix.push(s.0);
            to_fix.extend(self.tri.neighbors_of(s.0));
        }
        to_fix.sort_unstable();
        to_fix.dedup();
        self.refresh_adjacency(&to_fix);
        Ok(moved)
    }

    /// Recomputes the neighbor lists of the given sites from the
    /// triangulation.
    fn refresh_adjacency(&mut self, sites: &[u32]) {
        for &w in sites {
            self.adj[w as usize] = self.tri.neighbors_of(w).into_iter().map(SiteId).collect();
        }
    }

    /// The site coordinates, indexable by [`SiteId`].
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The position of a site.
    #[inline]
    pub fn point(&self, s: SiteId) -> Point {
        self.points[s.idx()]
    }

    /// Number of sites.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the diagram has no sites (never true for a built diagram).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The clipping window.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// The underlying (incrementally maintained) Delaunay triangulation.
    #[inline]
    pub fn delaunay(&self) -> &DynamicDelaunay {
        &self.tri
    }

    /// The Voronoi neighbor set `N_O(p)` of site `s` (Definition 3 of the
    /// paper): all sites whose Voronoi cells share an edge with `s`'s cell.
    ///
    /// Returned as a sorted slice. Derived from Delaunay adjacency, which
    /// coincides with Voronoi-edge adjacency except for exactly cocircular
    /// degeneracies, where it is a superset — safe for the INS algorithm,
    /// which only requires a superset of the true neighbor set.
    #[inline]
    pub fn neighbors(&self, s: SiteId) -> &[SiteId] {
        if let Some(csr) = &self.csr {
            let lo = csr.offsets[s.idx()] as usize;
            let hi = csr.offsets[s.idx() + 1] as usize;
            &csr.targets[lo..hi]
        } else {
            &self.adj[s.idx()]
        }
    }

    /// Whether sites `a` and `b` are Voronoi neighbors.
    #[inline]
    pub fn are_neighbors(&self, a: SiteId, b: SiteId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// The Voronoi cell of `s`, clipped to the diagram bounds.
    ///
    /// Computed as the bounding window intersected with the bisector
    /// half-planes towards each Voronoi neighbor — exactly the cell, because
    /// a Voronoi cell is determined by its neighbors alone.
    pub fn cell(&self, s: SiteId) -> ConvexPolygon {
        let p = self.point(s);
        let window = ConvexPolygon::from_aabb(&self.bounds);
        let constraints: Vec<HalfPlane> = self
            .neighbors(s)
            .iter()
            .map(|&nb| HalfPlane::closer_to(p, self.point(nb)))
            .collect();
        window.clip_all(&constraints)
    }

    /// Brute-force nearest site to `q` — an oracle for tests and tiny
    /// inputs; real queries should go through `insq-index`.
    pub fn nearest_site_brute(&self, q: Point) -> SiteId {
        let i = (0..self.points.len())
            .min_by(|&i, &j| {
                self.points[i]
                    .distance_sq(q)
                    .total_cmp(&self.points[j].distance_sq(q))
            })
            .expect("diagram has at least 3 sites");
        SiteId(i as u32)
    }

    /// Brute-force k nearest sites to `q`, ascending by distance — test
    /// oracle.
    pub fn knn_brute(&self, q: Point, k: usize) -> Vec<SiteId> {
        let mut ids: Vec<u32> = (0..self.points.len() as u32).collect();
        ids.sort_by(|&i, &j| {
            self.points[i as usize]
                .distance_sq(q)
                .total_cmp(&self.points[j as usize].distance_sq(q))
        });
        ids.truncate(k);
        ids.into_iter().map(SiteId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_3x3() -> Voronoi {
        let points: Vec<Point> = (0..3)
            .flat_map(|i| (0..3).map(move |j| Point::new(i as f64, j as f64)))
            .collect();
        let bounds = Aabb::new(Point::new(-1.0, -1.0), Point::new(3.0, 3.0));
        Voronoi::build(points, bounds).unwrap()
    }

    #[test]
    fn neighbor_symmetry() {
        let v = grid_3x3();
        for i in 0..v.len() as u32 {
            for &nb in v.neighbors(SiteId(i)) {
                assert!(
                    v.are_neighbors(nb, SiteId(i)),
                    "neighbor relation must be symmetric"
                );
                assert_ne!(nb, SiteId(i), "no self loops");
            }
        }
    }

    #[test]
    fn grid_center_neighbors() {
        let v = grid_3x3();
        // Site (1,1) is index 4 (column-major i*3+j). Its Voronoi neighbors
        // are the 4 axis-adjacent sites always; the diagonal ones are
        // cocircular-degenerate and may or may not appear (Delaunay
        // adjacency is a superset of strict Voronoi adjacency).
        let center = SiteId(4);
        let nbs = v.neighbors(center);
        for required in [SiteId(1), SiteId(3), SiteId(5), SiteId(7)] {
            assert!(nbs.contains(&required), "missing axis neighbor {required}");
        }
    }

    #[test]
    fn cell_of_grid_center() {
        let v = grid_3x3();
        let cell = v.cell(SiteId(4));
        assert!(
            (cell.area() - 1.0).abs() < 1e-9,
            "unit cell, got {}",
            cell.area()
        );
        assert!(cell.contains(Point::new(1.0, 1.0)));
    }

    #[test]
    fn cells_partition_window() {
        // Cell areas must sum to the window area.
        let v = grid_3x3();
        let total: f64 = (0..v.len() as u32).map(|i| v.cell(SiteId(i)).area()).sum();
        assert!((total - v.bounds().area()).abs() < 1e-6, "sum {total}");
    }

    #[test]
    fn cell_contains_exactly_its_nearest_points() {
        let v = grid_3x3();
        // Sample a lattice of query points; each must lie in the cell of its
        // nearest site (boundary ties can lie in several cells).
        for i in 0..20 {
            for j in 0..20 {
                let q = Point::new(-0.5 + i as f64 * 0.15, -0.5 + j as f64 * 0.15);
                let nearest = v.nearest_site_brute(q);
                let cell = v.cell(nearest);
                assert!(
                    cell.contains(q),
                    "query {q:?} not in cell of its nearest site {nearest}"
                );
            }
        }
    }

    /// Deterministic LCG in [0, 1) so tests are reproducible without rand.
    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    #[test]
    fn random_sites_cell_membership() {
        let mut next = lcg(0x5eed5eed);
        let points: Vec<Point> = (0..50)
            .map(|_| Point::new(next() * 10.0, next() * 10.0))
            .collect();
        let bounds = Aabb::new(Point::new(-1.0, -1.0), Point::new(11.0, 11.0));
        let v = Voronoi::build(points, bounds).unwrap();
        for _ in 0..200 {
            let q = Point::new(next() * 10.0, next() * 10.0);
            let nearest = v.nearest_site_brute(q);
            assert!(v.cell(nearest).contains(q));
        }
    }

    /// Neighbor lists of an incrementally maintained diagram must equal a
    /// from-scratch rebuild over the same (reordered) site array.
    fn assert_matches_rebuild(v: &Voronoi) {
        let rebuilt = Voronoi::build(v.points().to_vec(), v.bounds()).unwrap();
        for s in 0..v.len() as u32 {
            assert_eq!(
                v.neighbors(SiteId(s)),
                rebuilt.neighbors(SiteId(s)),
                "neighbor list of site {s} diverged from rebuild"
            );
        }
    }

    #[test]
    fn insert_site_repairs_locally() {
        let mut next = lcg(0xfeed_f00d);
        let points: Vec<Point> = (0..30)
            .map(|_| Point::new(next() * 10.0, next() * 10.0))
            .collect();
        let bounds = Aabb::new(Point::new(-1.0, -1.0), Point::new(11.0, 11.0));
        let mut v = Voronoi::build(points, bounds).unwrap();
        for i in 0..20 {
            let p = Point::new(next() * 10.0, next() * 10.0);
            let hint = if i % 2 == 0 { Some(SiteId(0)) } else { None };
            let id = v.insert_site(p, hint).unwrap();
            assert_eq!(id.idx(), v.len() - 1);
            assert_eq!(v.point(id), p);
        }
        assert_matches_rebuild(&v);
        // Duplicate insertion is rejected and leaves the diagram intact.
        let dup = v.point(SiteId(7));
        assert!(matches!(
            v.insert_site(dup, None),
            Err(VoronoiError::DuplicateSites { first: 7, .. })
        ));
        assert_eq!(v.len(), 50);
        assert_matches_rebuild(&v);
    }

    #[test]
    fn remove_site_swaps_in_the_last() {
        // General-position sites (on a cocircular grid the incremental and
        // rebuilt diagrams may legitimately pick different degenerate
        // triangulations; query-level conformance covers that case).
        let mut next = lcg(0xace_0fba5e);
        let points: Vec<Point> = (0..9)
            .map(|_| Point::new(next() * 10.0, next() * 10.0))
            .collect();
        let bounds = Aabb::new(Point::new(-1.0, -1.0), Point::new(11.0, 11.0));
        let v0 = Voronoi::build(points, bounds).unwrap();
        let mut v = v0.clone();
        // Remove index 4: the last site (index 8) moves to 4.
        let moved = v.remove_site(SiteId(4)).unwrap();
        assert_eq!(moved, Some(SiteId(8)));
        assert_eq!(v.len(), 8);
        assert_eq!(v.point(SiteId(4)), v0.point(SiteId(8)));
        assert_matches_rebuild(&v);
        // Removing the (new) last site moves nothing.
        let moved = v.remove_site(SiteId(7)).unwrap();
        assert_eq!(moved, None);
        assert_matches_rebuild(&v);
    }

    #[test]
    fn remove_site_floors() {
        let points = vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
            Point::new(0.0, 1.0),
        ];
        let bounds = Aabb::new(Point::new(-1.0, -1.0), Point::new(2.0, 2.0));
        let mut v = Voronoi::build(points, bounds).unwrap();
        assert!(matches!(
            v.remove_site(SiteId(0)),
            Err(VoronoiError::TooFewSites { .. })
        ));
        // 4 sites, 3 of them collinear: removing the off-line one must be
        // refused, and the diagram must stay intact.
        let mut v = Voronoi::build(
            vec![
                Point::new(0.0, 0.0),
                Point::new(1.0, 0.0),
                Point::new(2.0, 0.0),
                Point::new(1.0, 1.0),
            ],
            bounds,
        )
        .unwrap();
        assert!(matches!(
            v.remove_site(SiteId(3)),
            Err(VoronoiError::AllCollinear)
        ));
        assert_eq!(v.len(), 4);
        assert_matches_rebuild(&v);
    }

    #[test]
    fn interleaved_updates_track_rebuild() {
        let mut next = lcg(0x0dd_ba11);
        let points: Vec<Point> = (0..12)
            .map(|_| Point::new(next() * 100.0, next() * 100.0))
            .collect();
        let bounds = Aabb::new(Point::new(-10.0, -10.0), Point::new(110.0, 110.0));
        let mut v = Voronoi::build(points, bounds).unwrap();
        for step in 0..80 {
            if v.len() <= 4 || next() < 0.55 {
                v.insert_site(Point::new(next() * 100.0, next() * 100.0), None)
                    .unwrap();
            } else {
                let s = SiteId((next() * v.len() as f64) as u32);
                v.remove_site(s).unwrap();
            }
            if step % 8 == 0 {
                assert_matches_rebuild(&v);
            }
        }
        assert_matches_rebuild(&v);
    }

    #[test]
    fn freeze_is_a_pure_layout_change() {
        let mut next = lcg(0xc50f_f5e7);
        let points: Vec<Point> = (0..40)
            .map(|_| Point::new(next() * 10.0, next() * 10.0))
            .collect();
        let bounds = Aabb::new(Point::new(-1.0, -1.0), Point::new(11.0, 11.0));
        let mut v = Voronoi::build(points, bounds).unwrap();
        // A fresh build is frozen; capture its CSR-backed neighbor lists.
        assert!(v.is_frozen());
        let frozen: Vec<Vec<SiteId>> = (0..v.len() as u32)
            .map(|s| v.neighbors(SiteId(s)).to_vec())
            .collect();
        // Mutation drops the frozen view and reads fall back to the
        // nested lists — with identical content for untouched sites.
        let id = v.insert_site(Point::new(5.05, 5.05), None).unwrap();
        assert!(!v.is_frozen());
        v.remove_site(id).unwrap();
        assert!(!v.is_frozen());
        let nested: Vec<Vec<SiteId>> = (0..v.len() as u32)
            .map(|s| v.neighbors(SiteId(s)).to_vec())
            .collect();
        // Re-freezing restores the flat layout with the same content.
        v.freeze();
        assert!(v.is_frozen());
        for s in 0..v.len() as u32 {
            assert_eq!(v.neighbors(SiteId(s)), &nested[s as usize][..]);
        }
        assert_eq!(frozen, nested, "insert+remove round-trip changed lists");
    }

    #[test]
    fn knn_brute_sorted() {
        let v = grid_3x3();
        let knn = v.knn_brute(Point::new(0.1, 0.1), 3);
        assert_eq!(knn[0], SiteId(0));
        assert_eq!(knn.len(), 3);
        let d0 = v.point(knn[0]).distance(Point::new(0.1, 0.1));
        let d2 = v.point(knn[2]).distance(Point::new(0.1, 0.1));
        assert!(d0 <= d2);
    }
}

//! The order-1 Voronoi diagram: cells and neighbor sets.
//!
//! Built once over the static data set, as prescribed by the INSQ paper
//! (§III: "we precompute the Voronoi diagram of O"). Neighbor lists are
//! stored in CSR form — a flat pair of arrays — which both keeps the
//! per-site overhead small (the paper's "\[stored\] with little overhead")
//! and gives the O(1)-per-site slice access the INS construction needs.

use insq_geom::{Aabb, ConvexPolygon, HalfPlane, Point};

use crate::delaunay::{next_halfedge, Triangulation, EMPTY};
use crate::VoronoiError;

/// Identifier of a data object (site) — an index into the site array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u32);

impl SiteId {
    /// The site id as a `usize` index.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for SiteId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// An order-1 Voronoi diagram over a set of sites, clipped to a bounding
/// window.
#[derive(Debug, Clone)]
pub struct Voronoi {
    points: Vec<Point>,
    bounds: Aabb,
    triangulation: Triangulation,
    /// CSR neighbor lists: neighbors of site `i` are
    /// `adjacency[offsets[i]..offsets[i+1]]`, sorted ascending.
    offsets: Vec<u32>,
    adjacency: Vec<SiteId>,
}

impl Voronoi {
    /// Builds the Voronoi diagram of `points`, clipping all cells to
    /// `bounds`. `bounds` must contain every site.
    pub fn build(points: Vec<Point>, bounds: Aabb) -> Result<Voronoi, VoronoiError> {
        let triangulation = Triangulation::build(&points)?;
        let n = points.len();

        // Count Delaunay edges per vertex, then fill CSR.
        let mut degree = vec![0u32; n];
        let tris = &triangulation.triangles;
        let halves = &triangulation.halfedges;
        for e in 0..tris.len() {
            let twin = halves[e];
            if twin == EMPTY || (e as u32) < twin {
                let u = tris[e] as usize;
                let v = tris[next_halfedge(e as u32) as usize] as usize;
                degree[u] += 1;
                degree[v] += 1;
            }
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0u32);
        for d in &degree {
            offsets.push(offsets.last().expect("non-empty") + d);
        }
        let mut adjacency = vec![SiteId(0); *offsets.last().expect("non-empty") as usize];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for e in 0..tris.len() {
            let twin = halves[e];
            if twin == EMPTY || (e as u32) < twin {
                let u = tris[e];
                let v = tris[next_halfedge(e as u32) as usize];
                adjacency[cursor[u as usize] as usize] = SiteId(v);
                cursor[u as usize] += 1;
                adjacency[cursor[v as usize] as usize] = SiteId(u);
                cursor[v as usize] += 1;
            }
        }
        for i in 0..n {
            adjacency[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }

        Ok(Voronoi {
            points,
            bounds,
            triangulation,
            offsets,
            adjacency,
        })
    }

    /// The site coordinates, indexable by [`SiteId`].
    #[inline]
    pub fn points(&self) -> &[Point] {
        &self.points
    }

    /// The position of a site.
    #[inline]
    pub fn point(&self, s: SiteId) -> Point {
        self.points[s.idx()]
    }

    /// Number of sites.
    #[inline]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the diagram has no sites (never true for a built diagram).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The clipping window.
    #[inline]
    pub fn bounds(&self) -> Aabb {
        self.bounds
    }

    /// The underlying Delaunay triangulation.
    #[inline]
    pub fn triangulation(&self) -> &Triangulation {
        &self.triangulation
    }

    /// The Voronoi neighbor set `N_O(p)` of site `s` (Definition 3 of the
    /// paper): all sites whose Voronoi cells share an edge with `s`'s cell.
    ///
    /// Returned as a sorted slice. Derived from Delaunay adjacency, which
    /// coincides with Voronoi-edge adjacency except for exactly cocircular
    /// degeneracies, where it is a superset — safe for the INS algorithm,
    /// which only requires a superset of the true neighbor set.
    #[inline]
    pub fn neighbors(&self, s: SiteId) -> &[SiteId] {
        let lo = self.offsets[s.idx()] as usize;
        let hi = self.offsets[s.idx() + 1] as usize;
        &self.adjacency[lo..hi]
    }

    /// Whether sites `a` and `b` are Voronoi neighbors.
    #[inline]
    pub fn are_neighbors(&self, a: SiteId, b: SiteId) -> bool {
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// The Voronoi cell of `s`, clipped to the diagram bounds.
    ///
    /// Computed as the bounding window intersected with the bisector
    /// half-planes towards each Voronoi neighbor — exactly the cell, because
    /// a Voronoi cell is determined by its neighbors alone.
    pub fn cell(&self, s: SiteId) -> ConvexPolygon {
        let p = self.point(s);
        let window = ConvexPolygon::from_aabb(&self.bounds);
        let constraints: Vec<HalfPlane> = self
            .neighbors(s)
            .iter()
            .map(|&nb| HalfPlane::closer_to(p, self.point(nb)))
            .collect();
        window.clip_all(&constraints)
    }

    /// Brute-force nearest site to `q` — an oracle for tests and tiny
    /// inputs; real queries should go through `insq-index`.
    pub fn nearest_site_brute(&self, q: Point) -> SiteId {
        let i = (0..self.points.len())
            .min_by(|&i, &j| {
                self.points[i]
                    .distance_sq(q)
                    .total_cmp(&self.points[j].distance_sq(q))
            })
            .expect("diagram has at least 3 sites");
        SiteId(i as u32)
    }

    /// Brute-force k nearest sites to `q`, ascending by distance — test
    /// oracle.
    pub fn knn_brute(&self, q: Point, k: usize) -> Vec<SiteId> {
        let mut ids: Vec<u32> = (0..self.points.len() as u32).collect();
        ids.sort_by(|&i, &j| {
            self.points[i as usize]
                .distance_sq(q)
                .total_cmp(&self.points[j as usize].distance_sq(q))
        });
        ids.truncate(k);
        ids.into_iter().map(SiteId).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_3x3() -> Voronoi {
        let points: Vec<Point> = (0..3)
            .flat_map(|i| (0..3).map(move |j| Point::new(i as f64, j as f64)))
            .collect();
        let bounds = Aabb::new(Point::new(-1.0, -1.0), Point::new(3.0, 3.0));
        Voronoi::build(points, bounds).unwrap()
    }

    #[test]
    fn neighbor_symmetry() {
        let v = grid_3x3();
        for i in 0..v.len() as u32 {
            for &nb in v.neighbors(SiteId(i)) {
                assert!(
                    v.are_neighbors(nb, SiteId(i)),
                    "neighbor relation must be symmetric"
                );
                assert_ne!(nb, SiteId(i), "no self loops");
            }
        }
    }

    #[test]
    fn grid_center_neighbors() {
        let v = grid_3x3();
        // Site (1,1) is index 4 (column-major i*3+j). Its Voronoi neighbors
        // are the 4 axis-adjacent sites always; the diagonal ones are
        // cocircular-degenerate and may or may not appear (Delaunay
        // adjacency is a superset of strict Voronoi adjacency).
        let center = SiteId(4);
        let nbs = v.neighbors(center);
        for required in [SiteId(1), SiteId(3), SiteId(5), SiteId(7)] {
            assert!(nbs.contains(&required), "missing axis neighbor {required}");
        }
    }

    #[test]
    fn cell_of_grid_center() {
        let v = grid_3x3();
        let cell = v.cell(SiteId(4));
        assert!(
            (cell.area() - 1.0).abs() < 1e-9,
            "unit cell, got {}",
            cell.area()
        );
        assert!(cell.contains(Point::new(1.0, 1.0)));
    }

    #[test]
    fn cells_partition_window() {
        // Cell areas must sum to the window area.
        let v = grid_3x3();
        let total: f64 = (0..v.len() as u32).map(|i| v.cell(SiteId(i)).area()).sum();
        assert!((total - v.bounds().area()).abs() < 1e-6, "sum {total}");
    }

    #[test]
    fn cell_contains_exactly_its_nearest_points() {
        let v = grid_3x3();
        // Sample a lattice of query points; each must lie in the cell of its
        // nearest site (boundary ties can lie in several cells).
        for i in 0..20 {
            for j in 0..20 {
                let q = Point::new(-0.5 + i as f64 * 0.15, -0.5 + j as f64 * 0.15);
                let nearest = v.nearest_site_brute(q);
                let cell = v.cell(nearest);
                assert!(
                    cell.contains(q),
                    "query {q:?} not in cell of its nearest site {nearest}"
                );
            }
        }
    }

    #[test]
    fn random_sites_cell_membership() {
        let mut state = 0x5eed5eedu64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let points: Vec<Point> = (0..50)
            .map(|_| Point::new(next() * 10.0, next() * 10.0))
            .collect();
        let bounds = Aabb::new(Point::new(-1.0, -1.0), Point::new(11.0, 11.0));
        let v = Voronoi::build(points, bounds).unwrap();
        for _ in 0..200 {
            let q = Point::new(next() * 10.0, next() * 10.0);
            let nearest = v.nearest_site_brute(q);
            assert!(v.cell(nearest).contains(q));
        }
    }

    #[test]
    fn knn_brute_sorted() {
        let v = grid_3x3();
        let knn = v.knn_brute(Point::new(0.1, 0.1), 3);
        assert_eq!(knn[0], SiteId(0));
        assert_eq!(knn.len(), 3);
        let d0 = v.point(knn[0]).distance(Point::new(0.1, 0.1));
        let d2 = v.point(knn[2]).distance(Point::new(0.1, 0.1));
        assert!(d0 <= d2);
    }
}

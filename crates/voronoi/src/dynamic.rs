//! Incrementally maintainable Delaunay triangulation.
//!
//! [`DynamicDelaunay`] augments the halfedge representation of
//! [`crate::delaunay::Triangulation`] with *ghost triangles*: every hull
//! edge `u -> v` carries a companion triangle `(v, u, GHOST)` incident to a
//! single symbolic vertex at infinity. With ghosts, every halfedge has a
//! twin, insertion inside and outside the hull becomes one uniform
//! Bowyer–Watson cavity operation, and hull vertices can be deleted with
//! the same ear-clipping retriangulation as interior ones (ears incident
//! to the ghost vertex create new hull edges).
//!
//! Both operations are *local*: their cost is proportional to the size of
//! the retriangulated cavity (expected O(1) for random updates), not the
//! size of the triangulation — this is the substrate of the delta-epoch
//! index maintenance in `insq-index` / `insq-server`.
//!
//! All decisions use the adaptive-exact predicates of `insq-geom`
//! (`orient2d`, `incircle`), so the maintained topology is exact even for
//! cocircular and collinear inputs, and — for point sets in general
//! position — bit-identical to a from-scratch
//! [`Triangulation::build`].

use std::collections::HashMap;

use insq_geom::predicates::{incircle, InCircle};
use insq_geom::{orient2d, Orientation, Point};

use crate::delaunay::{next_halfedge, prev_halfedge, Triangulation, EMPTY};
use crate::VoronoiError;

/// The symbolic vertex at infinity shared by all ghost triangles.
pub const GHOST: u32 = u32::MAX - 1;

/// An incrementally maintainable Delaunay triangulation in the ghosted
/// halfedge representation.
///
/// Triangle `t` occupies indices `3t, 3t+1, 3t+2` of `triangles`; freed
/// slots are recycled through a free list and hold [`EMPTY`] in all three
/// entries. Exactly one vertex of a ghost triangle is [`GHOST`].
#[derive(Debug, Clone)]
pub struct DynamicDelaunay {
    /// Vertex ids, three per triangle slot ([`EMPTY`] when the slot is
    /// free, [`GHOST`] for the vertex at infinity).
    triangles: Vec<u32>,
    /// Twin halfedge ids. Every halfedge of a live triangle has a twin.
    halfedges: Vec<u32>,
    /// For each vertex, some live halfedge starting at it ([`EMPTY`] if
    /// the vertex is not in the triangulation).
    vert_edge: Vec<u32>,
    /// Recyclable triangle slots.
    free: Vec<u32>,
    /// Number of live solid (non-ghost) triangles.
    solid: usize,
}

/// One node of the cavity ring during vertex deletion: a link vertex plus
/// the surviving outside twin of the ring edge from this node to the next.
#[derive(Debug, Clone, Copy)]
struct RingNode {
    vertex: u32,
    out_twin: u32,
}

impl DynamicDelaunay {
    /// Wraps a freshly built [`Triangulation`] over `n` points, adding the
    /// ghost triangles along its hull.
    pub fn from_triangulation(tri: Triangulation, n: usize) -> DynamicDelaunay {
        let solid = tri.triangles.len() / 3;
        let mut d = DynamicDelaunay {
            triangles: tri.triangles,
            halfedges: tri.halfedges,
            vert_edge: vec![EMPTY; n],
            free: Vec::new(),
            solid,
        };
        for e in 0..d.triangles.len() {
            d.vert_edge[d.triangles[e] as usize] = e as u32;
        }
        // One ghost triangle per boundary halfedge u -> v (hull edge).
        let boundary: Vec<u32> = (0..d.halfedges.len() as u32)
            .filter(|&e| d.halfedges[e as usize] == EMPTY)
            .collect();
        let mut ghost_of: HashMap<u32, u32> = HashMap::with_capacity(boundary.len());
        for &e in &boundary {
            let u = d.triangles[e as usize];
            let v = d.triangles[next_halfedge(e) as usize];
            // Ghost triple (v, u, GHOST): halfedges [v->u, u->G, G->v].
            let t = d.alloc_triangle(v, u, GHOST);
            d.link(3 * t, e);
            ghost_of.insert(u, t);
        }
        // Ghost(u->v)'s G->v edge twins ghost(v->w)'s v->G edge.
        for (_, &t) in ghost_of.iter() {
            let v = d.triangles[3 * t as usize];
            let t2 = ghost_of[&v];
            d.link(3 * t + 2, 3 * t2 + 1);
        }
        d
    }

    /// Number of live solid (finite) triangles.
    #[inline]
    pub fn num_solid(&self) -> usize {
        self.solid
    }

    /// Whether triangle slot `t` holds a live triangle.
    #[inline]
    fn is_live(&self, t: u32) -> bool {
        self.triangles[3 * t as usize] != EMPTY
    }

    /// The slot (0..3) of the ghost vertex of `t`, if any.
    #[inline]
    fn ghost_slot(&self, t: u32) -> Option<usize> {
        let base = 3 * t as usize;
        (0..3).find(|&i| self.triangles[base + i] == GHOST)
    }

    /// Whether `t` is live and fully finite.
    #[inline]
    fn is_solid(&self, t: u32) -> bool {
        self.is_live(t) && self.ghost_slot(t).is_none()
    }

    /// The three vertex ids of live triangle `t`.
    #[inline]
    pub fn triangle_vertices(&self, t: u32) -> [u32; 3] {
        let base = 3 * t as usize;
        [
            self.triangles[base],
            self.triangles[base + 1],
            self.triangles[base + 2],
        ]
    }

    /// All live solid triangles.
    pub fn solid_triangles(&self) -> Vec<[u32; 3]> {
        (0..(self.triangles.len() / 3) as u32)
            .filter(|&t| self.is_solid(t))
            .map(|t| self.triangle_vertices(t))
            .collect()
    }

    /// Every finite undirected Delaunay edge, once.
    pub fn edges(&self) -> Vec<(u32, u32)> {
        let mut out = Vec::new();
        for e in 0..self.triangles.len() as u32 {
            let a = self.triangles[e as usize];
            if a == EMPTY || a == GHOST {
                continue;
            }
            let b = self.triangles[next_halfedge(e) as usize];
            if b == GHOST {
                continue;
            }
            if e < self.halfedges[e as usize] {
                out.push((a, b));
            }
        }
        out
    }

    /// The convex hull vertex ids in counter-clockwise order (hull chains
    /// may contain collinear vertices).
    pub fn hull(&self) -> Vec<u32> {
        let Some(t0) = (0..(self.triangles.len() / 3) as u32)
            .find(|&t| self.is_live(t) && self.ghost_slot(t).is_some())
        else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut t = t0;
        loop {
            let g = self.ghost_slot(t).expect("ghost ring stays ghostly");
            let base = 3 * t as usize;
            out.push(self.triangles[base + (g + 2) % 3]);
            t = self.halfedges[base + g] / 3;
            if t == t0 {
                break;
            }
        }
        out
    }

    /// The finite Delaunay neighbors of `v`, sorted ascending.
    pub fn neighbors_of(&self, v: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let e0 = self.vert_edge[v as usize];
        if e0 == EMPTY {
            return out;
        }
        let mut e = e0;
        loop {
            let b = self.triangles[next_halfedge(e) as usize];
            if b != GHOST {
                out.push(b);
            }
            e = self.halfedges[prev_halfedge(e) as usize];
            if e == e0 {
                break;
            }
        }
        out.sort_unstable();
        out
    }

    /// Whether vertex `v` currently lies on the convex hull.
    pub fn on_hull(&self, v: u32) -> bool {
        let e0 = self.vert_edge[v as usize];
        if e0 == EMPTY {
            return false;
        }
        let mut e = e0;
        loop {
            if self.ghost_slot(e / 3).is_some() {
                return true;
            }
            e = self.halfedges[prev_halfedge(e) as usize];
            if e == e0 {
                break;
            }
        }
        false
    }

    // ------------------------------------------------------------ plumbing

    fn alloc_triangle(&mut self, a: u32, b: u32, c: u32) -> u32 {
        let t = if let Some(t) = self.free.pop() {
            let base = 3 * t as usize;
            self.triangles[base] = a;
            self.triangles[base + 1] = b;
            self.triangles[base + 2] = c;
            self.halfedges[base] = EMPTY;
            self.halfedges[base + 1] = EMPTY;
            self.halfedges[base + 2] = EMPTY;
            t
        } else {
            let t = (self.triangles.len() / 3) as u32;
            self.triangles.extend_from_slice(&[a, b, c]);
            self.halfedges.extend_from_slice(&[EMPTY, EMPTY, EMPTY]);
            t
        };
        for (i, v) in [a, b, c].into_iter().enumerate() {
            if v != GHOST {
                self.vert_edge[v as usize] = 3 * t + i as u32;
            }
        }
        if a != GHOST && b != GHOST && c != GHOST {
            self.solid += 1;
        }
        t
    }

    fn free_triangle(&mut self, t: u32) {
        if self.is_solid(t) {
            self.solid -= 1;
        }
        let base = 3 * t as usize;
        for i in 0..3 {
            self.triangles[base + i] = EMPTY;
            self.halfedges[base + i] = EMPTY;
        }
        self.free.push(t);
    }

    #[inline]
    fn link(&mut self, a: u32, b: u32) {
        self.halfedges[a as usize] = b;
        self.halfedges[b as usize] = a;
    }

    // ----------------------------------------------------------- conflicts

    /// Whether `p` conflicts with (is inside the circumdisk of) live
    /// triangle `t`. The circumdisk of a ghost triangle with hull edge
    /// `u -> v` is the open half-plane strictly right of `u -> v` plus the
    /// open segment `uv` itself.
    fn in_conflict(&self, points: &[Point], t: u32, p: Point) -> bool {
        let base = 3 * t as usize;
        match self.ghost_slot(t) {
            Some(g) => {
                let hu = points[self.triangles[base + (g + 2) % 3] as usize];
                let hv = points[self.triangles[base + (g + 1) % 3] as usize];
                match orient2d(hu, hv, p) {
                    Orientation::Clockwise => true,
                    Orientation::CounterClockwise => false,
                    Orientation::Collinear => strictly_between(hu, hv, p),
                }
            }
            None => {
                let a = points[self.triangles[base] as usize];
                let b = points[self.triangles[base + 1] as usize];
                let c = points[self.triangles[base + 2] as usize];
                incircle(a, b, c, p) == InCircle::Inside
            }
        }
    }

    /// Finds one triangle in conflict with `p`, walking from `hint` (a
    /// vertex id) when given. Returns `None` exactly when `p` coincides
    /// with an existing vertex (the only configuration with an empty
    /// conflict set).
    fn locate_conflict(&self, points: &[Point], p: Point, hint: Option<u32>) -> Option<u32> {
        let start = hint
            .and_then(|v| self.vert_edge.get(v as usize).copied())
            .filter(|&e| e != EMPTY)
            .or_else(|| {
                (0..(self.triangles.len() / 3) as u32)
                    .find(|&t| self.is_live(t))
                    .map(|t| 3 * t)
            });
        let mut t = start? / 3;
        if let Some(g) = self.ghost_slot(t) {
            if self.in_conflict(points, t, p) {
                return Some(t);
            }
            // Step to the interior triangle across the ghost's solid edge.
            t = self.halfedges[3 * t as usize + (g + 1) % 3] / 3;
            if self.ghost_slot(t).is_some() {
                // Triangulation degenerate enough that ghosts twin ghosts
                // never happens (>= 1 solid triangle exists); be safe.
                return self.scan_conflict(points, p);
            }
        }
        let cap = 4 * (self.triangles.len() / 3) + 16;
        for _ in 0..cap {
            let base = 3 * t as usize;
            let mut crossed = false;
            for i in 0..3 {
                let e = (base + i) as u32;
                let a = points[self.triangles[e as usize] as usize];
                let b = points[self.triangles[next_halfedge(e) as usize] as usize];
                if orient2d(a, b, p) == Orientation::Clockwise {
                    let nt = self.halfedges[e as usize] / 3;
                    if self.ghost_slot(nt).is_some() {
                        // Crossing a hull edge strictly means the ghost on
                        // the other side conflicts.
                        return Some(nt);
                    }
                    t = nt;
                    crossed = true;
                    break;
                }
            }
            if !crossed {
                // p is inside or on the boundary of t (or the walk is stuck
                // on a degenerate collinear configuration).
                if self.in_conflict(points, t, p) {
                    return Some(t);
                }
                return self.scan_conflict(points, p);
            }
        }
        self.scan_conflict(points, p)
    }

    /// Exhaustive conflict scan — the fallback for degenerate walks.
    fn scan_conflict(&self, points: &[Point], p: Point) -> Option<u32> {
        (0..(self.triangles.len() / 3) as u32)
            .find(|&t| self.is_live(t) && self.in_conflict(points, t, p))
    }

    // ------------------------------------------------------------- insert

    /// Inserts vertex `v` (whose coordinates are `points[v]`, already
    /// appended by the caller) via Bowyer–Watson cavity retriangulation.
    ///
    /// `hint` is a vertex to start the point-location walk from (pass the
    /// nearest known site for O(1) location). Returns the vertices whose
    /// incident edges changed (the cavity ring plus `v` itself).
    pub fn insert(
        &mut self,
        points: &[Point],
        v: u32,
        hint: Option<u32>,
    ) -> Result<Vec<u32>, VoronoiError> {
        let p = points[v as usize];
        if self.vert_edge.len() <= v as usize {
            self.vert_edge.resize(v as usize + 1, EMPTY);
        }
        let Some(seed) = self.locate_conflict(points, p, hint) else {
            // An empty conflict set means p coincides with a vertex.
            let first = points[..v as usize]
                .iter()
                .position(|&q| q == p)
                .unwrap_or(0);
            return Err(VoronoiError::DuplicateSites {
                first,
                second: v as usize,
            });
        };

        // Grow the conflict cavity by breadth-first search over twins.
        let mut cavity = vec![seed];
        let mut in_cavity: std::collections::HashSet<u32> = std::collections::HashSet::new();
        in_cavity.insert(seed);
        let mut qi = 0;
        while qi < cavity.len() {
            let t = cavity[qi];
            qi += 1;
            for i in 0..3 {
                let nt = self.halfedges[(3 * t + i) as usize] / 3;
                if !in_cavity.contains(&nt) && self.in_conflict(points, nt, p) {
                    in_cavity.insert(nt);
                    cavity.push(nt);
                }
            }
        }

        // The cavity boundary: halfedges whose twin lies outside.
        struct Bd {
            a: u32,
            b: u32,
            outside: u32,
        }
        let mut boundary: Vec<Bd> = Vec::with_capacity(cavity.len() + 2);
        for &t in &cavity {
            for i in 0..3 {
                let e = 3 * t + i;
                let tw = self.halfedges[e as usize];
                if !in_cavity.contains(&(tw / 3)) {
                    boundary.push(Bd {
                        a: self.triangles[e as usize],
                        b: self.triangles[next_halfedge(e) as usize],
                        outside: tw,
                    });
                }
            }
        }
        debug_assert!(boundary.len() >= 3, "cavity boundary is a cycle");
        for &t in &cavity {
            self.free_triangle(t);
        }

        // Refill: one new triangle (a, b, v) per boundary edge a -> b; the
        // radial edges b -> v / v -> a pair up between consecutive boundary
        // edges (ghost boundary vertices participate like any other, which
        // is what creates the new hull edges when p lies outside).
        let mut radial: HashMap<u32, u32> = HashMap::with_capacity(boundary.len());
        let mut created: Vec<(u32, u32)> = Vec::with_capacity(boundary.len());
        let mut ring: Vec<u32> = Vec::with_capacity(boundary.len() + 1);
        for bd in &boundary {
            let t = self.alloc_triangle(bd.a, bd.b, v);
            self.link(3 * t, bd.outside);
            radial.insert(bd.b, 3 * t + 1);
            created.push((t, bd.a));
            if bd.a != GHOST {
                ring.push(bd.a);
            }
        }
        for (t, a) in created {
            self.link(3 * t + 2, radial[&a]);
        }
        ring.push(v);
        Ok(ring)
    }

    // ------------------------------------------------------------- remove

    /// Removes vertex `v`, retriangulating its star polygon with
    /// Delaunay ear clipping (ears incident to the ghost vertex re-stitch
    /// the convex hull). Returns the ring vertices whose incident edges
    /// changed.
    ///
    /// Fails with [`VoronoiError::AllCollinear`] when the remaining
    /// vertices would be collinear (no triangulation exists). The caller
    /// is responsible for keeping at least 3 vertices.
    pub fn remove(&mut self, points: &[Point], v: u32) -> Result<Vec<u32>, VoronoiError> {
        let e0 = self.vert_edge[v as usize];
        debug_assert_ne!(e0, EMPTY, "removing a live vertex");

        // Collect the star (triangles around v) and the link ring.
        let mut star: Vec<u32> = Vec::new();
        let mut ring: Vec<RingNode> = Vec::new();
        let mut e = e0;
        loop {
            debug_assert_eq!(self.triangles[e as usize], v);
            star.push(e / 3);
            let le = next_halfedge(e);
            ring.push(RingNode {
                vertex: self.triangles[le as usize],
                out_twin: self.halfedges[le as usize],
            });
            e = self.halfedges[prev_halfedge(e) as usize];
            if e == e0 {
                break;
            }
        }

        // If every solid triangle is incident to v, the remaining live
        // vertices are exactly the ring; if those are all collinear no
        // triangulation of them exists and the removal must be refused.
        let star_solid = star.iter().filter(|&&t| self.is_solid(t)).count();
        if star_solid == self.solid {
            let solid_ring: Vec<u32> = ring
                .iter()
                .map(|n| n.vertex)
                .filter(|&w| w != GHOST)
                .collect();
            let all_collinear = solid_ring.len() >= 2
                && solid_ring[2..].iter().all(|&w| {
                    orient2d(
                        points[solid_ring[0] as usize],
                        points[solid_ring[1] as usize],
                        points[w as usize],
                    ) == Orientation::Collinear
                });
            if all_collinear {
                return Err(VoronoiError::AllCollinear);
            }
        }

        for &t in &star {
            self.free_triangle(t);
        }
        self.vert_edge[v as usize] = EMPTY;
        let affected: Vec<u32> = ring
            .iter()
            .map(|n| n.vertex)
            .filter(|&w| w != GHOST)
            .collect();

        // Delaunay ear clipping of the ring polygon.
        while ring.len() > 3 {
            let m = ring.len();
            let i = (0..m)
                .find(|&i| self.ear_ok(points, &ring, i))
                .unwrap_or_else(|| {
                    panic!("Delaunay ear clipping must always find an ear ({m} ring vertices)")
                });
            let xi = (i + m - 1) % m;
            let zi = (i + 1) % m;
            let t = self.alloc_triangle(ring[xi].vertex, ring[i].vertex, ring[zi].vertex);
            self.link(3 * t, ring[xi].out_twin);
            self.link(3 * t + 1, ring[i].out_twin);
            ring[xi].out_twin = 3 * t + 2;
            ring.remove(i);
        }
        let t = self.alloc_triangle(ring[0].vertex, ring[1].vertex, ring[2].vertex);
        self.link(3 * t, ring[0].out_twin);
        self.link(3 * t + 1, ring[1].out_twin);
        self.link(3 * t + 2, ring[2].out_twin);

        Ok(affected)
    }

    /// Whether the ear at ring position `i` can be clipped: it must be
    /// correctly oriented and its circumdisk must be empty of all other
    /// ring vertices (ears incident to the ghost vertex use the half-plane
    /// circumdisk of the hull edge they would create).
    fn ear_ok(&self, points: &[Point], ring: &[RingNode], i: usize) -> bool {
        let m = ring.len();
        let x = ring[(i + m - 1) % m].vertex;
        let y = ring[i].vertex;
        let z = ring[(i + 1) % m].vertex;
        let skip = [(i + m - 1) % m, i, (i + 1) % m];
        let others = || {
            ring.iter()
                .enumerate()
                .filter(move |(j, _)| !skip.contains(j))
                .map(|(_, n)| n.vertex)
                .filter(|&w| w != GHOST)
        };
        // Ears incident to the ghost create a hull edge `from -> to`
        // (interior on the left); they are clippable iff no other ring
        // vertex lies in the ghost circumdisk (strictly right of the edge
        // or on its open segment).
        let hull_edge = if y == GHOST {
            Some((x, z))
        } else if x == GHOST {
            Some((z, y))
        } else if z == GHOST {
            Some((y, x))
        } else {
            None
        };
        match hull_edge {
            Some((from, to)) => {
                if from == GHOST || to == GHOST {
                    return false;
                }
                let pf = points[from as usize];
                let pt = points[to as usize];
                others().all(|w| {
                    let pw = points[w as usize];
                    match orient2d(pf, pt, pw) {
                        Orientation::Clockwise => false,
                        Orientation::Collinear => !strictly_between(pf, pt, pw),
                        Orientation::CounterClockwise => true,
                    }
                })
            }
            None => {
                let (px, py, pz) = (points[x as usize], points[y as usize], points[z as usize]);
                if orient2d(px, py, pz) != Orientation::CounterClockwise {
                    return false;
                }
                others().all(|w| incircle(px, py, pz, points[w as usize]) != InCircle::Inside)
            }
        }
    }

    // ------------------------------------------------------------ relabel

    /// Renames vertex `from` to `to` in every incident triangle (the
    /// swap-remove relabel of site deletion). `to`'s previous incidence is
    /// overwritten; `from` becomes unused.
    pub fn relabel(&mut self, from: u32, to: u32) {
        let e0 = self.vert_edge[from as usize];
        debug_assert_ne!(e0, EMPTY, "relabeling a live vertex");
        let mut e = e0;
        loop {
            self.triangles[e as usize] = to;
            e = self.halfedges[prev_halfedge(e) as usize];
            if e == e0 {
                break;
            }
        }
        self.vert_edge[to as usize] = e0;
        self.vert_edge[from as usize] = EMPTY;
    }

    /// Shrinks the vertex table to `n` entries (after a swap-remove).
    pub fn truncate_vertices(&mut self, n: usize) {
        debug_assert!(self.vert_edge[n..].iter().all(|&e| e == EMPTY));
        self.vert_edge.truncate(n);
    }

    /// Validates structural invariants (twin symmetry, vertex incidence,
    /// CCW solid triangles, ghost ring closure). Test/debug helper;
    /// panics on violation.
    pub fn check_invariants(&self, points: &[Point]) {
        for e in 0..self.triangles.len() as u32 {
            let a = self.triangles[e as usize];
            if a == EMPTY {
                continue;
            }
            let tw = self.halfedges[e as usize];
            assert_ne!(tw, EMPTY, "live halfedge {e} lacks a twin");
            assert_eq!(self.halfedges[tw as usize], e, "twin of twin");
            let b = self.triangles[next_halfedge(e) as usize];
            let ta = self.triangles[tw as usize];
            let tb = self.triangles[next_halfedge(tw) as usize];
            assert_eq!((a, b), (tb, ta), "twins share reversed endpoints");
        }
        for (v, &e) in self.vert_edge.iter().enumerate() {
            if e != EMPTY {
                assert_eq!(
                    self.triangles[e as usize], v as u32,
                    "vert_edge[{v}] starts elsewhere"
                );
            }
        }
        let mut solid = 0;
        for t in 0..(self.triangles.len() / 3) as u32 {
            if !self.is_live(t) {
                continue;
            }
            if let Some(g) = self.ghost_slot(t) {
                let base = 3 * t as usize;
                assert_ne!(
                    self.triangles[base + (g + 1) % 3],
                    GHOST,
                    "one ghost vertex"
                );
                assert_ne!(
                    self.triangles[base + (g + 2) % 3],
                    GHOST,
                    "one ghost vertex"
                );
            } else {
                solid += 1;
                let [a, b, c] = self.triangle_vertices(t);
                assert_eq!(
                    orient2d(points[a as usize], points[b as usize], points[c as usize]),
                    Orientation::CounterClockwise,
                    "solid triangle {t} not CCW"
                );
            }
        }
        assert_eq!(solid, self.solid, "solid triangle count");
        // The ghost triangles form one closed ring whose hull edges chain.
        let hull = self.hull();
        assert!(hull.len() >= 3 || self.solid == 0, "hull cycle closes");
    }
}

/// Whether `p` (known collinear with `a`, `b`) lies strictly between them.
fn strictly_between(a: Point, b: Point, p: Point) -> bool {
    if (a.x - b.x).abs() >= (a.y - b.y).abs() {
        (a.x < p.x && p.x < b.x) || (b.x < p.x && p.x < a.x)
    } else {
        (a.y < p.y && p.y < b.y) || (b.y < p.y && p.y < a.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    fn lcg(seed: u64) -> impl FnMut() -> f64 {
        let mut state = seed;
        move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        }
    }

    fn build(points: &[Point]) -> DynamicDelaunay {
        let tri = Triangulation::build(points).unwrap();
        DynamicDelaunay::from_triangulation(tri, points.len())
    }

    /// Brute-force Delaunay property over the live vertex set.
    fn assert_delaunay(points: &[Point], live: &[bool], d: &DynamicDelaunay) {
        d.check_invariants(points);
        for tri in d.solid_triangles() {
            let [a, b, c] = tri;
            let (pa, pb, pc) = (points[a as usize], points[b as usize], points[c as usize]);
            for (i, &p) in points.iter().enumerate() {
                if !live[i] || [a, b, c].contains(&(i as u32)) {
                    continue;
                }
                assert_ne!(
                    incircle(pa, pb, pc, p),
                    InCircle::Inside,
                    "vertex {i} inside circumcircle of ({a},{b},{c})"
                );
            }
        }
        // Every live vertex appears in some solid triangle; Euler count.
        let n = live.iter().filter(|&&l| l).count();
        let mut seen = vec![false; points.len()];
        for tri in d.solid_triangles() {
            for v in tri {
                seen[v as usize] = true;
            }
        }
        for (i, &l) in live.iter().enumerate() {
            assert_eq!(seen[i], l, "vertex {i} live={l} but seen={}", seen[i]);
        }
        let h = d.hull().len();
        assert_eq!(d.num_solid(), 2 * n - 2 - h, "Euler triangle count");
    }

    #[test]
    fn ghosts_wrap_the_sweep_triangulation() {
        let points = pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0), (0.4, 0.6)]);
        let d = build(&points);
        let live = vec![true; 5];
        assert_delaunay(&points, &live, &d);
        assert_eq!(d.hull().len(), 4);
    }

    #[test]
    fn insert_inside_and_outside() {
        let mut points = pts(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]);
        let mut d = build(&points);
        // Inside.
        points.push(Point::new(2.0, 2.0));
        d.insert(&points, 3, None).unwrap();
        // Outside, across the hypotenuse.
        points.push(Point::new(9.0, 9.0));
        d.insert(&points, 4, None).unwrap();
        // Far outside, collinear with a hull edge extension.
        points.push(Point::new(20.0, 0.0));
        d.insert(&points, 5, Some(1)).unwrap();
        // On an existing edge.
        points.push(Point::new(5.0, 0.0));
        d.insert(&points, 6, None).unwrap();
        let live = vec![true; points.len()];
        assert_delaunay(&points, &live, &d);
    }

    #[test]
    fn insert_duplicate_rejected() {
        let mut points = pts(&[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0), (3.0, 3.0)]);
        let mut d = build(&points);
        points.push(Point::new(3.0, 3.0));
        assert!(matches!(
            d.insert(&points, 4, None),
            Err(VoronoiError::DuplicateSites {
                first: 3,
                second: 4
            })
        ));
    }

    #[test]
    fn remove_interior_and_hull_vertices() {
        let mut coords = Vec::new();
        for i in 0..4 {
            for j in 0..4 {
                coords.push((i as f64, j as f64));
            }
        }
        let points = pts(&coords);
        let mut d = build(&points);
        let mut live = vec![true; points.len()];
        // Interior vertex (1,1) = index 5, hull corner (0,0) = index 0,
        // hull-chain middle (0,2) = index 2.
        for v in [5u32, 0, 2] {
            d.remove(&points, v).unwrap();
            live[v as usize] = false;
            assert_delaunay(&points, &live, &d);
        }
    }

    #[test]
    fn remove_to_collinear_is_rejected() {
        let points = pts(&[(0.0, 0.0), (1.0, 0.0), (2.0, 0.0), (1.0, 5.0)]);
        let mut d = build(&points);
        assert!(matches!(
            d.remove(&points, 3),
            Err(VoronoiError::AllCollinear)
        ));
        // The failed removal must leave the triangulation intact.
        let live = vec![true; 4];
        assert_delaunay(&points, &live, &d);
    }

    #[test]
    fn random_interleaved_insert_remove() {
        let mut next = lcg(0xD0_D0);
        let mut points = pts(&[(50.0, 50.0), (52.0, 48.0), (47.0, 58.0)]);
        let mut d = build(&points);
        let mut live = vec![true; 3];
        let mut live_ids: Vec<u32> = vec![0, 1, 2];
        for step in 0..240 {
            let grow = live_ids.len() <= 4 || next() < 0.6;
            if grow {
                let p = Point::new(next() * 100.0, next() * 100.0);
                let v = points.len() as u32;
                points.push(p);
                live.push(true);
                let hint = live_ids[(next() * live_ids.len() as f64) as usize];
                d.insert(&points, v, Some(hint)).unwrap();
                live_ids.push(v);
            } else {
                let at = (next() * live_ids.len() as f64) as usize;
                let v = live_ids[at];
                match d.remove(&points, v) {
                    Ok(_) => {
                        live[v as usize] = false;
                        live_ids.swap_remove(at);
                    }
                    Err(VoronoiError::AllCollinear) => {}
                    Err(e) => panic!("unexpected removal failure: {e}"),
                }
            }
            if step % 16 == 0 {
                assert_delaunay(&points, &live, &d);
            }
        }
        assert_delaunay(&points, &live, &d);
    }

    #[test]
    fn cocircular_grid_churn() {
        // Integer grid: heavily degenerate (cocircular quadruples,
        // collinear hull chains).
        let mut coords = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                coords.push((i as f64, j as f64));
            }
        }
        let mut points = pts(&coords);
        let mut d = build(&points);
        let mut live = vec![true; points.len()];
        for v in [12u32, 6, 0, 4, 24, 2] {
            d.remove(&points, v).unwrap();
            live[v as usize] = false;
            assert_delaunay(&points, &live, &d);
        }
        // Reinsert on grid points and half-integer (edge midpoint) spots.
        for (x, y) in [(2.0, 2.0), (0.0, 0.0), (1.5, 1.5), (2.5, 0.0)] {
            let v = points.len() as u32;
            points.push(Point::new(x, y));
            live.push(true);
            d.insert(&points, v, None).unwrap();
            assert_delaunay(&points, &live, &d);
        }
    }

    #[test]
    fn hull_walks_counter_clockwise() {
        let mut next = lcg(7);
        let points: Vec<Point> = (0..40)
            .map(|_| Point::new(next() * 10.0, next() * 10.0))
            .collect();
        let d = build(&points);
        let tri = Triangulation::build(&points).unwrap();
        // Same cyclic sequence as the sweep hull.
        let h1 = d.hull();
        let h2 = tri.hull;
        assert_eq!(h1.len(), h2.len());
        let at = h1.iter().position(|&v| v == h2[0]).unwrap();
        let rotated: Vec<u32> = (0..h1.len()).map(|i| h1[(at + i) % h1.len()]).collect();
        assert_eq!(rotated, h2);
    }

    #[test]
    fn relabel_rewrites_the_star() {
        let mut points = pts(&[(0.0, 0.0), (4.0, 0.0), (0.0, 4.0), (4.0, 4.0), (2.0, 2.0)]);
        let mut d = build(&points);
        // Remove vertex 1, then relabel 4 -> 1 (swap-remove semantics).
        d.remove(&points, 1).unwrap();
        d.relabel(4, 1);
        points[1] = points[4];
        points.truncate(4);
        d.truncate_vertices(4);
        let live = vec![true; 4];
        assert_delaunay(&points, &live, &d);
        assert_eq!(d.neighbors_of(1), vec![0, 2, 3]);
    }
}

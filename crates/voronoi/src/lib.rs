//! # insq-voronoi
//!
//! Delaunay triangulations, Voronoi diagrams, Voronoi *neighbor sets* and
//! order-k Voronoi cells — the geometric substrate of the INS (Influential
//! Neighbor Set) moving-kNN algorithm.
//!
//! The INS algorithm (Li et al., ICDE'16 / PVLDB'14) rests on three
//! constructions provided here:
//!
//! 1. the **order-1 Voronoi diagram** of the data set, precomputed once
//!    ([`Voronoi::build`]),
//! 2. the **Voronoi neighbor set** `N_O(p)` of each site (Definition 3 of
//!    the paper) — [`Voronoi::neighbors`], derived from Delaunay adjacency,
//! 3. **order-k Voronoi cells** `V^k(O')` (Definition 2) — module
//!    [`order_k`] — which are the theoretical safe regions: the INS
//!    implicitly guards exactly this region, and the strict safe-region
//!    baseline materialises it.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod delaunay;
pub mod diagram;
pub mod dynamic;
pub mod enumerate;
pub mod order_k;

pub use delaunay::Triangulation;
pub use diagram::{SiteId, Voronoi};
pub use dynamic::DynamicDelaunay;
pub use enumerate::{cell_count_growth, enumerate_order_k_cells, OrderKCell};
pub use order_k::{order_k_cell, order_k_cell_tagged, EdgeSource, TaggedCell};

/// Errors from Voronoi/Delaunay construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VoronoiError {
    /// Fewer sites than the construction requires.
    TooFewSites {
        /// Minimum number of sites required.
        needed: usize,
        /// Number of sites supplied.
        got: usize,
    },
    /// All sites are collinear; the Delaunay triangulation does not exist.
    AllCollinear,
    /// Two sites coincide exactly; duplicate sites have no Voronoi cell.
    DuplicateSites {
        /// Index of the first occurrence.
        first: usize,
        /// Index of the duplicate.
        second: usize,
    },
    /// A site has a NaN or infinite coordinate.
    NonFinite {
        /// Index of the offending site.
        index: usize,
    },
    /// A site id does not refer to a live site (e.g. a stale id in a
    /// removal delta).
    SiteOutOfRange {
        /// The offending site id.
        site: usize,
        /// Number of live sites.
        len: usize,
    },
}

impl std::fmt::Display for VoronoiError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VoronoiError::TooFewSites { needed, got } => {
                write!(f, "too few sites: needed {needed}, got {got}")
            }
            VoronoiError::AllCollinear => write!(f, "all sites are collinear"),
            VoronoiError::DuplicateSites { first, second } => {
                write!(f, "duplicate sites at indices {first} and {second}")
            }
            VoronoiError::NonFinite { index } => {
                write!(f, "non-finite coordinate at site index {index}")
            }
            VoronoiError::SiteOutOfRange { site, len } => {
                write!(f, "site id {site} out of range ({len} live sites)")
            }
        }
    }
}

impl std::error::Error for VoronoiError {}

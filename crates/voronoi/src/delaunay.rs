//! Delaunay triangulation via the sweep-circle incremental algorithm
//! (the "delaunator" construction of Agafonkin et al., itself a variant of
//! the sweep-hull algorithm of Sinclair).
//!
//! Points are inserted in order of increasing distance from the seed
//! triangle's circumcenter; this guarantees every new point lies strictly
//! outside the current convex hull, so insertion reduces to attaching fans
//! of triangles to visible hull edges plus Lawson flips
//! (Lawson legalization) to restore the empty-circle property.
//!
//! All orientation and in-circle decisions use the adaptive-exact predicates
//! of `insq-geom`, so the topology is exact even for cocircular and nearly
//! collinear inputs.

use insq_geom::predicates::{incircle, InCircle};
use insq_geom::{orient2d, Orientation, Point};

use crate::VoronoiError;

/// Sentinel for "no halfedge / no vertex".
pub const EMPTY: u32 = u32::MAX;

/// The next halfedge within the same triangle.
#[inline]
pub fn next_halfedge(e: u32) -> u32 {
    if e % 3 == 2 {
        e - 2
    } else {
        e + 1
    }
}

/// The previous halfedge within the same triangle.
#[inline]
pub fn prev_halfedge(e: u32) -> u32 {
    if e.is_multiple_of(3) {
        e + 2
    } else {
        e - 1
    }
}

/// A Delaunay triangulation in the halfedge representation.
///
/// Triangle `t` occupies indices `3t, 3t+1, 3t+2` of [`Triangulation::triangles`];
/// each entry is the id of the vertex the halfedge *starts* at, and the
/// triangle's vertices appear in counter-clockwise order.
/// `halfedges[e]` is the opposite halfedge in the adjacent triangle, or
/// [`EMPTY`] for hull edges.
#[derive(Debug, Clone)]
pub struct Triangulation {
    /// Vertex ids, three per triangle, counter-clockwise.
    pub triangles: Vec<u32>,
    /// Twin halfedge ids (or [`EMPTY`] on the hull).
    pub halfedges: Vec<u32>,
    /// Convex hull vertex ids in counter-clockwise order.
    pub hull: Vec<u32>,
}

impl Triangulation {
    /// Number of triangles.
    #[inline]
    pub fn num_triangles(&self) -> usize {
        self.triangles.len() / 3
    }

    /// The three vertex ids of triangle `t`, counter-clockwise.
    #[inline]
    pub fn triangle_vertices(&self, t: u32) -> [u32; 3] {
        let base = 3 * t as usize;
        [
            self.triangles[base],
            self.triangles[base + 1],
            self.triangles[base + 2],
        ]
    }

    /// Builds the Delaunay triangulation of `points`.
    ///
    /// Fails when fewer than 3 points are given, when all points are
    /// collinear, or when two points coincide exactly (duplicate sites have
    /// no Voronoi cell and are rejected rather than silently dropped).
    pub fn build(points: &[Point]) -> Result<Triangulation, VoronoiError> {
        let n = points.len();
        if n < 3 {
            return Err(VoronoiError::TooFewSites { needed: 3, got: n });
        }
        if let Some(i) = points.iter().position(|p| !p.is_finite()) {
            return Err(VoronoiError::NonFinite { index: i });
        }
        detect_duplicates(points)?;

        let mut builder = Builder::new(points)?;
        builder.run(points)?;
        Ok(builder.finish())
    }
}

/// Errors out on exactly coincident points.
fn detect_duplicates(points: &[Point]) -> Result<(), VoronoiError> {
    use std::collections::HashMap;
    let mut seen: HashMap<(u64, u64), usize> = HashMap::with_capacity(points.len());
    for (i, p) in points.iter().enumerate() {
        // Normalise -0.0 to 0.0 so the bit patterns match.
        let key = ((p.x + 0.0).to_bits(), (p.y + 0.0).to_bits());
        if let Some(&first) = seen.get(&key) {
            return Err(VoronoiError::DuplicateSites { first, second: i });
        }
        seen.insert(key, i);
    }
    Ok(())
}

/// Monotone pseudo-angle of a direction, in `[0, 1)`; increases
/// counter-clockwise. Cheaper than `atan2` and sufficient for hashing.
#[inline]
fn pseudo_angle(dx: f64, dy: f64) -> f64 {
    let p = dx / (dx.abs() + dy.abs());
    (if dy > 0.0 { 3.0 - p } else { 1.0 + p }) / 4.0
}

/// Squared circumradius of the triangle `(a, b, c)` (infinite for
/// degenerate triples).
fn circumradius_sq(a: Point, b: Point, c: Point) -> f64 {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let ex = c.x - a.x;
    let ey = c.y - a.y;
    let bl = dx * dx + dy * dy;
    let cl = ex * ex + ey * ey;
    let d = dx * ey - dy * ex;
    if d == 0.0 {
        return f64::INFINITY;
    }
    let x = (ey * bl - dy * cl) * (0.5 / d);
    let y = (dx * cl - ex * bl) * (0.5 / d);
    let r = x * x + y * y;
    if r.is_finite() {
        r
    } else {
        f64::INFINITY
    }
}

/// Circumcenter of `(a, b, c)` in floating point (seed ordering only; the
/// robust construction lives in `insq_geom::circle`).
fn circumcenter_fast(a: Point, b: Point, c: Point) -> Point {
    let dx = b.x - a.x;
    let dy = b.y - a.y;
    let ex = c.x - a.x;
    let ey = c.y - a.y;
    let bl = dx * dx + dy * dy;
    let cl = ex * ex + ey * ey;
    let d = dx * ey - dy * ex;
    let x = a.x + (ey * bl - dy * cl) * (0.5 / d);
    let y = a.y + (dx * cl - ex * bl) * (0.5 / d);
    Point::new(x, y)
}

struct Builder {
    triangles: Vec<u32>,
    halfedges: Vec<u32>,
    // Hull state.
    hull_prev: Vec<u32>,
    hull_next: Vec<u32>,
    /// For hull vertex `v`, the halfedge `v -> hull_next[v]` of the interior
    /// triangle bordering that hull edge.
    hull_tri: Vec<u32>,
    hull_hash: Vec<u32>,
    hull_start: u32,
    center: Point,
    /// Insertion order (indices into `points`).
    order: Vec<u32>,
    seed: [u32; 3],
    legalize_stack: Vec<u32>,
}

impl Builder {
    fn new(points: &[Point]) -> Result<Builder, VoronoiError> {
        let n = points.len();

        // Seed: the point closest to the bbox center, its nearest neighbor,
        // and the third point minimising the circumradius.
        let bb_center = {
            let mut min = points[0];
            let mut max = points[0];
            for p in points {
                min.x = min.x.min(p.x);
                min.y = min.y.min(p.y);
                max.x = max.x.max(p.x);
                max.y = max.y.max(p.y);
            }
            min.midpoint(max)
        };

        let i0 = (0..n)
            .min_by(|&i, &j| {
                points[i]
                    .distance_sq(bb_center)
                    .total_cmp(&points[j].distance_sq(bb_center))
            })
            .expect("n >= 3");
        let p0 = points[i0];

        let i1 = (0..n)
            .filter(|&i| i != i0)
            .min_by(|&i, &j| {
                points[i]
                    .distance_sq(p0)
                    .total_cmp(&points[j].distance_sq(p0))
            })
            .expect("n >= 3");
        let p1 = points[i1];

        let i2 = (0..n)
            .filter(|&i| i != i0 && i != i1)
            .min_by(|&i, &j| {
                circumradius_sq(p0, p1, points[i]).total_cmp(&circumradius_sq(p0, p1, points[j]))
            })
            .expect("n >= 3");
        if circumradius_sq(p0, p1, points[i2]) == f64::INFINITY {
            return Err(VoronoiError::AllCollinear);
        }

        // Orient the seed triangle counter-clockwise.
        let (i1, i2) = match orient2d(p0, p1, points[i2]) {
            Orientation::CounterClockwise => (i1, i2),
            Orientation::Clockwise => (i2, i1),
            Orientation::Collinear => return Err(VoronoiError::AllCollinear),
        };
        let (i0, i1, i2) = (i0 as u32, i1 as u32, i2 as u32);
        let center = circumcenter_fast(
            points[i0 as usize],
            points[i1 as usize],
            points[i2 as usize],
        );

        // Insertion order: ascending distance from the seed circumcenter.
        let mut order: Vec<u32> = (0..n as u32)
            .filter(|&i| i != i0 && i != i1 && i != i2)
            .collect();
        order.sort_unstable_by(|&a, &b| {
            points[a as usize]
                .distance_sq(center)
                .total_cmp(&points[b as usize].distance_sq(center))
        });

        let max_triangles = 2 * n - 5; // Euler bound for planar triangulations
        let hash_size = (n as f64).sqrt().ceil() as usize;
        let mut b = Builder {
            triangles: Vec::with_capacity(3 * max_triangles),
            halfedges: Vec::with_capacity(3 * max_triangles),
            hull_prev: vec![EMPTY; n],
            hull_next: vec![EMPTY; n],
            hull_tri: vec![EMPTY; n],
            hull_hash: vec![EMPTY; hash_size],
            hull_start: i0,
            center,
            order,
            seed: [i0, i1, i2],
            legalize_stack: Vec::with_capacity(64),
        };

        // Initialise the hull with the seed triangle.
        b.hull_next[i0 as usize] = i1;
        b.hull_prev[i2 as usize] = i1;
        b.hull_next[i1 as usize] = i2;
        b.hull_prev[i0 as usize] = i2;
        b.hull_next[i2 as usize] = i0;
        b.hull_prev[i1 as usize] = i0;
        b.hull_tri[i0 as usize] = 0;
        b.hull_tri[i1 as usize] = 1;
        b.hull_tri[i2 as usize] = 2;
        b.hash_edge(points[i0 as usize], i0);
        b.hash_edge(points[i1 as usize], i1);
        b.hash_edge(points[i2 as usize], i2);
        b.add_triangle(i0, i1, i2, EMPTY, EMPTY, EMPTY);
        Ok(b)
    }

    #[inline]
    fn hash_key(&self, p: Point) -> usize {
        let angle = pseudo_angle(p.x - self.center.x, p.y - self.center.y);
        let len = self.hull_hash.len();
        ((angle * len as f64).floor() as usize) % len
    }

    #[inline]
    fn hash_edge(&mut self, p: Point, id: u32) {
        let key = self.hash_key(p);
        self.hull_hash[key] = id;
    }

    /// Adds a triangle `(i0, i1, i2)` (must be CCW) whose three halfedges
    /// twin with `a, b, c` respectively. Returns the first halfedge id.
    fn add_triangle(&mut self, i0: u32, i1: u32, i2: u32, a: u32, b: u32, c: u32) -> u32 {
        let t = self.triangles.len() as u32;
        self.triangles.push(i0);
        self.triangles.push(i1);
        self.triangles.push(i2);
        self.halfedges.push(a);
        self.halfedges.push(b);
        self.halfedges.push(c);
        if a != EMPTY {
            self.halfedges[a as usize] = t;
        }
        if b != EMPTY {
            self.halfedges[b as usize] = t + 1;
        }
        if c != EMPTY {
            self.halfedges[c as usize] = t + 2;
        }
        t
    }

    #[inline]
    fn link(&mut self, a: u32, b: u32) {
        self.halfedges[a as usize] = b;
        if b != EMPTY {
            self.halfedges[b as usize] = a;
        }
    }

    /// Is hull edge `u -> v` strictly visible from `p` (p strictly to its
    /// right)?
    #[inline]
    fn edge_visible(points: &[Point], p: Point, u: u32, v: u32) -> bool {
        orient2d(points[u as usize], points[v as usize], p) == Orientation::Clockwise
    }

    fn run(&mut self, points: &[Point]) -> Result<(), VoronoiError> {
        let order = std::mem::take(&mut self.order);
        for &i in &order {
            let p = points[i as usize];

            // Find a visible hull edge via the angular hash.
            let mut start = 0u32;
            let key = self.hash_key(p);
            let hash_len = self.hull_hash.len();
            for j in 0..hash_len {
                start = self.hull_hash[(key + j) % hash_len];
                if start != EMPTY && self.hull_next[start as usize] != EMPTY {
                    break;
                }
            }
            start = self.hull_prev[start as usize];
            let mut e = start;
            loop {
                let n = self.hull_next[e as usize];
                if Self::edge_visible(points, p, e, n) {
                    break;
                }
                e = n;
                if e == start {
                    // No visible edge: impossible for distinct points under
                    // the sorted insertion order (see module docs).
                    return Err(VoronoiError::DuplicateSites {
                        first: e as usize,
                        second: i as usize,
                    });
                }
            }
            let walk_back = e == start;

            // First triangle on the visible edge e -> next[e].
            let n0 = self.hull_next[e as usize];
            let t = self.add_triangle(e, i, n0, EMPTY, EMPTY, self.hull_tri[e as usize]);
            self.hull_tri[i as usize] = self.legalize(t + 2, points);
            self.hull_tri[e as usize] = t;

            // Walk forward, attaching triangles to further visible edges.
            let mut n = n0;
            loop {
                let q = self.hull_next[n as usize];
                if !Self::edge_visible(points, p, n, q) {
                    break;
                }
                let t = self.add_triangle(
                    n,
                    i,
                    q,
                    self.hull_tri[i as usize],
                    EMPTY,
                    self.hull_tri[n as usize],
                );
                self.hull_tri[i as usize] = self.legalize(t + 2, points);
                self.hull_next[n as usize] = EMPTY; // vertex absorbed into the interior
                n = q;
            }

            // Walk backward on the other side.
            #[allow(clippy::redundant_locals)]
            let mut e = e;
            if walk_back {
                loop {
                    let q = self.hull_prev[e as usize];
                    if !Self::edge_visible(points, p, q, e) {
                        break;
                    }
                    let t = self.add_triangle(
                        q,
                        i,
                        e,
                        EMPTY,
                        self.hull_tri[e as usize],
                        self.hull_tri[q as usize],
                    );
                    self.legalize(t + 2, points);
                    self.hull_tri[q as usize] = t;
                    self.hull_next[e as usize] = EMPTY;
                    e = q;
                }
            }

            // Splice the new vertex into the hull.
            self.hull_start = e;
            self.hull_prev[i as usize] = e;
            self.hull_next[e as usize] = i;
            self.hull_prev[n as usize] = i;
            self.hull_next[i as usize] = n;

            self.hash_edge(p, i);
            self.hash_edge(points[e as usize], e);
        }
        Ok(())
    }

    /// Lawson flip propagation from halfedge `a`; returns a halfedge on the
    /// hull fan of the newly inserted vertex (see delaunator).
    fn legalize(&mut self, a: u32, points: &[Point]) -> u32 {
        self.legalize_stack.clear();
        let mut a = a;
        let mut ar;
        loop {
            let b = self.halfedges[a as usize];
            ar = prev_halfedge(a);

            if b == EMPTY {
                match self.legalize_stack.pop() {
                    Some(next) => {
                        a = next;
                        continue;
                    }
                    None => break,
                }
            }

            let al = next_halfedge(a);
            let bl = prev_halfedge(b);

            let p0 = self.triangles[ar as usize];
            let pr = self.triangles[a as usize];
            let pl = self.triangles[al as usize];
            let p1 = self.triangles[bl as usize];

            // Triangle (p0, pr, pl) is CCW; flip when p1 is strictly inside
            // its circumcircle.
            let illegal = incircle(
                points[p0 as usize],
                points[pr as usize],
                points[pl as usize],
                points[p1 as usize],
            ) == InCircle::Inside;

            if illegal {
                self.triangles[a as usize] = p1;
                self.triangles[b as usize] = p0;

                let hbl = self.halfedges[bl as usize];

                // The flipped edge bordered the hull: repair hull_tri.
                if hbl == EMPTY {
                    let mut e = self.hull_start;
                    loop {
                        if self.hull_tri[e as usize] == bl {
                            self.hull_tri[e as usize] = a;
                            break;
                        }
                        e = self.hull_prev[e as usize];
                        if e == self.hull_start {
                            break;
                        }
                    }
                }
                self.link(a, hbl);
                let har = self.halfedges[ar as usize];
                self.link(b, har);
                self.link(ar, bl);

                let br = next_halfedge(b);
                self.legalize_stack.push(br);
            } else {
                match self.legalize_stack.pop() {
                    Some(next) => {
                        a = next;
                        continue;
                    }
                    None => break,
                }
            }
        }
        ar
    }

    fn finish(self) -> Triangulation {
        // Collect the hull in CCW order.
        let mut hull = Vec::new();
        let mut e = self.hull_start;
        loop {
            hull.push(e);
            e = self.hull_next[e as usize];
            if e == self.hull_start {
                break;
            }
        }
        let _ = self.seed;
        Triangulation {
            triangles: self.triangles,
            halfedges: self.halfedges,
            hull,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    /// Brute-force Delaunay check: no point strictly inside any triangle's
    /// circumcircle.
    fn assert_delaunay(points: &[Point], tri: &Triangulation) {
        for t in 0..tri.num_triangles() as u32 {
            let [a, b, c] = tri.triangle_vertices(t);
            let (pa, pb, pc) = (points[a as usize], points[b as usize], points[c as usize]);
            assert_eq!(
                orient2d(pa, pb, pc),
                Orientation::CounterClockwise,
                "triangle {t} not CCW"
            );
            for (i, &p) in points.iter().enumerate() {
                if i as u32 == a || i as u32 == b || i as u32 == c {
                    continue;
                }
                assert_ne!(
                    incircle(pa, pb, pc, p),
                    InCircle::Inside,
                    "point {i} inside circumcircle of triangle {t}"
                );
            }
        }
    }

    /// Halfedge twin consistency.
    fn assert_halfedges(tri: &Triangulation) {
        for (e, &h) in tri.halfedges.iter().enumerate() {
            if h != EMPTY {
                assert_eq!(tri.halfedges[h as usize], e as u32, "twin of twin");
                // Twins connect the same two vertices in opposite order.
                let (u1, v1) = (
                    tri.triangles[e],
                    tri.triangles[next_halfedge(e as u32) as usize],
                );
                let (u2, v2) = (
                    tri.triangles[h as usize],
                    tri.triangles[next_halfedge(h) as usize],
                );
                assert_eq!((u1, v1), (v2, u2));
            }
        }
    }

    #[test]
    fn triangle_minimal() {
        let points = pts(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0)]);
        let tri = Triangulation::build(&points).unwrap();
        assert_eq!(tri.num_triangles(), 1);
        assert_eq!(tri.hull.len(), 3);
        assert_delaunay(&points, &tri);
        assert_halfedges(&tri);
    }

    #[test]
    fn square_two_triangles() {
        let points = pts(&[(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]);
        let tri = Triangulation::build(&points).unwrap();
        assert_eq!(tri.num_triangles(), 2);
        assert_eq!(tri.hull.len(), 4);
        assert_delaunay(&points, &tri);
        assert_halfedges(&tri);
    }

    #[test]
    fn grid_with_collinear_boundary() {
        // 5x5 integer grid: many collinear triples on the boundary.
        let mut coords = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                coords.push((i as f64, j as f64));
            }
        }
        let points = pts(&coords);
        let tri = Triangulation::build(&points).unwrap();
        assert_delaunay(&points, &tri);
        assert_halfedges(&tri);
        // Every point participates in at least one triangle.
        let mut seen = vec![false; points.len()];
        for &v in &tri.triangles {
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "every grid point triangulated");
        // Euler: T = 2n - 2 - h for n points with h hull points.
        let h = tri.hull.len();
        assert_eq!(tri.num_triangles(), 2 * points.len() - 2 - h);
    }

    #[test]
    fn cocircular_points() {
        // 8 points on a circle plus the center: heavily degenerate.
        let mut coords = vec![(0.0, 0.0)];
        for k in 0..8 {
            let ang = std::f64::consts::TAU * k as f64 / 8.0;
            coords.push((ang.cos(), ang.sin()));
        }
        let points = pts(&coords);
        let tri = Triangulation::build(&points).unwrap();
        assert_delaunay(&points, &tri);
        assert_halfedges(&tri);
        assert_eq!(tri.hull.len(), 8);
    }

    #[test]
    fn rejects_degenerate_inputs() {
        assert!(matches!(
            Triangulation::build(&pts(&[(0.0, 0.0), (1.0, 0.0)])),
            Err(VoronoiError::TooFewSites { .. })
        ));
        assert!(matches!(
            Triangulation::build(&pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])),
            Err(VoronoiError::AllCollinear)
        ));
        assert!(matches!(
            Triangulation::build(&pts(&[(0.0, 0.0), (1.0, 0.0), (0.0, 1.0), (1.0, 0.0)])),
            Err(VoronoiError::DuplicateSites { .. })
        ));
        assert!(matches!(
            Triangulation::build(&pts(&[(0.0, 0.0), (f64::NAN, 0.0), (0.0, 1.0)])),
            Err(VoronoiError::NonFinite { index: 1 })
        ));
    }

    #[test]
    fn random_points_delaunay_property() {
        // Deterministic LCG so the test is reproducible without rand.
        let mut state = 0x12345678u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        for n in [10usize, 40, 120] {
            let points: Vec<Point> = (0..n)
                .map(|_| Point::new(next() * 100.0, next() * 100.0))
                .collect();
            let tri = Triangulation::build(&points).unwrap();
            assert_delaunay(&points, &tri);
            assert_halfedges(&tri);
        }
    }

    #[test]
    fn hull_is_convex_ccw() {
        let mut state = 0xabcdef12u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let points: Vec<Point> = (0..60)
            .map(|_| Point::new(next() * 10.0, next() * 10.0))
            .collect();
        let tri = Triangulation::build(&points).unwrap();
        let h = &tri.hull;
        let m = h.len();
        for i in 0..m {
            let a = points[h[i] as usize];
            let b = points[h[(i + 1) % m] as usize];
            let c = points[h[(i + 2) % m] as usize];
            assert_ne!(orient2d(a, b, c), Orientation::Clockwise, "hull turn CW");
        }
        // All points inside or on the hull.
        for p in &points {
            for i in 0..m {
                let a = points[h[i] as usize];
                let b = points[h[(i + 1) % m] as usize];
                assert_ne!(orient2d(a, b, *p), Orientation::Clockwise);
            }
        }
    }
}

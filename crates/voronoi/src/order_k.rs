//! Order-k Voronoi cells (Definition 2 of the paper).
//!
//! The order-k Voronoi cell `V^k(O')` of a k-set `O'` is the region where
//! `O'` is exactly the kNN set; it is the *largest possible safe region*
//! for the kNN result `O'` and therefore the yardstick every safe-region
//! method is measured against.
//!
//! `V^k(O')` is the intersection of the bisector half-planes
//! `closer(p, s)` for every `p ∈ O'` and every `s ∉ O'`. Only sites in the
//! minimal influential set (MIS) contribute actual cell edges, so clipping
//! against any candidate set `C ⊇ MIS(O')` — in particular the INS —
//! produces the exact cell. [`order_k_cell_tagged`] additionally remembers
//! which bisector generated each edge, which is how the MIS itself is
//! recovered (each edge of `V^k(O')` borders the neighboring cell obtained
//! by swapping `inside → outside`; the union of the `outside` sites is the
//! MIS — Definition 2 made computational).

use insq_geom::{Aabb, ConvexPolygon, HalfPlane, Point};

use crate::diagram::SiteId;

/// What generated an edge of a tagged cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeSource {
    /// One of the four sides of the clipping window (0 = bottom, 1 = right,
    /// 2 = top, 3 = left).
    Window(u8),
    /// The perpendicular bisector between a kNN member and an outside site.
    Bisector {
        /// The kNN-set member (kept side of the bisector).
        inside: SiteId,
        /// The outside site; crossing this edge swaps `inside` for
        /// `outside` in the kNN set.
        outside: SiteId,
    },
}

/// A convex cell whose edges remember the constraint that created them.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedCell {
    vertices: Vec<Point>,
    /// `sources[i]` tags the edge from `vertices[i]` to
    /// `vertices[(i + 1) % n]`.
    sources: Vec<EdgeSource>,
}

impl TaggedCell {
    /// Cell vertices in counter-clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Edge tags, aligned with [`TaggedCell::vertices`].
    #[inline]
    pub fn sources(&self) -> &[EdgeSource] {
        &self.sources
    }

    /// Whether the cell is empty (the constraints are infeasible — `O'` is
    /// not the kNN set of any point in the window).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.len() < 3
    }

    /// The cell as a plain polygon.
    pub fn polygon(&self) -> ConvexPolygon {
        if self.is_empty() {
            ConvexPolygon::empty()
        } else {
            ConvexPolygon::new_unchecked(self.vertices.clone())
        }
    }

    /// Whether `p` lies in the cell (boundary inclusive).
    pub fn contains(&self, p: Point) -> bool {
        self.polygon().contains(p)
    }

    /// The distinct `(inside, outside)` swap pairs on the cell boundary:
    /// crossing the corresponding edge turns the kNN set `O'` into
    /// `O' \ {inside} ∪ {outside}` (paper §III-B, update case (i)).
    pub fn boundary_swaps(&self) -> Vec<(SiteId, SiteId)> {
        let mut pairs: Vec<(SiteId, SiteId)> = self
            .sources
            .iter()
            .filter_map(|src| match src {
                EdgeSource::Bisector { inside, outside } => Some((*inside, *outside)),
                EdgeSource::Window(_) => None,
            })
            .collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    /// The distinct outside sites adjacent to this cell. When the cell was
    /// computed from the full site set (or any candidate superset of the
    /// MIS), this *is* the minimal influential set `MIS(O')` of
    /// Definition 2.
    pub fn adjacent_outsiders(&self) -> Vec<SiteId> {
        let mut out: Vec<SiteId> = self
            .boundary_swaps()
            .into_iter()
            .map(|(_, outside)| outside)
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Computes `V^k(O') ∩ window` as a plain polygon.
///
/// `knn` is the k-set `O'`; `candidates` are the sites clipped against
/// (members of `knn` occurring in `candidates` are skipped). The result is
/// the true order-k cell whenever `candidates ⊇ MIS(O')`.
pub fn order_k_cell(
    points: &[Point],
    knn: &[SiteId],
    candidates: &[SiteId],
    window: &Aabb,
) -> ConvexPolygon {
    let mut cell = ConvexPolygon::from_aabb(window);
    let mut scratch = Vec::with_capacity(16);
    for &p in knn {
        let pp = points[p.idx()];
        for &s in candidates {
            if knn.contains(&s) {
                continue;
            }
            let h = HalfPlane::closer_to(pp, points[s.idx()]);
            cell.clip_halfplane_in_place(&h, &mut scratch);
            if cell.is_empty() {
                return cell;
            }
        }
    }
    cell
}

/// Computes `V^k(O') ∩ window` remembering the generating bisector of every
/// edge. See [`order_k_cell`] for the arguments.
pub fn order_k_cell_tagged(
    points: &[Point],
    knn: &[SiteId],
    candidates: &[SiteId],
    window: &Aabb,
) -> TaggedCell {
    let corners = window.corners();
    let mut vertices: Vec<Point> = corners.to_vec();
    let mut sources: Vec<EdgeSource> = (0..4).map(EdgeSource::Window).collect();
    let mut next_v: Vec<Point> = Vec::with_capacity(8);
    let mut next_s: Vec<EdgeSource> = Vec::with_capacity(8);

    for &p in knn {
        let pp = points[p.idx()];
        for &s in candidates {
            if knn.contains(&s) {
                continue;
            }
            let h = HalfPlane::closer_to(pp, points[s.idx()]);
            let src = EdgeSource::Bisector {
                inside: p,
                outside: s,
            };
            clip_tagged(&vertices, &sources, &h, src, &mut next_v, &mut next_s);
            std::mem::swap(&mut vertices, &mut next_v);
            std::mem::swap(&mut sources, &mut next_s);
            if vertices.len() < 3 {
                vertices.clear();
                sources.clear();
                break;
            }
        }
        if vertices.is_empty() {
            break;
        }
    }
    TaggedCell { vertices, sources }
}

/// Near-duplicate test matching `insq_geom`'s clip dedup: a vertex on the
/// clip boundary re-emitted as a recomputed crossing differs only in the
/// last bits and must be merged, or it forms a degenerate micro-edge.
#[inline]
fn nearly_same(a: Point, b: Point) -> bool {
    let scale = 1.0 + a.x.abs().max(a.y.abs()).max(b.x.abs()).max(b.y.abs());
    let eps = 1e-12 * scale;
    a.distance_sq(b) <= eps * eps
}

/// Sutherland–Hodgman clip of a tagged convex CCW polygon with one
/// half-plane.
fn clip_tagged(
    verts: &[Point],
    tags: &[EdgeSource],
    h: &HalfPlane,
    src: EdgeSource,
    out_v: &mut Vec<Point>,
    out_t: &mut Vec<EdgeSource>,
) {
    out_v.clear();
    out_t.clear();
    let n = verts.len();
    // Merging a duplicate vertex keeps the *newer* outgoing-edge tag: the
    // zero-length edge between the twins carries no geometry.
    let push =
        |out_v: &mut Vec<Point>, out_t: &mut Vec<EdgeSource>, p: Point, t: EdgeSource| match out_v
            .last()
        {
            Some(&last) if nearly_same(last, p) => {
                *out_t.last_mut().expect("tags track vertices") = t;
            }
            _ => {
                out_v.push(p);
                out_t.push(t);
            }
        };
    for i in 0..n {
        let cur = verts[i];
        let nxt = verts[(i + 1) % n];
        let cur_in = h.contains(cur);
        let nxt_in = h.contains(nxt);
        if cur_in {
            push(out_v, out_t, cur, tags[i]);
            if !nxt_in {
                if let Some(t) = h.line_crossing(cur, nxt) {
                    // Exiting: the chord from here to the re-entry point
                    // runs along the new constraint's boundary.
                    push(out_v, out_t, cur.lerp(nxt, t.clamp(0.0, 1.0)), src);
                }
            }
        } else if nxt_in {
            if let Some(t) = h.line_crossing(cur, nxt) {
                // Entering: the remainder of the original edge keeps its tag.
                push(out_v, out_t, cur.lerp(nxt, t.clamp(0.0, 1.0)), tags[i]);
            }
        }
    }
    // Wrap-around near-duplicate: drop the last vertex, transferring its
    // outgoing tag to the first position's incoming edge (i.e. the popped
    // vertex's tag replaces nothing — the first vertex keeps its own tag,
    // which describes the same surviving edge).
    while out_v.len() > 1 && nearly_same(out_v[0], *out_v.last().expect("len > 1")) {
        out_v.pop();
        out_t.pop();
    }
    if out_v.len() < 3 {
        out_v.clear();
        out_t.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagram::Voronoi;

    fn grid_3x3() -> (Vec<Point>, Aabb) {
        let points: Vec<Point> = (0..3)
            .flat_map(|i| (0..3).map(move |j| Point::new(i as f64, j as f64)))
            .collect();
        let bounds = Aabb::new(Point::new(-1.0, -1.0), Point::new(3.0, 3.0));
        (points, bounds)
    }

    fn all_sites(n: usize) -> Vec<SiteId> {
        (0..n as u32).map(SiteId).collect()
    }

    fn brute_knn(points: &[Point], q: Point, k: usize) -> Vec<SiteId> {
        let mut ids: Vec<u32> = (0..points.len() as u32).collect();
        ids.sort_by(|&i, &j| {
            points[i as usize]
                .distance_sq(q)
                .total_cmp(&points[j as usize].distance_sq(q))
        });
        ids.truncate(k);
        let mut v: Vec<SiteId> = ids.into_iter().map(SiteId).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn order_1_cell_matches_diagram_cell() {
        let (points, bounds) = grid_3x3();
        let voro = Voronoi::build(points.clone(), bounds).unwrap();
        for i in 0..points.len() as u32 {
            let via_order_k =
                order_k_cell(&points, &[SiteId(i)], &all_sites(points.len()), &bounds);
            let via_diagram = voro.cell(SiteId(i));
            assert!(
                (via_order_k.area() - via_diagram.area()).abs() < 1e-9,
                "site {i}: {} vs {}",
                via_order_k.area(),
                via_diagram.area()
            );
        }
    }

    #[test]
    fn order_k_cell_characterizes_knn() {
        let (points, bounds) = grid_3x3();
        let candidates = all_sites(points.len());
        // O' = {center, east}: the two nearest sites for points between
        // them.
        let mut knn = vec![SiteId(4), SiteId(7)];
        knn.sort_unstable();
        let cell = order_k_cell(&points, &knn, &candidates, &bounds);
        assert!(!cell.is_empty());
        // Sample points: inside the cell iff brute-force 2NN == O'.
        let mut checked_in = 0;
        let mut checked_out = 0;
        for i in 0..40 {
            for j in 0..40 {
                let q = Point::new(-0.9 + i as f64 * 0.1, -0.9 + j as f64 * 0.1);
                let is_knn = brute_knn(&points, q, 2) == knn;
                // Skip points within a hair of the cell boundary where
                // floating ties make either answer acceptable.
                let d = cell.boundary_distance(q).unwrap_or(f64::INFINITY);
                if d < 1e-9 {
                    continue;
                }
                if cell.contains(q) {
                    assert!(is_knn, "{q:?} in cell but kNN differs");
                    checked_in += 1;
                } else {
                    assert!(!is_knn, "{q:?} outside cell but kNN matches");
                    checked_out += 1;
                }
            }
        }
        assert!(checked_in > 0 && checked_out > 0);
    }

    #[test]
    fn tagged_cell_matches_untagged() {
        let (points, bounds) = grid_3x3();
        let candidates = all_sites(points.len());
        let knn = [SiteId(4), SiteId(1)];
        let plain = order_k_cell(&points, &knn, &candidates, &bounds);
        let tagged = order_k_cell_tagged(&points, &knn, &candidates, &bounds);
        assert!((plain.area() - tagged.polygon().area()).abs() < 1e-9);
        assert_eq!(plain.is_empty(), tagged.is_empty());
    }

    #[test]
    fn tagged_edges_are_true_bisectors() {
        let (points, bounds) = grid_3x3();
        let candidates = all_sites(points.len());
        let knn = [SiteId(4), SiteId(7)];
        let tagged = order_k_cell_tagged(&points, &knn, &candidates, &bounds);
        let vs = tagged.vertices();
        let n = vs.len();
        for (i, src) in tagged.sources().iter().enumerate() {
            if let EdgeSource::Bisector { inside, outside } = src {
                let mid = vs[i].midpoint(vs[(i + 1) % n]);
                let di = mid.distance(points[inside.idx()]);
                let do_ = mid.distance(points[outside.idx()]);
                assert!(
                    (di - do_).abs() < 1e-9,
                    "edge {i} midpoint not equidistant: {di} vs {do_}"
                );
            }
        }
    }

    #[test]
    fn empty_cell_for_non_knn_set() {
        let (points, bounds) = grid_3x3();
        let candidates = all_sites(points.len());
        // Two opposite corners are never simultaneously the 2 nearest.
        let knn = [SiteId(0), SiteId(8)];
        let cell = order_k_cell(&points, &knn, &candidates, &bounds);
        assert!(cell.is_empty());
        let tagged = order_k_cell_tagged(&points, &knn, &candidates, &bounds);
        assert!(tagged.is_empty());
        assert!(tagged.adjacent_outsiders().is_empty());
    }

    #[test]
    fn boundary_swaps_produce_valid_neighbor_cells() {
        let (points, bounds) = grid_3x3();
        let candidates = all_sites(points.len());
        let knn = vec![SiteId(4), SiteId(7)];
        let tagged = order_k_cell_tagged(&points, &knn, &candidates, &bounds);
        for (inside, outside) in tagged.boundary_swaps() {
            let mut nb: Vec<SiteId> = knn
                .iter()
                .copied()
                .filter(|&s| s != inside)
                .chain(std::iter::once(outside))
                .collect();
            nb.sort_unstable();
            let nb_cell = order_k_cell(&points, &nb, &candidates, &bounds);
            assert!(
                !nb_cell.is_empty(),
                "swap ({inside},{outside}) leads to an empty neighbor cell"
            );
        }
    }
}

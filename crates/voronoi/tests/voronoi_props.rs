//! Property-based tests for Delaunay/Voronoi construction and order-k
//! cells, over adversarial point distributions (uniform, clustered,
//! gridded — the latter maximising collinear/cocircular degeneracies).

use insq_geom::predicates::{incircle, InCircle};
use insq_geom::{orient2d, Aabb, Orientation, Point};
use insq_voronoi::delaunay::{next_halfedge, EMPTY};
use insq_voronoi::{order_k_cell, SiteId, Triangulation, Voronoi};
use proptest::prelude::*;
use std::collections::HashSet;

/// Random distinct points, mixing continuous and lattice coordinates.
fn points_strategy() -> impl Strategy<Value = Vec<Point>> {
    let continuous = prop::collection::vec(
        (0.0f64..100.0, 0.0f64..100.0).prop_map(|(x, y)| Point::new(x, y)),
        4..40,
    );
    let lattice = prop::collection::vec(
        (0i32..12, 0i32..12).prop_map(|(x, y)| Point::new(x as f64 * 8.0, y as f64 * 8.0)),
        4..40,
    );
    prop_oneof![continuous, lattice].prop_map(|mut pts| {
        // Deduplicate exactly (duplicates are rejected by construction).
        let mut seen = HashSet::new();
        pts.retain(|p| seen.insert((p.x.to_bits(), p.y.to_bits())));
        pts
    })
}

fn non_collinear(pts: &[Point]) -> bool {
    if pts.len() < 3 {
        return false;
    }
    let (a, b) = (pts[0], pts[1]);
    pts.iter()
        .any(|&c| orient2d(a, b, c) != Orientation::Collinear)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn delaunay_empty_circle_property(pts in points_strategy()) {
        prop_assume!(non_collinear(&pts));
        let tri = Triangulation::build(&pts).expect("valid input");
        for t in 0..tri.num_triangles() as u32 {
            let [a, b, c] = tri.triangle_vertices(t);
            let (pa, pb, pc) = (pts[a as usize], pts[b as usize], pts[c as usize]);
            prop_assert_eq!(orient2d(pa, pb, pc), Orientation::CounterClockwise);
            for (i, &p) in pts.iter().enumerate() {
                if i as u32 == a || i as u32 == b || i as u32 == c {
                    continue;
                }
                prop_assert_ne!(
                    incircle(pa, pb, pc, p),
                    InCircle::Inside,
                    "point {} inside circumcircle of triangle {}", i, t
                );
            }
        }
    }

    #[test]
    fn delaunay_euler_formula(pts in points_strategy()) {
        prop_assume!(non_collinear(&pts));
        let tri = Triangulation::build(&pts).expect("valid input");
        // Count vertices actually used (all of them, for distinct inputs).
        let mut used: HashSet<u32> = HashSet::new();
        for &v in &tri.triangles {
            used.insert(v);
        }
        prop_assert_eq!(used.len(), pts.len(), "every point triangulated");
        // T = 2n - 2 - h.
        prop_assert_eq!(tri.num_triangles(), 2 * pts.len() - 2 - tri.hull.len());
        // Halfedge twins consistent.
        for (e, &h) in tri.halfedges.iter().enumerate() {
            if h != EMPTY {
                prop_assert_eq!(tri.halfedges[h as usize], e as u32);
                let (u1, v1) = (
                    tri.triangles[e],
                    tri.triangles[next_halfedge(e as u32) as usize],
                );
                let (u2, v2) = (
                    tri.triangles[h as usize],
                    tri.triangles[next_halfedge(h) as usize],
                );
                prop_assert_eq!((u1, v1), (v2, u2));
            }
        }
    }

    #[test]
    fn voronoi_cells_partition_window(pts in points_strategy()) {
        prop_assume!(non_collinear(&pts));
        let bounds = Aabb::new(Point::new(-20.0, -20.0), Point::new(120.0, 120.0));
        let v = match Voronoi::build(pts, bounds) {
            Ok(v) => v,
            Err(_) => return Ok(()),
        };
        let total: f64 = (0..v.len() as u32).map(|i| v.cell(SiteId(i)).area()).sum();
        prop_assert!(
            (total - bounds.area()).abs() < 1e-5 * bounds.area(),
            "cells partition the window: {} vs {}", total, bounds.area()
        );
        // Each site is inside its own cell.
        for i in 0..v.len() as u32 {
            prop_assert!(v.cell(SiteId(i)).contains(v.point(SiteId(i))));
        }
    }

    #[test]
    fn voronoi_nearest_site_membership(pts in points_strategy(), qx in 0.0f64..100.0, qy in 0.0f64..100.0) {
        prop_assume!(non_collinear(&pts));
        let bounds = Aabb::new(Point::new(-20.0, -20.0), Point::new(120.0, 120.0));
        let v = match Voronoi::build(pts, bounds) {
            Ok(v) => v,
            Err(_) => return Ok(()),
        };
        let q = Point::new(qx, qy);
        let nearest = v.nearest_site_brute(q);
        prop_assert!(v.cell(nearest).contains(q));
    }

    #[test]
    fn neighbors_symmetric_and_nearest_is_neighbor_of_second(pts in points_strategy()) {
        prop_assume!(pts.len() >= 4);
        prop_assume!(non_collinear(&pts));
        let bounds = Aabb::new(Point::new(-20.0, -20.0), Point::new(120.0, 120.0));
        let v = match Voronoi::build(pts, bounds) {
            Ok(v) => v,
            Err(_) => return Ok(()),
        };
        for i in 0..v.len() as u32 {
            for &nb in v.neighbors(SiteId(i)) {
                prop_assert!(v.are_neighbors(nb, SiteId(i)));
            }
            // Classic fact: each site's nearest other site is a Voronoi
            // neighbor.
            let p = v.point(SiteId(i));
            let nn = (0..v.len() as u32)
                .filter(|&j| j != i)
                .min_by(|&a, &b| {
                    v.point(SiteId(a)).distance_sq(p).total_cmp(&v.point(SiteId(b)).distance_sq(p))
                })
                .expect("at least two sites");
            prop_assert!(
                v.are_neighbors(SiteId(i), SiteId(nn)),
                "site {i}'s nearest {nn} must be a Voronoi neighbor"
            );
        }
    }

    #[test]
    fn delaunay_hull_matches_monotone_chain(pts in points_strategy()) {
        // Cross-validation of two independent implementations: the
        // sweep-circle triangulation's hull vs Andrew's monotone chain.
        prop_assume!(non_collinear(&pts));
        let tri = Triangulation::build(&pts).expect("valid input");
        let via_delaunay: Vec<Point> =
            tri.hull.iter().map(|&i| pts[i as usize]).collect();
        let via_chain = insq_geom::convex_hull(&pts);
        // The Delaunay hull may keep collinear boundary vertices that the
        // strict chain drops; every chain vertex must appear in the
        // Delaunay hull, in the same cyclic CCW order, and all points must
        // be inside both.
        prop_assert!(via_chain.len() <= via_delaunay.len());
        let positions: Vec<usize> = via_chain
            .iter()
            .map(|c| {
                via_delaunay
                    .iter()
                    .position(|d| d == c)
                    .expect("chain vertex on Delaunay hull")
            })
            .collect();
        // Cyclic order: positions (rotated to start at the minimum) are
        // strictly increasing.
        if let Some(min_at) = positions.iter().enumerate().min_by_key(|&(_, &p)| p).map(|(i, _)| i) {
            let rotated: Vec<usize> = (0..positions.len())
                .map(|i| positions[(min_at + i) % positions.len()])
                .collect();
            for w in rotated.windows(2) {
                prop_assert!(w[0] < w[1], "cyclic order preserved: {positions:?}");
            }
        }
        for p in &pts {
            prop_assert!(insq_geom::hull_contains(&via_chain, *p));
        }
    }

    #[test]
    fn order_k_cells_tile_around_query(pts in points_strategy(), qx in 10.0f64..90.0, qy in 10.0f64..90.0, k in 1usize..5) {
        prop_assume!(non_collinear(&pts));
        prop_assume!(pts.len() > k + 2);
        let bounds = Aabb::new(Point::new(-20.0, -20.0), Point::new(120.0, 120.0));
        let v = match Voronoi::build(pts.clone(), bounds) {
            Ok(v) => v,
            Err(_) => return Ok(()),
        };
        let q = Point::new(qx, qy);
        let knn = v.knn_brute(q, k);
        // Tie guard: skip when the k-th and (k+1)-th are equidistant.
        let ext = v.knn_brute(q, k + 1);
        let dk = v.point(knn[k - 1]).distance(q);
        let dk1 = v.point(ext[k]).distance(q);
        prop_assume!((dk1 - dk).abs() > 1e-9);

        let all: Vec<SiteId> = (0..v.len() as u32).map(SiteId).collect();
        let cell = order_k_cell(v.points(), &knn, &all, &bounds);
        prop_assert!(!cell.is_empty(), "true kNN set has a non-empty cell");
        prop_assert!(cell.contains(q), "query lies in its own order-k cell");
    }
}

//! Line segments.

use crate::aabb::Aabb;
use crate::point::{Point, Vector};
use crate::predicates::{orient2d, Orientation};

/// A directed line segment from `a` to `b`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Segment {
    /// Start point.
    pub a: Point,
    /// End point.
    pub b: Point,
}

impl Segment {
    /// Creates a segment between two points.
    #[inline]
    pub const fn new(a: Point, b: Point) -> Self {
        Segment { a, b }
    }

    /// Length of the segment.
    #[inline]
    pub fn length(&self) -> f64 {
        self.a.distance(self.b)
    }

    /// The direction vector `b - a` (not normalised).
    #[inline]
    pub fn direction(&self) -> Vector {
        self.b - self.a
    }

    /// The point at parameter `t ∈ [0, 1]` along the segment.
    #[inline]
    pub fn at(&self, t: f64) -> Point {
        self.a.lerp(self.b, t)
    }

    /// Midpoint of the segment.
    #[inline]
    pub fn midpoint(&self) -> Point {
        self.a.midpoint(self.b)
    }

    /// Tight bounding box.
    #[inline]
    pub fn bounding_box(&self) -> Aabb {
        Aabb::new(self.a, self.b)
    }

    /// The parameter `t` of the point on the (infinite) supporting line
    /// closest to `p`, clamped to `[0, 1]` so it refers to the segment.
    #[inline]
    pub fn project_clamped(&self, p: Point) -> f64 {
        let d = self.direction();
        let len_sq = d.norm_sq();
        if len_sq == 0.0 {
            return 0.0; // degenerate segment
        }
        ((p - self.a).dot(d) / len_sq).clamp(0.0, 1.0)
    }

    /// The point of the segment closest to `p`.
    #[inline]
    pub fn closest_point(&self, p: Point) -> Point {
        self.at(self.project_clamped(p))
    }

    /// Squared distance from `p` to the segment.
    #[inline]
    pub fn distance_sq(&self, p: Point) -> f64 {
        self.closest_point(p).distance_sq(p)
    }

    /// Distance from `p` to the segment.
    #[inline]
    pub fn distance(&self, p: Point) -> f64 {
        self.distance_sq(p).sqrt()
    }

    /// Whether the two closed segments share at least one point.
    ///
    /// Uses robust orientation tests, so touching endpoints and collinear
    /// overlaps are classified correctly.
    pub fn intersects(&self, other: &Segment) -> bool {
        let o1 = orient2d(self.a, self.b, other.a);
        let o2 = orient2d(self.a, self.b, other.b);
        let o3 = orient2d(other.a, other.b, self.a);
        let o4 = orient2d(other.a, other.b, self.b);

        // General position: each segment strictly straddles the other's
        // supporting line.
        let strict = |o: Orientation| o != Orientation::Collinear;
        if o1 != o2 && o3 != o4 && strict(o1) && strict(o2) && strict(o3) && strict(o4) {
            return true;
        }

        // Remaining true intersections must involve an endpoint lying on
        // the other segment (touching or collinear overlap).
        let on = |s: &Segment, p: Point| -> bool {
            orient2d(s.a, s.b, p) == Orientation::Collinear && s.bounding_box().contains(p)
        };
        on(self, other.a) || on(self, other.b) || on(other, self.a) || on(other, self.b)
    }

    /// The intersection point of two segments in general position
    /// (`None` for parallel, collinear or non-crossing pairs).
    pub fn intersection(&self, other: &Segment) -> Option<Point> {
        let r = self.direction();
        let s = other.direction();
        let denom = r.cross(s);
        if denom == 0.0 {
            return None;
        }
        let qp = other.a - self.a;
        let t = qp.cross(s) / denom;
        let u = qp.cross(r) / denom;
        if (0.0..=1.0).contains(&t) && (0.0..=1.0).contains(&u) {
            Some(self.at(t))
        } else {
            None
        }
    }

    /// The segment with the direction reversed.
    #[inline]
    pub fn reversed(&self) -> Segment {
        Segment::new(self.b, self.a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(ax: f64, ay: f64, bx: f64, by: f64) -> Segment {
        Segment::new(Point::new(ax, ay), Point::new(bx, by))
    }

    #[test]
    fn length_and_at() {
        let s = seg(0.0, 0.0, 3.0, 4.0);
        assert_eq!(s.length(), 5.0);
        assert_eq!(s.at(0.0), s.a);
        assert_eq!(s.at(1.0), s.b);
        assert_eq!(s.at(0.5), s.midpoint());
    }

    #[test]
    fn projection_and_distance() {
        let s = seg(0.0, 0.0, 10.0, 0.0);
        // Point above the middle.
        assert_eq!(s.project_clamped(Point::new(4.0, 3.0)), 0.4);
        assert_eq!(s.distance(Point::new(4.0, 3.0)), 3.0);
        // Point beyond the end projects to the endpoint.
        assert_eq!(s.project_clamped(Point::new(20.0, 0.0)), 1.0);
        assert_eq!(s.distance(Point::new(13.0, 4.0)), 5.0);
        // Point before the start.
        assert_eq!(s.closest_point(Point::new(-5.0, 1.0)), s.a);
    }

    #[test]
    fn degenerate_segment() {
        let s = seg(1.0, 1.0, 1.0, 1.0);
        assert_eq!(s.length(), 0.0);
        assert_eq!(s.closest_point(Point::new(4.0, 5.0)), s.a);
        assert_eq!(s.distance(Point::new(4.0, 5.0)), 5.0);
    }

    #[test]
    fn crossing_segments() {
        let s1 = seg(0.0, 0.0, 2.0, 2.0);
        let s2 = seg(0.0, 2.0, 2.0, 0.0);
        assert!(s1.intersects(&s2));
        assert_eq!(s1.intersection(&s2), Some(Point::new(1.0, 1.0)));
    }

    #[test]
    fn non_crossing_segments() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(0.0, 1.0, 1.0, 1.0);
        assert!(!s1.intersects(&s2));
        assert_eq!(s1.intersection(&s2), None);
    }

    #[test]
    fn touching_at_endpoint() {
        let s1 = seg(0.0, 0.0, 1.0, 0.0);
        let s2 = seg(1.0, 0.0, 2.0, 5.0);
        assert!(s1.intersects(&s2));
    }

    #[test]
    fn collinear_overlap_and_gap() {
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 0.0, 3.0, 0.0);
        assert!(s1.intersects(&s2));
        let s3 = seg(3.0, 0.0, 4.0, 0.0);
        assert!(!s1.intersects(&s3));
        // Parallel segments never report an intersection point.
        assert_eq!(s1.intersection(&s2), None);
    }

    #[test]
    fn t_touch_midpoint() {
        // s2 ends exactly in the interior of s1.
        let s1 = seg(0.0, 0.0, 2.0, 0.0);
        let s2 = seg(1.0, 1.0, 1.0, 0.0);
        assert!(s1.intersects(&s2));
        assert_eq!(s1.intersection(&s2), Some(Point::new(1.0, 0.0)));
    }
}

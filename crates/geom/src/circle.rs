//! Circles, circumcircles and circumcenters.
//!
//! The circumcenter computation is the geometric kernel behind Voronoi
//! vertices (a Voronoi vertex *is* the circumcenter of a Delaunay triangle),
//! and the two validation circles of the INSQ demonstration (the green
//! circle through the farthest kNN and the red circle through the nearest
//! influential neighbor) are [`Circle`] values.

use crate::point::Point;
use crate::GeomError;

/// A circle given by center and radius.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Circle {
    /// Center of the circle.
    pub center: Point,
    /// Radius (non-negative).
    pub radius: f64,
}

impl Circle {
    /// Creates a circle; the radius is clamped to be non-negative.
    #[inline]
    pub fn new(center: Point, radius: f64) -> Self {
        Circle {
            center,
            radius: radius.max(0.0),
        }
    }

    /// The circle centered at `center` passing through `through`.
    #[inline]
    pub fn through(center: Point, through: Point) -> Self {
        Circle {
            center,
            radius: center.distance(through),
        }
    }

    /// Whether `p` lies inside or on the circle.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        self.center.distance_sq(p) <= self.radius * self.radius
    }

    /// Whether `p` lies strictly inside the circle.
    #[inline]
    pub fn contains_strict(&self, p: Point) -> bool {
        self.center.distance_sq(p) < self.radius * self.radius
    }

    /// Whether this circle is entirely contained in `other` (boundaries may
    /// touch).
    #[inline]
    pub fn inside(&self, other: &Circle) -> bool {
        self.center.distance(other.center) + self.radius <= other.radius
    }

    /// Area of the disk.
    #[inline]
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }
}

/// The circumcenter of the triangle `(a, b, c)`.
///
/// Solves the perpendicular-bisector linear system with the relative
/// formulation (coordinates translated so `a` is the origin), which is the
/// numerically preferred form. Fails with [`GeomError::Degenerate`] when the
/// points are (exactly) collinear.
pub fn circumcenter(a: Point, b: Point, c: Point) -> Result<Point, GeomError> {
    let bx = b.x - a.x;
    let by = b.y - a.y;
    let cx = c.x - a.x;
    let cy = c.y - a.y;
    let d = 2.0 * (bx * cy - by * cx);
    if d == 0.0 || !d.is_finite() {
        return Err(GeomError::Degenerate);
    }
    let b_sq = bx * bx + by * by;
    let c_sq = cx * cx + cy * cy;
    let ux = (cy * b_sq - by * c_sq) / d;
    let uy = (bx * c_sq - cx * b_sq) / d;
    Ok(Point::new(a.x + ux, a.y + uy))
}

/// The circumcircle of the triangle `(a, b, c)`.
pub fn circumcircle(a: Point, b: Point, c: Point) -> Result<Circle, GeomError> {
    let center = circumcenter(a, b, c)?;
    // Use the average of the three radii to damp rounding noise.
    let r = (center.distance(a) + center.distance(b) + center.distance(c)) / 3.0;
    Ok(Circle::new(center, r))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circumcenter_right_triangle() {
        // Right triangle: circumcenter is the hypotenuse midpoint.
        let a = Point::new(0.0, 0.0);
        let b = Point::new(4.0, 0.0);
        let c = Point::new(0.0, 3.0);
        let cc = circumcenter(a, b, c).unwrap();
        assert!((cc.x - 2.0).abs() < 1e-12);
        assert!((cc.y - 1.5).abs() < 1e-12);
    }

    #[test]
    fn circumcenter_equidistant() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(5.0, -1.0);
        let c = Point::new(-2.0, 4.0);
        let cc = circumcenter(a, b, c).unwrap();
        let da = cc.distance(a);
        let db = cc.distance(b);
        let dc = cc.distance(c);
        assert!((da - db).abs() < 1e-9);
        assert!((da - dc).abs() < 1e-9);
    }

    #[test]
    fn circumcenter_collinear_fails() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(1.0, 1.0);
        let c = Point::new(2.0, 2.0);
        assert_eq!(circumcenter(a, b, c), Err(GeomError::Degenerate));
    }

    #[test]
    fn circumcircle_contains_vertices_on_boundary() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        let c = Point::new(1.0, 1.0);
        let circ = circumcircle(a, b, c).unwrap();
        for p in [a, b, c] {
            assert!((circ.center.distance(p) - circ.radius).abs() < 1e-12);
        }
    }

    #[test]
    fn circle_containment() {
        let c = Circle::new(Point::new(0.0, 0.0), 2.0);
        assert!(c.contains(Point::new(1.0, 1.0)));
        assert!(c.contains(Point::new(2.0, 0.0))); // boundary
        assert!(!c.contains_strict(Point::new(2.0, 0.0)));
        assert!(!c.contains(Point::new(2.1, 0.0)));
        let small = Circle::new(Point::new(0.5, 0.0), 1.0);
        assert!(small.inside(&c));
        assert!(!c.inside(&small));
    }

    #[test]
    fn circle_through() {
        let c = Circle::through(Point::new(1.0, 1.0), Point::new(4.0, 5.0));
        assert_eq!(c.radius, 5.0);
    }

    #[test]
    fn negative_radius_clamped() {
        let c = Circle::new(Point::ORIGIN, -3.0);
        assert_eq!(c.radius, 0.0);
        assert_eq!(c.area(), 0.0);
    }
}

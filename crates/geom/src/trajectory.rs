//! Arc-length parameterised polyline trajectories.
//!
//! The INSQ demonstration moves the query object along a user-specified
//! trajectory at a configurable speed. [`Trajectory`] supports exactly
//! that: given a travelled distance `s`, [`Trajectory::position`] returns
//! the corresponding point, interpolated linearly on the polyline.

use crate::point::Point;
use crate::GeomError;

/// A polyline trajectory with precomputed cumulative arc lengths.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trajectory {
    waypoints: Vec<Point>,
    /// `cumulative[i]` = arc length from the start to `waypoints[i]`.
    cumulative: Vec<f64>,
}

impl Trajectory {
    /// Builds a trajectory from at least two waypoints.
    ///
    /// Consecutive duplicate waypoints are allowed (they contribute zero
    /// length), but the total length must be positive.
    pub fn new(waypoints: Vec<Point>) -> Result<Self, GeomError> {
        if waypoints.len() < 2 {
            return Err(GeomError::TooFewPoints {
                needed: 2,
                got: waypoints.len(),
            });
        }
        if waypoints.iter().any(|p| !p.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        let mut cumulative = Vec::with_capacity(waypoints.len());
        cumulative.push(0.0);
        for w in waypoints.windows(2) {
            let last = *cumulative.last().expect("cumulative starts non-empty");
            cumulative.push(last + w[0].distance(w[1]));
        }
        if *cumulative.last().expect("non-empty") <= 0.0 {
            return Err(GeomError::Degenerate);
        }
        Ok(Trajectory {
            waypoints,
            cumulative,
        })
    }

    /// The waypoints defining the trajectory.
    #[inline]
    pub fn waypoints(&self) -> &[Point] {
        &self.waypoints
    }

    /// Total arc length.
    #[inline]
    pub fn length(&self) -> f64 {
        *self.cumulative.last().expect("non-empty by construction")
    }

    /// Position after travelling distance `s` from the start.
    ///
    /// `s` is clamped to `[0, length]`; callers that want looping behaviour
    /// should wrap `s` themselves (see [`Trajectory::position_looped`]).
    pub fn position(&self, s: f64) -> Point {
        let s = s.clamp(0.0, self.length());
        // Binary search for the containing segment.
        let i = match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&s).expect("finite lengths"))
        {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        if i + 1 >= self.waypoints.len() {
            return *self.waypoints.last().expect("non-empty");
        }
        let seg_len = self.cumulative[i + 1] - self.cumulative[i];
        if seg_len == 0.0 {
            return self.waypoints[i];
        }
        let t = (s - self.cumulative[i]) / seg_len;
        self.waypoints[i].lerp(self.waypoints[i + 1], t)
    }

    /// Position after travelling distance `s`, wrapping around to the start
    /// when the end is passed (the demo's looping playback mode).
    pub fn position_looped(&self, s: f64) -> Point {
        let len = self.length();
        let wrapped = s.rem_euclid(len);
        self.position(wrapped)
    }

    /// Samples the trajectory at `steps + 1` equally spaced arc-length
    /// positions from start to end (inclusive).
    pub fn sample(&self, steps: usize) -> Vec<Point> {
        let len = self.length();
        (0..=steps)
            .map(|i| self.position(len * i as f64 / steps.max(1) as f64))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l_shape() -> Trajectory {
        Trajectory::new(vec![
            Point::new(0.0, 0.0),
            Point::new(3.0, 0.0),
            Point::new(3.0, 4.0),
        ])
        .unwrap()
    }

    #[test]
    fn length_accumulates() {
        assert_eq!(l_shape().length(), 7.0);
    }

    #[test]
    fn position_on_segments() {
        let t = l_shape();
        assert_eq!(t.position(0.0), Point::new(0.0, 0.0));
        assert_eq!(t.position(1.5), Point::new(1.5, 0.0));
        assert_eq!(t.position(3.0), Point::new(3.0, 0.0)); // corner
        assert_eq!(t.position(5.0), Point::new(3.0, 2.0));
        assert_eq!(t.position(7.0), Point::new(3.0, 4.0));
    }

    #[test]
    fn position_clamps() {
        let t = l_shape();
        assert_eq!(t.position(-5.0), Point::new(0.0, 0.0));
        assert_eq!(t.position(100.0), Point::new(3.0, 4.0));
    }

    #[test]
    fn looped_wraps() {
        let t = l_shape();
        assert_eq!(t.position_looped(7.5), t.position(0.5));
        assert_eq!(t.position_looped(-1.0), t.position(6.0));
    }

    #[test]
    fn duplicate_waypoints_ok() {
        let t = Trajectory::new(vec![
            Point::new(0.0, 0.0),
            Point::new(0.0, 0.0),
            Point::new(1.0, 0.0),
        ])
        .unwrap();
        assert_eq!(t.length(), 1.0);
        assert_eq!(t.position(0.5), Point::new(0.5, 0.0));
    }

    #[test]
    fn rejects_degenerate() {
        assert!(matches!(
            Trajectory::new(vec![Point::ORIGIN]),
            Err(GeomError::TooFewPoints { .. })
        ));
        assert_eq!(
            Trajectory::new(vec![Point::ORIGIN, Point::ORIGIN]),
            Err(GeomError::Degenerate)
        );
    }

    #[test]
    fn sample_endpoints() {
        let t = l_shape();
        let s = t.sample(7);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0], Point::new(0.0, 0.0));
        assert_eq!(s[7], Point::new(3.0, 4.0));
    }
}

//! Axis-aligned bounding boxes.
//!
//! Used as R-tree node regions, Voronoi clipping windows and data-space
//! extents throughout the system.

use crate::point::Point;

/// A closed axis-aligned rectangle `[min.x, max.x] × [min.y, max.y]`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Aabb {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Aabb {
    /// Creates a box from two corner points (in any order).
    #[inline]
    pub fn new(a: Point, b: Point) -> Self {
        Aabb {
            min: Point::new(a.x.min(b.x), a.y.min(b.y)),
            max: Point::new(a.x.max(b.x), a.y.max(b.y)),
        }
    }

    /// Creates the unit square `[0,1] × [0,1]`.
    #[inline]
    pub fn unit() -> Self {
        Aabb::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    /// The *empty* box: an identity element for [`Aabb::union`]. Contains
    /// nothing and intersects nothing.
    #[inline]
    pub fn empty() -> Self {
        Aabb {
            min: Point::new(f64::INFINITY, f64::INFINITY),
            max: Point::new(f64::NEG_INFINITY, f64::NEG_INFINITY),
        }
    }

    /// Whether this is the empty box (or otherwise inverted).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.min.x > self.max.x || self.min.y > self.max.y
    }

    /// A degenerate box covering a single point.
    #[inline]
    pub fn of_point(p: Point) -> Self {
        Aabb { min: p, max: p }
    }

    /// The tight box around a set of points; `None` when the set is empty.
    pub fn of_points<I: IntoIterator<Item = Point>>(points: I) -> Option<Self> {
        let mut it = points.into_iter();
        let first = it.next()?;
        let mut bb = Aabb::of_point(first);
        for p in it {
            bb.expand_to(p);
        }
        Some(bb)
    }

    /// Width of the box.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the box.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the box (zero for degenerate boxes).
    #[inline]
    pub fn area(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() * self.height()
        }
    }

    /// Half the perimeter — the R*-tree "margin" measure.
    #[inline]
    pub fn margin(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.width() + self.height()
        }
    }

    /// The center point.
    #[inline]
    pub fn center(&self) -> Point {
        self.min.midpoint(self.max)
    }

    /// Grows the box in place to cover `p`.
    #[inline]
    pub fn expand_to(&mut self, p: Point) {
        self.min.x = self.min.x.min(p.x);
        self.min.y = self.min.y.min(p.y);
        self.max.x = self.max.x.max(p.x);
        self.max.y = self.max.y.max(p.y);
    }

    /// The smallest box covering both operands.
    #[inline]
    pub fn union(&self, other: &Aabb) -> Aabb {
        Aabb {
            min: Point::new(self.min.x.min(other.min.x), self.min.y.min(other.min.y)),
            max: Point::new(self.max.x.max(other.max.x), self.max.y.max(other.max.y)),
        }
    }

    /// The overlap region, or `None` when the boxes are disjoint.
    #[inline]
    pub fn intersection(&self, other: &Aabb) -> Option<Aabb> {
        let min = Point::new(self.min.x.max(other.min.x), self.min.y.max(other.min.y));
        let max = Point::new(self.max.x.min(other.max.x), self.max.y.min(other.max.y));
        if min.x <= max.x && min.y <= max.y {
            Some(Aabb { min, max })
        } else {
            None
        }
    }

    /// Whether the two boxes share at least one point.
    #[inline]
    pub fn intersects(&self, other: &Aabb) -> bool {
        self.min.x <= other.max.x
            && other.min.x <= self.max.x
            && self.min.y <= other.max.y
            && other.min.y <= self.max.y
    }

    /// Whether `p` lies inside or on the boundary.
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Whether `other` lies entirely inside (or equals) this box.
    #[inline]
    pub fn contains_box(&self, other: &Aabb) -> bool {
        !other.is_empty()
            && self.min.x <= other.min.x
            && self.min.y <= other.min.y
            && self.max.x >= other.max.x
            && self.max.y >= other.max.y
    }

    /// Minimum squared distance from `p` to any point of the box
    /// (zero when `p` is inside). This is the `MINDIST` metric that drives
    /// best-first kNN search over an R-tree.
    #[inline]
    pub fn min_dist_sq(&self, p: Point) -> f64 {
        let dx = (self.min.x - p.x).max(0.0).max(p.x - self.max.x);
        let dy = (self.min.y - p.y).max(0.0).max(p.y - self.max.y);
        dx * dx + dy * dy
    }

    /// Maximum squared distance from `p` to any point of the box
    /// (attained at one of the four corners).
    #[inline]
    pub fn max_dist_sq(&self, p: Point) -> f64 {
        let dx = (p.x - self.min.x).abs().max((p.x - self.max.x).abs());
        let dy = (p.y - self.min.y).abs().max((p.y - self.max.y).abs());
        dx * dx + dy * dy
    }

    /// The four corners in counter-clockwise order starting at `min`.
    #[inline]
    pub fn corners(&self) -> [Point; 4] {
        [
            self.min,
            Point::new(self.max.x, self.min.y),
            self.max,
            Point::new(self.min.x, self.max.y),
        ]
    }

    /// Returns the box grown by `pad` on every side.
    #[inline]
    pub fn inflated(&self, pad: f64) -> Aabb {
        Aabb {
            min: Point::new(self.min.x - pad, self.min.y - pad),
            max: Point::new(self.max.x + pad, self.max.y + pad),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_normalizes_corners() {
        let b = Aabb::new(Point::new(2.0, -1.0), Point::new(-1.0, 3.0));
        assert_eq!(b.min, Point::new(-1.0, -1.0));
        assert_eq!(b.max, Point::new(2.0, 3.0));
        assert_eq!(b.width(), 3.0);
        assert_eq!(b.height(), 4.0);
        assert_eq!(b.area(), 12.0);
        assert_eq!(b.margin(), 7.0);
    }

    #[test]
    fn empty_box_identity() {
        let e = Aabb::empty();
        assert!(e.is_empty());
        assert_eq!(e.area(), 0.0);
        let b = Aabb::unit();
        assert_eq!(e.union(&b), b);
        assert!(!e.intersects(&b));
        assert!(!e.contains(Point::new(0.5, 0.5)));
    }

    #[test]
    fn of_points_tight() {
        let pts = [
            Point::new(0.0, 5.0),
            Point::new(-2.0, 1.0),
            Point::new(3.0, 2.0),
        ];
        let b = Aabb::of_points(pts).unwrap();
        assert_eq!(b.min, Point::new(-2.0, 1.0));
        assert_eq!(b.max, Point::new(3.0, 5.0));
        assert!(Aabb::of_points([]).is_none());
    }

    #[test]
    fn union_and_intersection() {
        let a = Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0));
        let b = Aabb::new(Point::new(1.0, 1.0), Point::new(3.0, 3.0));
        assert_eq!(
            a.union(&b),
            Aabb::new(Point::new(0.0, 0.0), Point::new(3.0, 3.0))
        );
        assert_eq!(
            a.intersection(&b).unwrap(),
            Aabb::new(Point::new(1.0, 1.0), Point::new(2.0, 2.0))
        );
        let c = Aabb::new(Point::new(5.0, 5.0), Point::new(6.0, 6.0));
        assert!(a.intersection(&c).is_none());
        assert!(!a.intersects(&c));
        // Touching edges count as intersecting (closed boxes).
        let d = Aabb::new(Point::new(2.0, 0.0), Point::new(3.0, 2.0));
        assert!(a.intersects(&d));
    }

    #[test]
    fn containment() {
        let a = Aabb::unit();
        assert!(a.contains(Point::new(0.0, 0.0)));
        assert!(a.contains(Point::new(1.0, 1.0)));
        assert!(!a.contains(Point::new(1.0000001, 0.5)));
        let inner = Aabb::new(Point::new(0.25, 0.25), Point::new(0.75, 0.75));
        assert!(a.contains_box(&inner));
        assert!(!inner.contains_box(&a));
        assert!(a.contains_box(&a));
    }

    #[test]
    fn min_max_dist() {
        let b = Aabb::new(Point::new(1.0, 1.0), Point::new(3.0, 2.0));
        // Point inside.
        assert_eq!(b.min_dist_sq(Point::new(2.0, 1.5)), 0.0);
        // Point left of the box.
        assert_eq!(b.min_dist_sq(Point::new(0.0, 1.5)), 1.0);
        // Point diagonal from the corner.
        assert_eq!(b.min_dist_sq(Point::new(0.0, 0.0)), 2.0);
        // Max dist from origin is the far corner (3,2).
        assert_eq!(b.max_dist_sq(Point::new(0.0, 0.0)), 13.0);
    }

    #[test]
    fn corners_ccw() {
        let b = Aabb::unit();
        let c = b.corners();
        // Shoelace area of the corner loop must be positive (CCW).
        let mut area2 = 0.0;
        for i in 0..4 {
            let p = c[i];
            let q = c[(i + 1) % 4];
            area2 += p.x * q.y - q.x * p.y;
        }
        assert!(area2 > 0.0);
    }

    #[test]
    fn inflate() {
        let b = Aabb::unit().inflated(1.0);
        assert_eq!(b.min, Point::new(-1.0, -1.0));
        assert_eq!(b.max, Point::new(2.0, 2.0));
    }
}

//! Generation-stamped scratch primitives for allocation-free hot paths.
//!
//! The INS protocol is a per-tick loop: at fleet scale, every transient
//! the tick path allocates (a visited bitmap here, a distance array
//! there) turns into millions of `malloc`/`free` pairs per second and —
//! worse — into allocator lock contention across worker threads. The
//! types in this module let a query reuse one persistent scratch
//! allocation across ticks while still getting "freshly cleared"
//! semantics every time:
//!
//! * [`GenMarks`] — a visited set over `0..n` with O(1) logical clear:
//!   each slot holds the generation number at which it was last marked,
//!   so "clear everything" is a single counter bump, not an O(n) wipe.
//! * [`DistSlots`] — the same trick for `f64` distance arrays: a stale
//!   slot reads back as `+∞`, exactly like a freshly `vec![INFINITY; n]`.
//! * [`DistEntry`] — the one shared ordered `(distance, id)` heap key
//!   (total order via [`f64::total_cmp`], ties by id) that every
//!   best-first expansion in the workspace uses. Previously the VoR-tree
//!   kNN, Dijkstra, INE and the restricted subnetwork search each hand-
//!   rolled their own copy of this type; keeping one canonical
//!   definition keeps their tie-break semantics provably identical.
//!
//! This crate hosts them because it is the lowest common dependency of
//! `insq-index` (Euclidean kNN) and `insq-roadnet` (network expansion) —
//! the same reason the distance kernels live here.

use std::cmp::Ordering;

/// An ordered `(distance, id)` pair for best-first search heaps.
///
/// The ordering is **total**: distances compare via [`f64::total_cmp`]
/// and exact ties break by `id` (ascending). Wrap it in
/// [`std::cmp::Reverse`] for a min-heap. This single definition replaces
/// the per-crate `HeapSite` / `HeapEntry` / `FloatOrd` duplicates so all
/// expansions share one tie-break rule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DistEntry<I> {
    /// The priority (a distance; any `f64`, including non-finite).
    pub dist: f64,
    /// The payload breaking exact-distance ties (ascending).
    pub id: I,
}

impl<I: PartialEq> Eq for DistEntry<I> {}

impl<I: Ord + PartialEq> PartialOrd for DistEntry<I> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<I: Ord + PartialEq> Ord for DistEntry<I> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.dist
            .total_cmp(&other.dist)
            .then_with(|| self.id.cmp(&other.id))
    }
}

/// A reusable visited set over a dense `0..n` id range with O(1) clear.
///
/// Call [`GenMarks::begin`] once per query to logically clear the set,
/// then [`GenMarks::mark`] / [`GenMarks::is_marked`] slots. The backing
/// array is allocated once (per size change) and reused forever; a
/// generation counter distinguishes "marked this query" from leftovers
/// of earlier queries, so reuse is observationally identical to a fresh
/// `vec![false; n]` per call.
#[derive(Debug, Clone, Default)]
pub struct GenMarks {
    stamp: Vec<u32>,
    gen: u32,
}

impl GenMarks {
    /// Creates an empty mark set (no backing storage until `begin`).
    pub fn new() -> GenMarks {
        GenMarks::default()
    }

    /// Starts a new query over ids `0..n`, logically clearing all marks.
    ///
    /// O(1) except when `n` changes (reallocate) or the `u32` generation
    /// counter wraps (full O(n) re-zero, once every ~4 billion queries).
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() != n {
            self.stamp.clear();
            self.stamp.resize(n, 0);
            self.gen = 0;
        }
        if self.gen == u32::MAX {
            self.stamp.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    /// Marks slot `i`; returns `true` iff it was not yet marked this query.
    pub fn mark(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.gen {
            false
        } else {
            self.stamp[i] = self.gen;
            true
        }
    }

    /// Whether slot `i` has been marked since the last [`GenMarks::begin`].
    pub fn is_marked(&self, i: usize) -> bool {
        self.stamp[i] == self.gen
    }
}

/// A reusable `f64` distance array with O(1) logical reset to `+∞`.
///
/// The generation-stamped twin of `vec![f64::INFINITY; n]`: a slot that
/// was not [`set`](DistSlots::set) since the last
/// [`begin`](DistSlots::begin) reads back as `+∞`.
#[derive(Debug, Clone, Default)]
pub struct DistSlots {
    dist: Vec<f64>,
    stamp: Vec<u32>,
    gen: u32,
}

impl DistSlots {
    /// Creates an empty slot array (no backing storage until `begin`).
    pub fn new() -> DistSlots {
        DistSlots::default()
    }

    /// Starts a new query over slots `0..n`, logically resetting every
    /// slot to `+∞`. Same cost profile as [`GenMarks::begin`].
    pub fn begin(&mut self, n: usize) {
        if self.stamp.len() != n {
            self.stamp.clear();
            self.stamp.resize(n, 0);
            self.dist.clear();
            self.dist.resize(n, f64::INFINITY);
            self.gen = 0;
        }
        if self.gen == u32::MAX {
            self.stamp.fill(0);
            self.gen = 0;
        }
        self.gen += 1;
    }

    /// The value of slot `i` (`+∞` if not set this query).
    pub fn get(&self, i: usize) -> f64 {
        if self.stamp[i] == self.gen {
            self.dist[i]
        } else {
            f64::INFINITY
        }
    }

    /// Sets slot `i` to `d`.
    pub fn set(&mut self, i: usize, d: f64) {
        self.stamp[i] = self.gen;
        self.dist[i] = d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    #[test]
    fn dist_entry_orders_by_distance_then_id() {
        let mut heap = BinaryHeap::new();
        for (dist, id) in [(2.0, 7u32), (1.0, 9), (1.0, 3), (0.5, 1)] {
            heap.push(Reverse(DistEntry { dist, id }));
        }
        let order: Vec<u32> = std::iter::from_fn(|| heap.pop().map(|Reverse(e)| e.id)).collect();
        assert_eq!(order, vec![1, 3, 9, 7]);
    }

    #[test]
    fn marks_reset_logically_between_queries() {
        let mut m = GenMarks::new();
        m.begin(4);
        assert!(m.mark(2));
        assert!(!m.mark(2));
        assert!(m.is_marked(2));
        m.begin(4);
        assert!(!m.is_marked(2));
        assert!(m.mark(2));
        // Resizing also clears.
        m.begin(6);
        assert!(!m.is_marked(2));
        assert!(m.mark(5));
    }

    #[test]
    fn marks_survive_generation_wrap() {
        let mut m = GenMarks::new();
        m.begin(2);
        m.mark(0);
        m.gen = u32::MAX; // fast-forward to the wrap point
        m.begin(2);
        assert!(!m.is_marked(0));
        assert!(m.mark(0));
        assert!(m.is_marked(0));
        assert!(!m.is_marked(1));
    }

    #[test]
    fn dist_slots_read_infinity_when_stale() {
        let mut d = DistSlots::new();
        d.begin(3);
        assert_eq!(d.get(1), f64::INFINITY);
        d.set(1, 4.5);
        assert_eq!(d.get(1), 4.5);
        d.begin(3);
        assert_eq!(d.get(1), f64::INFINITY);
        d.set(1, 2.0);
        assert_eq!(d.get(1), 2.0);
        d.begin(5);
        assert_eq!(d.get(4), f64::INFINITY);
    }
}

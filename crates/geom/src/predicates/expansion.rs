//! Floating-point expansion arithmetic (Shewchuk 1997).
//!
//! An *expansion* is a sum of non-overlapping floating-point numbers
//! `x = x_n + … + x_1`, ordered by increasing magnitude, that represents a
//! real number exactly. The primitives below ([`two_sum`], [`two_product`],
//! expansion sums and scaling) are exact: no rounding error is ever lost,
//! which is what makes the [`super::orient2d`] and [`super::incircle`]
//! fallback paths fully robust.
//!
//! The hot predicates only reach this module when their floating-point
//! filters fail (nearly degenerate inputs), so the `Vec`-based signatures
//! here are a deliberate simplicity/speed trade-off: the common case never
//! allocates.

/// Exact sum: returns `(hi, lo)` with `hi + lo == a + b` exactly and
/// `hi = fl(a + b)`.
#[inline]
pub fn two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let bv = hi - a;
    let av = hi - bv;
    let br = b - bv;
    let ar = a - av;
    (hi, ar + br)
}

/// Exact sum under the precondition `|a| >= |b|` (or `a == 0`).
#[inline]
pub fn fast_two_sum(a: f64, b: f64) -> (f64, f64) {
    let hi = a + b;
    let lo = b - (hi - a);
    (hi, lo)
}

/// Exact difference: returns `(hi, lo)` with `hi + lo == a - b` exactly.
#[inline]
pub fn two_diff(a: f64, b: f64) -> (f64, f64) {
    let hi = a - b;
    let bv = a - hi;
    let av = hi + bv;
    let br = bv - b;
    let ar = a - av;
    (hi, ar + br)
}

/// Exact product: returns `(hi, lo)` with `hi + lo == a * b` exactly.
///
/// Uses a fused multiply-add to extract the rounding error; Rust's
/// `f64::mul_add` is exact on every platform (hardware FMA or a correctly
/// rounded software fallback).
#[inline]
pub fn two_product(a: f64, b: f64) -> (f64, f64) {
    let hi = a * b;
    let lo = a.mul_add(b, -hi);
    (hi, lo)
}

/// Exact square, slightly cheaper than `two_product(a, a)`.
#[inline]
pub fn two_square(a: f64) -> (f64, f64) {
    let hi = a * a;
    let lo = a.mul_add(a, -hi);
    (hi, lo)
}

/// `(a1 + a0) - b` as a three-component expansion `(x2, x1, x0)`,
/// largest component first. Shewchuk's `Two_One_Diff`.
#[inline]
fn two_one_diff(a1: f64, a0: f64, b: f64) -> (f64, f64, f64) {
    let (i, x0) = two_diff(a0, b);
    let (x2, x1) = two_sum(a1, i);
    (x2, x1, x0)
}

/// `(a1 + a0) + b` as a three-component expansion `(x2, x1, x0)`.
#[inline]
fn two_one_sum(a1: f64, a0: f64, b: f64) -> (f64, f64, f64) {
    let (i, x0) = two_sum(a0, b);
    let (x2, x1) = two_sum(a1, i);
    (x2, x1, x0)
}

/// Computes the exact expansion of `(a1 + a0) - (b1 + b0)` where each pair
/// is a two-component expansion. Returns four components, smallest first.
/// Shewchuk's `Two_Two_Diff`.
#[inline]
pub fn two_two_diff(a1: f64, a0: f64, b1: f64, b0: f64) -> [f64; 4] {
    let (j, r0, x0) = two_one_diff(a1, a0, b0);
    let (x3, x2, x1) = two_one_diff(j, r0, b1);
    [x0, x1, x2, x3]
}

/// Computes the exact expansion of `(a1 + a0) + (b1 + b0)`.
/// Shewchuk's `Two_Two_Sum`.
#[inline]
pub fn two_two_sum(a1: f64, a0: f64, b1: f64, b0: f64) -> [f64; 4] {
    let (j, r0, x0) = two_one_sum(a1, a0, b0);
    let (x3, x2, x1) = two_one_sum(j, r0, b1);
    [x0, x1, x2, x3]
}

/// Sums two expansions (components ordered by increasing magnitude) into a
/// new expansion, eliminating zero components. Shewchuk's
/// `fast_expansion_sum_zeroelim`.
pub fn expansion_sum(e: &[f64], f: &[f64], out: &mut Vec<f64>) {
    out.clear();
    if e.is_empty() {
        out.extend_from_slice(f);
        out.retain(|&c| c != 0.0);
        return;
    }
    if f.is_empty() {
        out.extend_from_slice(e);
        out.retain(|&c| c != 0.0);
        return;
    }
    out.reserve(e.len() + f.len());

    let mut ei = 0;
    let mut fi = 0;
    let mut enow = e[0];
    let mut fnow = f[0];
    // Merge by magnitude.
    let mut q;
    if (fnow > enow) == (fnow > -enow) {
        q = enow;
        ei += 1;
        if ei < e.len() {
            enow = e[ei];
        }
    } else {
        q = fnow;
        fi += 1;
        if fi < f.len() {
            fnow = f[fi];
        }
    }
    let mut h;
    if ei < e.len() && fi < f.len() {
        let (qnew, hh) = if (fnow > enow) == (fnow > -enow) {
            let r = fast_two_sum(enow, q);
            ei += 1;
            if ei < e.len() {
                enow = e[ei];
            }
            r
        } else {
            let r = fast_two_sum(fnow, q);
            fi += 1;
            if fi < f.len() {
                fnow = f[fi];
            }
            r
        };
        q = qnew;
        h = hh;
        if h != 0.0 {
            out.push(h);
        }
        while ei < e.len() && fi < f.len() {
            let (qnew, hh) = if (fnow > enow) == (fnow > -enow) {
                let r = two_sum(q, enow);
                ei += 1;
                if ei < e.len() {
                    enow = e[ei];
                }
                r
            } else {
                let r = two_sum(q, fnow);
                fi += 1;
                if fi < f.len() {
                    fnow = f[fi];
                }
                r
            };
            q = qnew;
            h = hh;
            if h != 0.0 {
                out.push(h);
            }
        }
    }
    while ei < e.len() {
        let (qnew, hh) = two_sum(q, enow);
        ei += 1;
        if ei < e.len() {
            enow = e[ei];
        }
        q = qnew;
        h = hh;
        if h != 0.0 {
            out.push(h);
        }
    }
    while fi < f.len() {
        let (qnew, hh) = two_sum(q, fnow);
        fi += 1;
        if fi < f.len() {
            fnow = f[fi];
        }
        q = qnew;
        h = hh;
        if h != 0.0 {
            out.push(h);
        }
    }
    if q != 0.0 || out.is_empty() {
        out.push(q);
    }
}

/// Multiplies an expansion by a single float, producing a new expansion.
/// Shewchuk's `scale_expansion_zeroelim`.
pub fn scale_expansion(e: &[f64], b: f64, out: &mut Vec<f64>) {
    out.clear();
    if e.is_empty() {
        return;
    }
    out.reserve(2 * e.len());
    let (mut q, h) = two_product(e[0], b);
    if h != 0.0 {
        out.push(h);
    }
    for &enow in &e[1..] {
        let (p1, p0) = two_product(enow, b);
        let (sum, h1) = two_sum(q, p0);
        if h1 != 0.0 {
            out.push(h1);
        }
        let (qnew, h2) = fast_two_sum(p1, sum);
        q = qnew;
        if h2 != 0.0 {
            out.push(h2);
        }
    }
    if q != 0.0 || out.is_empty() {
        out.push(q);
    }
}

/// Approximates the value of an expansion by summing its components from
/// smallest to largest. The sign of the result equals the sign of the exact
/// value when the expansion is non-overlapping (which all expansions built
/// by this module are).
#[inline]
pub fn estimate(e: &[f64]) -> f64 {
    e.iter().sum()
}

/// The sign of an expansion: the sign of its largest-magnitude (last
/// non-zero) component.
#[inline]
pub fn sign_of(e: &[f64]) -> std::cmp::Ordering {
    // Components are non-overlapping and sorted by magnitude, so the last
    // non-zero component dominates the sum.
    for &c in e.iter().rev() {
        if c > 0.0 {
            return std::cmp::Ordering::Greater;
        }
        if c < 0.0 {
            return std::cmp::Ordering::Less;
        }
    }
    std::cmp::Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exact_value(e: &[f64]) -> f64 {
        // Summing smallest-first loses nothing for the magnitudes used in
        // these tests.
        e.iter().sum()
    }

    #[test]
    fn two_sum_exact_on_cancellation() {
        let a = 1e16;
        let b = 1.0;
        let (hi, lo) = two_sum(a, b);
        // 1e16 + 1 is not representable; the error must be captured in lo.
        assert_eq!(hi + lo, a + b); // floating identity
        assert_eq!(lo, 1.0 - ((a + b) - a));
        // Reconstruct exactly via integer reasoning: hi == 1e16, lo == 1.0
        // or hi == 1e16+2, lo == -1.0 depending on rounding; either way the
        // pair represents a+b exactly:
        assert_eq!(hi as i128 + lo as i128, a as i128 + b as i128);
    }

    #[test]
    fn two_product_captures_roundoff() {
        let a = 1.0 + f64::EPSILON;
        let b = 1.0 - f64::EPSILON;
        let (hi, lo) = two_product(a, b);
        // a*b = 1 - eps^2 exactly; hi rounds to 1.0, lo must be -eps^2.
        assert_eq!(hi, 1.0);
        assert_eq!(lo, -(f64::EPSILON * f64::EPSILON));
    }

    #[test]
    fn two_square_matches_two_product() {
        for &v in &[3.7320508, 1e-200, -7.25, 1e150] {
            assert_eq!(two_square(v), two_product(v, v));
        }
    }

    #[test]
    fn two_two_diff_exact_small_ints() {
        // (5 + 0.25) - (3 + 0.125) = 2.125, all exactly representable.
        let x = two_two_diff(5.0, 0.25, 3.0, 0.125);
        assert_eq!(exact_value(&x), 2.125);
    }

    #[test]
    fn expansion_sum_merges() {
        let mut out = Vec::new();
        expansion_sum(&[1e-30, 1.0], &[2e-30, 2.0], &mut out);
        let v = exact_value(&out);
        assert_eq!(v, 3.0 + 3e-30 - (3.0 + 3e-30 - 3.0) + (3.0 + 3e-30 - 3.0)); // == fl sum
        assert_eq!(sign_of(&out), std::cmp::Ordering::Greater);
    }

    #[test]
    fn expansion_sum_handles_empty() {
        let mut out = Vec::new();
        expansion_sum(&[], &[1.0], &mut out);
        assert_eq!(out, vec![1.0]);
        expansion_sum(&[2.0], &[], &mut out);
        assert_eq!(out, vec![2.0]);
        expansion_sum(&[], &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn scale_expansion_exact() {
        let mut out = Vec::new();
        scale_expansion(&[0.5, 4.0], 3.0, &mut out);
        assert_eq!(exact_value(&out), 13.5);
        scale_expansion(&[1.0], 0.0, &mut out);
        assert_eq!(sign_of(&out), std::cmp::Ordering::Equal);
    }

    #[test]
    fn sign_of_cancelling_expansion() {
        // An expansion representing exactly zero.
        let mut out = Vec::new();
        expansion_sum(&[1.0], &[-1.0], &mut out);
        assert_eq!(sign_of(&out), std::cmp::Ordering::Equal);
        // Tiny negative tail dominated by positive head: head decides.
        assert_eq!(sign_of(&[-1e-300, 1.0]), std::cmp::Ordering::Greater);
    }
}

//! Robust geometric predicates.
//!
//! Both predicates follow the *adaptive* scheme of Shewchuk: evaluate with
//! ordinary floating point, compare against a forward error bound, and only
//! when the result is too close to zero recompute the determinant *exactly*
//! with [`expansion`] arithmetic. On non-degenerate inputs the fast path
//! always wins; on (nearly) degenerate inputs the answer is still exact,
//! which is what keeps the Delaunay construction in `insq-voronoi` sound.

pub mod expansion;

use crate::point::Point;
use expansion::{expansion_sum, scale_expansion, sign_of, two_product, two_two_diff};
use std::cmp::Ordering;

/// Orientation of an ordered point triple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    /// The triple makes a left turn (counter-clockwise).
    CounterClockwise,
    /// The triple makes a right turn (clockwise).
    Clockwise,
    /// The three points are collinear.
    Collinear,
}

impl Orientation {
    fn from_sign(s: Ordering) -> Self {
        match s {
            Ordering::Greater => Orientation::CounterClockwise,
            Ordering::Less => Orientation::Clockwise,
            Ordering::Equal => Orientation::Collinear,
        }
    }
}

// Error-bound constants from Shewchuk's predicates.c, for IEEE-754 binary64.
const EPSILON: f64 = f64::EPSILON / 2.0; // 2^-53
const CCW_ERRBOUND_A: f64 = (3.0 + 16.0 * EPSILON) * EPSILON;
const ICC_ERRBOUND_A: f64 = (10.0 + 96.0 * EPSILON) * EPSILON;

/// Returns the orientation of the triple `(a, b, c)`.
///
/// Exactly the sign of the determinant
/// `| ax - cx  ay - cy |`
/// `| bx - cx  by - cy |`,
/// computed robustly.
///
/// ```
/// use insq_geom::{orient2d, Orientation, Point};
/// let o = orient2d(Point::new(0.0, 0.0), Point::new(1.0, 0.0), Point::new(0.0, 1.0));
/// assert_eq!(o, Orientation::CounterClockwise);
/// ```
#[inline]
pub fn orient2d(a: Point, b: Point, c: Point) -> Orientation {
    let detleft = (a.x - c.x) * (b.y - c.y);
    let detright = (a.y - c.y) * (b.x - c.x);
    let det = detleft - detright;

    let detsum = if detleft > 0.0 {
        if detright <= 0.0 {
            return Orientation::from_sign(sign_f64(det));
        }
        detleft + detright
    } else if detleft < 0.0 {
        if detright >= 0.0 {
            return Orientation::from_sign(sign_f64(det));
        }
        -detleft - detright
    } else {
        return Orientation::from_sign(sign_f64(det));
    };

    let errbound = CCW_ERRBOUND_A * detsum;
    if det >= errbound || -det >= errbound {
        return Orientation::from_sign(sign_f64(det));
    }
    orient2d_exact(a, b, c)
}

/// Fully exact orientation test via expansion arithmetic.
///
/// Computes `ax·by − ax·cy − ay·bx + ay·cx + bx·cy − by·cx` without any
/// rounding. Used as the fallback of [`orient2d`]; exposed for testing.
pub fn orient2d_exact(a: Point, b: Point, c: Point) -> Orientation {
    let (axby1, axby0) = two_product(a.x, b.y);
    let (axcy1, axcy0) = two_product(a.x, c.y);
    let (aybx1, aybx0) = two_product(a.y, b.x);
    let (aycx1, aycx0) = two_product(a.y, c.x);
    let (bxcy1, bxcy0) = two_product(b.x, c.y);
    let (bycx1, bycx0) = two_product(b.y, c.x);

    // (ax·by − ay·bx) + (bx·cy − by·cx) + (ay·cx − ax·cy)
    let ab = two_two_diff(axby1, axby0, aybx1, aybx0);
    let bc = two_two_diff(bxcy1, bxcy0, bycx1, bycx0);
    let ca = two_two_diff(aycx1, aycx0, axcy1, axcy0);

    let mut t = Vec::with_capacity(8);
    expansion_sum(&ab, &bc, &mut t);
    let mut det = Vec::with_capacity(12);
    expansion_sum(&t, &ca, &mut det);
    Orientation::from_sign(sign_of(&det))
}

/// Result of the in-circle test.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InCircle {
    /// `d` lies strictly inside the circumcircle of `(a, b, c)`.
    Inside,
    /// `d` lies strictly outside the circumcircle.
    Outside,
    /// `d` lies exactly on the circumcircle.
    On,
}

/// Tests whether point `d` lies inside the circumcircle of the
/// counter-clockwise triangle `(a, b, c)`.
///
/// The caller must ensure `(a, b, c)` is counter-clockwise, otherwise the
/// `Inside`/`Outside` answers are swapped (this mirrors the classical
/// predicate semantics).
#[inline]
pub fn incircle(a: Point, b: Point, c: Point, d: Point) -> InCircle {
    let adx = a.x - d.x;
    let bdx = b.x - d.x;
    let cdx = c.x - d.x;
    let ady = a.y - d.y;
    let bdy = b.y - d.y;
    let cdy = c.y - d.y;

    let bdxcdy = bdx * cdy;
    let cdxbdy = cdx * bdy;
    let alift = adx * adx + ady * ady;

    let cdxady = cdx * ady;
    let adxcdy = adx * cdy;
    let blift = bdx * bdx + bdy * bdy;

    let adxbdy = adx * bdy;
    let bdxady = bdx * ady;
    let clift = cdx * cdx + cdy * cdy;

    let det = alift * (bdxcdy - cdxbdy) + blift * (cdxady - adxcdy) + clift * (adxbdy - bdxady);

    let permanent = (bdxcdy.abs() + cdxbdy.abs()) * alift
        + (cdxady.abs() + adxcdy.abs()) * blift
        + (adxbdy.abs() + bdxady.abs()) * clift;
    let errbound = ICC_ERRBOUND_A * permanent;
    if det > errbound || -det > errbound {
        return incircle_from_sign(sign_f64(det));
    }
    incircle_exact(a, b, c, d)
}

fn incircle_from_sign(s: Ordering) -> InCircle {
    match s {
        Ordering::Greater => InCircle::Inside,
        Ordering::Less => InCircle::Outside,
        Ordering::Equal => InCircle::On,
    }
}

/// Fully exact in-circle test via expansion arithmetic on the original
/// coordinates (no differences are formed, so nothing is rounded).
///
/// Expands the 4×4 determinant by its lift column:
/// `det = alift·bcd − blift·cda + clift·dab − dlift·abc`,
/// where `uvw = uv + vw + wu` and `uv = ux·vy − vx·uy`.
pub fn incircle_exact(a: Point, b: Point, c: Point, d: Point) -> InCircle {
    // Pairwise 2x2 minors as 4-component expansions.
    let pair = |p: Point, q: Point| -> [f64; 4] {
        let (pq1, pq0) = two_product(p.x, q.y);
        let (qp1, qp0) = two_product(q.x, p.y);
        two_two_diff(pq1, pq0, qp1, qp0)
    };
    let ab = pair(a, b);
    let bc = pair(b, c);
    let cd = pair(c, d);
    let da = pair(d, a);
    let ac = pair(a, c);
    let bd = pair(b, d);

    let neg = |e: &[f64; 4]| -> [f64; 4] { [-e[0], -e[1], -e[2], -e[3]] };

    let mut tmp = Vec::with_capacity(8);
    let mut minor = Vec::with_capacity(12);

    // Scratch buffers for the lift multiplications.
    let mut s1 = Vec::new();
    let mut s2 = Vec::new();
    let mut s3 = Vec::new();
    let mut contrib = Vec::new();

    // lift(p) * minor, added into acc with the given sign.
    let mut acc: Vec<f64> = Vec::new();
    let mut acc_next: Vec<f64> = Vec::new();
    let add_term = |p: Point,
                    minor: &[f64],
                    negate: bool,
                    acc: &mut Vec<f64>,
                    acc_next: &mut Vec<f64>,
                    s1: &mut Vec<f64>,
                    s2: &mut Vec<f64>,
                    s3: &mut Vec<f64>,
                    contrib: &mut Vec<f64>| {
        // (px^2 + py^2) * minor = px*(px*minor) + py*(py*minor)
        scale_expansion(minor, p.x, s1);
        scale_expansion(s1, p.x, s2);
        scale_expansion(minor, p.y, s1);
        scale_expansion(s1, p.y, s3);
        expansion_sum(s2, s3, contrib);
        if negate {
            for v in contrib.iter_mut() {
                *v = -*v;
            }
        }
        expansion_sum(acc, contrib, acc_next);
        std::mem::swap(acc, acc_next);
    };

    // bcd = bc + cd - bd
    expansion_sum(&bc, &cd, &mut tmp);
    expansion_sum(&tmp, &neg(&bd), &mut minor);
    add_term(
        a,
        &minor,
        false,
        &mut acc,
        &mut acc_next,
        &mut s1,
        &mut s2,
        &mut s3,
        &mut contrib,
    );

    // cda = cd + da + ac
    expansion_sum(&cd, &da, &mut tmp);
    expansion_sum(&tmp, &ac, &mut minor);
    add_term(
        b,
        &minor,
        true,
        &mut acc,
        &mut acc_next,
        &mut s1,
        &mut s2,
        &mut s3,
        &mut contrib,
    );

    // dab = da + ab + bd
    expansion_sum(&da, &ab, &mut tmp);
    expansion_sum(&tmp, &bd, &mut minor);
    add_term(
        c,
        &minor,
        false,
        &mut acc,
        &mut acc_next,
        &mut s1,
        &mut s2,
        &mut s3,
        &mut contrib,
    );

    // abc = ab + bc - ac
    expansion_sum(&ab, &bc, &mut tmp);
    expansion_sum(&tmp, &neg(&ac), &mut minor);
    add_term(
        d,
        &minor,
        true,
        &mut acc,
        &mut acc_next,
        &mut s1,
        &mut s2,
        &mut s3,
        &mut contrib,
    );

    incircle_from_sign(sign_of(&acc))
}

/// Robust sign of the signed area of triangle `(a, b, c)` times two — i.e.
/// the raw determinant value when it is reliably non-zero, or an exact sign
/// with magnitude from the float estimate otherwise. Useful where callers
/// want both a sign and an approximate magnitude.
pub fn orient2d_value(a: Point, b: Point, c: Point) -> f64 {
    let det = (a.x - c.x) * (b.y - c.y) - (a.y - c.y) * (b.x - c.x);
    match orient2d(a, b, c) {
        Orientation::Collinear => 0.0,
        Orientation::CounterClockwise => {
            if det > 0.0 {
                det
            } else {
                f64::MIN_POSITIVE
            }
        }
        Orientation::Clockwise => {
            if det < 0.0 {
                det
            } else {
                -f64::MIN_POSITIVE
            }
        }
    }
}

#[inline]
fn sign_f64(v: f64) -> Ordering {
    if v > 0.0 {
        Ordering::Greater
    } else if v < 0.0 {
        Ordering::Less
    } else {
        Ordering::Equal
    }
}

/// Convenience: exact squared circumradius comparison context is provided by
/// `insq-voronoi`; here we only re-export the predicate result type.
pub use InCircle as InCircleResult;

#[cfg(test)]
mod tests {
    use super::*;

    fn p(x: f64, y: f64) -> Point {
        Point::new(x, y)
    }

    #[test]
    fn orient_basic() {
        assert_eq!(
            orient2d(p(0.0, 0.0), p(1.0, 0.0), p(0.0, 1.0)),
            Orientation::CounterClockwise
        );
        assert_eq!(
            orient2d(p(0.0, 0.0), p(0.0, 1.0), p(1.0, 0.0)),
            Orientation::Clockwise
        );
        assert_eq!(
            orient2d(p(0.0, 0.0), p(1.0, 1.0), p(2.0, 2.0)),
            Orientation::Collinear
        );
    }

    #[test]
    fn orient_nearly_collinear_is_exact() {
        // Classic robustness stress: points on a line y = x with a tiny
        // perturbation representable only in the last bits.
        let a = p(0.5, 0.5);
        let b = p(12.0, 12.0);
        let c = p(24.0, 24.0);
        assert_eq!(orient2d(a, b, c), Orientation::Collinear);
        let c2 = p(24.0, 24.000000000000004); // one ulp-ish above the line
        assert_eq!(orient2d(a, b, c2), Orientation::CounterClockwise);
        let c3 = p(24.000000000000004, 24.0);
        assert_eq!(orient2d(a, b, c3), Orientation::Clockwise);
    }

    #[test]
    fn incircle_basic() {
        // Unit circle through (1,0), (0,1), (-1,0); center origin.
        let a = p(1.0, 0.0);
        let b = p(0.0, 1.0);
        let c = p(-1.0, 0.0);
        assert_eq!(incircle(a, b, c, p(0.0, 0.0)), InCircle::Inside);
        assert_eq!(incircle(a, b, c, p(2.0, 0.0)), InCircle::Outside);
        assert_eq!(incircle(a, b, c, p(0.0, -1.0)), InCircle::On);
    }

    #[test]
    fn incircle_cocircular_is_exact() {
        // Four points of an axis-aligned square are exactly cocircular.
        let a = p(1.0, 1.0);
        let b = p(-1.0, 1.0);
        let c = p(-1.0, -1.0);
        assert_eq!(incircle(a, b, c, p(1.0, -1.0)), InCircle::On);
    }

    #[test]
    fn exact_matches_fast_on_clear_cases() {
        let a = p(0.0, 0.0);
        let b = p(10.0, 0.0);
        let c = p(5.0, 8.0);
        assert_eq!(incircle_exact(a, b, c, p(5.0, 1.0)), InCircle::Inside);
        assert_eq!(incircle_exact(a, b, c, p(100.0, 100.0)), InCircle::Outside);
        assert_eq!(orient2d_exact(a, b, c), Orientation::CounterClockwise);
    }

    #[test]
    fn orient2d_value_sign_agrees() {
        let a = p(0.0, 0.0);
        let b = p(1.0, 0.0);
        assert!(orient2d_value(a, b, p(0.5, 1.0)) > 0.0);
        assert!(orient2d_value(a, b, p(0.5, -1.0)) < 0.0);
        assert_eq!(orient2d_value(a, b, p(2.0, 0.0)), 0.0);
    }

    // Ground-truth property tests against exact i128 arithmetic on integer
    // coordinates live in `tests/predicates_exact.rs` of this crate.
}

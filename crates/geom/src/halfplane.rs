//! Closed half-planes.
//!
//! A half-plane is stored as the inequality `n · x ≤ c`. The key
//! constructor for this system is [`HalfPlane::closer_to`]: the set of
//! points at least as close to `p` as to `q`, whose boundary is the
//! perpendicular bisector of `p q`. Order-k Voronoi cells — the safe
//! regions of the INS algorithm — are intersections of such half-planes
//! (see `insq_voronoi::order_k`).

use crate::point::{Point, Vector};

/// The closed half-plane `{ x : n · x ≤ c }`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct HalfPlane {
    /// Outward normal of the boundary line (points away from the kept side).
    pub normal: Vector,
    /// Offset: the boundary line is `normal · x = offset`.
    pub offset: f64,
}

impl HalfPlane {
    /// Creates the half-plane `normal · x ≤ offset`.
    #[inline]
    pub const fn new(normal: Vector, offset: f64) -> Self {
        HalfPlane { normal, offset }
    }

    /// The half-plane of points at least as close to `p` as to `q`
    /// (i.e. `d(x, p) ≤ d(x, q)`), bounded by the perpendicular bisector.
    ///
    /// Expanding `|x-p|² ≤ |x-q|²` gives `2(q - p)·x ≤ |q|² − |p|²`.
    #[inline]
    pub fn closer_to(p: Point, q: Point) -> Self {
        let normal = Vector::new(2.0 * (q.x - p.x), 2.0 * (q.y - p.y));
        let offset = (q.x * q.x + q.y * q.y) - (p.x * p.x + p.y * p.y);
        HalfPlane { normal, offset }
    }

    /// Signed evaluation: negative inside, zero on the boundary, positive
    /// outside. (Not a Euclidean distance unless the normal is unit.)
    #[inline]
    pub fn eval(&self, x: Point) -> f64 {
        self.normal.x * x.x + self.normal.y * x.y - self.offset
    }

    /// Whether `x` lies in the closed half-plane.
    #[inline]
    pub fn contains(&self, x: Point) -> bool {
        self.eval(x) <= 0.0
    }

    /// Signed Euclidean distance from `x` to the boundary line (negative
    /// inside). `None` for a degenerate (zero-normal) half-plane.
    pub fn signed_distance(&self, x: Point) -> Option<f64> {
        let n = self.normal.norm();
        if n == 0.0 {
            None
        } else {
            Some(self.eval(x) / n)
        }
    }

    /// The parameter `t` at which the segment `a + t (b − a)`,
    /// `t ∈ (-∞, ∞)`, crosses the boundary line, or `None` when the segment
    /// is parallel to it.
    #[inline]
    pub fn line_crossing(&self, a: Point, b: Point) -> Option<f64> {
        let da = self.eval(a);
        let db = self.eval(b);
        let denom = da - db;
        if denom == 0.0 {
            None
        } else {
            Some(da / denom)
        }
    }

    /// The complementary half-plane (strictly speaking the closure of the
    /// complement: both contain the boundary).
    #[inline]
    pub fn flipped(&self) -> Self {
        HalfPlane {
            normal: -self.normal,
            offset: -self.offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn closer_to_membership() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(4.0, 0.0);
        let h = HalfPlane::closer_to(p, q);
        assert!(h.contains(Point::new(1.0, 5.0))); // closer to p
        assert!(h.contains(Point::new(2.0, -3.0))); // equidistant: boundary
        assert!(!h.contains(Point::new(3.0, 1.0))); // closer to q
    }

    #[test]
    fn closer_to_agrees_with_distances() {
        let p = Point::new(1.5, -2.0);
        let q = Point::new(-0.5, 3.0);
        let h = HalfPlane::closer_to(p, q);
        for &x in &[
            Point::new(0.0, 0.0),
            Point::new(5.0, 5.0),
            Point::new(-3.0, 1.0),
            Point::new(0.5, 0.5),
        ] {
            assert_eq!(h.contains(x), x.distance_sq(p) <= x.distance_sq(q));
        }
    }

    #[test]
    fn bisector_is_boundary() {
        let p = Point::new(0.0, 0.0);
        let q = Point::new(2.0, 2.0);
        let h = HalfPlane::closer_to(p, q);
        let mid = p.midpoint(q);
        assert!(h.eval(mid).abs() < 1e-12);
        assert!(h.signed_distance(mid).unwrap().abs() < 1e-12);
    }

    #[test]
    fn line_crossing_parameter() {
        // Half-plane x <= 1.
        let h = HalfPlane::new(Vector::new(1.0, 0.0), 1.0);
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 0.0);
        assert_eq!(h.line_crossing(a, b), Some(0.5));
        // Parallel segment.
        let c = Point::new(0.0, 1.0);
        assert_eq!(h.line_crossing(a, c), None);
    }

    #[test]
    fn flipped_partitions_plane() {
        let h = HalfPlane::closer_to(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        let g = h.flipped();
        let inside = Point::new(-1.0, -1.0);
        let outside = Point::new(2.0, 2.0);
        assert!(h.contains(inside) && !g.contains(inside));
        assert!(!h.contains(outside) && g.contains(outside));
    }

    #[test]
    fn signed_distance_is_euclidean() {
        // x <= 0 with non-unit normal.
        let h = HalfPlane::new(Vector::new(2.0, 0.0), 0.0);
        assert_eq!(h.signed_distance(Point::new(3.0, 7.0)), Some(3.0));
        assert_eq!(h.signed_distance(Point::new(-2.0, 1.0)), Some(-2.0));
        let degenerate = HalfPlane::new(Vector::ZERO, 0.0);
        assert_eq!(degenerate.signed_distance(Point::ORIGIN), None);
    }
}

//! Convex hulls (Andrew's monotone chain).
//!
//! Used for data-extent reasoning in the workload generators and — more
//! importantly — as an *independent* implementation cross-validated
//! against the Delaunay triangulation's hull in `insq-voronoi`'s test
//! suite: two algorithms with disjoint logic agreeing on adversarial
//! inputs is strong evidence both are right.

use crate::point::Point;
use crate::predicates::{orient2d, Orientation};

/// The convex hull of `points` in counter-clockwise order, starting from
/// the lexicographically smallest point.
///
/// Collinear boundary points are *excluded* (strict hull). Duplicates are
/// tolerated. Returns fewer than 3 points when the input is degenerate
/// (empty, a single point, or all collinear — in the collinear case the
/// two extreme points).
pub fn convex_hull(points: &[Point]) -> Vec<Point> {
    let mut pts: Vec<Point> = points.to_vec();
    pts.sort_by(|a, b| a.lex_cmp(*b));
    pts.dedup();
    let n = pts.len();
    if n <= 2 {
        return pts;
    }

    // Lower hull.
    let mut hull: Vec<Point> = Vec::with_capacity(2 * n);
    for &p in &pts {
        while hull.len() >= 2
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    // Upper hull.
    let lower_len = hull.len() + 1;
    for &p in pts.iter().rev().skip(1) {
        while hull.len() >= lower_len
            && orient2d(hull[hull.len() - 2], hull[hull.len() - 1], p)
                != Orientation::CounterClockwise
        {
            hull.pop();
        }
        hull.push(p);
    }
    hull.pop(); // the first point is repeated at the end
    if hull.len() < 3 {
        // All collinear: report the two extremes.
        hull.truncate(2);
    }
    hull
}

/// Whether `p` lies inside or on the boundary of the convex hull given as
/// a CCW vertex list (as produced by [`convex_hull`]).
pub fn hull_contains(hull: &[Point], p: Point) -> bool {
    match hull.len() {
        0 => false,
        1 => hull[0] == p,
        2 => {
            orient2d(hull[0], hull[1], p) == Orientation::Collinear
                && crate::segment::Segment::new(hull[0], hull[1])
                    .bounding_box()
                    .contains(p)
        }
        n => (0..n).all(|i| orient2d(hull[i], hull[(i + 1) % n], p) != Orientation::Clockwise),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts(coords: &[(f64, f64)]) -> Vec<Point> {
        coords.iter().map(|&(x, y)| Point::new(x, y)).collect()
    }

    #[test]
    fn square_with_interior_points() {
        let input = pts(&[
            (0.0, 0.0),
            (4.0, 0.0),
            (4.0, 4.0),
            (0.0, 4.0),
            (2.0, 2.0),
            (1.0, 3.0),
        ]);
        let hull = convex_hull(&input);
        assert_eq!(hull.len(), 4);
        assert_eq!(hull[0], Point::new(0.0, 0.0)); // lexicographic start
        for p in &input {
            assert!(hull_contains(&hull, *p));
        }
        assert!(!hull_contains(&hull, Point::new(5.0, 2.0)));
    }

    #[test]
    fn collinear_boundary_points_excluded() {
        let input = pts(&[(0.0, 0.0), (2.0, 0.0), (4.0, 0.0), (4.0, 4.0), (0.0, 4.0)]);
        let hull = convex_hull(&input);
        assert_eq!(hull.len(), 4, "midpoint of the bottom edge excluded");
        assert!(hull_contains(&hull, Point::new(2.0, 0.0)));
    }

    #[test]
    fn degenerate_inputs() {
        assert!(convex_hull(&[]).is_empty());
        assert_eq!(convex_hull(&pts(&[(1.0, 1.0)])).len(), 1);
        assert_eq!(convex_hull(&pts(&[(1.0, 1.0), (1.0, 1.0)])).len(), 1);
        // All collinear: the two extremes.
        let line = convex_hull(&pts(&[(0.0, 0.0), (1.0, 1.0), (2.0, 2.0), (3.0, 3.0)]));
        assert_eq!(line, pts(&[(0.0, 0.0), (3.0, 3.0)]));
        assert!(hull_contains(&line, Point::new(1.5, 1.5)));
        assert!(!hull_contains(&line, Point::new(1.5, 1.6)));
    }

    #[test]
    fn hull_is_ccw_and_convex() {
        let mut state = 0xDEADu64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64) / ((1u64 << 53) as f64)
        };
        let input: Vec<Point> = (0..200)
            .map(|_| Point::new(next() * 10.0, next() * 10.0))
            .collect();
        let hull = convex_hull(&input);
        let n = hull.len();
        assert!(n >= 3);
        for i in 0..n {
            assert_eq!(
                orient2d(hull[i], hull[(i + 1) % n], hull[(i + 2) % n]),
                Orientation::CounterClockwise,
                "strict hull has no collinear triples"
            );
        }
        for p in &input {
            assert!(hull_contains(&hull, *p));
        }
    }
}

//! # insq-geom
//!
//! Two-dimensional geometric primitives and *robust* geometric predicates
//! used throughout the INSQ moving-kNN system.
//!
//! The crate provides:
//!
//! * [`Point`] / [`Vector`] — plain `f64` coordinates with the usual affine
//!   operations,
//! * [`Aabb`] — axis-aligned bounding boxes (also used by the R-tree),
//! * [`Segment`] — line segments with point/segment distance kernels,
//! * [`ConvexPolygon`] — convex polygons with containment tests and
//!   half-plane clipping (the representation of safe regions and Voronoi
//!   cells),
//! * [`HalfPlane`] — closed half-planes, in particular perpendicular-bisector
//!   half-planes which define (order-k) Voronoi cells,
//! * [`Circle`] — circles and circumcircles (the green/red validation circles
//!   of the INSQ demonstration),
//! * [`predicates`] — adaptive-precision `orient2d` / `incircle` following
//!   Shewchuk's scheme: a fast floating-point evaluation guarded by a
//!   forward error bound, falling back to exact expansion arithmetic.
//! * [`Trajectory`] — arc-length parameterised polylines along which query
//!   objects move.
//!
//! Everything is allocation-conscious: the hot kernels (`distance`,
//! `orient2d`, half-plane clipping) never allocate, and polygon clipping
//! reuses caller-provided buffers where it matters.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod aabb;
pub mod circle;
pub mod halfplane;
pub mod hull;
pub mod point;
pub mod polygon;
pub mod predicates;
pub mod scratch;
pub mod segment;
pub mod trajectory;

pub use aabb::Aabb;
pub use circle::Circle;
pub use halfplane::HalfPlane;
pub use hull::{convex_hull, hull_contains};
pub use point::{Point, Vector};
pub use polygon::ConvexPolygon;
pub use predicates::{incircle, orient2d, Orientation};
pub use scratch::{DistEntry, DistSlots, GenMarks};
pub use segment::Segment;
pub use trajectory::Trajectory;

/// Errors produced by geometric constructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// The input contains a non-finite (NaN or infinite) coordinate.
    NonFiniteCoordinate,
    /// Fewer points than required for the construction (e.g. a polygon
    /// needs at least three vertices).
    TooFewPoints {
        /// How many points the construction needs.
        needed: usize,
        /// How many were supplied.
        got: usize,
    },
    /// The input points are all collinear where a 2-D construction was
    /// required (e.g. a circumcircle or a triangulation).
    Degenerate,
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::NonFiniteCoordinate => write!(f, "non-finite coordinate"),
            GeomError::TooFewPoints { needed, got } => {
                write!(f, "too few points: needed {needed}, got {got}")
            }
            GeomError::Degenerate => write!(f, "degenerate (collinear or coincident) input"),
        }
    }
}

impl std::error::Error for GeomError {}

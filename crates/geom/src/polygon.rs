//! Convex polygons and half-plane clipping.
//!
//! Convex polygons represent Voronoi cells and (order-k) safe regions.
//! The only mutation they support is clipping by a [`HalfPlane`] — the
//! operation that builds a Voronoi cell from bisector constraints — which
//! keeps every polygon in the system convex by construction.

use crate::aabb::Aabb;
use crate::halfplane::HalfPlane;
use crate::point::Point;
use crate::predicates::{orient2d, Orientation};
use crate::GeomError;

/// A convex polygon with vertices in counter-clockwise order.
///
/// The empty polygon (no vertices) is a valid value: it is what clipping
/// returns once the region has been cut away entirely.
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ConvexPolygon {
    vertices: Vec<Point>,
}

impl ConvexPolygon {
    /// Builds a convex polygon from CCW-ordered vertices.
    ///
    /// Validates that the sequence is convex and counter-clockwise
    /// (collinear triples are tolerated — they add redundant vertices but
    /// no concavity). Returns [`GeomError::TooFewPoints`] for fewer than 3
    /// vertices and [`GeomError::Degenerate`] for non-convex input.
    pub fn new(vertices: Vec<Point>) -> Result<Self, GeomError> {
        if vertices.len() < 3 {
            return Err(GeomError::TooFewPoints {
                needed: 3,
                got: vertices.len(),
            });
        }
        if vertices.iter().any(|v| !v.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        let n = vertices.len();
        let mut saw_ccw = false;
        for i in 0..n {
            let a = vertices[i];
            let b = vertices[(i + 1) % n];
            let c = vertices[(i + 2) % n];
            match orient2d(a, b, c) {
                Orientation::Clockwise => return Err(GeomError::Degenerate),
                Orientation::CounterClockwise => saw_ccw = true,
                Orientation::Collinear => {}
            }
        }
        if !saw_ccw {
            // All vertices collinear: not a 2-D region.
            return Err(GeomError::Degenerate);
        }
        Ok(ConvexPolygon { vertices })
    }

    /// Builds a polygon without convexity validation. Intended for
    /// construction sites that guarantee convexity (e.g. half-plane
    /// clipping); debug builds still assert it.
    pub fn new_unchecked(vertices: Vec<Point>) -> Self {
        debug_assert!(
            vertices.len() < 3 || ConvexPolygon::new(vertices.clone()).is_ok(),
            "new_unchecked received a non-convex vertex sequence"
        );
        ConvexPolygon { vertices }
    }

    /// The empty polygon.
    pub fn empty() -> Self {
        ConvexPolygon {
            vertices: Vec::new(),
        }
    }

    /// The rectangle of `bb` as a polygon (CCW).
    pub fn from_aabb(bb: &Aabb) -> Self {
        ConvexPolygon {
            vertices: bb.corners().to_vec(),
        }
    }

    /// Vertices in counter-clockwise order.
    #[inline]
    pub fn vertices(&self) -> &[Point] {
        &self.vertices
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// `true` when the polygon has no area (fewer than 3 vertices).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.vertices.len() < 3
    }

    /// Signed area (positive for CCW polygons; this type keeps CCW order,
    /// so the result is non-negative up to rounding).
    pub fn area(&self) -> f64 {
        shoelace(&self.vertices) * 0.5
    }

    /// Perimeter length.
    pub fn perimeter(&self) -> f64 {
        let n = self.vertices.len();
        if n < 2 {
            return 0.0;
        }
        (0..n)
            .map(|i| self.vertices[i].distance(self.vertices[(i + 1) % n]))
            .sum()
    }

    /// The centroid (area-weighted). Falls back to the vertex average for
    /// degenerate polygons.
    pub fn centroid(&self) -> Option<Point> {
        let n = self.vertices.len();
        if n == 0 {
            return None;
        }
        let a2 = shoelace(&self.vertices);
        if a2.abs() < f64::MIN_POSITIVE {
            let (sx, sy) = self
                .vertices
                .iter()
                .fold((0.0, 0.0), |(sx, sy), p| (sx + p.x, sy + p.y));
            return Some(Point::new(sx / n as f64, sy / n as f64));
        }
        let mut cx = 0.0;
        let mut cy = 0.0;
        for i in 0..n {
            let p = self.vertices[i];
            let q = self.vertices[(i + 1) % n];
            let w = p.x * q.y - q.x * p.y;
            cx += (p.x + q.x) * w;
            cy += (p.y + q.y) * w;
        }
        Some(Point::new(cx / (3.0 * a2), cy / (3.0 * a2)))
    }

    /// Whether `p` lies inside or on the boundary.
    ///
    /// O(n) robust edge-side test — for the small cells this system works
    /// with, this beats the O(log n) binary-search variant.
    pub fn contains(&self, p: Point) -> bool {
        if self.is_empty() {
            return false;
        }
        let n = self.vertices.len();
        for i in 0..n {
            let a = self.vertices[i];
            let b = self.vertices[(i + 1) % n];
            if orient2d(a, b, p) == Orientation::Clockwise {
                return false;
            }
        }
        true
    }

    /// Minimum distance from `p` to the polygon boundary. Returns `None`
    /// for the empty polygon. (For interior points this is the distance to
    /// the nearest edge — how far the query can move before exiting, the
    /// quantity displayed by the INSQ demo.)
    pub fn boundary_distance(&self, p: Point) -> Option<f64> {
        let n = self.vertices.len();
        if n == 0 {
            return None;
        }
        if n == 1 {
            return Some(self.vertices[0].distance(p));
        }
        let mut best = f64::INFINITY;
        for i in 0..n {
            let seg = crate::segment::Segment::new(self.vertices[i], self.vertices[(i + 1) % n]);
            best = best.min(seg.distance_sq(p));
        }
        Some(best.sqrt())
    }

    /// Tight bounding box; `None` for the empty polygon.
    pub fn bounding_box(&self) -> Option<Aabb> {
        Aabb::of_points(self.vertices.iter().copied())
    }

    /// Clips the polygon with a half-plane, returning the (convex) result.
    pub fn clip_halfplane(&self, h: &HalfPlane) -> ConvexPolygon {
        let mut out = Vec::new();
        clip_into(&self.vertices, h, &mut out);
        ConvexPolygon { vertices: out }
    }

    /// Clips in place, reusing `scratch` to avoid allocation in hot loops.
    pub fn clip_halfplane_in_place(&mut self, h: &HalfPlane, scratch: &mut Vec<Point>) {
        clip_into(&self.vertices, h, scratch);
        std::mem::swap(&mut self.vertices, scratch);
    }

    /// Intersects with every half-plane in `constraints`, starting from this
    /// polygon. Stops early when the region becomes empty.
    pub fn clip_all<'a, I>(&self, constraints: I) -> ConvexPolygon
    where
        I: IntoIterator<Item = &'a HalfPlane>,
    {
        let mut cur = self.clone();
        let mut scratch = Vec::with_capacity(cur.vertices.len() + 4);
        for h in constraints {
            cur.clip_halfplane_in_place(h, &mut scratch);
            if cur.is_empty() {
                break;
            }
        }
        cur
    }
}

/// Twice the signed area.
fn shoelace(vs: &[Point]) -> f64 {
    let n = vs.len();
    if n < 3 {
        return 0.0;
    }
    let mut s = 0.0;
    for i in 0..n {
        let p = vs[i];
        let q = vs[(i + 1) % n];
        s += p.x * q.y - q.x * p.y;
    }
    s
}

/// Whether two clip vertices coincide up to rounding noise. A vertex that
/// lies exactly on the clip boundary is emitted once as itself and once as
/// the recomputed line crossing; the two can differ in the last bits and
/// would form a degenerate (possibly clockwise) micro-edge that breaks
/// convexity tests, so near-duplicates are merged.
#[inline]
fn nearly_same(a: Point, b: Point) -> bool {
    let scale = 1.0 + a.x.abs().max(a.y.abs()).max(b.x.abs()).max(b.y.abs());
    let eps = 1e-12 * scale;
    a.distance_sq(b) <= eps * eps
}

/// Sutherland–Hodgman single-plane clip of a convex CCW polygon.
fn clip_into(vs: &[Point], h: &HalfPlane, out: &mut Vec<Point>) {
    out.clear();
    let n = vs.len();
    if n == 0 {
        return;
    }
    let push = |out: &mut Vec<Point>, p: Point| {
        if out.last().is_none_or(|&last| !nearly_same(last, p)) {
            out.push(p);
        }
    };
    for i in 0..n {
        let cur = vs[i];
        let next = vs[(i + 1) % n];
        let cur_in = h.contains(cur);
        let next_in = h.contains(next);
        if cur_in {
            push(out, cur);
        }
        if cur_in != next_in {
            if let Some(t) = h.line_crossing(cur, next) {
                // Clamp for safety against rounding just outside [0, 1].
                let t = t.clamp(0.0, 1.0);
                push(out, cur.lerp(next, t));
            }
        }
    }
    // The wrap-around pair can also be a near-duplicate.
    while out.len() > 1 && nearly_same(out[0], *out.last().expect("len > 1")) {
        out.pop();
    }
    if out.len() < 3 {
        out.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Vector;

    fn square() -> ConvexPolygon {
        ConvexPolygon::from_aabb(&Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)))
    }

    #[test]
    fn new_validates_ccw_convex() {
        let good = ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(2.0, 0.0),
            Point::new(1.0, 2.0),
        ]);
        assert!(good.is_ok());

        // Clockwise order rejected.
        let cw = ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 2.0),
            Point::new(2.0, 0.0),
        ]);
        assert_eq!(cw.unwrap_err(), GeomError::Degenerate);

        // Concave rejected.
        let concave = ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(4.0, 0.0),
            Point::new(4.0, 4.0),
            Point::new(2.0, 1.0), // dents inward
        ]);
        assert_eq!(concave.unwrap_err(), GeomError::Degenerate);

        // Too few points.
        assert!(matches!(
            ConvexPolygon::new(vec![Point::ORIGIN, Point::new(1.0, 0.0)]),
            Err(GeomError::TooFewPoints { needed: 3, got: 2 })
        ));

        // All collinear.
        let line = ConvexPolygon::new(vec![
            Point::new(0.0, 0.0),
            Point::new(1.0, 1.0),
            Point::new(2.0, 2.0),
        ]);
        assert_eq!(line.unwrap_err(), GeomError::Degenerate);
    }

    #[test]
    fn area_centroid_perimeter() {
        let sq = square();
        assert_eq!(sq.area(), 4.0);
        assert_eq!(sq.perimeter(), 8.0);
        assert_eq!(sq.centroid(), Some(Point::new(1.0, 1.0)));
        assert!(ConvexPolygon::empty().centroid().is_none());
        assert_eq!(ConvexPolygon::empty().area(), 0.0);
    }

    #[test]
    fn contains_interior_boundary_exterior() {
        let sq = square();
        assert!(sq.contains(Point::new(1.0, 1.0)));
        assert!(sq.contains(Point::new(0.0, 0.0))); // vertex
        assert!(sq.contains(Point::new(2.0, 1.0))); // edge
        assert!(!sq.contains(Point::new(2.0001, 1.0)));
        assert!(!ConvexPolygon::empty().contains(Point::ORIGIN));
    }

    #[test]
    fn clip_keeps_half() {
        let sq = square();
        // Keep x <= 1.
        let h = HalfPlane::new(Vector::new(1.0, 0.0), 1.0);
        let clipped = sq.clip_halfplane(&h);
        assert!((clipped.area() - 2.0).abs() < 1e-12);
        assert!(clipped.contains(Point::new(0.5, 1.0)));
        assert!(!clipped.contains(Point::new(1.5, 1.0)));
    }

    #[test]
    fn clip_away_everything() {
        let sq = square();
        let h = HalfPlane::new(Vector::new(1.0, 0.0), -1.0); // x <= -1
        let clipped = sq.clip_halfplane(&h);
        assert!(clipped.is_empty());
        assert_eq!(clipped.area(), 0.0);
    }

    #[test]
    fn clip_no_effect_when_contained() {
        let sq = square();
        let h = HalfPlane::new(Vector::new(1.0, 0.0), 10.0); // x <= 10
        let clipped = sq.clip_halfplane(&h);
        assert!((clipped.area() - sq.area()).abs() < 1e-12);
    }

    #[test]
    fn clip_all_produces_bisector_cell() {
        // Voronoi cell of the center of a 3x3 grid is the unit square
        // centered there.
        let sites: Vec<Point> = (0..3)
            .flat_map(|i| (0..3).map(move |j| Point::new(i as f64, j as f64)))
            .collect();
        let center = Point::new(1.0, 1.0);
        let bb = Aabb::new(Point::new(-1.0, -1.0), Point::new(3.0, 3.0));
        let constraints: Vec<HalfPlane> = sites
            .iter()
            .filter(|&&s| s != center)
            .map(|&s| HalfPlane::closer_to(center, s))
            .collect();
        let cell = ConvexPolygon::from_aabb(&bb).clip_all(&constraints);
        assert!((cell.area() - 1.0).abs() < 1e-9);
        assert!(cell.contains(center));
        assert!(!cell.contains(Point::new(1.6, 1.0)));
    }

    #[test]
    fn boundary_distance() {
        let sq = square();
        let d = sq.boundary_distance(Point::new(1.0, 1.0)).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
        let d2 = sq.boundary_distance(Point::new(3.0, 1.0)).unwrap();
        assert!((d2 - 1.0).abs() < 1e-12);
        assert!(ConvexPolygon::empty()
            .boundary_distance(Point::ORIGIN)
            .is_none());
    }

    #[test]
    fn bounding_box_roundtrip() {
        let sq = square();
        let bb = sq.bounding_box().unwrap();
        assert_eq!(bb, Aabb::new(Point::new(0.0, 0.0), Point::new(2.0, 2.0)));
    }
}

//! Points and vectors in the Euclidean plane.
//!
//! [`Point`] is an affine position, [`Vector`] a displacement. Keeping the
//! two apart catches a surprising number of sign errors in bisector and
//! clipping code at compile time.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point in the 2-D Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

/// A displacement (free vector) in the 2-D Euclidean plane.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Vector {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Point {
    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from its coordinates.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Returns `true` when both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Squared Euclidean distance to `other`.
    ///
    /// Prefer this over [`Point::distance`] for comparisons: it avoids the
    /// square root and is monotone in the true distance.
    #[inline]
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// The midpoint of the segment `self`–`other`.
    #[inline]
    pub fn midpoint(self, other: Point) -> Point {
        Point::new(0.5 * (self.x + other.x), 0.5 * (self.y + other.y))
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }

    /// The displacement vector from `self` to `other`.
    #[inline]
    pub fn to(self, other: Point) -> Vector {
        Vector::new(other.x - self.x, other.y - self.y)
    }

    /// Interprets the point as a vector from the origin.
    #[inline]
    pub fn as_vector(self) -> Vector {
        Vector::new(self.x, self.y)
    }

    /// Lexicographic comparison (by `x`, then `y`), a total order for finite
    /// points. Used to make constructions deterministic.
    #[inline]
    pub fn lex_cmp(self, other: Point) -> std::cmp::Ordering {
        self.x
            .partial_cmp(&other.x)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| {
                self.y
                    .partial_cmp(&other.y)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
    }
}

impl Vector {
    /// The zero vector.
    pub const ZERO: Vector = Vector { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vector { x, y }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f64 {
        self.norm_sq().sqrt()
    }

    /// Squared Euclidean length.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vector) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// 2-D cross product (the `z` component of the 3-D cross product).
    ///
    /// Positive when `other` lies counter-clockwise of `self`.
    #[inline]
    pub fn cross(self, other: Vector) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Rotates the vector by 90° counter-clockwise.
    #[inline]
    pub fn perp(self) -> Vector {
        Vector::new(-self.y, self.x)
    }

    /// Returns the vector scaled to unit length, or `None` if its length is
    /// zero or not finite.
    #[inline]
    pub fn normalized(self) -> Option<Vector> {
        let n = self.norm();
        if n > 0.0 && n.is_finite() {
            Some(self / n)
        } else {
            None
        }
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign<Vector> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Sub<Point> for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Mul<Vector> for f64 {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: Vector) -> Vector {
        rhs * self
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn div(self, rhs: f64) -> Vector {
        Vector::new(self.x / rhs, self.y / rhs)
    }
}

impl From<(f64, f64)> for Point {
    #[inline]
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

impl From<Point> for (f64, f64) {
    #[inline]
    fn from(p: Point) -> Self {
        (p.x, p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(b.distance(a), 5.0);
        assert_eq!(a.distance(a), 0.0);
    }

    #[test]
    fn distance_sq_matches_distance() {
        let a = Point::new(-3.0, 0.5);
        let b = Point::new(2.0, -1.5);
        assert!((a.distance_sq(b).sqrt() - a.distance(b)).abs() < 1e-12);
    }

    #[test]
    fn midpoint_is_equidistant() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        let m = a.midpoint(b);
        assert_eq!(m, Point::new(1.0, 2.0));
        assert!((m.distance(a) - m.distance(b)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_middle() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(3.0, 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), a.midpoint(b));
    }

    #[test]
    fn vector_algebra() {
        let v = Vector::new(3.0, 4.0);
        assert_eq!(v.norm(), 5.0);
        assert_eq!(v.dot(v), 25.0);
        assert_eq!(v.cross(v), 0.0);
        assert_eq!(v.perp(), Vector::new(-4.0, 3.0));
        assert_eq!(v.perp().dot(v), 0.0);
        let u = v.normalized().unwrap();
        assert!((u.norm() - 1.0).abs() < 1e-15);
        assert!(Vector::ZERO.normalized().is_none());
    }

    #[test]
    fn cross_sign_is_ccw() {
        let e1 = Vector::new(1.0, 0.0);
        let e2 = Vector::new(0.0, 1.0);
        assert!(e1.cross(e2) > 0.0);
        assert!(e2.cross(e1) < 0.0);
    }

    #[test]
    fn point_vector_affine_ops() {
        let p = Point::new(1.0, 1.0);
        let v = Vector::new(2.0, -1.0);
        assert_eq!(p + v, Point::new(3.0, 0.0));
        assert_eq!((p + v) - v, p);
        assert_eq!((p + v) - p, v);
        let mut q = p;
        q += v;
        q -= v;
        assert_eq!(q, p);
    }

    #[test]
    fn lex_cmp_total_order() {
        let a = Point::new(0.0, 1.0);
        let b = Point::new(0.0, 2.0);
        let c = Point::new(1.0, 0.0);
        assert_eq!(a.lex_cmp(b), std::cmp::Ordering::Less);
        assert_eq!(b.lex_cmp(c), std::cmp::Ordering::Less);
        assert_eq!(a.lex_cmp(a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn conversions() {
        let p: Point = (2.5, -1.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (2.5, -1.0));
    }
}

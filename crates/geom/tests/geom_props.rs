//! Property-based tests for the geometric primitives: clipping, polygon
//! invariants, segment kernels and trajectories.

use insq_geom::{Aabb, ConvexPolygon, HalfPlane, Point, Segment, Trajectory, Vector};
use proptest::prelude::*;

fn pt() -> impl Strategy<Value = Point> {
    (-100.0f64..100.0, -100.0f64..100.0).prop_map(|(x, y)| Point::new(x, y))
}

fn small_box() -> impl Strategy<Value = Aabb> {
    (pt(), 1.0f64..50.0, 1.0f64..50.0)
        .prop_map(|(c, w, h)| Aabb::new(c, Point::new(c.x + w, c.y + h)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    // ------------------------------------------------------------- AABB

    #[test]
    fn aabb_union_contains_both(a in small_box(), b in small_box()) {
        let u = a.union(&b);
        prop_assert!(u.contains_box(&a));
        prop_assert!(u.contains_box(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    #[test]
    fn aabb_intersection_is_symmetric_and_contained(a in small_box(), b in small_box()) {
        let i1 = a.intersection(&b);
        let i2 = b.intersection(&a);
        prop_assert_eq!(i1, i2);
        if let Some(i) = i1 {
            prop_assert!(a.contains_box(&i));
            prop_assert!(b.contains_box(&i));
            prop_assert!(a.intersects(&b));
        } else {
            prop_assert!(!a.intersects(&b));
        }
    }

    #[test]
    fn aabb_min_dist_consistent_with_contains(bb in small_box(), p in pt()) {
        let d = bb.min_dist_sq(p);
        prop_assert_eq!(d == 0.0, bb.contains(p));
        prop_assert!(d <= bb.max_dist_sq(p));
        // min_dist is a valid lower bound to every corner distance.
        for c in bb.corners() {
            prop_assert!(d <= p.distance_sq(c) + 1e-9);
        }
    }

    // ---------------------------------------------------------- segments

    #[test]
    fn segment_distance_symmetry_and_bounds(a in pt(), b in pt(), p in pt()) {
        let s = Segment::new(a, b);
        let d = s.distance(p);
        // Bounded by the endpoint distances.
        prop_assert!(d <= p.distance(a) + 1e-9);
        prop_assert!(d <= p.distance(b) + 1e-9);
        // The closest point is on the segment (within its bbox).
        let c = s.closest_point(p);
        prop_assert!(s.bounding_box().inflated(1e-9).contains(c));
        // Reversal invariance.
        prop_assert!((s.reversed().distance(p) - d).abs() < 1e-9);
    }

    #[test]
    fn segment_intersection_symmetry(a in pt(), b in pt(), c in pt(), d in pt()) {
        let s1 = Segment::new(a, b);
        let s2 = Segment::new(c, d);
        prop_assert_eq!(s1.intersects(&s2), s2.intersects(&s1));
        if let Some(x) = s1.intersection(&s2) {
            // The reported crossing lies (nearly) on both segments.
            prop_assert!(s1.distance(x) < 1e-6);
            prop_assert!(s2.distance(x) < 1e-6);
            prop_assert!(s1.intersects(&s2));
        }
    }

    // ---------------------------------------------------- half-plane clip

    #[test]
    fn clip_is_monotone_and_sound(bb in small_box(), p in pt(), q in pt()) {
        prop_assume!(p != q);
        let poly = ConvexPolygon::from_aabb(&bb);
        let h = HalfPlane::closer_to(p, q);
        let clipped = poly.clip_halfplane(&h);
        // Clipping never grows the region.
        prop_assert!(clipped.area() <= poly.area() + 1e-9);
        // Every vertex of the result is inside both constraints (up to eps).
        for v in clipped.vertices() {
            prop_assert!(h.eval(*v) <= 1e-6, "vertex outside half-plane");
            prop_assert!(bb.inflated(1e-9).contains(*v));
        }
        // Complementary clips partition the area.
        let other = poly.clip_halfplane(&h.flipped());
        prop_assert!((clipped.area() + other.area() - poly.area()).abs() < 1e-6);
    }

    #[test]
    fn repeated_clipping_stays_convex(bb in small_box(), pts in prop::collection::vec((pt(), pt()), 1..8)) {
        let mut poly = ConvexPolygon::from_aabb(&bb);
        let mut scratch = Vec::new();
        for (p, q) in pts {
            if p == q {
                continue;
            }
            poly.clip_halfplane_in_place(&HalfPlane::closer_to(p, q), &mut scratch);
            if poly.is_empty() {
                break;
            }
            // Convexity: every triple of consecutive vertices turns left
            // or is collinear.
            let vs = poly.vertices();
            let n = vs.len();
            for i in 0..n {
                let o = insq_geom::orient2d(vs[i], vs[(i + 1) % n], vs[(i + 2) % n]);
                prop_assert_ne!(o, insq_geom::Orientation::Clockwise);
            }
            // Area is consistent with the shoelace of its own vertices.
            prop_assert!(poly.area() >= 0.0);
        }
    }

    #[test]
    fn polygon_contains_centroid(bb in small_box(), p in pt(), q in pt()) {
        prop_assume!(p.distance(q) > 1e-6);
        let poly = ConvexPolygon::from_aabb(&bb).clip_halfplane(&HalfPlane::closer_to(p, q));
        if !poly.is_empty() {
            let c = poly.centroid().expect("non-empty");
            prop_assert!(poly.contains(c), "convex polygon contains its centroid");
        }
    }

    // --------------------------------------------------------- halfplane

    #[test]
    fn closer_to_agrees_with_distance(p in pt(), q in pt(), x in pt()) {
        prop_assume!(p != q);
        let h = HalfPlane::closer_to(p, q);
        prop_assert_eq!(h.contains(x), x.distance_sq(p) <= x.distance_sq(q));
    }

    // -------------------------------------------------------- trajectory

    #[test]
    fn trajectory_positions_monotone(waypoints in prop::collection::vec(pt(), 2..10), steps in 2usize..50) {
        let Ok(t) = Trajectory::new(waypoints) else {
            return Ok(()); // degenerate inputs rejected is fine
        };
        let len = t.length();
        let mut travelled = 0.0;
        let mut prev = t.position(0.0);
        // Total distance along sampled positions never exceeds arc length,
        // and sampling the full range traverses exactly the length.
        for i in 1..=steps {
            let s = len * i as f64 / steps as f64;
            let p = t.position(s);
            travelled += prev.distance(p);
            prev = p;
        }
        prop_assert!(travelled <= len + 1e-6);
        prop_assert_eq!(t.position(len), *t.waypoints().last().unwrap());
        prop_assert_eq!(t.position(0.0), *t.waypoints().first().unwrap());
    }

    #[test]
    fn trajectory_loop_is_periodic(waypoints in prop::collection::vec(pt(), 2..8), s in 0.0f64..500.0) {
        let Ok(t) = Trajectory::new(waypoints) else {
            return Ok(());
        };
        let len = t.length();
        let a = t.position_looped(s);
        let b = t.position_looped(s + len);
        prop_assert!(a.distance(b) < 1e-6, "period {len}: {a:?} vs {b:?}");
    }

    // ------------------------------------------------------------ vector

    #[test]
    fn vector_rotation_preserves_norm(x in -100.0f64..100.0, y in -100.0f64..100.0) {
        let v = Vector::new(x, y);
        prop_assert!((v.perp().norm() - v.norm()).abs() < 1e-9);
        prop_assert!(v.perp().dot(v).abs() < 1e-9);
    }
}

//! Ground-truth property tests for the robust predicates.
//!
//! On integer coordinates the orientation and in-circle determinants can be
//! evaluated exactly in `i128`, giving an independent oracle for both the
//! fast filtered paths and the exact expansion fallbacks.

use insq_geom::predicates::{incircle, incircle_exact, orient2d, orient2d_exact, InCircle};
use insq_geom::{Orientation, Point};
use proptest::prelude::*;

/// Exact orientation via i128: sign of (b-a) x (c-a).
fn orient_i128(a: (i64, i64), b: (i64, i64), c: (i64, i64)) -> i128 {
    let (ax, ay) = (a.0 as i128, a.1 as i128);
    let (bx, by) = (b.0 as i128, b.1 as i128);
    let (cx, cy) = (c.0 as i128, c.1 as i128);
    (bx - ax) * (cy - ay) - (by - ay) * (cx - ax)
}

/// Exact incircle via i128 on the translated 3x3 determinant.
/// Coordinates must be small enough that no intermediate overflows; with
/// |coord| <= 2^20 the largest term is ~2^42 * 2^42 * 2 < 2^86, safe.
fn incircle_i128(a: (i64, i64), b: (i64, i64), c: (i64, i64), d: (i64, i64)) -> i128 {
    let adx = (a.0 - d.0) as i128;
    let ady = (a.1 - d.1) as i128;
    let bdx = (b.0 - d.0) as i128;
    let bdy = (b.1 - d.1) as i128;
    let cdx = (c.0 - d.0) as i128;
    let cdy = (c.1 - d.1) as i128;
    let alift = adx * adx + ady * ady;
    let blift = bdx * bdx + bdy * bdy;
    let clift = cdx * cdx + cdy * cdy;
    alift * (bdx * cdy - cdx * bdy)
        + blift * (cdx * ady - adx * cdy)
        + clift * (adx * bdy - bdx * ady)
}

fn to_point(p: (i64, i64)) -> Point {
    Point::new(p.0 as f64, p.1 as f64)
}

fn expected_orientation(det: i128) -> Orientation {
    match det.cmp(&0) {
        std::cmp::Ordering::Greater => Orientation::CounterClockwise,
        std::cmp::Ordering::Less => Orientation::Clockwise,
        std::cmp::Ordering::Equal => Orientation::Collinear,
    }
}

fn expected_incircle(det: i128) -> InCircle {
    match det.cmp(&0) {
        std::cmp::Ordering::Greater => InCircle::Inside,
        std::cmp::Ordering::Less => InCircle::Outside,
        std::cmp::Ordering::Equal => InCircle::On,
    }
}

/// Coordinates chosen to often produce near-degenerate configurations:
/// a small range makes collinear/cocircular quadruples common.
fn coord() -> impl Strategy<Value = i64> {
    prop_oneof![
        -8i64..=8,                 // dense: frequent exact degeneracies
        -1_000_000i64..=1_000_000  // wide: large determinant magnitudes
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2000))]

    #[test]
    fn orient2d_matches_integer_oracle(
        ax in coord(), ay in coord(),
        bx in coord(), by in coord(),
        cx in coord(), cy in coord(),
    ) {
        let (a, b, c) = ((ax, ay), (bx, by), (cx, cy));
        let expected = expected_orientation(orient_i128(a, b, c));
        prop_assert_eq!(orient2d(to_point(a), to_point(b), to_point(c)), expected);
        prop_assert_eq!(orient2d_exact(to_point(a), to_point(b), to_point(c)), expected);
    }

    #[test]
    fn incircle_matches_integer_oracle(
        ax in coord(), ay in coord(),
        bx in coord(), by in coord(),
        cx in coord(), cy in coord(),
        dx in coord(), dy in coord(),
    ) {
        let (a, b, c, d) = ((ax, ay), (bx, by), (cx, cy), (dx, dy));
        // The predicate presumes a CCW triangle; orient the triple first.
        let o = orient_i128(a, b, c);
        prop_assume!(o != 0);
        let (a, b, c) = if o > 0 { (a, b, c) } else { (a, c, b) };
        let expected = expected_incircle(incircle_i128(a, b, c, d));
        prop_assert_eq!(
            incircle(to_point(a), to_point(b), to_point(c), to_point(d)),
            expected
        );
        prop_assert_eq!(
            incircle_exact(to_point(a), to_point(b), to_point(c), to_point(d)),
            expected
        );
    }

    #[test]
    fn orient2d_antisymmetry(
        ax in coord(), ay in coord(),
        bx in coord(), by in coord(),
        cx in coord(), cy in coord(),
    ) {
        let a = to_point((ax, ay));
        let b = to_point((bx, by));
        let c = to_point((cx, cy));
        let o1 = orient2d(a, b, c);
        let o2 = orient2d(b, a, c);
        let flipped = match o1 {
            Orientation::CounterClockwise => Orientation::Clockwise,
            Orientation::Clockwise => Orientation::CounterClockwise,
            Orientation::Collinear => Orientation::Collinear,
        };
        prop_assert_eq!(o2, flipped);
        // Cyclic permutation preserves orientation.
        prop_assert_eq!(orient2d(b, c, a), o1);
        prop_assert_eq!(orient2d(c, a, b), o1);
    }

    #[test]
    fn incircle_invariant_under_ccw_rotation(
        ax in coord(), ay in coord(),
        bx in coord(), by in coord(),
        cx in coord(), cy in coord(),
        dx in coord(), dy in coord(),
    ) {
        let o = orient_i128((ax, ay), (bx, by), (cx, cy));
        prop_assume!(o != 0); // collinear triples have no circumcircle
        // Orient CCW instead of rejecting, to keep the assume rate low.
        let ((bx, by), (cx, cy)) = if o > 0 { ((bx, by), (cx, cy)) } else { ((cx, cy), (bx, by)) };
        let a = to_point((ax, ay));
        let b = to_point((bx, by));
        let c = to_point((cx, cy));
        let d = to_point((dx, dy));
        let r1 = incircle(a, b, c, d);
        prop_assert_eq!(incircle(b, c, a, d), r1);
        prop_assert_eq!(incircle(c, a, b, d), r1);
    }
}

#[test]
fn near_collinear_regression_cases() {
    // Points on y = x with double-rounding traps.
    let a = Point::new(0.1, 0.1);
    let b = Point::new(0.2, 0.2);
    let c = Point::new(0.3, 0.3);
    // 0.1 + 0.2 != 0.3 in binary; the exact predicate must see through the
    // near-collinearity deterministically (these are NOT exactly collinear).
    let o = orient2d(a, b, c);
    let o_exact = orient2d_exact(a, b, c);
    assert_eq!(o, o_exact);
}

#[test]
fn cocircular_square_lattice() {
    // All 4-point subsets of a circle of lattice points are "On".
    // (3,4),(4,3),(-3,4),(4,-3),... all on radius-5 circle.
    let ring = [
        (3i64, 4i64),
        (4, 3),
        (5, 0),
        (4, -3),
        (3, -4),
        (0, -5),
        (-3, -4),
        (-4, -3),
        (-5, 0),
        (-4, 3),
        (-3, 4),
        (0, 5),
    ];
    for i in 0..ring.len() {
        for j in (i + 1)..ring.len() {
            for k in (j + 1)..ring.len() {
                let (a, b, c) = (ring[i], ring[j], ring[k]);
                if orient_i128(a, b, c) <= 0 {
                    continue;
                }
                for &d in &ring {
                    assert_eq!(
                        incircle(to_point(a), to_point(b), to_point(c), to_point(d)),
                        InCircle::On,
                        "expected On for {:?} {:?} {:?} {:?}",
                        a,
                        b,
                        c,
                        d
                    );
                }
            }
        }
    }
}

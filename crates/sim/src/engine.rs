//! The discrete-time simulation engine.
//!
//! Drives any [`MovingKnn`] processor along a trajectory at a fixed speed
//! (distance per tick), recording a [`RunRecord`]. This is the headless
//! equivalent of pressing "Demo" in the INSQ UI.

use std::time::Instant;

use insq_core::MovingKnn;
use insq_geom::{Point, Trajectory};
use insq_roadnet::{NetPosition, NetTrajectory, RoadNetwork};

use crate::journal::{RunRecord, TickRecord};

/// Runs a Euclidean processor along `trajectory` for `ticks` timestamps at
/// `speed` distance-units per tick (looping when the end is reached).
pub fn run_euclidean<P, Id>(
    processor: &mut P,
    trajectory: &Trajectory,
    ticks: usize,
    speed: f64,
) -> RunRecord<Id>
where
    P: MovingKnn<Point, Id> + ?Sized,
    Id: Clone + PartialEq,
{
    let mut records = Vec::with_capacity(ticks);
    let start = Instant::now();
    let mut elapsed = std::time::Duration::ZERO;
    for tick in 0..ticks {
        let pos = trajectory.position_looped(speed * tick as f64);
        let t0 = Instant::now();
        let outcome = processor.tick(pos);
        elapsed += t0.elapsed();
        records.push(TickRecord {
            tick,
            position: pos,
            outcome,
            knn: processor.current_knn(),
        });
    }
    let _total = start.elapsed();
    RunRecord {
        method: processor.name().to_string(),
        ticks: records,
        stats: *processor.stats(),
        elapsed,
    }
}

/// Runs a road-network processor along `tour` for `ticks` timestamps at
/// `speed` network-distance per tick (looping).
pub fn run_network<P, Id>(
    processor: &mut P,
    net: &RoadNetwork,
    tour: &NetTrajectory,
    ticks: usize,
    speed: f64,
) -> RunRecord<Id>
where
    P: MovingKnn<NetPosition, Id> + ?Sized,
    Id: Clone + PartialEq,
{
    let mut records = Vec::with_capacity(ticks);
    let mut elapsed = std::time::Duration::ZERO;
    for tick in 0..ticks {
        let pos = tour.position_looped(net, speed * tick as f64);
        let t0 = Instant::now();
        let outcome = processor.tick(pos);
        elapsed += t0.elapsed();
        records.push(TickRecord {
            tick,
            position: pos.to_point(net),
            outcome,
            knn: processor.current_knn(),
        });
    }
    RunRecord {
        method: processor.name().to_string(),
        ticks: records,
        stats: *processor.stats(),
        elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_baselines::NaiveProcessor;
    use insq_core::{InsConfig, InsProcessor, TickOutcome};
    use insq_geom::Aabb;
    use insq_index::VorTree;
    use insq_workload::{Distribution, TrajectoryKind};

    fn index(n: usize, seed: u64) -> VorTree {
        let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let pts = Distribution::Uniform.generate(n, &bounds, seed);
        VorTree::build(pts, bounds.inflated(10.0)).unwrap()
    }

    #[test]
    fn engine_records_every_tick() {
        let idx = index(150, 3);
        let traj = TrajectoryKind::RandomWaypoint { waypoints: 6 }.generate(
            &Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            5,
        );
        let mut ins = InsProcessor::new(&idx, InsConfig::new(3, 1.6)).unwrap();
        let run = run_euclidean(&mut ins, &traj, 200, 0.5);
        assert_eq!(run.len(), 200);
        assert_eq!(run.stats.ticks, 200);
        assert_eq!(run.ticks[0].outcome, TickOutcome::Recompute);
        assert!(run.ticks.iter().all(|r| r.knn.len() == 3));
    }

    #[test]
    fn network_engine_runs_and_records() {
        use insq_core::{NetInsConfig, NetInsProcessor};
        use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
        use insq_roadnet::{NetTrajectory, NetworkWorld, SiteSet};

        let net = std::sync::Arc::new(grid_network(&GridConfig::default(), 11).unwrap());
        let sites = SiteSet::new(&net, random_site_vertices(&net, 15, 11).unwrap()).unwrap();
        let world = NetworkWorld::build(std::sync::Arc::clone(&net), sites);
        let tour = NetTrajectory::random_tour(&net, 5, 11).unwrap();
        let mut p = NetInsProcessor::new(&world, NetInsConfig::new(3, 1.6)).unwrap();
        let run = run_network(&mut p, &net, &tour, 150, 0.1);
        assert_eq!(run.len(), 150);
        assert_eq!(run.stats.ticks, 150);
        assert!(run.ticks.iter().all(|r| r.knn.len() == 3));
        // Positions are rendered network points within the layout bounds.
        let bb = insq_geom::Aabb::of_points(net.coords().iter().copied())
            .unwrap()
            .inflated(1.0);
        assert!(run.ticks.iter().all(|r| bb.contains(r.position)));
    }

    #[test]
    fn ins_and_naive_agree_tick_by_tick() {
        let idx = index(200, 9);
        let traj = TrajectoryKind::Circular { radius_frac: 0.6 }.generate(
            &Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0)),
            1,
        );
        let mut ins = InsProcessor::new(&idx, InsConfig::new(4, 1.6)).unwrap();
        let mut naive = NaiveProcessor::new(idx.rtree(), 4).unwrap();
        let run_a = run_euclidean(&mut ins, &traj, 300, 0.4);
        let run_b = run_euclidean(&mut naive, &traj, 300, 0.4);
        for (a, b) in run_a.ticks.iter().zip(&run_b.ticks) {
            let mut x = a.knn.clone();
            let mut y = b.knn.clone();
            x.sort_unstable();
            y.sort_unstable();
            assert_eq!(x, y, "divergence at tick {}", a.tick);
        }
    }
}

//! ASCII rendering of simulation states — the reproduction's stand-in for
//! the INSQ Swing UI (see DESIGN.md, *Substitutions*).
//!
//! Legend (both modes):
//!
//! * `Q` — the query object (red dot in the paper's screenshots)
//! * `K` — a current kNN member (green)
//! * `i` — an influential neighbor (yellow)
//! * `.` — any other data object (orange)
//! * `:` — interior of the current safe region (2D mode; cyan polygon)
//! * `-' | ' / \ +` — road edges (network mode)

use insq_geom::{Aabb, ConvexPolygon, Point};
use insq_roadnet::RoadNetwork;

/// A fixed-size character canvas mapping a world-space window.
#[derive(Debug, Clone)]
pub struct Canvas {
    width: usize,
    height: usize,
    window: Aabb,
    cells: Vec<char>,
}

impl Canvas {
    /// Creates an empty canvas over `window`.
    pub fn new(width: usize, height: usize, window: Aabb) -> Canvas {
        Canvas {
            width: width.max(4),
            height: height.max(4),
            window,
            cells: vec![' '; width.max(4) * height.max(4)],
        }
    }

    fn to_cell(&self, p: Point) -> Option<(usize, usize)> {
        if !self.window.contains(p) {
            return None;
        }
        let fx = (p.x - self.window.min.x) / self.window.width();
        let fy = (p.y - self.window.min.y) / self.window.height();
        let cx = ((fx * (self.width - 1) as f64).round() as usize).min(self.width - 1);
        // Screen y grows downward.
        let cy = (((1.0 - fy) * (self.height - 1) as f64).round() as usize).min(self.height - 1);
        Some((cx, cy))
    }

    /// Plots a character at a world position (later plots win).
    pub fn plot(&mut self, p: Point, c: char) {
        if let Some((x, y)) = self.to_cell(p) {
            self.cells[y * self.width + x] = c;
        }
    }

    /// Plots a character only on blank cells (background layers).
    pub fn plot_soft(&mut self, p: Point, c: char) {
        if let Some((x, y)) = self.to_cell(p) {
            let cell = &mut self.cells[y * self.width + x];
            if *cell == ' ' {
                *cell = c;
            }
        }
    }

    /// Draws a world-space line segment with a character (soft).
    pub fn line(&mut self, a: Point, b: Point, c: char) {
        let steps = (2 * self.width.max(self.height)) as f64;
        for i in 0..=steps as usize {
            self.plot_soft(a.lerp(b, i as f64 / steps), c);
        }
    }

    /// Fills the interior of a convex polygon (soft).
    pub fn fill_polygon(&mut self, poly: &ConvexPolygon, c: char) {
        if poly.is_empty() {
            return;
        }
        for y in 0..self.height {
            for x in 0..self.width {
                let fx = x as f64 / (self.width - 1) as f64;
                let fy = 1.0 - y as f64 / (self.height - 1) as f64;
                let p = Point::new(
                    self.window.min.x + fx * self.window.width(),
                    self.window.min.y + fy * self.window.height(),
                );
                if poly.contains(p) {
                    let cell = &mut self.cells[y * self.width + x];
                    if *cell == ' ' {
                        *cell = c;
                    }
                }
            }
        }
    }

    /// Renders the canvas with a border.
    pub fn to_string_framed(&self) -> String {
        let mut out = String::with_capacity((self.width + 3) * (self.height + 2));
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.width));
        out.push_str("+\n");
        for y in 0..self.height {
            out.push('|');
            for x in 0..self.width {
                out.push(self.cells[y * self.width + x]);
            }
            out.push_str("|\n");
        }
        out.push('+');
        out.extend(std::iter::repeat_n('-', self.width));
        out.push('+');
        out
    }
}

/// Renders a Euclidean frame: all objects, the kNN (`K`), the INS (`i`),
/// the query (`Q`) and optionally the safe-region polygon (`:`).
#[allow(clippy::too_many_arguments)]
pub fn render_euclidean(
    points: &[Point],
    knn: &[usize],
    ins: &[usize],
    query: Point,
    region: Option<&ConvexPolygon>,
    window: Aabb,
    width: usize,
    height: usize,
) -> String {
    let mut canvas = Canvas::new(width, height, window);
    if let Some(poly) = region {
        canvas.fill_polygon(poly, ':');
    }
    for (i, &p) in points.iter().enumerate() {
        let c = if knn.contains(&i) {
            'K'
        } else if ins.contains(&i) {
            'i'
        } else {
            '.'
        };
        canvas.plot(p, c);
    }
    canvas.plot(query, 'Q');
    canvas.to_string_framed()
}

/// Renders a road-network frame: edges as lines, sites (`.`), kNN (`K`),
/// INS (`i`), query (`Q`).
#[allow(clippy::too_many_arguments)]
pub fn render_network(
    net: &RoadNetwork,
    site_vertices: &[insq_roadnet::VertexId],
    knn: &[usize],
    ins: &[usize],
    query: Point,
    window: Aabb,
    width: usize,
    height: usize,
) -> String {
    let mut canvas = Canvas::new(width, height, window);
    for rec in net.edges() {
        canvas.line(net.coord(rec.u), net.coord(rec.v), '·');
    }
    for (i, &v) in site_vertices.iter().enumerate() {
        let c = if knn.contains(&i) {
            'K'
        } else if ins.contains(&i) {
            'i'
        } else {
            'o'
        };
        canvas.plot(net.coord(v), c);
    }
    canvas.plot(query, 'Q');
    canvas.to_string_framed()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window() -> Aabb {
        Aabb::new(Point::new(0.0, 0.0), Point::new(10.0, 10.0))
    }

    #[test]
    fn frame_has_expected_dimensions() {
        let canvas = Canvas::new(20, 10, window());
        let s = canvas.to_string_framed();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 12); // 10 rows + 2 border lines
        assert!(lines.iter().all(|l| l.chars().count() == 22));
    }

    #[test]
    fn markers_rendered_with_priority() {
        let points = vec![
            Point::new(2.0, 2.0),
            Point::new(5.0, 5.0),
            Point::new(8.0, 8.0),
        ];
        let s = render_euclidean(
            &points,
            &[0],
            &[1],
            Point::new(1.0, 1.0),
            None,
            window(),
            30,
            15,
        );
        assert!(s.contains('K'));
        assert!(s.contains('i'));
        assert!(s.contains('.'));
        assert!(s.contains('Q'));
    }

    #[test]
    fn region_fill_appears() {
        let poly = ConvexPolygon::from_aabb(&Aabb::new(Point::new(4.0, 4.0), Point::new(6.0, 6.0)));
        let s = render_euclidean(
            &[],
            &[],
            &[],
            Point::new(5.0, 5.0),
            Some(&poly),
            window(),
            30,
            15,
        );
        assert!(s.contains(':'));
        assert!(s.contains('Q'));
    }

    #[test]
    fn out_of_window_points_are_clipped() {
        let mut canvas = Canvas::new(10, 10, window());
        canvas.plot(Point::new(50.0, 50.0), 'X');
        assert!(!canvas.to_string_framed().contains('X'));
    }
}

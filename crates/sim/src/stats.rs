//! Cross-method comparison tables.
//!
//! Collects [`RunRecord`]s from several processors over the same scenario
//! and formats the comparison rows the benchmark harness prints — one line
//! per method, matching the axes of the paper's evaluation (recomputation
//! frequency, validation cost, construction cost, communication, time).

use crate::journal::RunRecord;

/// A comparison of several methods over one scenario.
#[derive(Debug, Clone, Default)]
pub struct Comparison {
    rows: Vec<Row>,
}

/// One method's aggregate numbers.
#[derive(Debug, Clone)]
pub struct Row {
    /// Method name.
    pub method: String,
    /// Timestamps simulated.
    pub ticks: u64,
    /// Full recomputations.
    pub recomputations: u64,
    /// Result changes handled locally (swaps + re-ranks).
    pub local_updates: u64,
    /// Objects transmitted.
    pub comm_objects: u64,
    /// Validation + search + construction op counts.
    pub validation_ops: u64,
    /// Search effort.
    pub search_ops: u64,
    /// Safe-region construction effort.
    pub construction_ops: u64,
    /// Wall-clock microseconds per tick.
    pub us_per_tick: f64,
}

impl Comparison {
    /// Creates an empty comparison.
    pub fn new() -> Comparison {
        Comparison::default()
    }

    /// Adds one run.
    pub fn add<Id: Clone + PartialEq>(&mut self, run: &RunRecord<Id>) {
        self.add_stats(&run.method, &run.stats, run.elapsed);
    }

    /// Adds a row from bare aggregate statistics — how multi-query fleet
    /// runs (whose per-query [`RunRecord`]s are never materialised) feed
    /// their merged [`insq_core::QueryStats`] into the same comparison tables.
    pub fn add_stats(
        &mut self,
        method: &str,
        stats: &insq_core::QueryStats,
        elapsed: std::time::Duration,
    ) {
        self.rows.push(Row {
            method: method.to_string(),
            ticks: stats.ticks,
            recomputations: stats.recomputations,
            local_updates: stats.swaps + stats.local_reranks,
            comm_objects: stats.comm_objects,
            validation_ops: stats.validation_ops,
            search_ops: stats.search_ops,
            construction_ops: stats.construction_ops,
            us_per_tick: if stats.ticks == 0 {
                0.0
            } else {
                elapsed.as_secs_f64() * 1e6 / stats.ticks as f64
            },
        });
    }

    /// The rows added so far.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Renders an aligned text table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<10} {:>7} {:>10} {:>8} {:>9} {:>10} {:>10} {:>11} {:>10}\n",
            "method",
            "ticks",
            "recompute",
            "local",
            "comm",
            "val_ops",
            "search_ops",
            "constr_ops",
            "us/tick"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<10} {:>7} {:>10} {:>8} {:>9} {:>10} {:>10} {:>11} {:>10.2}\n",
                r.method,
                r.ticks,
                r.recomputations,
                r.local_updates,
                r.comm_objects,
                r.validation_ops,
                r.search_ops,
                r.construction_ops,
                r.us_per_tick
            ));
        }
        out
    }

    /// Looks up a row by method name.
    pub fn row(&self, method: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.method == method)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_core::QueryStats;

    fn fake_run(method: &str, recomputes: u64) -> RunRecord<u32> {
        RunRecord {
            method: method.into(),
            ticks: vec![],
            stats: QueryStats {
                ticks: 100,
                recomputations: recomputes,
                comm_objects: recomputes * 8,
                ..Default::default()
            },
            elapsed: std::time::Duration::from_millis(10),
        }
    }

    #[test]
    fn table_contains_all_methods() {
        let mut c = Comparison::new();
        c.add(&fake_run("INS", 3));
        c.add(&fake_run("Naive", 100));
        let t = c.to_table();
        assert!(t.contains("INS"));
        assert!(t.contains("Naive"));
        assert_eq!(c.rows().len(), 2);
        assert_eq!(c.row("INS").unwrap().recomputations, 3);
        assert!(c.row("nope").is_none());
    }

    #[test]
    fn add_stats_matches_add() {
        let run = fake_run("INS", 4);
        let mut via_run = Comparison::new();
        via_run.add(&run);
        let mut via_stats = Comparison::new();
        via_stats.add_stats("INS", &run.stats, run.elapsed);
        let (a, b) = (via_run.row("INS").unwrap(), via_stats.row("INS").unwrap());
        assert_eq!(a.ticks, b.ticks);
        assert_eq!(a.recomputations, b.recomputations);
        assert_eq!(a.comm_objects, b.comm_objects);
        assert!((a.us_per_tick - b.us_per_tick).abs() < 1e-12);
    }

    #[test]
    fn us_per_tick_computed() {
        let mut c = Comparison::new();
        c.add(&fake_run("INS", 1));
        let r = c.row("INS").unwrap();
        assert!((r.us_per_tick - 100.0).abs() < 1.0); // 10ms / 100 ticks
    }
}

//! The event journal: what the INSQ demonstration UI visualises, as data.
//!
//! Each tick records the query position, the processor's outcome and the
//! result set; the journal exposes the state *transitions* (valid ↔
//! invalid) that Figs. 3 and 4 of the paper are screenshots of.

use insq_core::{QueryStats, TickOutcome};
use insq_geom::Point;

/// One timestamp of a simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct TickRecord<Id> {
    /// Timestamp index (0-based).
    pub tick: usize,
    /// Display position of the query object.
    pub position: Point,
    /// What the processor had to do.
    pub outcome: TickOutcome,
    /// The kNN result at this tick.
    pub knn: Vec<Id>,
}

/// A complete run of one processor along a trajectory.
#[derive(Debug, Clone)]
pub struct RunRecord<Id> {
    /// Processor name ("INS", "Naive", ...).
    pub method: String,
    /// Per-tick records.
    pub ticks: Vec<TickRecord<Id>>,
    /// Final cumulative statistics.
    pub stats: QueryStats,
    /// Wall-clock duration of the processing calls only (excludes
    /// trajectory bookkeeping).
    pub elapsed: std::time::Duration,
}

impl<Id: Clone + PartialEq> RunRecord<Id> {
    /// Ticks at which the kNN result changed (including the first).
    pub fn result_changes(&self) -> Vec<&TickRecord<Id>> {
        let mut out = Vec::new();
        let mut last: Option<&Vec<Id>> = None;
        for rec in &self.ticks {
            let changed = match last {
                None => true,
                Some(prev) => {
                    prev.len() != rec.knn.len() || !prev.iter().all(|s| rec.knn.contains(s))
                }
            };
            if changed {
                out.push(rec);
            }
            last = Some(&rec.knn);
        }
        out
    }

    /// Ticks with a non-`Valid` outcome — the demo's "kNN set is invalid"
    /// moments (Fig. 4b).
    pub fn invalidations(&self) -> impl Iterator<Item = &TickRecord<Id>> {
        self.ticks.iter().filter(|r| r.outcome.changed())
    }

    /// Number of ticks recorded.
    pub fn len(&self) -> usize {
        self.ticks.len()
    }

    /// Whether the run is empty.
    pub fn is_empty(&self) -> bool {
        self.ticks.is_empty()
    }

    /// One summary line per run — the harness's table row.
    pub fn summary(&self) -> String {
        let s = &self.stats;
        format!(
            "{:<10} ticks={:<6} valid={:<6} swap={:<5} rerank={:<5} recompute={:<5} \
             comm={:<7} val_ops={:<8} search_ops={:<8} constr_ops={:<8} time={:?}",
            self.method,
            s.ticks,
            s.valid_ticks,
            s.swaps,
            s.local_reranks,
            s.recomputations,
            s.comm_objects,
            s.validation_ops,
            s.search_ops,
            s.construction_ops,
            self.elapsed,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tick: usize, outcome: TickOutcome, knn: Vec<u32>) -> TickRecord<u32> {
        TickRecord {
            tick,
            position: Point::ORIGIN,
            outcome,
            knn,
        }
    }

    #[test]
    fn result_changes_detects_set_changes() {
        let run = RunRecord {
            method: "test".into(),
            ticks: vec![
                rec(0, TickOutcome::Recompute, vec![1, 2]),
                rec(1, TickOutcome::Valid, vec![2, 1]), // same set, reordered
                rec(2, TickOutcome::Swap, vec![2, 3]),
                rec(3, TickOutcome::Valid, vec![2, 3]),
            ],
            stats: QueryStats::default(),
            elapsed: std::time::Duration::ZERO,
        };
        let changes = run.result_changes();
        assert_eq!(changes.len(), 2);
        assert_eq!(changes[0].tick, 0);
        assert_eq!(changes[1].tick, 2);
        assert_eq!(run.invalidations().count(), 2);
    }

    #[test]
    fn summary_mentions_method() {
        let run: RunRecord<u32> = RunRecord {
            method: "INS".into(),
            ticks: vec![],
            stats: QueryStats::default(),
            elapsed: std::time::Duration::ZERO,
        };
        assert!(run.summary().contains("INS"));
        assert!(run.is_empty());
    }
}

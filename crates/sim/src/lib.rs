//! # insq-sim
//!
//! The INSQ *demonstration system* substrate, headless: a discrete-time
//! [`engine`] that drives any `MovingKnn` processor along a trajectory,
//! an event [`journal`] capturing exactly the state the Swing UI
//! visualised (kNN membership, INS membership, valid/invalid transitions),
//! an ASCII [`render`]er standing in for the UI itself, and [`stats`]
//! tables comparing methods over a common scenario.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod engine;
pub mod journal;
pub mod render;
pub mod scenario_run;
pub mod stats;

pub use engine::{run_euclidean, run_network};
pub use journal::{RunRecord, TickRecord};
pub use render::{render_euclidean, render_network, Canvas};
pub use scenario_run::{run_euclidean_scenario, run_network_scenario, ScenarioError};
pub use stats::{Comparison, Row};

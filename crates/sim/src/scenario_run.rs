//! One-call scenario execution: materialise an `insq-workload` scenario,
//! run every method over it, and return the comparison — the programmatic
//! equivalent of one `report` table row group.

use insq_baselines::{
    NaiveProcessor, NetNaiveProcessor, OkvProcessor, VStarConfig, VStarProcessor,
};
use insq_core::{InsConfig, InsProcessor, NetInsConfig, NetInsProcessor};
use insq_index::VorTree;
use insq_roadnet::{NetworkWorld, RoadNetError};
use insq_voronoi::VoronoiError;
use insq_workload::{EuclideanScenario, NetworkScenario};

use crate::engine::{run_euclidean, run_network};
use crate::stats::Comparison;

/// Errors from scenario execution.
#[derive(Debug)]
pub enum ScenarioError {
    /// Data generation produced an invalid Voronoi input.
    Voronoi(VoronoiError),
    /// Network generation failed.
    RoadNet(RoadNetError),
    /// Processor configuration rejected (k or ρ out of range for the
    /// scenario's data).
    Config(insq_core::CoreError),
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Voronoi(e) => write!(f, "voronoi: {e}"),
            ScenarioError::RoadNet(e) => write!(f, "road network: {e}"),
            ScenarioError::Config(e) => write!(f, "config: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<VoronoiError> for ScenarioError {
    fn from(e: VoronoiError) -> Self {
        ScenarioError::Voronoi(e)
    }
}
impl From<RoadNetError> for ScenarioError {
    fn from(e: RoadNetError) -> Self {
        ScenarioError::RoadNet(e)
    }
}
impl From<insq_core::CoreError> for ScenarioError {
    fn from(e: insq_core::CoreError) -> Self {
        ScenarioError::Config(e)
    }
}

/// Runs all four Euclidean methods over the scenario and returns their
/// comparison (rows: INS, OkV, V*, Naive).
pub fn run_euclidean_scenario(sc: &EuclideanScenario) -> Result<Comparison, ScenarioError> {
    let index = VorTree::build(sc.points(), sc.clip_window())?;
    let traj = sc.query_trajectory();
    let mut cmp = Comparison::new();

    let mut ins = InsProcessor::new(&index, InsConfig::new(sc.k, sc.rho))?;
    cmp.add(&run_euclidean(&mut ins, &traj, sc.ticks, sc.speed));
    let mut okv = OkvProcessor::new(&index, sc.k)?;
    cmp.add(&run_euclidean(&mut okv, &traj, sc.ticks, sc.speed));
    let mut vstar = VStarProcessor::new(&index, VStarConfig::with_k(sc.k))?;
    cmp.add(&run_euclidean(&mut vstar, &traj, sc.ticks, sc.speed));
    let mut naive = NaiveProcessor::new(index.rtree(), sc.k)?;
    cmp.add(&run_euclidean(&mut naive, &traj, sc.ticks, sc.speed));
    Ok(cmp)
}

/// Runs the network INS processor and the naive INE baseline over the
/// scenario (rows: INS-road, Naive-road).
pub fn run_network_scenario(sc: &NetworkScenario) -> Result<Comparison, ScenarioError> {
    let inst = sc.build()?;
    let world = NetworkWorld::build(std::sync::Arc::new(inst.net), inst.sites);
    let mut cmp = Comparison::new();

    let mut ins = NetInsProcessor::new(&world, NetInsConfig::new(sc.k, sc.rho))?;
    cmp.add(&run_network(
        &mut ins, &world.net, &inst.tour, sc.ticks, sc.speed,
    ));
    let mut naive = NetNaiveProcessor::new(&world.net, &world.sites, sc.k)?;
    cmp.add(&run_network(
        &mut naive, &world.net, &inst.tour, sc.ticks, sc.speed,
    ));
    Ok(cmp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_workload::Distribution;

    #[test]
    fn euclidean_scenario_end_to_end() {
        let sc = EuclideanScenario {
            n: 300,
            k: 3,
            ticks: 200,
            ..Default::default()
        };
        let cmp = run_euclidean_scenario(&sc).unwrap();
        assert_eq!(cmp.rows().len(), 4);
        for method in ["INS", "OkV", "V*", "Naive"] {
            let row = cmp.row(method).unwrap();
            assert_eq!(row.ticks, 200, "{method}");
        }
        // INS never recomputes more than naive changes results.
        assert!(cmp.row("INS").unwrap().comm_objects < cmp.row("Naive").unwrap().comm_objects);
    }

    #[test]
    fn network_scenario_end_to_end() {
        let sc = NetworkScenario {
            sites: 15,
            k: 3,
            ticks: 150,
            ..Default::default()
        };
        let cmp = run_network_scenario(&sc).unwrap();
        assert_eq!(cmp.rows().len(), 2);
        assert!(
            cmp.row("INS-road").unwrap().comm_objects < cmp.row("Naive-road").unwrap().comm_objects
        );
    }

    #[test]
    fn invalid_config_is_reported() {
        let sc = EuclideanScenario {
            n: 10,
            k: 11, // more neighbors than objects
            ticks: 10,
            distribution: Distribution::Uniform,
            ..Default::default()
        };
        assert!(matches!(
            run_euclidean_scenario(&sc),
            Err(ScenarioError::Config(_))
        ));
    }
}

//! Query trajectory generators (Euclidean mode).
//!
//! The demo lets the user sketch any trajectory in 2D-plane mode; the
//! benchmarks use the standard moving-object models: random waypoint (the
//! tourist), straight crossing (the highway driver) and circular tours.

use insq_geom::{Aabb, Point, Trajectory};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Kind of query trajectory to generate.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TrajectoryKind {
    /// Random waypoint: straight hops between uniformly drawn targets.
    RandomWaypoint {
        /// Number of waypoints (≥ 2).
        waypoints: usize,
    },
    /// A straight line across the data space through its center.
    StraightCrossing,
    /// A circle around the data-space center (polyline approximation).
    Circular {
        /// Radius as a fraction of the half-width (0 < r ≤ 1).
        radius_frac: f64,
    },
    /// A horizontal shuttle: back and forth across the full width of
    /// the data space in a seeded y-lane. The adversarial input for
    /// spatial partitioning — a shuttle crosses every vertical
    /// partition border twice per loop, so a fleet of them exercises
    /// handoff continuously.
    Shuttle,
}

impl TrajectoryKind {
    /// Generates a trajectory inside `bounds`, with a margin so the query
    /// stays away from the clipped Voronoi boundary.
    pub fn generate(&self, bounds: &Aabb, seed: u64) -> Trajectory {
        let margin = 0.05 * bounds.width().min(bounds.height());
        let inner = Aabb::new(
            Point::new(bounds.min.x + margin, bounds.min.y + margin),
            Point::new(bounds.max.x - margin, bounds.max.y - margin),
        );
        match *self {
            TrajectoryKind::RandomWaypoint { waypoints } => {
                let mut rng = StdRng::seed_from_u64(seed);
                let n = waypoints.max(2);
                let mut pts = Vec::with_capacity(n);
                let mut last = Point::new(f64::NAN, f64::NAN);
                while pts.len() < n {
                    let p = Point::new(
                        rng.random_range(inner.min.x..inner.max.x),
                        rng.random_range(inner.min.y..inner.max.y),
                    );
                    if p != last {
                        pts.push(p);
                        last = p;
                    }
                }
                Trajectory::new(pts).expect("distinct waypoints form a valid trajectory")
            }
            TrajectoryKind::StraightCrossing => {
                let c = inner.center();
                Trajectory::new(vec![
                    Point::new(inner.min.x, c.y),
                    Point::new(inner.max.x, c.y),
                ])
                .expect("non-degenerate bounds")
            }
            TrajectoryKind::Shuttle => {
                let mut rng = StdRng::seed_from_u64(seed);
                let y = rng.random_range(inner.min.y..inner.max.y);
                Trajectory::new(vec![
                    Point::new(inner.min.x, y),
                    Point::new(inner.max.x, y),
                    Point::new(inner.min.x, y),
                ])
                .expect("non-degenerate bounds")
            }
            TrajectoryKind::Circular { radius_frac } => {
                let c = inner.center();
                let r = 0.5 * inner.width().min(inner.height()) * radius_frac.clamp(0.05, 1.0);
                let steps = 72;
                let pts: Vec<Point> = (0..=steps)
                    .map(|i| {
                        let a = std::f64::consts::TAU * i as f64 / steps as f64;
                        Point::new(c.x + r * a.cos(), c.y + r * a.sin())
                    })
                    .collect();
                Trajectory::new(pts).expect("circle polyline is valid")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Aabb {
        Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn random_waypoint_properties() {
        let t = TrajectoryKind::RandomWaypoint { waypoints: 10 }.generate(&space(), 3);
        assert_eq!(t.waypoints().len(), 10);
        assert!(t.length() > 0.0);
        // Stays inside the margin box.
        for p in t.waypoints() {
            assert!(p.x >= 5.0 && p.x <= 95.0 && p.y >= 5.0 && p.y <= 95.0);
        }
        // Deterministic.
        let t2 = TrajectoryKind::RandomWaypoint { waypoints: 10 }.generate(&space(), 3);
        assert_eq!(t.waypoints(), t2.waypoints());
    }

    #[test]
    fn straight_crossing_spans_width() {
        let t = TrajectoryKind::StraightCrossing.generate(&space(), 0);
        assert_eq!(t.waypoints().len(), 2);
        assert!((t.length() - 90.0).abs() < 1e-9);
    }

    #[test]
    fn shuttle_crosses_every_vertical_border_each_loop() {
        let t = TrajectoryKind::Shuttle.generate(&space(), 7);
        let pts = t.waypoints();
        assert_eq!(pts.len(), 3);
        // Full inner width, closed loop, constant lane.
        assert_eq!(pts[0].x, 5.0);
        assert_eq!(pts[1].x, 95.0);
        assert_eq!(pts[0], pts[2]);
        assert_eq!(pts[0].y, pts[1].y);
        // Distinct seeds shuttle in distinct lanes.
        let t2 = TrajectoryKind::Shuttle.generate(&space(), 8);
        assert_ne!(pts[0].y, t2.waypoints()[0].y);
    }

    #[test]
    fn circular_loops_back() {
        let t = TrajectoryKind::Circular { radius_frac: 0.8 }.generate(&space(), 0);
        let first = t.waypoints().first().unwrap();
        let last = t.waypoints().last().unwrap();
        assert!(first.distance(*last) < 1e-9, "closed loop");
        // Circumference close to 2πr with r = 0.8 * 45.
        let r = 0.8 * 45.0;
        assert!((t.length() - std::f64::consts::TAU * r).abs() < 1.0);
    }
}

//! Client-side update streams: a [`FleetScenario`] as the sequence of
//! position updates each client sends.
//!
//! The fleet generators answer "where is client `c` at tick `t`?"
//! ([`SpaceWorkload::position`]); a *serving* surface needs the
//! transposed view — "what does client `c` put on the wire, in order?".
//! [`UpdateStream`] is that view: a deterministic iterator of positions,
//! one per scenario tick, for one client. The `insq-net` loopback
//! drivers (`examples/net_fleet.rs`, the `e_net` experiment) feed these
//! straight into TCP sessions, and because they derive from the same
//! scenario state as the in-process run, the two are comparable
//! tick-for-tick.

use crate::fleet::FleetScenario;
use crate::spaces::SpaceWorkload;

/// An iterator over one client's per-tick positions (exactly
/// `sc.ticks` items).
#[derive(Debug)]
pub struct UpdateStream<'a, S: SpaceWorkload> {
    sc: &'a FleetScenario,
    fleet: &'a S::Fleet,
    client: usize,
    tick: usize,
}

impl<S: SpaceWorkload> Iterator for UpdateStream<'_, S> {
    type Item = S::Pos;

    fn next(&mut self) -> Option<S::Pos> {
        if self.tick >= self.sc.ticks {
            return None;
        }
        let pos = S::position(self.sc, self.fleet, self.client, self.tick);
        self.tick += 1;
        Some(pos)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.sc.ticks - self.tick;
        (left, Some(left))
    }
}

impl<S: SpaceWorkload> ExactSizeIterator for UpdateStream<'_, S> {}

/// The position-update stream client `client` sends over a scenario run
/// (`fleet` from [`SpaceWorkload::make_fleet`]).
pub fn client_updates<'a, S: SpaceWorkload>(
    sc: &'a FleetScenario,
    fleet: &'a S::Fleet,
    client: usize,
) -> UpdateStream<'a, S> {
    UpdateStream {
        sc,
        fleet,
        client,
        tick: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_core::Euclidean;

    #[test]
    fn streams_transpose_the_position_table() {
        let sc = FleetScenario {
            clients: 3,
            n: 50,
            ticks: 12,
            ..Default::default()
        };
        let fleet = Euclidean::make_fleet(&sc);
        for c in 0..sc.clients {
            let stream = client_updates::<Euclidean>(&sc, &fleet, c);
            assert_eq!(stream.len(), sc.ticks);
            for (tick, pos) in stream.enumerate() {
                assert_eq!(pos, Euclidean::position(&sc, &fleet, c, tick));
            }
        }
    }
}

//! Rush hour: correlated commuter traffic over a live road network.
//!
//! The dynamic-traffic workload the `e_traffic` experiment and the
//! traffic conformance tests drive. Two correlated ingredients, both
//! deterministic in the scenario seed:
//!
//! * **Commuter trajectories** — every client's tour runs from a seeded
//!   home vertex *through the hub* (the vertex nearest the network
//!   centroid — "downtown") and back, so the whole fleet converges on
//!   the same streets. That is the adversarial input for traffic
//!   deltas: the congested region is exactly where the queries are.
//! * **Weight storms** — congestion epochs that re-weight the streets
//!   around the hub. Storm epoch `2i` congests (lengths scale up by a
//!   jittered per-edge factor around [`RushHour::peak_factor`]), storm
//!   epoch `2i+1` clears (lengths restore to free flow). Every storm is
//!   expressed *absolutely* against the free-flow network, so storms
//!   never compound and a clear always lands exactly on the free-flow
//!   lengths bit-for-bit.
//!
//! Congestion only ever scales free-flow lengths **up** (factors ≥ 1),
//! which keeps every on-edge position generated against the free-flow
//! network valid in every traffic epoch (offsets never exceed the
//! congested length).

use insq_roadnet::generators::SplitMix64;
use insq_roadnet::{
    EdgeId, EdgeWeight, NetDelta, NetTrajectory, RoadNetError, RoadNetwork, VertexId,
};

/// A rush-hour traffic scenario over one road network.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RushHour {
    /// Number of commuting clients.
    pub commuters: usize,
    /// Streets congested per storm (edges, BFS-ordered from the hub).
    pub storm_edges: usize,
    /// Peak congestion multiplier (≥ 1; per-edge jitter of ±20% is
    /// applied around it so congested lengths stay tie-free).
    pub peak_factor: f64,
    /// Ticks between storm epochs (congest, clear, congest, …); 0
    /// disables storms.
    pub storm_every: usize,
    /// Master seed (homes, jitter and the hub derive distinct streams).
    pub seed: u64,
}

impl Default for RushHour {
    fn default() -> Self {
        RushHour {
            commuters: 24,
            storm_edges: 32,
            peak_factor: 2.5,
            storm_every: 10,
            seed: 2016,
        }
    }
}

impl RushHour {
    /// The hub ("downtown"): the vertex closest to the network centroid.
    pub fn hub(&self, net: &RoadNetwork) -> VertexId {
        let coords = net.coords();
        let n = coords.len() as f64;
        let (cx, cy) = coords
            .iter()
            .fold((0.0, 0.0), |(x, y), p| (x + p.x, y + p.y));
        let (cx, cy) = (cx / n, cy / n);
        let mut best = VertexId(0);
        let mut best_d = f64::INFINITY;
        for (i, p) in coords.iter().enumerate() {
            let d = (p.x - cx) * (p.x - cx) + (p.y - cy) * (p.y - cy);
            if d < best_d {
                best_d = d;
                best = VertexId(i as u32);
            }
        }
        best
    }

    /// Client `c`'s commute: home → hub → home along shortest paths.
    /// Every commuter funnels through the hub, so the fleet's
    /// trajectories are *correlated* — they share the streets the
    /// storms congest.
    pub fn commuter_tour(
        &self,
        net: &RoadNetwork,
        client: usize,
    ) -> Result<NetTrajectory, RoadNetError> {
        let hub = self.hub(net);
        let mut rng = SplitMix64::new(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(client as u64),
        );
        let home = loop {
            let v = VertexId(rng.below(net.num_vertices()) as u32);
            if v != hub {
                break v;
            }
        };
        NetTrajectory::through_waypoints(net, &[home, hub, home])
    }

    /// The streets a storm touches: the first [`RushHour::storm_edges`]
    /// edges discovered by a BFS outward from the hub — the downtown
    /// block every commute crosses. Deterministic in the network alone.
    pub fn storm_zone(&self, net: &RoadNetwork) -> Vec<EdgeId> {
        let hub = self.hub(net);
        let want = self.storm_edges.min(net.num_edges());
        let mut seen_v = vec![false; net.num_vertices()];
        let mut seen_e = vec![false; net.num_edges()];
        let mut zone: Vec<EdgeId> = Vec::with_capacity(want);
        let mut frontier = vec![hub];
        seen_v[hub.idx()] = true;
        while zone.len() < want && !frontier.is_empty() {
            let mut next = Vec::new();
            for &v in &frontier {
                for &(w, e) in net.neighbors(v) {
                    if !seen_e[e.idx()] {
                        seen_e[e.idx()] = true;
                        zone.push(e);
                        if zone.len() == want {
                            return zone;
                        }
                    }
                    if !seen_v[w.idx()] {
                        seen_v[w.idx()] = true;
                        next.push(w);
                    }
                }
            }
            frontier = next;
        }
        zone
    }

    /// Storm epoch `epoch`'s re-weights, expressed against the
    /// **free-flow** network `base` (never the congested one, so storms
    /// do not compound). Even epochs congest — each zone edge scales by
    /// a jittered factor in `[0.8, 1.2] · peak_factor` (clamped ≥ 1) —
    /// and odd epochs clear back to free flow exactly.
    pub fn storm(&self, base: &RoadNetwork, epoch: usize) -> Vec<EdgeWeight> {
        let zone = self.storm_zone(base);
        if epoch % 2 == 1 {
            return zone
                .into_iter()
                .map(|e| EdgeWeight {
                    edge: e,
                    len: base.edge(e).len,
                })
                .collect();
        }
        let mut rng = SplitMix64::new(self.seed ^ (0xC0_FFEE + epoch as u64));
        zone.into_iter()
            .map(|e| {
                let factor = (self.peak_factor * rng.range(0.8, 1.2)).max(1.0);
                EdgeWeight {
                    edge: e,
                    len: base.edge(e).len * factor,
                }
            })
            .collect()
    }

    /// The [`NetDelta`] of storm epoch `epoch` (no site changes).
    pub fn storm_delta(&self, base: &RoadNetwork, epoch: usize) -> NetDelta {
        NetDelta::reweight(self.storm(base, epoch))
    }

    /// The storm epoch scheduled at `tick`, if any: storms fire at
    /// `storm_every, 2·storm_every, …` and alternate congest/clear.
    pub fn storm_epoch_at(&self, tick: usize) -> Option<usize> {
        if self.storm_every == 0 || tick == 0 || !tick.is_multiple_of(self.storm_every) {
            return None;
        }
        Some(tick / self.storm_every - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_roadnet::generators::{grid_network, GridConfig};

    fn net() -> RoadNetwork {
        grid_network(
            &GridConfig {
                cols: 10,
                rows: 10,
                ..GridConfig::default()
            },
            9,
        )
        .unwrap()
    }

    #[test]
    fn hub_is_central_and_deterministic() {
        let net = net();
        let rush = RushHour::default();
        let hub = rush.hub(&net);
        assert_eq!(hub, rush.hub(&net));
        // Central: strictly inside the grid, not a corner.
        assert_ne!(hub, VertexId(0));
        assert_ne!(hub, VertexId(net.num_vertices() as u32 - 1));
    }

    #[test]
    fn commutes_are_correlated_through_the_hub() {
        let net = net();
        let rush = RushHour::default();
        let hub = rush.hub(&net);
        for c in 0..6 {
            let tour = rush.commuter_tour(&net, c).unwrap();
            assert!(tour.vertices().contains(&hub), "commuter {c} misses hub");
            assert_eq!(tour.vertices().first(), tour.vertices().last());
            // Deterministic per client, distinct across clients.
            let again = rush.commuter_tour(&net, c).unwrap();
            assert_eq!(tour.vertices(), again.vertices());
        }
        assert_ne!(
            rush.commuter_tour(&net, 0).unwrap().vertices(),
            rush.commuter_tour(&net, 1).unwrap().vertices()
        );
    }

    #[test]
    fn storm_zone_is_bfs_local_to_the_hub() {
        let net = net();
        let rush = RushHour {
            storm_edges: 12,
            ..RushHour::default()
        };
        let zone = rush.storm_zone(&net);
        assert_eq!(zone.len(), 12);
        // No duplicates.
        let mut ids: Vec<u32> = zone.iter().map(|e| e.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 12);
        // The first zone edges touch the hub itself.
        let hub = rush.hub(&net);
        let rec = net.edge(zone[0]);
        assert!(rec.u == hub || rec.v == hub);
    }

    #[test]
    fn storms_alternate_and_never_compound() {
        let net = net();
        let rush = RushHour::default();
        let congest = rush.storm(&net, 0);
        assert!(!congest.is_empty());
        for w in &congest {
            let base = net.edge(w.edge).len;
            assert!(w.len >= base, "congestion only scales up");
            assert!(w.len <= base * rush.peak_factor * 1.2 + 1e-12);
        }
        // The clear epoch restores free flow bit-for-bit.
        let clear = rush.storm(&net, 1);
        for w in &clear {
            assert_eq!(w.len.to_bits(), net.edge(w.edge).len.to_bits());
        }
        // Applying congest then clear round-trips the network exactly.
        let stormed = net.reweighted(&congest).unwrap();
        let cleared = stormed.reweighted(&clear).unwrap();
        for e in 0..net.num_edges() {
            let e = EdgeId(e as u32);
            assert_eq!(cleared.edge(e).len.to_bits(), net.edge(e).len.to_bits());
        }
        // Different congest epochs jitter differently.
        let congest2 = rush.storm(&net, 2);
        assert_ne!(congest[0].len.to_bits(), congest2[0].len.to_bits());
    }

    #[test]
    fn storm_schedule_alternates() {
        let rush = RushHour {
            storm_every: 10,
            ..RushHour::default()
        };
        assert_eq!(rush.storm_epoch_at(0), None);
        assert_eq!(rush.storm_epoch_at(5), None);
        assert_eq!(rush.storm_epoch_at(10), Some(0));
        assert_eq!(rush.storm_epoch_at(20), Some(1));
        assert_eq!(rush.storm_epoch_at(30), Some(2));
        let quiet = RushHour {
            storm_every: 0,
            ..RushHour::default()
        };
        assert_eq!(quiet.storm_epoch_at(10), None);
    }
}

//! Space-parameterized fleet generation.
//!
//! [`SpaceWorkload`] extends an `insq_core::Space` with everything a
//! fleet run needs that is *not* part of query processing: building the
//! index snapshot of each epoch version from a [`FleetScenario`], and
//! producing every client's position at every tick. One generic harness
//! (`insq-server`'s cross-space conformance suite, `insq-bench`'s fleet
//! experiments) then drives any space through the identical scenario —
//! a new space implements this trait once and inherits all of them.
//!
//! Everything derives deterministically from the scenario's master seed,
//! so fleet runs are exactly reproducible — which is what the
//! thread-count equivalence tests rely on.

use std::sync::Arc;

use insq_core::{Euclidean, Network, Space, WeightedEuclidean};
use insq_geom::Trajectory;
use insq_index::{AxisWeights, VorTree, WeightedVorTree};
use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
use insq_roadnet::{NetTrajectory, NetworkWorld, RoadNetwork, SiteSet};

use crate::fleet::FleetScenario;

/// A [`Space`] that knows how to materialise [`FleetScenario`]s.
pub trait SpaceWorkload: Space {
    /// Prebuilt per-run motion state: client trajectories, plus (on road
    /// networks) the street network the index snapshots share.
    type Fleet: Send + Sync;

    /// Materialises the fleet's motion state (client trajectories etc.).
    fn make_fleet(sc: &FleetScenario) -> Self::Fleet;

    /// Builds the index snapshot of epoch `version` (0 = the initial
    /// world; each scheduled update publishes the next version).
    fn build_index(sc: &FleetScenario, fleet: &Self::Fleet, version: usize) -> Self::Index;

    /// Client `client`'s position at `tick`.
    fn position(sc: &FleetScenario, fleet: &Self::Fleet, client: usize, tick: usize) -> Self::Pos;

    /// The brute-force kNN at a position — forwarded from
    /// [`Space::brute_knn`] so harnesses can stay generic over this one
    /// trait.
    fn brute(index: &Self::Index, pos: Self::Pos, k: usize) -> Vec<Self::SiteId> {
        Self::brute_knn(index, pos, k)
    }
}

impl SpaceWorkload for Euclidean {
    type Fleet = Vec<Trajectory>;

    fn make_fleet(sc: &FleetScenario) -> Vec<Trajectory> {
        (0..sc.clients).map(|c| sc.client_trajectory(c)).collect()
    }

    fn build_index(sc: &FleetScenario, _fleet: &Vec<Trajectory>, version: usize) -> VorTree {
        VorTree::build(sc.points(version), sc.clip_window()).expect("generated data is valid")
    }

    fn position(
        sc: &FleetScenario,
        fleet: &Vec<Trajectory>,
        client: usize,
        tick: usize,
    ) -> insq_geom::Point {
        sc.position(&fleet[client], client, tick)
    }
}

impl SpaceWorkload for WeightedEuclidean {
    type Fleet = Vec<Trajectory>;

    fn make_fleet(sc: &FleetScenario) -> Vec<Trajectory> {
        (0..sc.clients).map(|c| sc.client_trajectory(c)).collect()
    }

    fn build_index(
        sc: &FleetScenario,
        _fleet: &Vec<Trajectory>,
        version: usize,
    ) -> WeightedVorTree {
        WeightedVorTree::build(sc.points(version), sc.clip_window(), sc.weights())
            .expect("generated data is valid")
    }

    fn position(
        sc: &FleetScenario,
        fleet: &Vec<Trajectory>,
        client: usize,
        tick: usize,
    ) -> insq_geom::Point {
        sc.position(&fleet[client], client, tick)
    }
}

/// The motion state of a road-network fleet: the shared street network
/// and one shortest-path tour per client.
#[derive(Debug)]
pub struct NetFleet {
    /// The street network every epoch version shares.
    pub net: Arc<RoadNetwork>,
    /// Per-client tours.
    pub tours: Vec<NetTrajectory>,
}

impl SpaceWorkload for Network {
    type Fleet = NetFleet;

    fn make_fleet(sc: &FleetScenario) -> NetFleet {
        // A jittered grid with roughly four vertices per data object, so
        // site density stays comparable across scenario sizes.
        let side = ((4 * sc.n.max(4)) as f64).sqrt().ceil() as u32;
        let side = side.clamp(4, 200);
        let net = Arc::new(
            grid_network(
                &GridConfig {
                    cols: side,
                    rows: side,
                    ..GridConfig::default()
                },
                sc.seed,
            )
            .expect("valid grid"),
        );
        let tours = (0..sc.clients)
            .map(|c| {
                NetTrajectory::random_tour(&net, 6, sc.seed.wrapping_add(1 + c as u64))
                    .expect("connected network")
            })
            .collect();
        NetFleet { net, tours }
    }

    fn build_index(sc: &FleetScenario, fleet: &NetFleet, version: usize) -> NetworkWorld {
        let seed = sc
            .seed
            .wrapping_add((version as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let n = sc.n.min(fleet.net.num_vertices() / 2).max(1);
        let vertices = random_site_vertices(&fleet.net, n, seed).expect("enough vertices");
        let sites = SiteSet::new(&fleet.net, vertices).expect("distinct sites");
        NetworkWorld::build(Arc::clone(&fleet.net), sites)
    }

    fn position(
        sc: &FleetScenario,
        fleet: &NetFleet,
        client: usize,
        tick: usize,
    ) -> insq_roadnet::NetPosition {
        let tour = &fleet.tours[client];
        let phase = sc.client_phase(client) * tour.length();
        tour.position_looped(&fleet.net, phase + sc.speed * tick as f64)
    }
}

/// The scenario's [`AxisWeights`] (weighted-Euclidean space only; other
/// spaces ignore it). Falls back to [`AxisWeights::UNIT`] when the
/// configured pair is invalid.
impl FleetScenario {
    /// See the `axis_weights` field.
    pub fn weights(&self) -> AxisWeights {
        AxisWeights::new(self.axis_weights.0, self.axis_weights.1).unwrap_or(AxisWeights::UNIT)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> FleetScenario {
        FleetScenario {
            clients: 4,
            n: 60,
            ticks: 10,
            ..Default::default()
        }
    }

    #[test]
    fn euclidean_workload_is_deterministic() {
        let sc = small();
        let fleet = Euclidean::make_fleet(&sc);
        let idx = Euclidean::build_index(&sc, &fleet, 0);
        assert_eq!(idx.len(), 60);
        let p1 = Euclidean::position(&sc, &fleet, 2, 5);
        let p2 = Euclidean::position(&sc, &fleet, 2, 5);
        assert_eq!(p1, p2);
    }

    #[test]
    fn weighted_workload_applies_the_scenario_weights() {
        let sc = FleetScenario {
            axis_weights: (1.0, 3.0),
            ..small()
        };
        let fleet = WeightedEuclidean::make_fleet(&sc);
        let idx = WeightedEuclidean::build_index(&sc, &fleet, 0);
        assert_eq!(idx.weights(), AxisWeights::new(1.0, 3.0).unwrap());
        // Same data points as the Euclidean index, different metric.
        let plain = Euclidean::build_index(&small(), &Euclidean::make_fleet(&small()), 0);
        assert_eq!(idx.len(), plain.len());
    }

    #[test]
    fn bad_weights_fall_back_to_unit() {
        let sc = FleetScenario {
            axis_weights: (0.0, -1.0),
            ..small()
        };
        assert_eq!(sc.weights(), AxisWeights::UNIT);
    }

    #[test]
    fn network_workload_shares_the_net_across_versions() {
        let sc = small();
        let fleet = Network::make_fleet(&sc);
        let w0 = Network::build_index(&sc, &fleet, 0);
        let w1 = Network::build_index(&sc, &fleet, 1);
        assert!(Arc::ptr_eq(&w0.net, &w1.net), "one street network");
        assert_eq!(w0.sites.len(), w1.sites.len());
        assert_ne!(w0.sites.vertices(), w1.sites.vertices(), "sites reshuffle");
        let pos = Network::position(&sc, &fleet, 1, 3);
        assert_eq!(pos, Network::position(&sc, &fleet, 1, 3));
    }
}

//! Fleet workload generation: N concurrent clients over one shared,
//! epoch-versioned data set.
//!
//! A [`FleetScenario`] describes everything an `insq-server` fleet run
//! needs: the data set per epoch version (the server republishes at the
//! scheduled update ticks), a per-client trajectory drawn from a mix of
//! [`TrajectoryKind`]s, and the query parameters. Everything derives
//! deterministically from the master seed, so fleet runs are exactly
//! reproducible — which is what the thread-count equivalence tests rely
//! on.

use insq_geom::{Aabb, Point, Trajectory};

use crate::datasets::Distribution;
use crate::trajectories::TrajectoryKind;

/// A multi-client fleet scenario (Euclidean mode).
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FleetScenario {
    /// Number of concurrent moving queries.
    pub clients: usize,
    /// Number of data objects per epoch version.
    pub n: usize,
    /// Query parameter k.
    pub k: usize,
    /// Prefetch ratio ρ.
    pub rho: f64,
    /// Data distribution (all epoch versions draw from it with distinct
    /// seeds — an update reshuffles the object set).
    pub distribution: Distribution,
    /// The trajectory mix: client `i` uses `mix[i % mix.len()]`, seeded
    /// per client.
    pub mix: Vec<TrajectoryKind>,
    /// Distance travelled per tick.
    pub speed: f64,
    /// Number of timestamps to simulate.
    pub ticks: usize,
    /// Update schedule: ticks at which the server publishes a rebuilt
    /// index (epoch bumps), ascending.
    pub updates: Vec<usize>,
    /// Per-axis metric weights `(wx, wy)` — used by the
    /// weighted-Euclidean space only (see
    /// [`FleetScenario::weights`](crate::spaces)); all other spaces
    /// ignore it.
    pub axis_weights: (f64, f64),
    /// Master seed.
    pub seed: u64,
}

impl Default for FleetScenario {
    fn default() -> Self {
        FleetScenario {
            clients: 1_000,
            n: 10_000,
            k: 5,
            rho: 1.6,
            distribution: Distribution::Uniform,
            mix: vec![
                TrajectoryKind::RandomWaypoint { waypoints: 20 },
                TrajectoryKind::RandomWaypoint { waypoints: 6 },
                TrajectoryKind::Circular { radius_frac: 0.6 },
            ],
            speed: 0.05,
            ticks: 200,
            updates: vec![100],
            axis_weights: (1.0, 2.5),
            seed: 2016,
        }
    }
}

impl FleetScenario {
    /// The canonical data space (matches [`crate::EuclideanScenario`]).
    pub fn data_space(&self) -> Aabb {
        Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    /// The Voronoi clipping window.
    pub fn clip_window(&self) -> Aabb {
        self.data_space().inflated(10.0)
    }

    /// Materialises the data points of epoch `version` (0 = the initial
    /// world; each scheduled update publishes the next version).
    pub fn points(&self, version: usize) -> Vec<Point> {
        let seed = self
            .seed
            .wrapping_add((version as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        self.distribution.generate(self.n, &self.data_space(), seed)
    }

    /// The number of scheduled updates published at or before `tick`,
    /// i.e. the epoch version live at that tick.
    pub fn version_at(&self, tick: usize) -> usize {
        self.updates.iter().filter(|&&u| u <= tick).count()
    }

    /// Materialises client `i`'s trajectory from the mix (an empty mix
    /// falls back to the default random-waypoint model).
    pub fn client_trajectory(&self, client: usize) -> Trajectory {
        let kind = if self.mix.is_empty() {
            TrajectoryKind::RandomWaypoint { waypoints: 20 }
        } else {
            self.mix[client % self.mix.len()]
        };
        let seed = self
            .seed
            .wrapping_mul(0x5851_F42D_4C95_7F2D)
            .wrapping_add(client as u64);
        kind.generate(&self.data_space(), seed)
    }

    /// Client `i`'s phase offset along its trajectory, so clients of the
    /// same (seed-insensitive) kind do not move in lock-step.
    pub fn client_phase(&self, client: usize) -> f64 {
        // A cheap splitmix-style hash into [0, 1).
        let mut x = (client as u64).wrapping_add(self.seed) ^ 0x2545_F491_4F6C_DD1D;
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Client `i`'s position at `tick` on its `traj` (from
    /// [`FleetScenario::client_trajectory`]).
    pub fn position(&self, traj: &Trajectory, client: usize, tick: usize) -> Point {
        let phase = self.client_phase(client) * traj.length();
        traj.position_looped(phase + self.speed * tick as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_distinct_per_client() {
        let sc = FleetScenario {
            clients: 10,
            n: 100,
            ..Default::default()
        };
        let t0 = sc.client_trajectory(0);
        let t0_again = sc.client_trajectory(0);
        assert_eq!(t0.waypoints(), t0_again.waypoints());
        // Clients of the same mix slot still differ (seeded per client)…
        let t3 = sc.client_trajectory(3);
        assert_ne!(t0.waypoints(), t3.waypoints());
        // …and circular clients (seed-insensitive) differ by phase.
        assert_ne!(sc.client_phase(2), sc.client_phase(5));
    }

    #[test]
    fn empty_mix_falls_back_to_random_waypoint() {
        let sc = FleetScenario {
            mix: vec![],
            ..Default::default()
        };
        let t = sc.client_trajectory(0);
        assert!(t.length() > 0.0);
        assert_eq!(t.waypoints().len(), 20);
    }

    #[test]
    fn versions_follow_the_update_schedule() {
        let sc = FleetScenario {
            updates: vec![50, 120],
            ..Default::default()
        };
        assert_eq!(sc.version_at(0), 0);
        assert_eq!(sc.version_at(49), 0);
        assert_eq!(sc.version_at(50), 1);
        assert_eq!(sc.version_at(119), 1);
        assert_eq!(sc.version_at(120), 2);
        // Different versions draw different point sets of the same size.
        let p0 = sc.points(0);
        let p1 = sc.points(1);
        assert_eq!(p0.len(), p1.len());
        assert_ne!(p0, p1);
    }

    #[test]
    fn positions_stay_inside_the_space() {
        let sc = FleetScenario::default();
        for client in [0usize, 1, 2, 7] {
            let traj = sc.client_trajectory(client);
            for tick in [0usize, 13, 199, 5_000] {
                assert!(sc.data_space().contains(sc.position(&traj, client, tick)));
            }
        }
    }
}

//! Data-object (site) generators.
//!
//! The INSQ demo's 2D-plane mode generates `n` data objects in the data
//! space; the companion evaluation varies `n` and the spatial distribution.
//! All generators are seeded and guarantee *pairwise distinct* points
//! (duplicate sites have no Voronoi cell and are rejected by
//! `insq-voronoi`).

use insq_geom::{Aabb, Point};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashSet;

/// Spatial distribution of generated data objects.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Distribution {
    /// Uniform over the data space.
    Uniform,
    /// A mixture of `clusters` isotropic Gaussians with standard deviation
    /// `spread` (as a fraction of the data-space width), clipped to the
    /// space — models POI hot spots (the "city" workload).
    Clustered {
        /// Number of Gaussian clusters.
        clusters: usize,
        /// Standard deviation as a fraction of the space width.
        spread: f64,
    },
    /// A jittered grid — models regularly spaced infrastructure (gas
    /// stations along a street plan).
    GridJitter {
        /// Jitter as a fraction of the grid spacing.
        jitter: f64,
    },
}

impl Distribution {
    /// Generates `n` pairwise-distinct points in `bounds`.
    pub fn generate(&self, n: usize, bounds: &Aabb, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut points: Vec<Point> = Vec::with_capacity(n);
        let mut seen: HashSet<(u64, u64)> = HashSet::with_capacity(n * 2);
        let mut push_unique = |p: Point, points: &mut Vec<Point>| -> bool {
            if !bounds.contains(p) {
                return false;
            }
            let key = ((p.x + 0.0).to_bits(), (p.y + 0.0).to_bits());
            if seen.insert(key) {
                points.push(p);
                true
            } else {
                false
            }
        };

        match *self {
            Distribution::Uniform => {
                while points.len() < n {
                    let p = Point::new(
                        rng.random_range(bounds.min.x..bounds.max.x),
                        rng.random_range(bounds.min.y..bounds.max.y),
                    );
                    push_unique(p, &mut points);
                }
            }
            Distribution::Clustered { clusters, spread } => {
                let clusters = clusters.max(1);
                let centers: Vec<Point> = (0..clusters)
                    .map(|_| {
                        Point::new(
                            rng.random_range(bounds.min.x..bounds.max.x),
                            rng.random_range(bounds.min.y..bounds.max.y),
                        )
                    })
                    .collect();
                let sigma = spread.max(1e-6) * bounds.width();
                while points.len() < n {
                    let c = centers[rng.random_range(0..clusters)];
                    // Box-Muller.
                    let u1: f64 = rng.random::<f64>().max(1e-12);
                    let u2: f64 = rng.random();
                    let r = (-2.0 * u1.ln()).sqrt();
                    let p = Point::new(
                        c.x + sigma * r * (std::f64::consts::TAU * u2).cos(),
                        c.y + sigma * r * (std::f64::consts::TAU * u2).sin(),
                    );
                    push_unique(p, &mut points);
                }
            }
            Distribution::GridJitter { jitter } => {
                let side = (n as f64).sqrt().ceil() as usize;
                let dx = bounds.width() / side as f64;
                let dy = bounds.height() / side as f64;
                'outer: for i in 0..side {
                    for j in 0..side {
                        if points.len() >= n {
                            break 'outer;
                        }
                        let p = Point::new(
                            bounds.min.x
                                + (i as f64 + 0.5 + rng.random_range(-jitter..=jitter)) * dx,
                            bounds.min.y
                                + (j as f64 + 0.5 + rng.random_range(-jitter..=jitter)) * dy,
                        );
                        if !push_unique(p, &mut points) {
                            // Extremely unlikely; fill with a uniform draw.
                            while !push_unique(
                                Point::new(
                                    rng.random_range(bounds.min.x..bounds.max.x),
                                    rng.random_range(bounds.min.y..bounds.max.y),
                                ),
                                &mut points,
                            ) {}
                        }
                    }
                }
                // Top up if clipping dropped some.
                while points.len() < n {
                    let p = Point::new(
                        rng.random_range(bounds.min.x..bounds.max.x),
                        rng.random_range(bounds.min.y..bounds.max.y),
                    );
                    push_unique(p, &mut points);
                }
            }
        }
        points
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> Aabb {
        Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    #[test]
    fn uniform_count_bounds_distinct() {
        let pts = Distribution::Uniform.generate(500, &space(), 1);
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| space().contains(*p)));
        let mut keys: Vec<(u64, u64)> =
            pts.iter().map(|p| (p.x.to_bits(), p.y.to_bits())).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 500);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Distribution::Uniform.generate(50, &space(), 7);
        let b = Distribution::Uniform.generate(50, &space(), 7);
        assert_eq!(a, b);
        let c = Distribution::Uniform.generate(50, &space(), 8);
        assert_ne!(a, c);
    }

    #[test]
    fn clustered_concentrates_mass() {
        let pts = Distribution::Clustered {
            clusters: 3,
            spread: 0.02,
        }
        .generate(600, &space(), 11);
        assert_eq!(pts.len(), 600);
        // Average nearest-neighbor distance must be far below uniform's.
        let nn_dist = |set: &[Point]| -> f64 {
            let mut total = 0.0;
            for (i, p) in set.iter().enumerate().take(100) {
                let mut best = f64::INFINITY;
                for (j, q) in set.iter().enumerate() {
                    if i != j {
                        best = best.min(p.distance_sq(*q));
                    }
                }
                total += best.sqrt();
            }
            total / 100.0
        };
        let uniform = Distribution::Uniform.generate(600, &space(), 11);
        assert!(nn_dist(&pts) < nn_dist(&uniform) * 0.8);
    }

    #[test]
    fn grid_jitter_covers_space() {
        let pts = Distribution::GridJitter { jitter: 0.2 }.generate(400, &space(), 5);
        assert_eq!(pts.len(), 400);
        // Every quadrant is populated.
        for (qx, qy) in [(0.0, 0.0), (50.0, 0.0), (0.0, 50.0), (50.0, 50.0)] {
            let quadrant = Aabb::new(Point::new(qx, qy), Point::new(qx + 50.0, qy + 50.0));
            assert!(
                pts.iter().any(|p| quadrant.contains(*p)),
                "empty quadrant at ({qx},{qy})"
            );
        }
    }
}

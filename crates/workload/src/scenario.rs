//! Declarative experiment scenarios (the demo's "Save"/"Read" settings).
//!
//! A scenario captures everything needed to reproduce a run: data
//! distribution, trajectory model, query parameters and seeds. With the
//! `serde` feature the configs serialize, which is how the benchmark
//! harness records exactly what it measured.

use insq_geom::{Aabb, Point, Trajectory};
use insq_roadnet::generators::{
    grid_network, random_site_vertices, ring_radial_network, GridConfig,
};
use insq_roadnet::{NetTrajectory, RoadNetError, RoadNetwork, SiteSet};

use crate::datasets::Distribution;
use crate::trajectories::TrajectoryKind;

/// Which street-network topology a network scenario generates.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum NetworkKind {
    /// A jittered grid street plan.
    Grid(GridConfig),
    /// A ring-radial ("old town") layout.
    RingRadial {
        /// Number of concentric rings (≥ 1).
        rings: u32,
        /// Vertices per ring (≥ 3).
        spokes: u32,
        /// Radial spacing between rings.
        spacing: f64,
    },
}

impl NetworkKind {
    /// Generates the network.
    pub fn generate(&self, seed: u64) -> Result<RoadNetwork, RoadNetError> {
        match self {
            NetworkKind::Grid(cfg) => grid_network(cfg, seed),
            NetworkKind::RingRadial {
                rings,
                spokes,
                spacing,
            } => ring_radial_network(*rings, *spokes, *spacing, seed),
        }
    }
}

/// A Euclidean-mode experiment scenario.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EuclideanScenario {
    /// Number of data objects.
    pub n: usize,
    /// Query parameter k.
    pub k: usize,
    /// Prefetch ratio ρ.
    pub rho: f64,
    /// Data distribution.
    pub distribution: Distribution,
    /// Trajectory model.
    pub trajectory: TrajectoryKind,
    /// Distance travelled per tick.
    pub speed: f64,
    /// Number of timestamps to simulate.
    pub ticks: usize,
    /// Master seed (data and trajectory derive distinct streams).
    pub seed: u64,
}

impl Default for EuclideanScenario {
    fn default() -> Self {
        // The demo defaults: k = 5, ρ = 1.6 (Fig. 4 caption).
        EuclideanScenario {
            n: 10_000,
            k: 5,
            rho: 1.6,
            distribution: Distribution::Uniform,
            trajectory: TrajectoryKind::RandomWaypoint { waypoints: 20 },
            speed: 0.05,
            ticks: 2_000,
            seed: 2016,
        }
    }
}

impl EuclideanScenario {
    /// The canonical data space of Euclidean scenarios: the unit square
    /// scaled to 100×100, with clipping margins.
    pub fn data_space(&self) -> Aabb {
        Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
    }

    /// The Voronoi clipping window: the data space plus a margin so
    /// boundary cells are not cut too tightly.
    pub fn clip_window(&self) -> Aabb {
        self.data_space().inflated(10.0)
    }

    /// Materialises the data points.
    pub fn points(&self) -> Vec<Point> {
        self.distribution
            .generate(self.n, &self.data_space(), self.seed)
    }

    /// Materialises the query trajectory.
    pub fn query_trajectory(&self) -> Trajectory {
        self.trajectory
            .generate(&self.data_space(), self.seed ^ 0x5117_AB1E)
    }
}

/// A road-network-mode experiment scenario.
#[derive(Debug, Clone)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct NetworkScenario {
    /// Street-network topology.
    pub network: NetworkKind,
    /// Number of data objects (sites on vertices).
    pub sites: usize,
    /// Query parameter k.
    pub k: usize,
    /// Prefetch ratio ρ.
    pub rho: f64,
    /// Waypoints of the random shortest-path tour.
    pub tour_hops: usize,
    /// Network distance travelled per tick.
    pub speed: f64,
    /// Number of timestamps.
    pub ticks: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for NetworkScenario {
    fn default() -> Self {
        NetworkScenario {
            network: NetworkKind::Grid(GridConfig::default()),
            sites: 40,
            k: 5,
            rho: 1.6,
            tour_hops: 10,
            speed: 0.05,
            ticks: 2_000,
            seed: 2016,
        }
    }
}

impl NetworkScenario {
    /// Materialises the network, sites and tour.
    pub fn build(&self) -> Result<NetworkInstance, RoadNetError> {
        let net = self.network.generate(self.seed)?;
        let site_vertices = random_site_vertices(&net, self.sites, self.seed ^ 0xBEEF)?;
        let sites = SiteSet::new(&net, site_vertices)?;
        let tour = NetTrajectory::random_tour(&net, self.tour_hops, self.seed ^ 0x70_u64)?;
        Ok(NetworkInstance { net, sites, tour })
    }
}

/// A materialised network scenario.
#[derive(Debug)]
pub struct NetworkInstance {
    /// The road network.
    pub net: RoadNetwork,
    /// The data objects.
    pub sites: SiteSet,
    /// The query tour.
    pub tour: NetTrajectory,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_scenario_materialises() {
        let sc = EuclideanScenario {
            n: 200,
            ticks: 10,
            ..Default::default()
        };
        let pts = sc.points();
        assert_eq!(pts.len(), 200);
        let t = sc.query_trajectory();
        assert!(t.length() > 0.0);
        // Points are inside the clip window.
        for p in &pts {
            assert!(sc.clip_window().contains(*p));
        }
    }

    #[test]
    fn network_scenario_materialises() {
        let sc = NetworkScenario {
            sites: 12,
            ticks: 10,
            ..Default::default()
        };
        let inst = sc.build().unwrap();
        assert_eq!(inst.sites.len(), 12);
        assert!(inst.tour.length() > 0.0);
        assert!(inst.net.is_connected());
    }

    #[test]
    fn ring_radial_scenario_materialises() {
        let sc = NetworkScenario {
            network: NetworkKind::RingRadial {
                rings: 4,
                spokes: 12,
                spacing: 1.0,
            },
            sites: 10,
            ticks: 10,
            ..Default::default()
        };
        let inst = sc.build().unwrap();
        assert_eq!(inst.net.num_vertices(), 1 + 4 * 12);
        assert!(inst.net.is_connected());
        assert_eq!(inst.sites.len(), 10);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn scenarios_roundtrip_via_serde_json_like() {
        // Without a JSON crate, verify the serde impls exist by using the
        // bincode-free `serde::Serialize` trait object path: a simple
        // token check via Debug equality after a clone suffices here.
        let sc = EuclideanScenario::default();
        let copy = sc.clone();
        assert_eq!(format!("{sc:?}"), format!("{copy:?}"));
    }
}

//! # insq-workload
//!
//! Deterministic workload generation for the INSQ system: data-object
//! distributions ([`Distribution`]), query trajectory models
//! ([`TrajectoryKind`]), complete experiment scenarios
//! ([`EuclideanScenario`], [`NetworkScenario`]) with serde-serializable
//! configuration (the demo UI's "Save"/"Read" settings), and
//! space-parameterized fleet generation ([`SpaceWorkload`]): one
//! [`FleetScenario`] materialises index snapshots and client positions
//! for every registered `insq_core::Space` — plus the transposed,
//! client-side view ([`client_updates`]): the per-client
//! position-update streams a serving layer (`insq-net`) feeds over the
//! wire — and the dynamic-traffic workload ([`RushHour`]): correlated
//! hub-bound commuter tours plus alternating congest/clear weight
//! storms, the adversarial input for traffic delta epochs.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
pub mod fleet;
pub mod rush;
pub mod scenario;
pub mod spaces;
pub mod stream;
pub mod trajectories;

pub use datasets::Distribution;
pub use fleet::FleetScenario;
pub use rush::RushHour;
pub use scenario::{EuclideanScenario, NetworkInstance, NetworkKind, NetworkScenario};
pub use spaces::{NetFleet, SpaceWorkload};
pub use stream::{client_updates, UpdateStream};
pub use trajectories::TrajectoryKind;

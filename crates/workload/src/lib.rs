//! # insq-workload
//!
//! Deterministic workload generation for the INSQ system: data-object
//! distributions ([`Distribution`]), query trajectory models
//! ([`TrajectoryKind`]), complete experiment scenarios
//! ([`EuclideanScenario`], [`NetworkScenario`]) with serde-serializable
//! configuration (the demo UI's "Save"/"Read" settings), and
//! space-parameterized fleet generation ([`SpaceWorkload`]): one
//! [`FleetScenario`] materialises index snapshots and client positions
//! for every registered `insq_core::Space`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
pub mod fleet;
pub mod scenario;
pub mod spaces;
pub mod trajectories;

pub use datasets::Distribution;
pub use fleet::FleetScenario;
pub use scenario::{EuclideanScenario, NetworkInstance, NetworkKind, NetworkScenario};
pub use spaces::{NetFleet, SpaceWorkload};
pub use trajectories::TrajectoryKind;

//! # insq-workload
//!
//! Deterministic workload generation for the INSQ system: data-object
//! distributions ([`Distribution`]), query trajectory models
//! ([`TrajectoryKind`]) and complete experiment scenarios
//! ([`EuclideanScenario`], [`NetworkScenario`]) with serde-serializable
//! configuration (the demo UI's "Save"/"Read" settings).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod datasets;
pub mod fleet;
pub mod scenario;
pub mod trajectories;

pub use datasets::Distribution;
pub use fleet::FleetScenario;
pub use scenario::{EuclideanScenario, NetworkInstance, NetworkKind, NetworkScenario};
pub use trajectories::TrajectoryKind;

//! N fleet engines in one process, behind one registry: the
//! [`PartitionGroup`].
//!
//! Each region of a [`ClusterPlan`] gets its own epoch-versioned
//! `World` and `FleetEngine`; the group routes every client to the
//! engine of its home region and, when a fresh position crosses a
//! border, performs the **handoff**: deregister from the old engine,
//! register into the new one (a fresh region-local `QueryId`), tick the
//! new query on the same position in the same group tick. The paper's
//! INS protocol is what makes this cheap — the migrated query simply
//! pays one recomputation at the boundary, exactly like an epoch rebind.
//! A stable cluster-wide [`ClientId`] rides on top, so callers never see
//! region-local ids.
//!
//! Per-tick results come back in [`ClientId`] order with **global** site
//! ids (the ids a single-world deployment would emit) and an explicit
//! [`ClientResult::certified`] bit implementing the overlap-margin
//! contract (see [`crate::plan`]): certified results are bit-identical
//! to the single-world engine's; uncertified ones are exact over the
//! region's replicated site set and flagged, never silently wrong.

use std::collections::BTreeMap;
use std::sync::Arc;

use insq_core::{CoreError, DeltaIndex, InsConfig, MovingKnn, Space};
use insq_geom::Point;
use insq_index::SiteDelta;
use insq_net::WireSpace;
use insq_server::World;
use insq_server::{
    Epoch, FleetConfig, FleetEngine, QueryId, RegionId, SpaceQuery, TickDisposition, TickPolicy,
    TickPos,
};

use crate::plan::{ClusterError, ClusterPlan};

/// A stable cluster-wide client identity. Never reused; survives any
/// number of handoffs (the region-local `QueryId` changes each time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClientId(pub u64);

impl std::fmt::Display for ClientId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// One client's result for one group tick.
#[derive(Debug, Clone, PartialEq)]
pub struct ClientResult {
    /// Which client.
    pub client: ClientId,
    /// The region that served this tick.
    pub region: RegionId,
    /// The *region's* epoch the result was computed against.
    pub epoch: Epoch,
    /// How the region engine advanced the query this tick.
    pub disposition: TickDisposition,
    /// The kNN in **global** site ids, ascending by distance (ties by
    /// id) — directly comparable to a single-world engine's output.
    pub knn: Vec<u32>,
    /// The overlap-margin contract held: the k-th neighbor distance is
    /// within the certify bound, so this is provably the global kNN.
    pub certified: bool,
    /// This tick crossed a partition border (deregister + re-register).
    pub handoff: bool,
}

struct ClientState {
    region: RegionId,
    qid: QueryId,
    cfg: InsConfig,
}

/// N regional `FleetEngine`s behind one position-routed registry, with
/// border handoff. Generic over any planar [`WireSpace`] (Euclidean and
/// weighted-Euclidean in tree).
pub struct PartitionGroup<S: WireSpace + Space<Pos = Point>> {
    plan: ClusterPlan,
    worlds: Vec<Arc<World<S::Index>>>,
    engines: Vec<FleetEngine<S::Index, SpaceQuery<S>>>,
    clients: BTreeMap<ClientId, ClientState>,
    by_qid: Vec<BTreeMap<u64, ClientId>>,
    next_client: u64,
    handoffs: u64,
    certify_bound: f64,
}

impl<S: WireSpace + Space<Pos = Point>> std::fmt::Debug for PartitionGroup<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PartitionGroup")
            .field("space", &S::NAME)
            .field("plan", &self.plan)
            .field("clients", &self.clients.len())
            .field("handoffs", &self.handoffs)
            .finish_non_exhaustive()
    }
}

impl<S: WireSpace + Space<Pos = Point>> PartitionGroup<S> {
    /// Wraps pre-built regional worlds (one per plan region, each
    /// indexing exactly [`ClusterPlan::region_sites`] in that order)
    /// into a routed group. Panics if the world count does not match the
    /// plan.
    ///
    /// The certify bound defaults to the plan's margin — correct when
    /// the space's distance *is* Euclidean distance. For metrics that
    /// differ (weighted axes), set the bound to the largest metric
    /// distance guaranteed covered by a Euclidean `margin` via
    /// [`PartitionGroup::set_certify_bound`] (for axis weights `w`,
    /// `margin * w.min()`).
    pub fn new(
        plan: ClusterPlan,
        worlds: Vec<Arc<World<S::Index>>>,
        fleet: FleetConfig,
    ) -> PartitionGroup<S> {
        assert_eq!(
            worlds.len(),
            plan.regions(),
            "one world per plan region required"
        );
        let engines = worlds
            .iter()
            .map(|w| FleetEngine::new(Arc::clone(w), fleet))
            .collect();
        let by_qid = (0..plan.regions()).map(|_| BTreeMap::new()).collect();
        let certify_bound = plan.margin();
        PartitionGroup {
            plan,
            worlds,
            engines,
            clients: BTreeMap::new(),
            by_qid,
            next_client: 0,
            handoffs: 0,
            certify_bound,
        }
    }

    /// The plan (partition map + id tables).
    pub fn plan(&self) -> &ClusterPlan {
        &self.plan
    }

    /// The regional worlds, indexed by region.
    pub fn worlds(&self) -> &[Arc<World<S::Index>>] {
        &self.worlds
    }

    /// Live clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Whether no clients are registered.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// Total border crossings performed so far.
    pub fn handoffs(&self) -> u64 {
        self.handoffs
    }

    /// Live clients per region.
    pub fn population(&self) -> Vec<usize> {
        self.by_qid.iter().map(BTreeMap::len).collect()
    }

    /// The metric-distance bound used for certification (see
    /// [`PartitionGroup::new`]).
    pub fn certify_bound(&self) -> f64 {
        self.certify_bound
    }

    /// Overrides the certification bound (weighted metrics).
    pub fn set_certify_bound(&mut self, bound: f64) {
        self.certify_bound = bound;
    }

    /// The region currently serving a client.
    pub fn region_of(&self, client: ClientId) -> Option<RegionId> {
        self.clients.get(&client).map(|c| c.region)
    }

    /// Registers a client at `pos`: it is routed to its home region's
    /// engine and first ticked at the next [`PartitionGroup::tick`]
    /// (feed it `TickPos::Fresh(pos)` there).
    pub fn register(&mut self, pos: Point, cfg: InsConfig) -> Result<ClientId, CoreError> {
        let region = self.plan.home(pos);
        let qid = self.engines[region.0 as usize]
            .register(SpaceQuery::new(&self.worlds[region.0 as usize], cfg)?);
        let cid = ClientId(self.next_client);
        self.next_client += 1;
        self.by_qid[region.0 as usize].insert(qid.0, cid);
        self.clients.insert(cid, ClientState { region, qid, cfg });
        Ok(cid)
    }

    /// Removes a client from its region engine.
    pub fn deregister(&mut self, client: ClientId) -> bool {
        let Some(st) = self.clients.remove(&client) else {
            return false;
        };
        self.by_qid[st.region.0 as usize].remove(&st.qid.0);
        self.engines[st.region.0 as usize].deregister(st.qid);
        true
    }

    /// One cluster tick: route fresh positions (performing handoffs in
    /// deterministic [`ClientId`] order), tick every non-empty region
    /// engine under `policy`, and return per-client results in
    /// [`ClientId`] order with global ids and certification bits.
    ///
    /// Panics if a handed-off client cannot re-register in its new
    /// region (a region must be able to serve the client's `k`; size
    /// partitions accordingly).
    pub fn tick<F>(&mut self, policy: TickPolicy, positions: F) -> Vec<ClientResult>
    where
        F: Fn(ClientId) -> TickPos<Point>,
    {
        // Route: collect each client's position, crossing borders first.
        let cids: Vec<ClientId> = self.clients.keys().copied().collect();
        let mut feeds: Vec<BTreeMap<u64, TickPos<Point>>> =
            (0..self.plan.regions()).map(|_| BTreeMap::new()).collect();
        let mut crossed: Vec<ClientId> = Vec::new();
        for cid in cids {
            let tp = positions(cid);
            if let TickPos::Fresh(p) = tp {
                let home = self.plan.home(p);
                let st = self.clients.get(&cid).expect("live client");
                if home != st.region {
                    self.handoff(cid, home);
                    crossed.push(cid);
                }
            }
            let st = self.clients.get(&cid).expect("live client");
            feeds[st.region.0 as usize].insert(st.qid.0, tp);
        }

        // Tick each populated region engine; pair dispositions with
        // queries in the engine's deterministic shard order.
        let mut out: Vec<ClientResult> = Vec::with_capacity(self.clients.len());
        for (r, engine) in self.engines.iter_mut().enumerate() {
            if engine.is_empty() {
                continue;
            }
            let feed = &feeds[r];
            let mut dispositions: Vec<(QueryId, TickDisposition)> = Vec::new();
            let summary = engine.tick(policy, |id| feed[&id.0], &mut dispositions);
            let mut at = 0usize;
            let plan = &self.plan;
            let by_qid = &self.by_qid[r];
            let bound = self.certify_bound;
            engine.for_each_query(|qid, q| {
                let (did, disposition) = dispositions[at];
                at += 1;
                debug_assert_eq!(did, qid, "disposition order matches query order");
                let client = by_qid[&qid.0];
                let p = q.processor();
                let knn_d = p.current_knn_with_dists();
                let full = knn_d.len() >= p.config().k;
                let kth = knn_d.last().map_or(f64::INFINITY, |&(_, d)| d);
                let knn = q
                    .current_knn()
                    .into_iter()
                    .map(|id| {
                        plan.globalize(RegionId(r as u32), S::id_to_wire(id))
                            .expect("engine ids map to plan")
                    })
                    .collect();
                out.push(ClientResult {
                    client,
                    region: RegionId(r as u32),
                    epoch: summary.epoch,
                    disposition,
                    knn,
                    certified: full && kth <= bound,
                    handoff: false,
                });
            });
        }
        for res in out.iter_mut() {
            if crossed.binary_search(&res.client).is_ok() {
                res.handoff = true;
            }
        }
        out.sort_by_key(|r| r.client);
        out
    }

    fn handoff(&mut self, cid: ClientId, to: RegionId) {
        let st = self.clients.get(&cid).expect("live client");
        let (from, old_qid, cfg) = (st.region, st.qid, st.cfg);
        self.engines[from.0 as usize].deregister(old_qid);
        self.by_qid[from.0 as usize].remove(&old_qid.0);
        let query = SpaceQuery::new(&self.worlds[to.0 as usize], cfg)
            .expect("handoff target region must accept the client's config");
        let qid = self.engines[to.0 as usize].register(query);
        self.by_qid[to.0 as usize].insert(qid.0, cid);
        let st = self.clients.get_mut(&cid).expect("live client");
        st.region = to;
        st.qid = qid;
        self.handoffs += 1;
    }
}

impl<S> PartitionGroup<S>
where
    S: WireSpace + Space<Pos = Point>,
    S::Index: DeltaIndex<Delta = SiteDelta>,
    <S::Index as DeltaIndex>::Error: std::fmt::Display,
{
    /// Routes one **global** delta epoch to the affected regions only:
    /// splits it through the plan, applies each non-empty local delta to
    /// that region's world (one epoch bump there — queries rebind at
    /// their next tick), and leaves unaffected regions' epochs
    /// untouched. Returns the new epoch per region (`None` =
    /// unaffected).
    pub fn apply(&mut self, delta: &SiteDelta) -> Result<Vec<Option<Epoch>>, ClusterError> {
        let locals = self.plan.split(delta)?;
        let mut epochs = Vec::with_capacity(locals.len());
        for (r, local) in locals.iter().enumerate() {
            if local.is_empty() {
                epochs.push(None);
                continue;
            }
            match self.worlds[r].apply(local) {
                Ok(e) => epochs.push(Some(e)),
                Err(e) => return Err(ClusterError::Index(format!("region {r}: {e}"))),
            }
        }
        Ok(epochs)
    }
}

//! The cluster's wire front-end: one server socket, N partition
//! backends, transparent handoff.
//!
//! [`RouterServer`] speaks the ordinary `insq-net` protocol to clients
//! — a phone app talks to a partitioned deployment exactly the way it
//! talks to a single [`insq_net::NetServer`] — and multiplexes every
//! session over per-session [`ClientCore`] connections to the backend
//! serving the session's current region. Three translations happen in
//! flight:
//!
//! * **Routing**: `Register` and `PositionUpdate` frames carry planar
//!   positions; the router homes them through its
//!   [`Partitioner`] and forwards to the
//!   backend of that region.
//! * **Id rewrite**: backend `KnnResult` frames carry region-local site
//!   ids; the router rewrites them to global ids through its rewrite
//!   tables ([`RouterServer::set_tables`]) so clients only ever see the
//!   ids a single-world deployment would emit. `FLAG_UNCERTIFIED` passes
//!   through untouched.
//! * **Handoff**: when a fresh position homes in a different region, the
//!   router deregisters at the old backend, registers the same query
//!   config at the new one (the position doubles as the first tick, so
//!   the stream never skips a beat), and **drains** the old connection —
//!   in-flight results forward to the client in order until the old
//!   backend's clean close — before reading from the new one. The
//!   client keeps one uninterrupted connection and one ordered result
//!   stream throughout.
//!
//! Failure is isolated per session: a malformed or protocol-violating
//! backend frame fails only the session it arrived on
//! ([`ErrorCode::Malformed`]); an unexpected backend disconnect fails
//! only the sessions homed on that backend
//! ([`ErrorCode::Unavailable`]). Other sessions — including sessions
//! multiplexed over the same router to other partitions — keep
//! streaming.
//!
//! Rewrite tables are swapped atomically ([`RouterServer::set_tables`])
//! by whatever orchestrates delta epochs across the backends; swap them
//! while the affected backend is quiescent (between ticks), in the same
//! breath as the backend's `World::apply`, so no in-flight result is
//! rewritten through the wrong table generation.

use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};
use std::thread::JoinHandle;
use std::time::Duration;

use insq_geom::Point;
use insq_net::buffer::READ_CHUNK;
use insq_net::sys::{self, Event, Readiness, ReadinessKind};
use insq_net::wire::{ErrorCode, Message, SpaceKind, WirePos};
use insq_net::{ClientCore, FrameBuf, WriteBuf};
use insq_server::{Partitioner, RegionId};

/// Configuration of a [`RouterServer`].
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend partition servers, indexed by [`RegionId`] — must match
    /// the partitioner's region count.
    pub backends: Vec<SocketAddr>,
    /// Initial rewrite tables (`tables[region][local_id] = global_id`),
    /// typically [`crate::ClusterPlan::tables`]. Empty means identity
    /// (backends already speak global ids).
    pub tables: Vec<Vec<u32>>,
    /// Byte bound of each session's client-facing write buffer.
    pub write_buf: usize,
    /// Hard cap on concurrent sessions (`0` = no cap).
    pub max_sessions: usize,
    /// Which readiness backend drives the routing reactor (the router
    /// multiplexes 2–3 descriptors per session, so it hits the
    /// `poll(2)` scan wall even sooner than the net server). Defaults
    /// like [`insq_net::NetServerConfig::readiness`]: the
    /// `INSQ_READINESS` environment variable, else auto.
    pub readiness: ReadinessKind,
}

impl RouterConfig {
    /// A default-tuned configuration over the given backends.
    pub fn new(backends: Vec<SocketAddr>) -> RouterConfig {
        RouterConfig {
            backends,
            tables: Vec::new(),
            write_buf: 256 * 1024,
            max_sessions: 0,
            readiness: ReadinessKind::from_env(),
        }
    }
}

struct RouterShared {
    part: Arc<dyn Partitioner + Send + Sync>,
    tables: RwLock<Vec<Vec<u32>>>,
    cfg: RouterConfig,
    shutdown: AtomicBool,
    live: AtomicUsize,
    handoffs: AtomicU64,
    bytes_in: AtomicU64,
    bytes_out: AtomicU64,
}

/// The partition-routing wire front-end. See the module docs; built by
/// [`RouterServer::bind`].
pub struct RouterServer {
    shared: Arc<RouterShared>,
    addr: SocketAddr,
    reactor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for RouterServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RouterServer")
            .field("addr", &self.addr)
            .field("backends", &self.shared.cfg.backends.len())
            .field("sessions", &self.live_sessions())
            .field("handoffs", &self.handoffs())
            .finish_non_exhaustive()
    }
}

impl RouterServer {
    /// Binds the client-facing listener and starts the routing reactor.
    /// `part` must have exactly as many regions as `cfg.backends` has
    /// addresses. Bind to port 0 to let the OS pick.
    pub fn bind(
        addr: impl ToSocketAddrs,
        part: Arc<dyn Partitioner + Send + Sync>,
        cfg: RouterConfig,
    ) -> io::Result<RouterServer> {
        assert_eq!(
            part.regions(),
            cfg.backends.len(),
            "one backend address per partition region required"
        );
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        // Opened here, not in the reactor thread, so an unsupported
        // `ReadinessKind` fails the bind call.
        let readiness = Readiness::new(cfg.readiness)?;
        let shared = Arc::new(RouterShared {
            part,
            tables: RwLock::new(cfg.tables.clone()),
            cfg,
            shutdown: AtomicBool::new(false),
            live: AtomicUsize::new(0),
            handoffs: AtomicU64::new(0),
            bytes_in: AtomicU64::new(0),
            bytes_out: AtomicU64::new(0),
        });
        let reactor = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || Router::new(shared, listener, readiness).run())
        };
        Ok(RouterServer {
            shared,
            addr: local,
            reactor: Some(reactor),
        })
    }

    /// The bound client-facing address.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live registered sessions.
    pub fn live_sessions(&self) -> usize {
        self.shared.live.load(Ordering::Relaxed)
    }

    /// Completed mid-session handoffs so far.
    pub fn handoffs(&self) -> u64 {
        self.shared.handoffs.load(Ordering::Relaxed)
    }

    /// Client-side wire bytes `(received, sent)` so far.
    pub fn wire_bytes(&self) -> (u64, u64) {
        (
            self.shared.bytes_in.load(Ordering::Relaxed),
            self.shared.bytes_out.load(Ordering::Relaxed),
        )
    }

    /// Atomically replaces the local→global rewrite tables (after a
    /// delta epoch reshapes the regional site sets). See the module docs
    /// for the quiescence requirement.
    pub fn set_tables(&self, tables: Vec<Vec<u32>>) {
        *self
            .shared
            .tables
            .write()
            .unwrap_or_else(|e| e.into_inner()) = tables;
    }

    /// Stops the reactor, closing every session and backend connection.
    /// Called automatically on drop.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        if let Some(h) = self.reactor.take() {
            let _ = h.join();
        }
    }
}

impl Drop for RouterServer {
    fn drop(&mut self) {
        if !self.shared.shutdown.load(Ordering::SeqCst) {
            self.stop();
        }
    }
}

/// One upstream connection: a non-blocking core plus the region it
/// serves (selecting the rewrite-table row for its frames).
struct Backend {
    core: ClientCore,
    region: RegionId,
    /// What the readiness backend currently has for this leg's fd:
    /// `(read, write, token)`; `None` until the first interest sync
    /// registers it. The token changes when a handoff re-tags the leg
    /// from current to draining.
    reg: Option<(bool, bool, u64)>,
}

impl Backend {
    fn new(core: ClientCore, region: RegionId) -> Backend {
        Backend {
            core,
            region,
            reg: None,
        }
    }
}

/// The query facts needed to re-register at a handoff target.
#[derive(Clone, Copy)]
struct RegFacts {
    space: SpaceKind,
    k: u32,
    rho: f64,
}

/// One client session and its backend leg(s).
struct Session {
    stream: TcpStream,
    rbuf: FrameBuf,
    wbuf: WriteBuf,
    /// The current backend — target of forwarded client frames.
    backend: Option<Backend>,
    /// The old backend during a handoff: forwarded (never written to)
    /// until its clean close, while the current backend stays unread.
    draining: Option<Backend>,
    reg: Option<RegFacts>,
    /// Client sent `Deregister`: close once the backend stream ends.
    finishing: bool,
    /// Client write side: flush `wbuf`, then drop.
    closing: bool,
    /// The `(read, write)` interest registered for the client socket.
    client_reg: (bool, bool),
}

impl Session {
    fn counted_live(&self) -> bool {
        self.reg.is_some() && !self.closing
    }
}

/// Bounded reads per wakeup per socket, as in the net server's reactor.
const READS_PER_WAKEUP: usize = 4;

/// The listener's readiness token (unreachable by any leg token: leg
/// generations are masked to 30 bits, so the top token bits never
/// saturate).
const LISTENER_TOKEN: u64 = u64::MAX;

/// Which leg of a session a readiness token refers to.
const LEG_CLIENT: u64 = 1;
const LEG_CURRENT: u64 = 2;
const LEG_DRAINING: u64 = 3;

/// How long the reactor stops accepting after a resource-exhaustion
/// accept error — same rationale as the net server's reactor (a
/// level-triggered listener would otherwise spin the loop on
/// `EMFILE`).
const ACCEPT_ERROR_PAUSE: Duration = Duration::from_millis(25);

/// Readiness token of one session leg: slot in the low 32 bits, the
/// leg kind above it, the slot's occupancy generation (masked to 30
/// bits) on top — so an event for a leg that was dropped or re-tagged
/// earlier in the same batch never reaches the wrong occupant.
fn leg_token(gen: u32, leg: u64, slot: usize) -> u64 {
    (((gen & 0x3FFF_FFFF) as u64) << 34) | (leg << 32) | slot as u64
}

struct Router {
    shared: Arc<RouterShared>,
    listener: TcpListener,
    readiness: Readiness,
    events: Vec<Event>,
    sessions: Vec<Option<Session>>,
    /// Occupancy generation per slot, bumped on every drop (see
    /// [`leg_token`]).
    gens: Vec<u32>,
    free: Vec<usize>,
    listener_armed: bool,
    accept_pause_until: Option<std::time::Instant>,
    scratch: Vec<u8>,
}

impl Router {
    fn new(shared: Arc<RouterShared>, listener: TcpListener, readiness: Readiness) -> Router {
        Router {
            shared,
            listener,
            readiness,
            events: Vec::new(),
            sessions: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            listener_armed: false,
            accept_pause_until: None,
            scratch: vec![0u8; READ_CHUNK],
        }
    }

    fn run(mut self) {
        let slice = Duration::from_millis(5);
        while !self.shared.shutdown.load(Ordering::SeqCst) {
            self.sync_listener();
            let mut events = std::mem::take(&mut self.events);
            if self.readiness.wait(Some(slice), &mut events).is_err() {
                std::thread::sleep(slice);
                self.events = events;
                continue;
            }
            for ev in &events {
                if ev.token == LISTENER_TOKEN {
                    self.accept_ready();
                    continue;
                }
                let slot = (ev.token & u32::MAX as u64) as usize;
                let leg = (ev.token >> 32) & 0x3;
                let gen = (ev.token >> 34) as u32;
                if slot >= self.gens.len() || (self.gens[slot] & 0x3FFF_FFFF) != gen {
                    // The occupant this event was for is gone (dropped
                    // earlier in this same batch).
                    continue;
                }
                match leg {
                    LEG_CLIENT => {
                        if ev.readable() {
                            self.client_read_ready(slot);
                        }
                        if ev.writable() {
                            self.client_write_ready(slot);
                        }
                    }
                    LEG_CURRENT => {
                        if ev.readable() {
                            self.backend_read_ready(slot, false);
                        }
                        if ev.writable() {
                            self.backend_write_ready(slot, false);
                        }
                    }
                    LEG_DRAINING => {
                        if ev.readable() {
                            self.backend_read_ready(slot, true);
                        }
                        if ev.writable() {
                            self.backend_write_ready(slot, true);
                        }
                    }
                    _ => {}
                }
                self.sync_session(slot);
            }
            self.events = events;
        }
        self.close_all();
    }

    /// Arms or disarms the listener to match whether a connection can
    /// be taken right now (below the cap, not in an exhaustion pause).
    fn sync_listener(&mut self) {
        if let Some(t) = self.accept_pause_until {
            if std::time::Instant::now() >= t {
                self.accept_pause_until = None;
            }
        }
        let cap = self.shared.cfg.max_sessions;
        let open = self.sessions.len() - self.free.len();
        let want = (cap == 0 || open < cap) && self.accept_pause_until.is_none();
        if want && !self.listener_armed {
            self.listener_armed = self
                .readiness
                .register(sys::raw_fd(&self.listener), LISTENER_TOKEN, true, false)
                .is_ok();
        } else if !want && self.listener_armed {
            let _ = self.readiness.deregister(sys::raw_fd(&self.listener));
            self.listener_armed = false;
        }
    }

    /// Reconciles the readiness registrations of all of `slot`'s legs
    /// with its current state — registering fresh legs, re-tagging a
    /// leg a handoff moved from current to draining, toggling write
    /// interest on buffer transitions. Each leg costs a syscall only
    /// when something about it actually changed.
    fn sync_session(&mut self, slot: usize) {
        let gen = match self.gens.get(slot) {
            Some(&g) => g,
            None => return,
        };
        let Some(sess) = self.sessions[slot].as_mut() else {
            return;
        };
        // Client leg (always registered from accept).
        let want = (!sess.closing && !sess.finishing, !sess.wbuf.is_empty());
        if want != sess.client_reg {
            sess.client_reg = want;
            let fd = sys::raw_fd(&sess.stream);
            let tok = leg_token(gen, LEG_CLIENT, slot);
            if self.readiness.modify(fd, tok, want.0, want.1).is_err() {
                self.drop_session(slot);
                return;
            }
        }
        // Draining leg: read-only until its clean close.
        if let Some(old) = sess.draining.as_mut() {
            let tok = leg_token(gen, LEG_DRAINING, slot);
            if Self::sync_leg(&mut self.readiness, old, true, false, tok).is_err() {
                self.fail(slot, ErrorCode::Unavailable, "backend watch failed");
                return;
            }
        }
        // Current leg: unread while draining (ordering — see
        // `build`-time comment in `backend_read_ready`), write interest
        // only while its out-buffer is non-empty.
        let Some(sess) = self.sessions[slot].as_mut() else {
            return;
        };
        let draining = sess.draining.is_some();
        if let Some(cur) = sess.backend.as_mut() {
            let tok = leg_token(gen, LEG_CURRENT, slot);
            let write = cur.core.pending_out() > 0;
            if Self::sync_leg(&mut self.readiness, cur, !draining, write, tok).is_err() {
                self.fail(slot, ErrorCode::Unavailable, "backend watch failed");
            }
        }
    }

    /// Registers or modifies one backend leg to the wanted interest
    /// and token; no syscall if nothing changed.
    fn sync_leg(
        readiness: &mut Readiness,
        leg: &mut Backend,
        read: bool,
        write: bool,
        tok: u64,
    ) -> io::Result<()> {
        if leg.reg == Some((read, write, tok)) {
            return Ok(());
        }
        let fd = leg.core.raw_fd();
        match leg.reg {
            Some(_) => readiness.modify(fd, tok, read, write)?,
            None => readiness.register(fd, tok, read, write)?,
        }
        leg.reg = Some((read, write, tok));
        Ok(())
    }

    /// Detaches a removed leg from the readiness set (must run before
    /// the `ClientCore` — and with it the descriptor — drops).
    fn unwatch_leg(readiness: &mut Readiness, leg: &Option<Backend>) {
        if let Some(b) = leg {
            if b.reg.is_some() {
                let _ = readiness.deregister(b.core.raw_fd());
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            let cap = self.shared.cfg.max_sessions;
            if cap != 0 && self.sessions.len() - self.free.len() >= cap {
                return;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let sess = Session {
                        stream,
                        rbuf: FrameBuf::new(),
                        wbuf: WriteBuf::with_capacity(self.shared.cfg.write_buf),
                        backend: None,
                        draining: None,
                        reg: None,
                        finishing: false,
                        closing: false,
                        client_reg: (true, false),
                    };
                    let slot = match self.free.pop() {
                        Some(slot) => {
                            self.sessions[slot] = Some(sess);
                            slot
                        }
                        None => {
                            self.sessions.push(Some(sess));
                            self.gens.push(0);
                            self.sessions.len() - 1
                        }
                    };
                    let fd =
                        sys::raw_fd(&self.sessions[slot].as_ref().expect("just placed").stream);
                    let tok = leg_token(self.gens[slot], LEG_CLIENT, slot);
                    if self.readiness.register(fd, tok, true, false).is_err() {
                        let sess = self.sessions[slot].take().expect("just placed");
                        let _ = sess.stream.shutdown(Shutdown::Both);
                        self.gens[slot] = self.gens[slot].wrapping_add(1);
                        self.free.push(slot);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e)
                    if e.kind() == io::ErrorKind::Interrupted
                        || e.kind() == io::ErrorKind::ConnectionAborted =>
                {
                    continue;
                }
                Err(_) => {
                    // Resource exhaustion: pause accepting instead of
                    // spinning on a level-triggered readable listener.
                    self.accept_pause_until = Some(std::time::Instant::now() + ACCEPT_ERROR_PAUSE);
                    return;
                }
            }
        }
    }

    // ---- client side ----------------------------------------------

    fn client_read_ready(&mut self, slot: usize) {
        for _ in 0..READS_PER_WAKEUP {
            let Some(sess) = self.sessions[slot].as_mut() else {
                return;
            };
            if sess.closing || sess.finishing {
                return;
            }
            match sess.stream.read(&mut self.scratch) {
                Ok(0) => {
                    // Client hung up: tear the whole session down (the
                    // backends observe our EOF as a deregister).
                    self.drop_session(slot);
                    return;
                }
                Ok(n) => {
                    self.shared.bytes_in.fetch_add(n as u64, Ordering::Relaxed);
                    let sess = self.sessions[slot].as_mut().expect("checked above");
                    sess.rbuf.extend(&self.scratch[..n]);
                    if !self.drain_client_frames(slot) {
                        return;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.drop_session(slot);
                    return;
                }
            }
        }
    }

    fn drain_client_frames(&mut self, slot: usize) -> bool {
        loop {
            let Some(sess) = self.sessions[slot].as_mut() else {
                return false;
            };
            if sess.closing || sess.finishing {
                return false;
            }
            match sess.rbuf.next_message() {
                Ok(Some((msg, _n))) => {
                    if !self.handle_client_frame(slot, msg) {
                        return false;
                    }
                }
                Ok(None) => return true,
                Err(e) => {
                    self.fail(slot, ErrorCode::Malformed, &e.to_string());
                    return false;
                }
            }
        }
    }

    /// Routes one decoded client frame. Returns `false` once the session
    /// is closing or gone.
    fn handle_client_frame(&mut self, slot: usize, msg: Message) -> bool {
        let registered = self.sessions[slot]
            .as_ref()
            .is_some_and(|s| s.reg.is_some());
        match (registered, msg) {
            (false, Message::Register { space, k, rho, pos }) => {
                let Some(p) = planar(&pos) else {
                    self.fail(
                        slot,
                        ErrorCode::BadPosition,
                        "router requires a planar position",
                    );
                    return false;
                };
                let region = self.shared.part.region_of(p);
                let mut core = match self.connect_backend(region) {
                    Ok(c) => c,
                    Err(e) => {
                        self.fail(
                            slot,
                            ErrorCode::Unavailable,
                            &format!("partition {region} backend: {e}"),
                        );
                        return false;
                    }
                };
                if core
                    .try_send(&Message::Register { space, k, rho, pos })
                    .is_err()
                {
                    self.fail(slot, ErrorCode::Unavailable, "backend write failed");
                    return false;
                }
                let sess = self.sessions[slot].as_mut().expect("checked above");
                sess.backend = Some(Backend::new(core, region));
                sess.reg = Some(RegFacts { space, k, rho });
                self.shared.live.fetch_add(1, Ordering::Relaxed);
                true
            }
            (false, _) => {
                self.fail(slot, ErrorCode::NotRegistered, "first frame must register");
                false
            }
            (true, Message::PositionUpdate { pos }) => {
                let Some(p) = planar(&pos) else {
                    self.fail(
                        slot,
                        ErrorCode::BadPosition,
                        "router requires a planar position",
                    );
                    return false;
                };
                let home = self.shared.part.region_of(p);
                let sess = self.sessions[slot].as_mut().expect("checked above");
                let cur = sess.backend.as_mut().expect("registered session");
                if home != cur.region && sess.draining.is_none() {
                    return self.handoff(slot, home, pos);
                }
                // A crossing *during* an unfinished drain keeps feeding
                // the current backend (results stay exact over its
                // replicas, flagged when out of margin); the next update
                // after the drain completes re-routes.
                if cur.core.try_send(&Message::PositionUpdate { pos }).is_err() {
                    self.fail(slot, ErrorCode::Unavailable, "backend write failed");
                    return false;
                }
                true
            }
            (true, Message::Deregister) => {
                let sess = self.sessions[slot].as_mut().expect("checked above");
                sess.finishing = true;
                if let Some(cur) = sess.backend.as_mut() {
                    let _ = cur.core.try_send(&Message::Deregister);
                    let _ = cur.core.flush();
                }
                // Remaining backend frames (the drain, the final
                // results) still forward; the session closes when the
                // current backend's stream ends.
                false
            }
            (true, Message::Register { .. }) => {
                self.fail(
                    slot,
                    ErrorCode::AlreadyRegistered,
                    "session already registered",
                );
                false
            }
            (true, _) => {
                self.fail(slot, ErrorCode::Malformed, "server-bound frame expected");
                false
            }
        }
    }

    /// The mid-session border crossing: deregister at the old backend
    /// (its close will end the drain), register the same query at the
    /// new one with this position as its first tick.
    fn handoff(&mut self, slot: usize, to: RegionId, pos: WirePos) -> bool {
        let facts = self.sessions[slot]
            .as_ref()
            .and_then(|s| s.reg)
            .expect("registered session");
        let mut core = match self.connect_backend(to) {
            Ok(c) => c,
            Err(e) => {
                self.fail(
                    slot,
                    ErrorCode::Unavailable,
                    &format!("partition {to} backend: {e}"),
                );
                return false;
            }
        };
        let register = Message::Register {
            space: facts.space,
            k: facts.k,
            rho: facts.rho,
            pos,
        };
        if core.try_send(&register).is_err() {
            self.fail(slot, ErrorCode::Unavailable, "backend write failed");
            return false;
        }
        let sess = self.sessions[slot].as_mut().expect("registered session");
        let mut old = sess.backend.take().expect("registered session");
        let _ = old.core.try_send(&Message::Deregister);
        let _ = old.core.flush();
        // The old leg keeps its registration; the next interest sync
        // re-tags its token from current to draining and the new leg
        // registers fresh.
        sess.draining = Some(old);
        sess.backend = Some(Backend::new(core, to));
        self.shared.handoffs.fetch_add(1, Ordering::Relaxed);
        true
    }

    fn connect_backend(&self, region: RegionId) -> io::Result<ClientCore> {
        let addr = self.shared.cfg.backends[region.0 as usize];
        ClientCore::connect(addr)
    }

    fn client_write_ready(&mut self, slot: usize) {
        let Some(sess) = self.sessions[slot].as_mut() else {
            return;
        };
        match sess.wbuf.write_to(&mut sess.stream) {
            Ok(n) => {
                self.shared.bytes_out.fetch_add(n as u64, Ordering::Relaxed);
                let sess = self.sessions[slot].as_mut().expect("checked above");
                if sess.closing && sess.wbuf.is_empty() {
                    self.drop_session(slot);
                }
            }
            Err(_) => self.drop_session(slot),
        }
    }

    // ---- backend side ---------------------------------------------

    fn backend_write_ready(&mut self, slot: usize, draining: bool) {
        let Some(sess) = self.sessions[slot].as_mut() else {
            return;
        };
        let leg = if draining {
            sess.draining.as_mut()
        } else {
            sess.backend.as_mut()
        };
        if let Some(b) = leg {
            if b.core.flush().is_err() && !draining {
                self.fail(slot, ErrorCode::Unavailable, "backend write failed");
            }
        }
    }

    /// Forwards every frame the backend has ready; handles its EOF.
    /// Queued frames coalesce into **one** client flush at the end of
    /// the drain, not a write syscall per frame.
    fn backend_read_ready(&mut self, slot: usize, draining: bool) {
        let mut forwarded = false;
        loop {
            let Some(sess) = self.sessions[slot].as_mut() else {
                return;
            };
            if !draining && sess.draining.is_some() {
                // A handoff started this batch: the current leg stays
                // unread until the old one drains, so the client's
                // result stream stays ordered.
                break;
            }
            let Some(leg) = (if draining {
                sess.draining.as_mut()
            } else {
                sess.backend.as_mut()
            }) else {
                break;
            };
            let region = leg.region;
            match leg.core.poll_message() {
                Ok(Some(msg)) => {
                    if !self.forward_backend_frame(slot, region, msg) {
                        break;
                    }
                    forwarded = true;
                }
                Ok(None) => {
                    if leg.core.is_eof() {
                        self.backend_closed(slot, draining);
                    }
                    break;
                }
                Err(_) => {
                    // Corrupt framing or transport error on this one
                    // backend leg: this session is lost, its neighbors
                    // are not.
                    self.fail(slot, ErrorCode::Malformed, "backend stream corrupt");
                    break;
                }
            }
        }
        if forwarded && self.sessions[slot].is_some() {
            self.client_write_ready(slot);
        }
    }

    /// Rewrites and forwards one backend frame to the client. Returns
    /// `false` once the session is closing or gone.
    fn forward_backend_frame(&mut self, slot: usize, region: RegionId, msg: Message) -> bool {
        let out = match msg {
            Message::KnnResult {
                epoch,
                ids,
                outcome,
                flags,
            } => {
                let rewritten = {
                    let tables = self.shared.tables.read().unwrap_or_else(|e| e.into_inner());
                    rewrite_ids(tables.get(region.0 as usize), ids)
                };
                match rewritten {
                    Some(global) => Message::KnnResult {
                        epoch,
                        ids: global,
                        outcome,
                        flags,
                    },
                    None => {
                        self.fail(
                            slot,
                            ErrorCode::Malformed,
                            &format!("backend {region} returned an unknown site id"),
                        );
                        return false;
                    }
                }
            }
            // Per-region epochs pass through: the client sees the epoch
            // stream of whichever region serves it, exactly as pushed.
            Message::EpochNotify { epoch } => Message::EpochNotify { epoch },
            Message::Error { code, detail } => {
                // The backend is closing this query's session; relay the
                // verdict and end ours the same way.
                self.push_to_client(slot, &Message::Error { code, detail });
                self.close_after_flush(slot);
                return false;
            }
            _ => {
                self.fail(slot, ErrorCode::Malformed, "backend protocol violation");
                return false;
            }
        };
        self.push_to_client(slot, &out)
    }

    /// Queues one frame on the client socket (dropping the session if
    /// its buffer is exhausted — the same slow-consumer rule as the net
    /// server). The flush is the caller's: `backend_read_ready` issues
    /// one per drained batch.
    fn push_to_client(&mut self, slot: usize, msg: &Message) -> bool {
        let Some(sess) = self.sessions[slot].as_mut() else {
            return false;
        };
        let frame = msg.encode_frame();
        if !sess.wbuf.push(&frame) {
            self.drop_session(slot);
            return false;
        }
        true
    }

    /// One backend stream ended. The draining (old) leg ending is the
    /// handoff completing; the current leg ending is either the finish
    /// of a deregistered session or an outage.
    fn backend_closed(&mut self, slot: usize, draining: bool) {
        let Some(sess) = self.sessions[slot].as_mut() else {
            return;
        };
        if draining {
            let old = sess.draining.take();
            Self::unwatch_leg(&mut self.readiness, &old);
            return;
        }
        let cur = sess.backend.take();
        Self::unwatch_leg(&mut self.readiness, &cur);
        let sess = self.sessions[slot].as_mut().expect("checked above");
        if sess.finishing {
            self.close_after_flush(slot);
        } else {
            self.fail(slot, ErrorCode::Unavailable, "partition backend lost");
        }
    }

    // ---- teardown -------------------------------------------------

    /// Ends a session with a final error frame to the client.
    fn fail(&mut self, slot: usize, code: ErrorCode, detail: &str) {
        let Some(sess) = self.sessions[slot].as_mut() else {
            return;
        };
        if sess.counted_live() {
            self.shared.live.fetch_sub(1, Ordering::Relaxed);
        }
        let frame = Message::Error {
            code,
            detail: detail.to_string(),
        }
        .encode_frame();
        let _ = sess.wbuf.push(&frame);
        sess.closing = true;
        let cur = sess.backend.take();
        let old = sess.draining.take();
        Self::unwatch_leg(&mut self.readiness, &cur);
        Self::unwatch_leg(&mut self.readiness, &old);
        self.client_write_ready(slot);
        self.sync_session(slot);
    }

    /// Graceful end: flush what is queued, then drop.
    fn close_after_flush(&mut self, slot: usize) {
        let Some(sess) = self.sessions[slot].as_mut() else {
            return;
        };
        if sess.counted_live() {
            self.shared.live.fetch_sub(1, Ordering::Relaxed);
        }
        sess.closing = true;
        let cur = sess.backend.take();
        let old = sess.draining.take();
        Self::unwatch_leg(&mut self.readiness, &cur);
        Self::unwatch_leg(&mut self.readiness, &old);
        let sess = self.sessions[slot].as_mut().expect("checked above");
        if sess.wbuf.is_empty() {
            self.drop_session(slot);
            return;
        }
        self.client_write_ready(slot);
        self.sync_session(slot);
    }

    fn drop_session(&mut self, slot: usize) {
        if let Some(sess) = self.sessions[slot].take() {
            if sess.counted_live() {
                self.shared.live.fetch_sub(1, Ordering::Relaxed);
            }
            // Detach every leg from the readiness set before its
            // descriptor closes.
            Self::unwatch_leg(&mut self.readiness, &sess.backend);
            Self::unwatch_leg(&mut self.readiness, &sess.draining);
            let _ = self.readiness.deregister(sys::raw_fd(&sess.stream));
            self.gens[slot] = self.gens[slot].wrapping_add(1);
            let _ = sess.stream.shutdown(Shutdown::Both);
            self.free.push(slot);
        }
    }

    fn close_all(&mut self) {
        for slot in 0..self.sessions.len() {
            self.drop_session(slot);
        }
    }
}

/// The planar position of a wire position (`None` for road-network
/// positions — the router only partitions planar spaces for now).
fn planar(pos: &WirePos) -> Option<Point> {
    match *pos {
        WirePos::Point { x, y } if x.is_finite() && y.is_finite() => Some(Point::new(x, y)),
        _ => None,
    }
}

/// Maps region-local result ids through one table row (`None` row =
/// identity). `None` means some id was out of range — a corrupt backend.
fn rewrite_ids(row: Option<&Vec<u32>>, ids: Vec<u32>) -> Option<Vec<u32>> {
    match row {
        None => Some(ids),
        Some(row) => ids
            .into_iter()
            .map(|local| row.get(local as usize).copied())
            .collect(),
    }
}

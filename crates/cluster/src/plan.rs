//! The cluster's source of truth: which site lives in which partition.
//!
//! A [`ClusterPlan`] owns the **global** site list (the one a
//! single-world deployment would index) plus, per region, the membership
//! of that region's replicated site set and the id mapping between the
//! region's **local** dense site ids and the global ones. Everything
//! else in the cluster layer — building regional worlds, rewriting
//! result ids at the router, routing delta epochs — derives from this
//! one structure.
//!
//! # The overlap-margin contract
//!
//! Region `r` replicates every site `s` with
//! `partitioner.distance_to(r, s) <= margin`. For a query `q` homed in
//! `r`, `distance_to(r, s) <= |q - s|`, so **every site within `margin`
//! of `q` is present in `r`'s local index**. Consequently, whenever the
//! local k-th-neighbor distance is `<= margin` (and a full `k` neighbors
//! exist), the local kNN equals the global kNN *exactly* — same sites,
//! same order, because the local index ranks by the same `(distance,
//! id)` key over a superset of every possible contender, and the
//! local→global id map is monotone on the initial build. A tick that
//! cannot meet the bound is **flagged uncertified**, never silently
//! wrong: its ids are still the exact kNN over the replicated set.
//!
//! # Delta epochs
//!
//! [`ClusterPlan::split`] turns one global [`SiteDelta`] into per-region
//! local deltas (empty for unaffected regions — those worlds skip the
//! epoch entirely) while updating the id maps to mirror, exactly, the
//! pinned semantics of `VorTree::apply`: removals sort descending and
//! swap-remove (the then-last site inherits the removed id), insertions
//! append in order.

use std::sync::Arc;

use insq_geom::Point;
use insq_index::SiteDelta;
use insq_server::{Partitioner, RegionId};
use insq_voronoi::SiteId;

/// A rejected cluster operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// A delta removal id does not exist in the global site list.
    RemovalOutOfRange {
        /// The offending global site id.
        id: u32,
        /// Number of global sites before the delta.
        sites: usize,
    },
    /// A constructor was given inconsistent per-region inputs.
    Shape(&'static str),
    /// A regional index rejected its local delta (rendered message, to
    /// stay generic over every space's error type).
    Index(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::RemovalOutOfRange { id, sites } => {
                write!(f, "removal id {id} out of range ({sites} global sites)")
            }
            ClusterError::Shape(what) => write!(f, "inconsistent cluster inputs: {what}"),
            ClusterError::Index(what) => write!(f, "regional index rejected delta: {what}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// The partition map, global site list, and per-region id mappings —
/// everything needed to shard one world into N and keep the shards
/// consistent across delta epochs.
pub struct ClusterPlan {
    part: Arc<dyn Partitioner + Send + Sync>,
    margin: f64,
    global: Vec<Point>,
    /// Per region: local id → global id. Strictly increasing after the
    /// initial build; swap-remove mirroring perturbs the order exactly
    /// the way the local index's own ids are perturbed.
    to_global: Vec<Vec<u32>>,
    /// Per region: global id → local id (dense, `None` = not replicated
    /// there). Rebuilt after each delta.
    to_local: Vec<Vec<Option<u32>>>,
}

impl std::fmt::Debug for ClusterPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClusterPlan")
            .field("regions", &self.regions())
            .field("margin", &self.margin)
            .field("global_sites", &self.global.len())
            .field(
                "replicas",
                &self.to_global.iter().map(Vec::len).collect::<Vec<_>>(),
            )
            .finish()
    }
}

impl ClusterPlan {
    /// Partitions `sites` under `part` with the given replication
    /// `margin` (Euclidean distance; see the module docs for the
    /// correctness contract). Every site lands in its home region plus
    /// every region whose border lies within `margin`.
    pub fn new(
        part: Arc<dyn Partitioner + Send + Sync>,
        margin: f64,
        sites: Vec<Point>,
    ) -> ClusterPlan {
        assert!(margin >= 0.0, "margin must be non-negative");
        let n = part.regions();
        let mut to_global: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut to_local: Vec<Vec<Option<u32>>> = vec![vec![None; sites.len()]; n];
        for (g, &p) in sites.iter().enumerate() {
            for r in 0..n {
                if part.covers(RegionId(r as u32), p, margin) {
                    to_local[r][g] = Some(to_global[r].len() as u32);
                    to_global[r].push(g as u32);
                }
            }
        }
        ClusterPlan {
            part,
            margin,
            global: sites,
            to_global,
            to_local,
        }
    }

    /// The partition map.
    pub fn partitioner(&self) -> &Arc<dyn Partitioner + Send + Sync> {
        &self.part
    }

    /// Number of regions.
    pub fn regions(&self) -> usize {
        self.part.regions()
    }

    /// The replication margin.
    pub fn margin(&self) -> f64 {
        self.margin
    }

    /// The home region of a position.
    pub fn home(&self, pos: Point) -> RegionId {
        self.part.region_of(pos)
    }

    /// The current global site list (what a single-world index holds).
    pub fn global_sites(&self) -> &[Point] {
        &self.global
    }

    /// The current site list of one region, in local-id order — feed
    /// this to the space's index builder to construct the regional
    /// world.
    pub fn region_sites(&self, region: RegionId) -> Vec<Point> {
        self.to_global[region.0 as usize]
            .iter()
            .map(|&g| self.global[g as usize])
            .collect()
    }

    /// Local→global id map of one region (`map[local] = global`).
    pub fn to_global(&self, region: RegionId) -> &[u32] {
        &self.to_global[region.0 as usize]
    }

    /// Translates a region-local site id to the global id (`None` if the
    /// local id is out of range — e.g. a corrupt backend frame).
    pub fn globalize(&self, region: RegionId, local: u32) -> Option<u32> {
        self.to_global[region.0 as usize]
            .get(local as usize)
            .copied()
    }

    /// A snapshot of every region's local→global map (the router's
    /// rewrite tables).
    pub fn tables(&self) -> Vec<Vec<u32>> {
        self.to_global.clone()
    }

    /// Splits one global delta into per-region local deltas (index `r` =
    /// region `r`; an empty delta means the region is unaffected and its
    /// world must **not** be bumped), updating the plan's global list and
    /// id maps. The returned deltas must then be applied to the regional
    /// worlds — the plan has no handle on them.
    ///
    /// Id bookkeeping mirrors `VorTree::apply` exactly on both levels:
    /// global removals sort descending and swap-remove on the global
    /// list; each region's removals (the subset it replicates) sort
    /// descending by *local* id and swap-remove on its map; insertions
    /// append in order on both levels.
    pub fn split(&mut self, delta: &SiteDelta) -> Result<Vec<SiteDelta>, ClusterError> {
        let n_regions = self.regions();
        let n_before = self.global.len();

        // Global removal set: sorted descending, deduped, validated.
        let mut removals: Vec<u32> = Vec::with_capacity(delta.removed.len());
        for &sid in &delta.removed {
            if sid.idx() >= n_before {
                return Err(ClusterError::RemovalOutOfRange {
                    id: sid.0,
                    sites: n_before,
                });
            }
            removals.push(sid.0);
        }
        removals.sort_unstable_by(|a, b| b.cmp(a));
        removals.dedup();

        // Per-region local removal lists, resolved against the
        // *pre-delta* maps.
        let mut out: Vec<SiteDelta> = (0..n_regions).map(|_| SiteDelta::default()).collect();
        for (r, d) in out.iter_mut().enumerate() {
            d.removed = removals
                .iter()
                .filter_map(|&g| self.to_local[r][g as usize])
                .map(SiteId)
                .collect();
        }

        // Simulate the global swap-removes to learn every surviving
        // site's post-removal global id.
        let mut gids: Vec<u32> = (0..n_before as u32).collect();
        for &g in &removals {
            gids.swap_remove(g as usize);
            self.global.swap_remove(g as usize);
        }
        let mut new_of: Vec<Option<u32>> = vec![None; n_before];
        for (now, &orig) in gids.iter().enumerate() {
            new_of[orig as usize] = Some(now as u32);
        }

        // Mirror each region's own swap-removes on its map, then remap
        // the surviving entries to post-removal global ids.
        for (region_out, map) in out.iter().zip(self.to_global.iter_mut()) {
            let mut local_rm: Vec<u32> = region_out.removed.iter().map(|s| s.0).collect();
            local_rm.sort_unstable_by(|a, b| b.cmp(a));
            for lid in local_rm {
                map.swap_remove(lid as usize);
            }
            for g in map.iter_mut() {
                *g = new_of[*g as usize].expect("surviving local site survives globally");
            }
        }

        // Insertions: dense global ids after the removals; each lands in
        // every region whose margin band covers it.
        let base = self.global.len() as u32;
        for (j, &p) in delta.added.iter().enumerate() {
            let g = base + j as u32;
            for (r, d) in out.iter_mut().enumerate() {
                if self.part.covers(RegionId(r as u32), p, self.margin) {
                    d.added.push(p);
                    self.to_global[r].push(g);
                }
            }
        }
        self.global.extend_from_slice(&delta.added);

        // Rebuild the inverse maps.
        for r in 0..n_regions {
            let mut inv = vec![None; self.global.len()];
            for (l, &g) in self.to_global[r].iter().enumerate() {
                inv[g as usize] = Some(l as u32);
            }
            self.to_local[r] = inv;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use insq_geom::Aabb;
    use insq_server::GridPartitioner;

    fn plan(margin: f64, sites: Vec<Point>) -> ClusterPlan {
        let bounds = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        ClusterPlan::new(Arc::new(GridPartitioner::strips(bounds, 2)), margin, sites)
    }

    #[test]
    fn initial_membership_is_home_plus_margin_band() {
        let sites = vec![
            Point::new(10.0, 50.0), // deep in r0
            Point::new(48.0, 50.0), // r0, within 5 of the border
            Point::new(52.0, 50.0), // r1, within 5 of the border
            Point::new(90.0, 50.0), // deep in r1
        ];
        let p = plan(5.0, sites);
        assert_eq!(p.to_global(RegionId(0)), &[0, 1, 2]);
        assert_eq!(p.to_global(RegionId(1)), &[1, 2, 3]);
        assert_eq!(p.region_sites(RegionId(1)).len(), 3);
        assert_eq!(p.globalize(RegionId(1), 0), Some(1));
        assert_eq!(p.globalize(RegionId(1), 9), None);
    }

    #[test]
    fn split_mirrors_swap_remove_semantics() {
        let sites = vec![
            Point::new(10.0, 50.0), // g0: r0 only
            Point::new(49.0, 50.0), // g1: both (margin 5)
            Point::new(51.0, 50.0), // g2: both
            Point::new(90.0, 50.0), // g3: r1 only
            Point::new(20.0, 20.0), // g4: r0 only
        ];
        let mut p = plan(5.0, sites);
        assert_eq!(p.to_global(RegionId(0)), &[0, 1, 2, 4]);
        assert_eq!(p.to_global(RegionId(1)), &[1, 2, 3]);

        // Remove g1 (replicated in both) and add one site deep in r1.
        let delta = SiteDelta {
            added: vec![Point::new(80.0, 80.0)],
            removed: vec![SiteId(1)],
        };
        let locals = p.split(&delta).unwrap();

        // Global after: swap_remove(1) → [g0, g4, g2, g3] + new at 4.
        assert_eq!(p.global_sites().len(), 5);
        assert_eq!(p.global_sites()[1], Point::new(20.0, 20.0));
        assert_eq!(p.global_sites()[4], Point::new(80.0, 80.0));

        // r0's local delta removes its local id of g1 (= 1), no adds.
        assert_eq!(locals[0].removed, vec![SiteId(1)]);
        assert!(locals[0].added.is_empty());
        // r0 map after its own swap_remove + global renames:
        // [g0, g4, g2] locally = post-removal globals [0, 1, 2].
        assert_eq!(p.to_global(RegionId(0)), &[0, 1, 2]);

        // r1 removes its local id of g1 (= 0) and gains the new site.
        assert_eq!(locals[1].removed, vec![SiteId(0)]);
        assert_eq!(locals[1].added, vec![Point::new(80.0, 80.0)]);
        // r1 map: swap_remove(0) on [g1,g2,g3] → [g3,g2] → renamed
        // [3, 2], then push new global 4.
        assert_eq!(p.to_global(RegionId(1)), &[3, 2, 4]);
    }

    #[test]
    fn unaffected_regions_get_empty_deltas() {
        let sites = vec![Point::new(10.0, 50.0), Point::new(90.0, 50.0)];
        let mut p = plan(2.0, sites);
        let delta = SiteDelta::insert(vec![Point::new(12.0, 50.0)]);
        let locals = p.split(&delta).unwrap();
        assert!(!locals[0].is_empty());
        assert!(locals[1].is_empty());
    }

    #[test]
    fn out_of_range_removal_is_rejected_atomically() {
        let sites = vec![Point::new(10.0, 50.0)];
        let mut p = plan(2.0, sites);
        let before = p.global_sites().to_vec();
        let err = p.split(&SiteDelta::remove(vec![SiteId(7)])).unwrap_err();
        assert!(matches!(err, ClusterError::RemovalOutOfRange { id: 7, .. }));
        assert_eq!(p.global_sites(), &before[..]);
    }
}

//! # insq-cluster
//!
//! Scaling the INSQ system out: spatial partitioning, multi-world
//! sharding, and transparent client handoff over the wire.
//!
//! One INSQ server maintains exact moving-kNN results for a fleet of
//! clients over one index. This crate splits that one world into N
//! **regional** worlds along a pluggable
//! [`Partitioner`](insq_server::Partitioner) map, and layers the
//! machinery to make the split invisible:
//!
//! * [`ClusterPlan`] — the membership + id layer. Decides which global
//!   sites each region replicates (its home cells plus an **overlap
//!   margin** band), keeps the region-local ↔ global id tables, and
//!   [`ClusterPlan::split`]s a global `SiteDelta` into per-region local
//!   deltas that mirror the index's pinned-id swap-remove semantics —
//!   so delta epochs route to affected regions only.
//! * [`PartitionGroup`] — N `FleetEngine`s in one process behind one
//!   position-routed registry. Border crossings become **handoffs**
//!   (deregister + re-register, one recomputation — the same cost the
//!   INS protocol already pays for an epoch rebind); every per-tick
//!   result carries global ids and an explicit *certified* bit from the
//!   overlap-margin contract.
//! * [`RouterServer`] — the wire front-end. Speaks the ordinary
//!   `insq-net` protocol to clients and multiplexes them over client
//!   connections to N backend partition servers, rewriting site ids
//!   both ways and performing mid-session handoff on one uninterrupted
//!   connection — one session, one result stream, per-region epoch
//!   notifies.
//!
//! ## The overlap-margin correctness contract
//!
//! A region replicates every site within Euclidean distance `margin` of
//! its cells. For a query homed in the region, every site within
//! `margin` of the query is therefore present locally, so whenever the
//! locally exact k-th neighbor lies within `margin` (and a full k
//! exist) the local result **is** the global result — same ids, same
//! order. Results are *certified* exactly when that check passes;
//! otherwise they are still exact over the replicated set but flagged
//! (`FLAG_UNCERTIFIED` on the wire) — degraded near borders is loud,
//! never silent.

#![warn(missing_docs)]

pub mod group;
pub mod plan;
pub mod router;

pub use group::{ClientId, ClientResult, PartitionGroup};
pub use plan::{ClusterError, ClusterPlan};
pub use router::{RouterConfig, RouterServer};

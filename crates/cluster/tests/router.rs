//! Router end-to-end and failure-isolation tests: real partition
//! backends behind a [`RouterServer`], driven by ordinary blocking
//! `insq-net` clients, plus hostile fake backends for the wire-level
//! fuzz cases.

use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;
use std::thread;

use insq_cluster::{ClusterPlan, RouterConfig, RouterServer};
use insq_core::Euclidean;
use insq_geom::{Aabb, Point};
use insq_index::VorTree;
use insq_net::wire::{ErrorCode, Message, WireOutcome};
use insq_net::{FrameBuf, NetClient, NetError, NetServer, NetServerConfig};
use insq_server::{GridPartitioner, World};
use insq_workload::Distribution;

const K: usize = 4;
const MARGIN: f64 = 30.0;

fn bounds() -> Aabb {
    Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

/// Brute-force global kNN ids, ascending by `(distance, id)`.
fn brute_knn(sites: &[Point], q: Point, k: usize) -> Vec<u32> {
    let mut with_d: Vec<(f64, u32)> = sites
        .iter()
        .enumerate()
        .map(|(i, &p)| (p.distance(q), i as u32))
        .collect();
    with_d.sort_by(|a, b| a.partial_cmp(b).expect("finite distances"));
    with_d.into_iter().take(k).map(|(_, i)| i).collect()
}

/// Spins up `regions` real partition backends over one plan and a
/// router in front of them. Returns (plan, backends, router).
fn cluster(
    regions: u32,
    sites: Vec<Point>,
) -> (ClusterPlan, Vec<NetServer<Euclidean>>, RouterServer) {
    let part = Arc::new(GridPartitioner::strips(bounds(), regions));
    let plan = ClusterPlan::new(part.clone(), MARGIN, sites);
    let clip = bounds().inflated(10.0);
    let backends: Vec<NetServer<Euclidean>> = (0..plan.regions())
        .map(|r| {
            let pts = plan.region_sites(insq_server::RegionId(r as u32));
            let world = Arc::new(World::new(VorTree::build(pts, clip).expect("valid sites")));
            let cfg = NetServerConfig {
                certify_within: Some(MARGIN),
                ..NetServerConfig::default()
            };
            NetServer::bind("127.0.0.1:0", world, cfg).expect("backend binds")
        })
        .collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(NetServer::local_addr).collect();
    let cfg = RouterConfig {
        tables: plan.tables(),
        ..RouterConfig::new(addrs)
    };
    let router = RouterServer::bind("127.0.0.1:0", part, cfg).expect("router binds");
    (plan, backends, router)
}

#[test]
fn one_session_crosses_the_border_and_stays_exact() {
    let sites = Distribution::Uniform.generate(500, &bounds(), 42);
    let (plan, _backends, router) = cluster(2, sites.clone());

    // One client walks straight across the x=50 border on one
    // uninterrupted connection.
    let mut client = NetClient::connect(router.local_addr()).expect("connect");
    let path: Vec<Point> = (0..30)
        .map(|i| Point::new(20.0 + 2.1 * i as f64, 48.0))
        .collect();
    client
        .register::<Euclidean>(K, 1.8, path[0])
        .expect("register");
    for (i, &pos) in path.iter().enumerate() {
        if i > 0 {
            client.update::<Euclidean>(pos).expect("update");
        }
        let upd = client.next_result().expect("result");
        assert_eq!(upd.flags, 0, "tick {i}: a {MARGIN}-unit margin certifies");
        assert_eq!(
            upd.ids,
            brute_knn(&sites, pos, K),
            "tick {i} at {pos:?}: rewritten global ids must be the exact global kNN"
        );
    }
    assert!(router.handoffs() >= 1, "the walk crosses x=50: {router:?}");
    assert_eq!(router.live_sessions(), 1);
    let _ = plan;
    client.deregister().expect("deregister");
    // The backend confirms the close by ending the stream.
    assert!(matches!(client.next_result(), Err(NetError::Closed)));
}

#[test]
fn fleet_of_shuttles_survives_many_handoffs() {
    let sites = Distribution::Uniform.generate(400, &bounds(), 7);
    let (_plan, _backends, router) = cluster(2, sites.clone());

    let addr = router.local_addr();
    let handles: Vec<_> = (0..6u64)
        .map(|c| {
            let sites = sites.clone();
            thread::spawn(move || {
                let mut client = NetClient::connect(addr).expect("connect");
                let lane = 10.0 + 13.0 * c as f64;
                let pos_at = |t: usize| {
                    // A ping-pong shuttle across the border.
                    let x = 48.0 + 8.0 * ((t as f64 * 0.7).sin());
                    Point::new(x, lane)
                };
                client
                    .register::<Euclidean>(K, 1.8, pos_at(0))
                    .expect("register");
                for t in 0..40 {
                    if t > 0 {
                        client.update::<Euclidean>(pos_at(t)).expect("update");
                    }
                    let upd = client.next_result().expect("result");
                    assert_eq!(upd.flags, 0);
                    assert_eq!(
                        upd.ids,
                        brute_knn(&sites, pos_at(t), K),
                        "client {c} tick {t}"
                    );
                }
                client.deregister().expect("deregister");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
    assert!(router.handoffs() >= 6, "every shuttle crosses: {router:?}");
}

/// A hostile backend for the fuzz cases: serves the first `well_behaved`
/// connections a valid lockstep result per inbound frame, then feeds
/// every later connection `poison` bytes instead.
fn hostile_backend(well_behaved: usize, poison: &'static [u8]) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    thread::spawn(move || {
        let mut served = 0usize;
        for conn in listener.incoming() {
            let Ok(mut conn) = conn else { continue };
            let good = served < well_behaved;
            served += 1;
            thread::spawn(move || {
                let mut rbuf = FrameBuf::new();
                let mut chunk = [0u8; 4096];
                loop {
                    use std::io::Read;
                    let n = match conn.read(&mut chunk) {
                        Ok(0) | Err(_) => return,
                        Ok(n) => n,
                    };
                    rbuf.extend(&chunk[..n]);
                    while let Ok(Some((msg, _))) = rbuf.next_message() {
                        match msg {
                            Message::Register { .. } | Message::PositionUpdate { .. } => {
                                if good {
                                    let frame = Message::KnnResult {
                                        epoch: 1,
                                        ids: vec![0, 1, 2, 3],
                                        outcome: WireOutcome::Valid,
                                        flags: 0,
                                    }
                                    .encode_frame();
                                    if conn.write_all(&frame).is_err() {
                                        return;
                                    }
                                } else {
                                    let _ = conn.write_all(poison);
                                    let _ = conn.flush();
                                    return;
                                }
                            }
                            Message::Deregister => return,
                            _ => return,
                        }
                    }
                }
            });
        }
    });
    addr
}

#[test]
fn malformed_backend_frames_poison_only_their_own_session() {
    // Version byte 0xFF inside a length-sane frame: undecodable payload.
    let poison: &[u8] = &[0x00, 0x00, 0x00, 0x02, 0xFF, 0xFF];
    let backend = hostile_backend(1, poison);
    let part = Arc::new(GridPartitioner::strips(bounds(), 1));
    let router = RouterServer::bind("127.0.0.1:0", part, RouterConfig::new(vec![backend]))
        .expect("router binds");

    // First session: well served (identity tables — no rewrite).
    let mut good = NetClient::connect(router.local_addr()).expect("connect");
    good.register::<Euclidean>(K, 1.8, Point::new(10.0, 10.0))
        .expect("register");
    assert_eq!(good.next_result().expect("result").ids, vec![0, 1, 2, 3]);

    // Second session: poisoned — fails alone, with a clean error frame.
    let mut bad = NetClient::connect(router.local_addr()).expect("connect");
    bad.register::<Euclidean>(K, 1.8, Point::new(20.0, 20.0))
        .expect("register");
    match bad.next_result() {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected a Malformed error, got {other:?}"),
    }

    // The good session keeps streaming after its neighbor's poisoning.
    for _ in 0..3 {
        good.update::<Euclidean>(Point::new(11.0, 11.0))
            .expect("update");
        assert_eq!(good.next_result().expect("result").ids, vec![0, 1, 2, 3]);
    }
}

#[test]
fn out_of_range_backend_ids_fail_the_session_cleanly() {
    let backend = hostile_backend(usize::MAX, &[]);
    let part = Arc::new(GridPartitioner::strips(bounds(), 1));
    // Tables with a 2-entry row: the fake backend's ids 2 and 3 have no
    // global mapping — a corrupt backend, surfaced as Malformed.
    let router = RouterServer::bind(
        "127.0.0.1:0",
        part,
        RouterConfig {
            tables: vec![vec![40, 41]],
            ..RouterConfig::new(vec![backend])
        },
    )
    .expect("router binds");

    let mut client = NetClient::connect(router.local_addr()).expect("connect");
    client
        .register::<Euclidean>(K, 1.8, Point::new(10.0, 10.0))
        .expect("register");
    match client.next_result() {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::Malformed),
        other => panic!("expected a Malformed error, got {other:?}"),
    }
}

#[test]
fn backend_loss_drops_only_that_partitions_sessions() {
    let sites = Distribution::Uniform.generate(400, &bounds(), 11);
    let (_plan, mut backends, router) = cluster(2, sites);

    // One session per partition, both streaming.
    let mut left = NetClient::connect(router.local_addr()).expect("connect");
    left.register::<Euclidean>(K, 1.8, Point::new(10.0, 50.0))
        .expect("register");
    let mut right = NetClient::connect(router.local_addr()).expect("connect");
    right
        .register::<Euclidean>(K, 1.8, Point::new(90.0, 50.0))
        .expect("register");
    left.next_result().expect("left result");
    right.next_result().expect("right result");

    // Partition 0 dies.
    backends.remove(0).shutdown();

    // The left session ends with a clean Unavailable verdict (whether
    // the router noticed the EOF first or the next forward failed).
    left.update::<Euclidean>(Point::new(11.0, 50.0))
        .expect("update reaches the router");
    match left.next_result() {
        Err(NetError::Server { code, .. }) => assert_eq!(code, ErrorCode::Unavailable),
        Err(NetError::Closed) => panic!("must carry an explicit Unavailable error"),
        other => panic!("expected Unavailable, got {other:?}"),
    }

    // The right session never notices.
    for i in 0..3 {
        right
            .update::<Euclidean>(Point::new(90.0 - i as f64, 50.0))
            .expect("update");
        right.next_result().expect("right keeps streaming");
    }
}

//! Cluster conformance: the partitioned engine against the single-world
//! engine it shards.
//!
//! The contract under test (module docs of `insq_cluster::plan`): with a
//! sufficient overlap margin every per-tick result is *certified* and
//! bit-identical — same global ids, same order — to what one
//! unpartitioned `FleetEngine` computes from the same positions; with a
//! starved margin, degradation near borders is explicit (uncertified
//! flags), never a silently wrong result. And the whole partitioned
//! stream is bit-identical across worker thread counts, through a
//! mid-run delta epoch and through handoffs.

use std::sync::Arc;

use insq_cluster::{ClientId, ClientResult, ClusterPlan, PartitionGroup};
use insq_core::{Euclidean, InsConfig, MovingKnn};
use insq_geom::{Aabb, Point};
use insq_index::{SiteDelta, VorTree};
use insq_server::{
    FleetConfig, FleetEngine, GridPartitioner, InsFleetQuery, TickPolicy, TickPos, World,
};
use insq_workload::{FleetScenario, TrajectoryKind};

const K: usize = 4;
const CLIENTS: usize = 24;
const TICKS: usize = 60;
const DELTA_AT: usize = 30;

fn scenario() -> FleetScenario {
    FleetScenario {
        clients: CLIENTS,
        n: 400,
        k: K,
        rho: 1.8,
        // Shuttles sweep the full width every loop: each client crosses
        // every vertical partition border repeatedly.
        mix: vec![TrajectoryKind::Shuttle],
        speed: 3.0,
        ticks: TICKS,
        updates: vec![],
        seed: 77,
        ..FleetScenario::default()
    }
}

fn bounds() -> Aabb {
    Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

/// The mid-run world change: drop a handful of sites (including some in
/// the border band) and add fresh ones.
fn delta(sites: &[Point]) -> SiteDelta {
    SiteDelta {
        removed: (0..8)
            .map(|i| insq_voronoi::SiteId((i * 37 % sites.len()) as u32))
            .collect(),
        added: (0..10)
            .map(|i| Point::new(31.0 + 4.1 * i as f64, 3.0 + (9.3 * i as f64) % 94.0))
            .collect(),
    }
}

/// Runs the partitioned group: `regions` vertical strips, `margin`,
/// `threads` workers, the scenario's shuttle fleet, one delta epoch at
/// `DELTA_AT`. Returns the full per-tick result stream.
fn run_partitioned(regions: u32, margin: f64, threads: usize) -> Vec<Vec<ClientResult>> {
    let sc = scenario();
    let sites = sc.points(0);
    let clip = sc.clip_window();
    let part = Arc::new(GridPartitioner::strips(bounds(), regions));
    let plan = ClusterPlan::new(part, margin, sites.clone());
    let worlds: Vec<_> = (0..plan.regions())
        .map(|r| {
            let pts = plan.region_sites(insq_server::RegionId(r as u32));
            Arc::new(World::new(VorTree::build(pts, clip).expect("valid sites")))
        })
        .collect();
    let mut group =
        PartitionGroup::<Euclidean>::new(plan, worlds, FleetConfig::with_threads(threads));

    let trajs: Vec<_> = (0..CLIENTS).map(|c| sc.client_trajectory(c)).collect();
    let cids: Vec<ClientId> = (0..CLIENTS)
        .map(|c| {
            group
                .register(sc.position(&trajs[c], c, 0), InsConfig::new(K, sc.rho))
                .expect("register")
        })
        .collect();

    let mut stream = Vec::with_capacity(TICKS);
    for tick in 0..TICKS {
        if tick == DELTA_AT {
            group.apply(&delta(&sites)).expect("delta splits cleanly");
        }
        let results = group.tick(TickPolicy::Barrier, |cid| {
            let c = cids.iter().position(|&x| x == cid).expect("known client");
            TickPos::Fresh(sc.position(&trajs[c], c, tick))
        });
        assert_eq!(results.len(), CLIENTS);
        stream.push(results);
    }

    // Every regional world stayed the exact mirror of the plan's
    // membership through the delta epoch.
    for r in 0..group.plan().regions() {
        let rid = insq_server::RegionId(r as u32);
        let (_, snap) = group.worlds()[r].snapshot();
        let expect = group.plan().region_sites(rid);
        assert_eq!(snap.len(), expect.len(), "region {rid} site count");
        for (l, &p) in expect.iter().enumerate() {
            assert_eq!(snap.point(insq_voronoi::SiteId(l as u32)), p);
        }
    }
    assert!(
        group.handoffs() > 0,
        "shuttle fleet must cross borders: {:?}",
        group
    );
    stream
}

/// The unpartitioned reference: one engine, one world, same positions,
/// same delta. Returns per-tick global kNN ids per client.
fn run_single_world() -> Vec<Vec<Vec<u32>>> {
    let sc = scenario();
    let sites = sc.points(0);
    let clip = sc.clip_window();
    let world = Arc::new(World::new(
        VorTree::build(sites.clone(), clip).expect("valid sites"),
    ));
    let mut engine: FleetEngine<VorTree, InsFleetQuery> =
        FleetEngine::new(Arc::clone(&world), FleetConfig::with_threads(2));
    let trajs: Vec<_> = (0..CLIENTS).map(|c| sc.client_trajectory(c)).collect();
    let qids: Vec<_> = (0..CLIENTS)
        .map(|_| {
            engine.register(InsFleetQuery::new(&world, InsConfig::new(K, sc.rho)).expect("query"))
        })
        .collect();

    let mut stream = Vec::with_capacity(TICKS);
    for tick in 0..TICKS {
        if tick == DELTA_AT {
            world.apply(&delta(&sites)).expect("delta applies");
        }
        engine.tick_all(|qid| {
            let c = qids.iter().position(|&x| x == qid).expect("known query");
            sc.position(&trajs[c], c, tick)
        });
        let mut by_client = vec![Vec::new(); CLIENTS];
        engine.for_each_query(|qid, q| {
            let c = qids.iter().position(|&x| x == qid).expect("known query");
            by_client[c] = q.current_knn().into_iter().map(|s| s.0).collect();
        });
        stream.push(by_client);
    }
    stream
}

#[test]
fn certified_results_are_bit_identical_to_single_world() {
    let single = run_single_world();
    let grouped = run_partitioned(2, 30.0, 2);
    let mut certified = 0usize;
    let mut total = 0usize;
    for (tick, results) in grouped.iter().enumerate() {
        for res in results {
            total += 1;
            if res.certified {
                certified += 1;
                assert_eq!(
                    res.knn, single[tick][res.client.0 as usize],
                    "tick {tick} client {} (region {}, handoff {})",
                    res.client, res.region, res.handoff
                );
            }
        }
    }
    // A 30-unit margin dwarfs every k-th-neighbor distance at n=400 in a
    // 100×100 space: the whole stream certifies.
    assert_eq!(certified, total, "sufficient margin certifies every tick");
}

#[test]
fn starved_margin_degrades_loudly_never_silently() {
    let single = run_single_world();
    let grouped = run_partitioned(2, 2.0, 2);
    let mut uncertified = 0usize;
    for (tick, results) in grouped.iter().enumerate() {
        for res in results {
            if res.certified {
                // The contract holds at any margin: certified ⇒ global.
                assert_eq!(
                    res.knn, single[tick][res.client.0 as usize],
                    "tick {tick} client {}",
                    res.client
                );
            } else {
                uncertified += 1;
                // Degraded is still well-formed: a full k of real sites.
                assert_eq!(res.knn.len(), K);
            }
        }
    }
    assert!(
        uncertified > 0,
        "a 2-unit margin must starve some border queries"
    );
}

#[test]
fn partitioned_stream_is_thread_count_invariant() {
    let one = run_partitioned(2, 12.0, 1);
    let two = run_partitioned(2, 12.0, 2);
    let eight = run_partitioned(2, 12.0, 8);
    assert_eq!(one, two, "1 ≡ 2 threads");
    assert_eq!(two, eight, "2 ≡ 8 threads");
}

#[test]
fn four_way_grid_certifies_and_matches_too() {
    let single = run_single_world();
    let grouped = run_partitioned(4, 30.0, 2);
    for (tick, results) in grouped.iter().enumerate() {
        for res in results {
            assert!(res.certified, "tick {tick} client {}", res.client);
            assert_eq!(res.knn, single[tick][res.client.0 as usize]);
        }
    }
}

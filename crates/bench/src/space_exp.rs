//! Space-generic experiment drivers.
//!
//! Everything here is written once against `insq_workload::SpaceWorkload`
//! and monomorphised per space: the fleet sweep behind `e_fleet`, the
//! single-query INS run, and the cross-space comparison table of
//! `e_spaces`. Adding a space to the system adds a row to these tables
//! with no new experiment code.

use std::sync::Arc;
use std::time::Instant;

use insq_core::{Euclidean, InsConfig, MovingKnn, Network, Processor, WeightedEuclidean};
use insq_server::{FleetConfig, FleetEngine, FleetStats, QueryId, SpaceQuery, World};
use insq_workload::{FleetScenario, SpaceWorkload};

use crate::bench_json::{obj, snapshot_status, Json};
use crate::Effort;

/// Drives a whole [`FleetScenario`] through the fleet engine in space
/// `S`: registers `sc.clients` queries over `idx_v0`, publishes `idx_v1`
/// at every scheduled update tick, and ticks the fleet to the end.
/// Returns the engine (for stats and spot checks) and the wall-clock
/// seconds of the run loop.
pub fn run_fleet<S: SpaceWorkload>(
    sc: &FleetScenario,
    fleet_state: &S::Fleet,
    idx_v0: &Arc<S::Index>,
    idx_v1: &Arc<S::Index>,
    threads: usize,
) -> (FleetEngine<S::Index, SpaceQuery<S>>, f64) {
    let world = Arc::new(World::from_arc(Arc::clone(idx_v0)));
    let mut fleet: FleetEngine<S::Index, SpaceQuery<S>> =
        FleetEngine::new(Arc::clone(&world), FleetConfig::with_threads(threads));
    for _ in 0..sc.clients {
        fleet.register(
            SpaceQuery::<S>::new(&world, InsConfig::new(sc.k, sc.rho)).expect("valid config"),
        );
    }
    let t0 = Instant::now();
    for tick in 0..sc.ticks {
        if sc.updates.contains(&tick) {
            world.publish_arc(Arc::clone(idx_v1));
        }
        // Positions are computed inside the closure, on the worker
        // threads: the timed window contains no sequential per-tick work
        // that would dilute the thread-scaling signal.
        fleet.tick_all(|id| S::position(sc, fleet_state, id.index(), tick));
    }
    let wall = t0.elapsed().as_secs_f64();
    (fleet, wall)
}

/// One single-query INS run in space `S` over the scenario's client 0
/// trajectory, with a brute-force agreement check at every sampled tick.
/// Returns (stats, us/tick, brute-force mismatches).
pub fn run_single<S: SpaceWorkload>(
    sc: &FleetScenario,
    fleet_state: &S::Fleet,
    idx: &Arc<S::Index>,
) -> (insq_core::QueryStats, f64, usize) {
    let mut p =
        Processor::<S, _>::new(Arc::clone(idx), InsConfig::new(sc.k, sc.rho)).expect("valid");
    let mut mismatches = 0usize;
    let t0 = Instant::now();
    for tick in 0..sc.ticks {
        let pos = S::position(sc, fleet_state, 0, tick);
        p.tick(pos);
        if tick % 10 == 0 {
            let mut got = p.current_knn();
            got.sort_unstable();
            let mut want = S::brute(idx, pos, sc.k);
            want.sort_unstable();
            if got != want {
                mismatches += 1;
            }
        }
    }
    let us_per_tick = t0.elapsed().as_secs_f64() * 1e6 / sc.ticks.max(1) as f64;
    (*p.stats(), us_per_tick, mismatches)
}

/// One `e_spaces` table row: fleet + single-query behaviour of space `S`
/// under the shared scenario. Returns the text row plus its
/// machine-readable snapshot record.
fn space_row<S: SpaceWorkload>(name: &str, sc: &FleetScenario) -> (String, Json) {
    let fleet_state = S::make_fleet(sc);
    let idx_v0 = Arc::new(S::build_index(sc, &fleet_state, 0));
    let idx_v1 = Arc::new(S::build_index(sc, &fleet_state, 1));

    let (fleet_1t, wall_1t) = run_fleet::<S>(sc, &fleet_state, &idx_v0, &idx_v1, 1);
    let (fleet_2t, _) = run_fleet::<S>(sc, &fleet_state, &idx_v0, &idx_v1, 2);
    let s1: FleetStats = fleet_1t.stats();
    let identical = s1.total == fleet_2t.stats().total;

    // Brute-force spot checks of the final fleet state on the live
    // (post-update) index.
    let mut spot_ok = true;
    for c in [0usize, sc.clients / 2, sc.clients - 1] {
        let q = fleet_1t.query(QueryId(c as u64)).expect("registered");
        let mut got = q.current_knn();
        got.sort_unstable();
        let pos = S::position(sc, &fleet_state, c, sc.ticks - 1);
        let mut want = S::brute(&idx_v1, pos, sc.k);
        want.sort_unstable();
        spot_ok &= got == want;
    }

    let (_, us_tick, mismatches) = run_single::<S>(sc, &fleet_state, &idx_v0);
    let kticks = s1.total.ticks as f64 / wall_1t / 1e3;
    let row = format!(
        "{:<10} {:>9.1} {:>10.2} {:>9.4} {:>10.2} {:>10} {:>7} {:>6}\n",
        name,
        kticks,
        s1.validations_per_tick(),
        s1.recompute_rate(),
        us_tick,
        if identical { "yes" } else { "NO" },
        if spot_ok { "ok" } else { "FAIL" },
        mismatches,
    );
    let json = obj([
        ("space", name.into()),
        ("clients", sc.clients.into()),
        ("n", sc.n.into()),
        ("kticks_per_s", kticks.into()),
        ("validations_per_tick", s1.validations_per_tick().into()),
        ("recompute_rate", s1.recompute_rate().into()),
        ("us_per_tick", us_tick.into()),
        ("identical_1_vs_2_threads", identical.into()),
        ("brute_spot_ok", spot_ok.into()),
        ("brute_mismatches", mismatches.into()),
    ]);
    (row, json)
}

/// E-spaces: the same fleet scenario through every registered space —
/// one generic driver, one row per space.
pub fn e_spaces(effort: Effort) -> String {
    let ticks = effort.ticks(400);
    let sc = FleetScenario {
        clients: 200,
        n: 2_000,
        k: 5,
        ticks,
        updates: vec![ticks / 2],
        axis_weights: (1.0, 2.5),
        seed: 2016,
        ..Default::default()
    };
    // Road-network fleets tick a Dijkstra per validation — use a smaller
    // object count so the quick run stays in CI budget.
    let sc_net = FleetScenario {
        n: 400,
        clients: 100,
        ..sc.clone()
    };

    let mut out = format!(
        "one scenario, every space: {} clients, k={}, rho={}, {} ticks, one epoch\n\
         swap mid-run (network space: {} clients over a street grid, n={} sites)\n\n",
        sc.clients, sc.k, sc.rho, sc.ticks, sc_net.clients, sc_net.n,
    );
    out.push_str(&format!(
        "{:<10} {:>9} {:>10} {:>9} {:>10} {:>10} {:>7} {:>6}\n",
        "space", "kticks/s", "val/tick", "rec_rate", "us/query", "identical", "brute", "miss"
    ));
    let mut runs: Vec<Json> = Vec::new();
    for (row, json) in [
        space_row::<Euclidean>("euclidean", &sc),
        space_row::<WeightedEuclidean>("weighted", &sc),
        space_row::<Network>("network", &sc_net),
    ] {
        out.push_str(&row);
        runs.push(json);
    }
    out.push_str(
        "\nexpected shape: every row validates cheaply and recomputes rarely; the\n\
         'identical' column asserts bit-identical aggregate counters at 1 vs 2\n\
         threads, 'brute'/'miss' that fleet and single-query results equal the\n\
         per-space brute force. The weighted row demonstrates that a new space\n\
         rides the entire stack — processor, world, fleet engine, workload,\n\
         experiments — with zero per-space driver code.\n",
    );
    let snapshot = obj([
        ("experiment", "e_spaces".into()),
        (
            "effort",
            match effort {
                Effort::Quick => "quick",
                Effort::Full => "full",
            }
            .into(),
        ),
        ("k", sc.k.into()),
        ("ticks", sc.ticks.into()),
        ("runs", Json::Arr(runs)),
    ]);
    out.push_str(&snapshot_status("e_spaces", &snapshot));
    out
}

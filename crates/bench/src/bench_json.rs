//! Minimal JSON emission for machine-readable benchmark snapshots.
//!
//! The `report` binary commits `BENCH_<id>.json` files at the repo root
//! so CI and downstream tooling can diff performance without parsing
//! the human tables. No serde (no-deps discipline): a tiny value tree
//! with a deterministic, pretty-printed writer is all the experiments
//! need.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// A JSON value. Object keys keep insertion order so emitted files are
/// stable across runs (diff-friendly).
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (emitted without a decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float; non-finite values are emitted as `null`.
    Num(f64),
    /// String (escaped on emission).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

/// Convenience constructor for objects: `obj([("k", v.into()), ...])`.
pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(out: &mut String, v: &Json, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Json::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Num(f) => {
            if f.is_finite() {
                // Rust's shortest-roundtrip Display is valid JSON for
                // finite doubles; keep integral floats float-typed.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => escape_into(out, s),
        Json::Arr(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent + 1));
                render(out, x, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent + 1));
                escape_into(out, k);
                out.push_str(": ");
                render(out, x, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
    }
}

impl Json {
    /// Pretty-prints (2-space indent, trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        render(&mut out, self, 0);
        out.push('\n');
        out
    }

    /// Parses a JSON document (the inverse of [`Json::to_pretty`], and a
    /// superset: any standard JSON text). Numbers parse as [`Json::Num`]
    /// when they carry a fraction or exponent, [`Json::Int`]/
    /// [`Json::UInt`] otherwise. On error returns a human-readable
    /// message with a byte offset.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.at));
        }
        Ok(v)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if numeric ([`Json::Num`], [`Json::Int`] or
    /// [`Json::UInt`]).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::Num(f) => Some(f),
            Json::Int(n) => Some(n as f64),
            Json::UInt(n) => Some(n as f64),
            _ => None,
        }
    }

    /// The value as a string slice, if a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.at))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.at)),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            // Surrogates are not emitted by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.at += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.at)),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let s = &self.bytes[self.at..];
                    let text = unsafe_free_utf8_prefix(s);
                    let c = text.chars().next().ok_or("invalid utf-8 in string")?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).map_err(|_| "bad number")?;
        if fractional {
            text.parse::<f64>()
                .map(Json::Num)
                .map_err(|_| format!("bad number at byte {start}"))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Json::Int)
                .map_err(|_| format!("bad number at byte {start}"))
        } else {
            text.parse::<u64>()
                .map(Json::UInt)
                .map_err(|_| format!("bad number at byte {start}"))
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut xs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(xs));
        }
        loop {
            self.skip_ws();
            xs.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(xs));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }
}

/// The longest valid UTF-8 prefix of `s` (safe counterpart of
/// `from_utf8_unchecked`; parser input comes from a `&str`, so in
/// practice this is total).
fn unsafe_free_utf8_prefix(s: &[u8]) -> &str {
    match std::str::from_utf8(s) {
        Ok(t) => t,
        Err(e) => std::str::from_utf8(&s[..e.valid_up_to()]).unwrap_or(""),
    }
}

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Writes `value` to `BENCH_<id>.json` at the repo root, returning the
/// path written. Failures are soft (reported, not fatal): the text
/// report is the primary artifact and must not die on a read-only
/// checkout.
pub fn write_snapshot(id: &str, value: &Json) -> io::Result<PathBuf> {
    let path = repo_root().join(format!("BENCH_{id}.json"));
    std::fs::write(&path, value.to_pretty())?;
    Ok(path)
}

/// [`write_snapshot`], folded into a one-line status string for the
/// experiment's text report.
pub fn snapshot_status(id: &str, value: &Json) -> String {
    match write_snapshot(id, value) {
        Ok(path) => format!("\nmachine-readable snapshot: {}\n", path.display()),
        Err(e) => format!("\nmachine-readable snapshot NOT written (BENCH_{id}.json): {e}\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_pretty_json() {
        let v = obj([
            ("experiment", "e_net".into()),
            ("ticks", 300u64.into()),
            ("bytes_per_tick", 812.5f64.into()),
            ("ok", true.into()),
            (
                "runs",
                Json::Arr(vec![obj([("threads", 1usize.into())]), Json::Null]),
            ),
            ("empty", Json::Obj(vec![])),
            ("note", "a \"quoted\"\nline".into()),
        ]);
        let s = v.to_pretty();
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("\"experiment\": \"e_net\""));
        assert!(s.contains("\"ticks\": 300"));
        assert!(s.contains("\"bytes_per_tick\": 812.5"));
        assert!(s.contains("\"runs\": ["));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.contains("\\\"quoted\\\"\\nline"));
        assert!(!s.contains("NaN"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let v = obj([("bad", f64::NAN.into()), ("worse", f64::INFINITY.into())]);
        let s = v.to_pretty();
        assert!(s.contains("\"bad\": null"));
        assert!(s.contains("\"worse\": null"));
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = obj([("x", 4.0f64.into())]);
        assert!(v.to_pretty().contains("\"x\": 4.0"));
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let v = obj([
            ("experiment", "e_fleet".into()),
            ("n", 5000usize.into()),
            ("us_per_tick", 0.8683341295f64.into()),
            ("speedup", Json::Null),
            ("identical", true.into()),
            (
                "runs",
                Json::Arr(vec![
                    obj([("threads", 1usize.into()), ("neg", Json::Int(-3))]),
                    Json::Bool(false),
                ]),
            ),
            ("note", "a \"quoted\"\nline\ttab".into()),
        ]);
        let text = v.to_pretty();
        let parsed = Json::parse(&text).expect("writer output must parse");
        // The value tree round-trips exactly (same pretty form).
        assert_eq!(parsed.to_pretty(), text);
        // Typed accessors find what the schema check needs.
        assert_eq!(
            parsed.get("experiment").and_then(Json::as_str),
            Some("e_fleet")
        );
        assert_eq!(
            parsed.get("us_per_tick").and_then(Json::as_f64),
            Some(0.8683341295)
        );
        let runs = parsed.get("runs").and_then(Json::as_arr).unwrap();
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].get("neg").and_then(Json::as_f64), Some(-3.0));
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
            "1.2.3",
        ] {
            assert!(Json::parse(bad).is_err(), "accepted malformed: {bad:?}");
        }
    }

    #[test]
    fn parse_handles_escapes_and_exponents() {
        let v = Json::parse(r#"{"s": "aA\n", "e": 1.5e3, "neg": -7}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("aA\n"));
        assert_eq!(v.get("e").and_then(Json::as_f64), Some(1500.0));
        assert_eq!(v.get("neg").and_then(Json::as_f64), Some(-7.0));
    }
}

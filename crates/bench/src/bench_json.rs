//! Minimal JSON emission for machine-readable benchmark snapshots.
//!
//! The `report` binary commits `BENCH_<id>.json` files at the repo root
//! so CI and downstream tooling can diff performance without parsing
//! the human tables. No serde (no-deps discipline): a tiny value tree
//! with a deterministic, pretty-printed writer is all the experiments
//! need.

use std::fmt::Write as _;
use std::io;
use std::path::PathBuf;

/// A JSON value. Object keys keep insertion order so emitted files are
/// stable across runs (diff-friendly).
#[derive(Debug, Clone)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Integer (emitted without a decimal point).
    Int(i64),
    /// Unsigned integer.
    UInt(u64),
    /// Float; non-finite values are emitted as `null`.
    Num(f64),
    /// String (escaped on emission).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl From<&str> for Json {
    fn from(s: &str) -> Self {
        Json::Str(s.to_string())
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Self {
        Json::UInt(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Self {
        Json::UInt(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Self {
        Json::Int(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Self {
        Json::Num(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Self {
        Json::Bool(v)
    }
}
impl From<Vec<Json>> for Json {
    fn from(v: Vec<Json>) -> Self {
        Json::Arr(v)
    }
}

/// Convenience constructor for objects: `obj([("k", v.into()), ...])`.
pub fn obj<const N: usize>(fields: [(&str, Json); N]) -> Json {
    Json::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn render(out: &mut String, v: &Json, indent: usize) {
    const PAD: &str = "  ";
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Json::Int(n) => {
            let _ = write!(out, "{n}");
        }
        Json::UInt(n) => {
            let _ = write!(out, "{n}");
        }
        Json::Num(f) => {
            if f.is_finite() {
                // Rust's shortest-roundtrip Display is valid JSON for
                // finite doubles; keep integral floats float-typed.
                let s = format!("{f}");
                out.push_str(&s);
                if !s.contains('.') {
                    out.push_str(".0");
                }
            } else {
                out.push_str("null");
            }
        }
        Json::Str(s) => escape_into(out, s),
        Json::Arr(xs) => {
            if xs.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent + 1));
                render(out, x, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push(']');
        }
        Json::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, x)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('\n');
                out.push_str(&PAD.repeat(indent + 1));
                escape_into(out, k);
                out.push_str(": ");
                render(out, x, indent + 1);
            }
            out.push('\n');
            out.push_str(&PAD.repeat(indent));
            out.push('}');
        }
    }
}

impl Json {
    /// Pretty-prints (2-space indent, trailing newline).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        render(&mut out, self, 0);
        out.push('\n');
        out
    }
}

/// The repository root (two levels above this crate's manifest).
pub fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap_or_else(|_| PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../.."))
}

/// Writes `value` to `BENCH_<id>.json` at the repo root, returning the
/// path written. Failures are soft (reported, not fatal): the text
/// report is the primary artifact and must not die on a read-only
/// checkout.
pub fn write_snapshot(id: &str, value: &Json) -> io::Result<PathBuf> {
    let path = repo_root().join(format!("BENCH_{id}.json"));
    std::fs::write(&path, value.to_pretty())?;
    Ok(path)
}

/// [`write_snapshot`], folded into a one-line status string for the
/// experiment's text report.
pub fn snapshot_status(id: &str, value: &Json) -> String {
    match write_snapshot(id, value) {
        Ok(path) => format!("\nmachine-readable snapshot: {}\n", path.display()),
        Err(e) => format!("\nmachine-readable snapshot NOT written (BENCH_{id}.json): {e}\n"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_stable_pretty_json() {
        let v = obj([
            ("experiment", "e_net".into()),
            ("ticks", 300u64.into()),
            ("bytes_per_tick", 812.5f64.into()),
            ("ok", true.into()),
            (
                "runs",
                Json::Arr(vec![obj([("threads", 1usize.into())]), Json::Null]),
            ),
            ("empty", Json::Obj(vec![])),
            ("note", "a \"quoted\"\nline".into()),
        ]);
        let s = v.to_pretty();
        assert!(s.starts_with("{\n"));
        assert!(s.ends_with("}\n"));
        assert!(s.contains("\"experiment\": \"e_net\""));
        assert!(s.contains("\"ticks\": 300"));
        assert!(s.contains("\"bytes_per_tick\": 812.5"));
        assert!(s.contains("\"runs\": ["));
        assert!(s.contains("\"empty\": {}"));
        assert!(s.contains("\\\"quoted\\\"\\nline"));
        assert!(!s.contains("NaN"));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let v = obj([("bad", f64::NAN.into()), ("worse", f64::INFINITY.into())]);
        let s = v.to_pretty();
        assert!(s.contains("\"bad\": null"));
        assert!(s.contains("\"worse\": null"));
    }

    #[test]
    fn integral_floats_stay_floats() {
        let v = obj([("x", 4.0f64.into())]);
        assert!(v.to_pretty().contains("\"x\": 4.0"));
    }
}

//! E-update: incremental delta epochs vs full rebuild republishes.
//!
//! Measures the server-side cost of a data-object update along the two
//! routes `insq-server` offers — `World::publish` of a from-scratch index
//! (O(n log n) construction) vs `World::apply` of a [`SiteDelta`] /
//! [`NetSiteDelta`] (copy-on-write clone plus localized repair) — across
//! data set sizes and delta sizes, in both the Euclidean and the road-
//! network mode, plus a fleet stream segment showing update stalls.
//!
//! Expected shape: `apply` latency scales with the delta size (clone cost
//! gives it an O(n) floor, repair adds O(delta · local)), while `publish`
//! pays the full rebuild regardless — so small deltas win by well over
//! the 5x acceptance bar at n >= 10k.

use std::sync::Arc;
use std::time::{Duration, Instant};

use insq_core::InsConfig;
use insq_geom::{Point, Trajectory};
use insq_index::{SiteDelta, VorTree};
use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig, SplitMix64};
use insq_roadnet::{NetDelta, NetSiteDelta, SiteIdx, VertexId};
use insq_server::{FleetConfig, FleetEngine, InsFleetQuery, NetworkWorld, World};
use insq_voronoi::SiteId;
use insq_workload::{Distribution, FleetScenario};

use crate::bench_json::{obj, snapshot_status, Json};
use crate::Effort;

/// A churn delta: removes `d` spread-out sites and adds `d` fresh points,
/// keeping the world size stable across repetitions.
fn churn_delta(snapshot: &VorTree, d: usize, rng: &mut SplitMix64) -> SiteDelta {
    let n = snapshot.len();
    let mut delta = SiteDelta::default();
    let mut used = std::collections::BTreeSet::new();
    while used.len() < d.min(n.saturating_sub(4)) {
        used.insert(SiteId(rng.below(n) as u32));
    }
    delta.removed = used.into_iter().collect();
    while delta.added.len() < d {
        let p = Point::new(rng.range(0.0, 100.0), rng.range(0.0, 100.0));
        if !snapshot.voronoi().points().contains(&p) {
            delta.added.push(p);
        }
    }
    delta
}

fn euclidean_section(effort: Effort, out: &mut String, runs: &mut Vec<Json>) {
    let ns: Vec<usize> = effort.thin(&[2_000usize, 10_000, 20_000]);
    let reps = match effort {
        Effort::Quick => 4,
        Effort::Full => 8,
    };
    out.push_str("Euclidean (VorTree world): World::apply(SiteDelta) vs World::publish(rebuild)\n");
    out.push_str(&format!(
        "{:<8} {:>8} {:>13} {:>13} {:>9}\n",
        "n", "delta", "apply_us", "rebuild_us", "speedup"
    ));
    for &n in &ns {
        let space = insq_geom::Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
        let points = Distribution::Uniform.generate(n, &space, 7);
        let bounds = space.inflated(10.0);
        let world = World::new(VorTree::build(points.clone(), bounds).expect("valid data"));

        // The baseline: a full rebuild of the current snapshot's points
        // (exactly what a publish-path update would have to do).
        let t0 = Instant::now();
        for _ in 0..reps {
            let (_, snap) = world.snapshot();
            let rebuilt = VorTree::build(snap.voronoi().points().to_vec(), bounds).unwrap();
            world.publish(rebuilt);
        }
        let rebuild_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

        for &d in &[1usize, 16, 128] {
            let mut rng = SplitMix64::new(0xE0 + d as u64);
            let mut total = Duration::ZERO;
            for _ in 0..reps {
                let (_, snap) = world.snapshot();
                let delta = churn_delta(&snap, d, &mut rng);
                let t0 = Instant::now();
                world.apply(&delta).expect("valid delta");
                total += t0.elapsed();
            }
            let apply_us = total.as_secs_f64() * 1e6 / reps as f64;
            out.push_str(&format!(
                "{:<8} {:>8} {:>13.1} {:>13.1} {:>8.1}x\n",
                n,
                d,
                apply_us,
                rebuild_us,
                rebuild_us / apply_us
            ));
            runs.push(obj([
                ("section", "euclidean_delta".into()),
                ("n", n.into()),
                ("delta", d.into()),
                ("apply_us", apply_us.into()),
                ("rebuild_us", rebuild_us.into()),
                ("speedup", (rebuild_us / apply_us).into()),
            ]));
        }
    }
}

fn network_section(effort: Effort, out: &mut String, runs: &mut Vec<Json>) {
    let (cols, rows, sites_n) = match effort {
        Effort::Quick => (30u32, 30u32, 250usize),
        Effort::Full => (60, 60, 900),
    };
    let reps = 6;
    out.push_str(&format!(
        "\nRoad network ({cols}x{rows} jittered grid, {sites_n} sites): \
         World::apply(NetSiteDelta) vs publish(with_sites)\n"
    ));
    out.push_str(&format!(
        "{:<8} {:>13} {:>13} {:>9}\n",
        "delta", "apply_us", "rebuild_us", "speedup"
    ));
    let net = Arc::new(
        grid_network(
            &GridConfig {
                cols,
                rows,
                ..GridConfig::default()
            },
            5,
        )
        .expect("valid grid"),
    );
    let sites =
        insq_roadnet::SiteSet::new(&net, random_site_vertices(&net, sites_n, 11).unwrap()).unwrap();
    let world = World::new(NetworkWorld::build(Arc::clone(&net), sites));

    let t0 = Instant::now();
    for _ in 0..reps {
        let (_, snap) = world.snapshot();
        world.publish(snap.with_sites((*snap.sites).clone()));
    }
    let rebuild_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;

    for &d in &[1usize, 8, 32] {
        let mut rng = SplitMix64::new(0xF0 + d as u64);
        let mut total = Duration::ZERO;
        for _ in 0..reps {
            let (_, snap) = world.snapshot();
            let mut delta = NetSiteDelta::default();
            let mut used = std::collections::BTreeSet::new();
            while used.len() < d {
                used.insert(SiteIdx(rng.below(snap.sites.len()) as u32));
            }
            delta.removed = used.into_iter().collect();
            while delta.added.len() < d {
                let v = VertexId(rng.below(net.num_vertices()) as u32);
                if snap.sites.site_at(v).is_none() && !delta.added.contains(&v) {
                    delta.added.push(v);
                }
            }
            let delta = NetDelta::from(delta);
            let t0 = Instant::now();
            world.apply(&delta).expect("valid delta");
            total += t0.elapsed();
        }
        let apply_us = total.as_secs_f64() * 1e6 / reps as f64;
        out.push_str(&format!(
            "{:<8} {:>13.1} {:>13.1} {:>8.1}x\n",
            d,
            apply_us,
            rebuild_us,
            rebuild_us / apply_us
        ));
        runs.push(obj([
            ("section", "network_delta".into()),
            ("n", sites_n.into()),
            ("delta", d.into()),
            ("apply_us", apply_us.into()),
            ("rebuild_us", rebuild_us.into()),
            ("speedup", (rebuild_us / apply_us).into()),
        ]));
    }
}

/// Returns the apply-mode fleet cost in us per query-tick (the
/// experiment's headline `us_per_tick`).
fn stream_section(effort: Effort, out: &mut String, runs: &mut Vec<Json>) -> f64 {
    let clients = match effort {
        Effort::Quick => 200usize,
        Effort::Full => 1_000,
    };
    let ticks = effort.ticks(200);
    let every = 5usize;
    let sc = FleetScenario {
        clients,
        n: 10_000,
        k: 5,
        ticks,
        updates: Vec::new(),
        seed: 91,
        ..Default::default()
    };
    out.push_str(&format!(
        "\nFleet stream: {clients} clients, n=10000, a d=8 churn update every {every} ticks\n"
    ));
    out.push_str(&format!(
        "{:<10} {:>12} {:>14} {:>14}\n",
        "mode", "kticks/s", "mean_upd_us", "max_upd_us"
    ));
    let idx = Arc::new(VorTree::build(sc.points(0), sc.clip_window()).expect("valid data"));
    let trajs: Vec<Trajectory> = (0..clients).map(|c| sc.client_trajectory(c)).collect();

    let mut apply_us_per_tick = 0.0;
    for mode in ["apply", "publish"] {
        let world = Arc::new(World::from_arc(Arc::clone(&idx)));
        let mut fleet: FleetEngine<VorTree, InsFleetQuery> =
            FleetEngine::new(Arc::clone(&world), FleetConfig::with_threads(2));
        for _ in 0..clients {
            fleet.register(
                InsFleetQuery::new(&world, InsConfig::new(sc.k, sc.rho)).expect("valid config"),
            );
        }
        let mut rng = SplitMix64::new(0xAB);
        let mut upd: Vec<Duration> = Vec::new();
        let t_run = Instant::now();
        for tick in 0..sc.ticks {
            if tick > 0 && tick % every == 0 {
                let (_, snap) = world.snapshot();
                let delta = churn_delta(&snap, 8, &mut rng);
                let t0 = Instant::now();
                if mode == "apply" {
                    world.apply(&delta).expect("valid delta");
                } else {
                    let mut patched = (*snap).clone();
                    patched.apply(&delta).expect("valid delta");
                    let rebuilt =
                        VorTree::build(patched.voronoi().points().to_vec(), sc.clip_window())
                            .expect("valid data");
                    world.publish(rebuilt);
                }
                upd.push(t0.elapsed());
            }
            fleet.tick_all(|id| sc.position(&trajs[id.index()], id.index(), tick));
        }
        let wall = t_run.elapsed().as_secs_f64();
        let mean = upd.iter().sum::<Duration>().as_secs_f64() * 1e6 / upd.len() as f64;
        let max = upd
            .iter()
            .map(|d| d.as_secs_f64() * 1e6)
            .fold(0.0f64, f64::max);
        let stats = fleet.stats();
        let kticks = stats.total.ticks as f64 / wall / 1e3;
        let us_per_tick = stats.elapsed.as_secs_f64() * 1e6 / stats.total.ticks.max(1) as f64;
        if mode == "apply" {
            apply_us_per_tick = us_per_tick;
        }
        out.push_str(&format!(
            "{:<10} {:>12.1} {:>14.1} {:>14.1}\n",
            mode, kticks, mean, max
        ));
        runs.push(obj([
            ("section", format!("stream_{mode}").as_str().into()),
            ("clients", clients.into()),
            ("kticks_per_s", kticks.into()),
            ("us_per_tick", us_per_tick.into()),
            ("mean_update_us", mean.into()),
            ("max_update_us", max.into()),
        ]));
    }
    apply_us_per_tick
}

/// E-update: incremental index maintenance — delta epochs vs rebuilds.
pub fn e_update(effort: Effort) -> String {
    let mut out = String::new();
    let mut runs: Vec<Json> = Vec::new();
    euclidean_section(effort, &mut out, &mut runs);
    network_section(effort, &mut out, &mut runs);
    let us_per_tick = stream_section(effort, &mut out, &mut runs);
    out.push_str(
        "\nexpected shape: apply latency grows with delta size from an O(n) copy-on-write\n\
         floor and stays well under the O(n log n) rebuild (>= 5x for small deltas at\n\
         n >= 10k); in the stream segment both modes answer identically (the\n\
         conformance suites prove bit-equality) but the apply mode's update stalls are\n\
         a fraction of the publish mode's.\n",
    );
    let snapshot = obj([
        ("experiment", "e_update".into()),
        (
            "effort",
            match effort {
                Effort::Quick => "quick",
                Effort::Full => "full",
            }
            .into(),
        ),
        // Headline cost: the apply-mode fleet stream's us per query-tick.
        ("us_per_tick", us_per_tick.into()),
        ("runs", Json::Arr(runs)),
    ]);
    out.push_str(&snapshot_status("e_update", &snapshot));
    out
}

//! E-traffic: dynamic road networks — traffic as edge-weight delta
//! epochs.
//!
//! Two sections:
//!
//! 1. **Storm apply vs rebuild** — a weight storm of `d` edges through
//!    `World::apply(NetDelta::reweight(..))` (copy-on-write clone +
//!    [`insq_roadnet::NetworkVoronoi::reweight_edges`] repair seeded
//!    from the changed edges) against the publish path (re-weight the
//!    network, rebuild the NVD from scratch), across network sizes up
//!    to ≥ 10k vertices. Expected shape: apply has an O(V+E) clone
//!    floor plus repair cost proportional to the *invalidated region*,
//!    so small storms beat the full multi-source Dijkstra rebuild by a
//!    wide margin and the gap narrows as the storm saturates the
//!    network.
//! 2. **Rush-hour fleet stream** — a [`RushHour`] commuter fleet
//!    (correlated hub-bound tours) served through alternating
//!    congest/clear storms every few ticks, apply-mode vs publish-mode:
//!    per-tick query cost and the storm-epoch stall a fleet actually
//!    observes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use insq_core::NetInsConfig;
use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig, SplitMix64};
use insq_roadnet::{EdgeId, EdgeWeight, NetDelta, NetPosition, NetTrajectory, SiteSet};
use insq_server::{FleetConfig, FleetEngine, NetFleetQuery, NetworkWorld, World};
use insq_workload::RushHour;

use crate::bench_json::{obj, snapshot_status, Json};
use crate::Effort;

/// A congest/clear storm pair over `d` distinct random edges: even reps
/// scale free-flow lengths by 2.5x, odd reps restore them — so the
/// world returns to free flow after every pair and storms never
/// compound.
fn storm_pair(
    base: &insq_roadnet::RoadNetwork,
    d: usize,
    rng: &mut SplitMix64,
) -> [Vec<EdgeWeight>; 2] {
    let mut edges = std::collections::BTreeSet::new();
    while edges.len() < d.min(base.num_edges()) {
        edges.insert(rng.below(base.num_edges()) as u32);
    }
    let congest: Vec<EdgeWeight> = edges
        .iter()
        .map(|&e| EdgeWeight {
            edge: EdgeId(e),
            len: base.edge(EdgeId(e)).len * 2.5,
        })
        .collect();
    let clear: Vec<EdgeWeight> = edges
        .iter()
        .map(|&e| EdgeWeight {
            edge: EdgeId(e),
            len: base.edge(EdgeId(e)).len,
        })
        .collect();
    [congest, clear]
}

fn storm_section(effort: Effort, out: &mut String, runs: &mut Vec<Json>) {
    let sides: Vec<u32> = match effort {
        Effort::Quick => vec![40, 104],
        Effort::Full => vec![40, 72, 104],
    };
    let reps = match effort {
        Effort::Quick => 4usize,
        Effort::Full => 10,
    };
    out.push_str(
        "Weight storms (jittered grids, sites ~ V/12): \
         World::apply(NetDelta::reweight) vs publish(rebuild NVD)\n",
    );
    out.push_str(&format!(
        "{:<10} {:>8} {:>13} {:>13} {:>9}\n",
        "vertices", "storm", "apply_us", "rebuild_us", "speedup"
    ));
    for &side in &sides {
        let net = Arc::new(
            grid_network(
                &GridConfig {
                    cols: side,
                    rows: side,
                    ..GridConfig::default()
                },
                3,
            )
            .expect("valid grid"),
        );
        let n_vertices = net.num_vertices();
        let n_sites = (n_vertices / 12).max(4);
        let sites = SiteSet::new(&net, random_site_vertices(&net, n_sites, 19).unwrap()).unwrap();
        let world = World::new(NetworkWorld::build(Arc::clone(&net), sites.clone()));

        // The publish baseline: re-weight the network and rebuild the
        // NVD from scratch (what a traffic update costs without
        // edge-seeded repair). Uses a fixed small storm — rebuild cost
        // is storm-size independent.
        let mut rng = SplitMix64::new(0x7AFF1C);
        let pair = storm_pair(&net, 8, &mut rng);
        let t0 = Instant::now();
        for rep in 0..reps {
            let (_, snap) = world.snapshot();
            let rw = Arc::new(snap.net.reweighted(&pair[rep % 2]).expect("valid storm"));
            world.publish(NetworkWorld::build(rw, (*snap.sites).clone()));
        }
        let rebuild_us = t0.elapsed().as_secs_f64() * 1e6 / reps as f64;
        // Clear any leftover congestion so apply reps start at free flow.
        if reps % 2 == 1 {
            let (_, snap) = world.snapshot();
            let rw = Arc::new(snap.net.reweighted(&pair[1]).expect("valid storm"));
            world.publish(NetworkWorld::build(rw, (*snap.sites).clone()));
        }

        for &d in &effort.thin(&[1usize, 8, 64, 512]) {
            let mut rng = SplitMix64::new(0x57081 + d as u64);
            let mut total = Duration::ZERO;
            for rep in 0..reps {
                // A fresh edge set per pair; congest on even reps, clear
                // the same edges on odd reps.
                if rep % 2 == 0 {
                    let pair = storm_pair(&net, d, &mut rng);
                    let t0 = Instant::now();
                    world
                        .apply(&NetDelta::reweight(pair[0].clone()))
                        .expect("valid storm");
                    total += t0.elapsed();
                    let t0 = Instant::now();
                    world
                        .apply(&NetDelta::reweight(pair[1].clone()))
                        .expect("valid storm");
                    total += t0.elapsed();
                }
            }
            let pairs = reps.div_ceil(2);
            let apply_us = total.as_secs_f64() * 1e6 / (2 * pairs) as f64;
            out.push_str(&format!(
                "{:<10} {:>8} {:>13.1} {:>13.1} {:>8.1}x\n",
                n_vertices,
                d,
                apply_us,
                rebuild_us,
                rebuild_us / apply_us
            ));
            runs.push(obj([
                ("section", "storm".into()),
                ("n_vertices", n_vertices.into()),
                ("n_sites", n_sites.into()),
                ("storm", d.into()),
                ("apply_us", apply_us.into()),
                ("rebuild_us", rebuild_us.into()),
                ("speedup", (rebuild_us / apply_us).into()),
            ]));
        }
    }
}

/// Returns the apply-mode fleet cost in us per query-tick (the
/// experiment's headline `us_per_tick`).
fn rush_section(effort: Effort, out: &mut String, runs: &mut Vec<Json>) -> f64 {
    let (side, commuters, ticks) = match effort {
        Effort::Quick => (24u32, 16usize, 200usize),
        Effort::Full => (48, 48, 600),
    };
    let rush = RushHour {
        commuters,
        storm_edges: 48,
        peak_factor: 2.5,
        storm_every: 10,
        seed: 42,
    };
    let k = 4usize;
    let net = Arc::new(
        grid_network(
            &GridConfig {
                cols: side,
                rows: side,
                ..GridConfig::default()
            },
            rush.seed,
        )
        .expect("valid grid"),
    );
    let n_sites = (net.num_vertices() / 12).max(8);
    let sites = SiteSet::new(&net, random_site_vertices(&net, n_sites, 23).unwrap()).unwrap();
    out.push_str(&format!(
        "\nRush hour: {commuters} hub-bound commuters on a {side}x{side} grid \
         ({n_sites} sites), a {}-edge storm every {} ticks (congest/clear)\n",
        rush.storm_edges, rush.storm_every
    ));
    out.push_str(&format!(
        "{:<10} {:>12} {:>14} {:>14}\n",
        "mode", "us_per_tick", "mean_storm_us", "max_storm_us"
    ));

    let tours: Vec<NetTrajectory> = (0..commuters)
        .map(|c| rush.commuter_tour(&net, c).expect("connected network"))
        .collect();
    let speed = 0.12;

    let mut apply_us_per_tick = 0.0;
    for mode in ["apply", "publish"] {
        let world = Arc::new(World::new(NetworkWorld::build(
            Arc::clone(&net),
            sites.clone(),
        )));
        let mut fleet: FleetEngine<NetworkWorld, NetFleetQuery> =
            FleetEngine::new(Arc::clone(&world), FleetConfig::with_threads(2));
        for _ in 0..commuters {
            fleet.register(
                NetFleetQuery::new(&world, NetInsConfig::new(k, 1.6)).expect("valid config"),
            );
        }
        let mut stalls: Vec<Duration> = Vec::new();
        for tick in 0..ticks {
            if let Some(epoch) = rush.storm_epoch_at(tick) {
                let t0 = Instant::now();
                if mode == "apply" {
                    world
                        .apply(&rush.storm_delta(&net, epoch))
                        .expect("valid storm");
                } else {
                    let (_, snap) = world.snapshot();
                    let rw = Arc::new(
                        net.reweighted(&rush.storm(&net, epoch))
                            .expect("valid storm"),
                    );
                    world.publish(NetworkWorld::build(rw, (*snap.sites).clone()));
                }
                stalls.push(t0.elapsed());
            }
            let positions: Vec<NetPosition> = (0..commuters)
                .map(|c| tours[c].position_looped(&net, speed * tick as f64 + 0.37 * c as f64))
                .collect();
            fleet.tick_all(|id| positions[id.index()]);
        }
        let stats = fleet.stats();
        let us_per_tick = stats.elapsed.as_secs_f64() * 1e6 / stats.total.ticks.max(1) as f64;
        let mean = stalls.iter().sum::<Duration>().as_secs_f64() * 1e6 / stalls.len().max(1) as f64;
        let max = stalls
            .iter()
            .map(|d| d.as_secs_f64() * 1e6)
            .fold(0.0f64, f64::max);
        if mode == "apply" {
            apply_us_per_tick = us_per_tick;
        }
        out.push_str(&format!(
            "{:<10} {:>12.2} {:>14.1} {:>14.1}\n",
            mode, us_per_tick, mean, max
        ));
        runs.push(obj([
            ("section", format!("rush_{mode}").as_str().into()),
            ("clients", commuters.into()),
            ("storms", stalls.len().into()),
            ("us_per_tick", us_per_tick.into()),
            ("mean_storm_us", mean.into()),
            ("max_storm_us", max.into()),
        ]));
    }
    apply_us_per_tick
}

/// E-traffic: dynamic road networks — traffic delta epochs vs rebuilds.
pub fn e_traffic(effort: Effort) -> String {
    let mut out = String::new();
    let mut runs: Vec<Json> = Vec::new();
    storm_section(effort, &mut out, &mut runs);
    let us_per_tick = rush_section(effort, &mut out, &mut runs);
    out.push_str(
        "\nexpected shape: storm apply latency has an O(V+E) copy-on-write floor plus a\n\
         repair cost proportional to the invalidated region, so small storms beat the\n\
         from-scratch NVD rebuild by a wide margin at n >= 10k vertices and the gap\n\
         narrows as the storm saturates the network; in the rush-hour stream both\n\
         modes answer identically (the traffic conformance suites prove\n\
         bit-equality) but apply-mode storm stalls are a fraction of publish-mode's.\n",
    );
    let snapshot = obj([
        ("experiment", "e_traffic".into()),
        (
            "effort",
            match effort {
                Effort::Quick => "quick",
                Effort::Full => "full",
            }
            .into(),
        ),
        // Headline cost: the apply-mode rush-hour stream's us per
        // query-tick.
        ("us_per_tick", us_per_tick.into()),
        ("runs", Json::Arr(runs)),
    ]);
    out.push_str(&snapshot_status("e_traffic", &snapshot));
    out
}

//! The experiment report generator.
//!
//! Regenerates every figure/table of the INSQ paper evaluation:
//!
//! ```text
//! report                  # run everything at full effort
//! report --quick          # reduced sizes (CI smoke run)
//! report --exp e1,e4      # only selected experiments
//! report --list           # list experiment ids
//! ```

use insq_bench::{experiments, Effort};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut effort = Effort::Full;
    let mut selected: Option<Vec<String>> = None;
    let mut list_only = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => effort = Effort::Quick,
            "--list" => list_only = true,
            "--exp" => {
                let Some(ids) = it.next() else {
                    eprintln!("--exp requires a comma-separated id list");
                    std::process::exit(2);
                };
                selected = Some(ids.split(',').map(|s| s.trim().to_string()).collect());
            }
            "--help" | "-h" => {
                println!("usage: report [--quick] [--exp id1,id2,...] [--list]\n\nexperiments:");
                for e in experiments() {
                    println!("  {:<9} {}", e.id, e.title);
                }
                return;
            }
            other => {
                eprintln!("unknown argument: {other} (try --help)");
                std::process::exit(2);
            }
        }
    }

    let all = experiments();
    if list_only {
        for e in &all {
            println!("{:<9} {}", e.id, e.title);
        }
        return;
    }
    if let Some(sel) = &selected {
        for id in sel {
            if !all.iter().any(|e| e.id == id) {
                eprintln!("unknown experiment id: {id} (try --list)");
                std::process::exit(2);
            }
        }
    }

    let started = std::time::Instant::now();
    for e in &all {
        if let Some(sel) = &selected {
            if !sel.iter().any(|id| id == e.id) {
                continue;
            }
        }
        println!("================================================================");
        println!("[{}] {}", e.id, e.title);
        println!("================================================================");
        let t0 = std::time::Instant::now();
        let body = (e.run)(effort);
        println!("{body}");
        println!("({} finished in {:.1?})\n", e.id, t0.elapsed());
    }
    println!("report complete in {:.1?}", started.elapsed());
}

//! Loopback soak: many thousands of concurrent sessions against one
//! reactor, under the event-driven `Deadline` tick policy.
//!
//! The reactor's claim is that live sessions are limited by file
//! descriptors, not threads, and that per-session memory stays bounded
//! no matter how clients behave. This binary checks both at scale, as a
//! CI smoke:
//!
//! * the **parent** process raises its fd limit
//!   ([`insq_net::sys::max_open_files`]), binds one `NetServer` with
//!   `TickPolicy::Deadline`, and spawns client-herd **children** (one
//!   process per herd, so the client side's descriptors don't eat the
//!   server's budget);
//! * each child drives its sessions through the non-blocking
//!   [`ClientCore`] — one thread per herd, `try_send` / `poll_event`
//!   only — recording update→result round-trip latency into a
//!   mergeable log2-µs histogram it prints on exit;
//! * the parent aggregates the histograms, prints the latency
//!   distribution, and asserts the invariants: every session completed
//!   its cycles, and the server's peak per-session buffer usage
//!   ([`NetServer::buffer_high_water`]) stayed under the hard
//!   read-buffer + write-buffer bound.
//!
//! Under `Deadline` a round-trip may legitimately be answered by a
//! re-served (stale) result before the fresh one lands — that is the
//! policy's liveness trade, and the histogram deliberately measures
//! "time until the client heard back", not "time until recompute".
//!
//! With `--partitions N` the soak runs the **cluster** topology instead:
//! the parent spawns N backend server **children** (each holding one
//! regional slice of the same deterministic world, regenerated from the
//! shared seed and filtered through the identical [`ClusterPlan`]),
//! binds a [`RouterServer`] in front of them, and drives the herds
//! through the router on **shuttle** walks that flip sides of the space
//! every cycle — so every session forces at least one handoff. The
//! invariants extend accordingly: every session still completes all its
//! cycles *through* handoffs, each backend's per-session buffers stay
//! under the same hard bound, and the router performed at least one
//! handoff per session.
//!
//! ```text
//! soak [--sessions N] [--results R] [--herds H] [--partitions P]
//!      [--readiness auto|poll|epoll] [--quick]
//! soak --herd <addr> <count> <results> <seed> [shuttle]     (internal child role)
//! soak --backend <region> <partitions> <readiness>          (internal child role)
//! ```
//!
//! `--readiness` selects the reactor's readiness backend (for the CI
//! backend matrix); `auto` (the default) defers to `INSQ_READINESS`
//! and then picks `epoll` on Linux, `poll(2)` elsewhere.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::SocketAddr;
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use insq_bench::latency::LatencyHistogram;
use insq_cluster::{ClusterPlan, RouterConfig, RouterServer};
use insq_core::Euclidean;
use insq_geom::{Aabb, Point};
use insq_index::VorTree;
use insq_net::buffer::READ_CHUNK;
use insq_net::{
    ClientCore, ClientEvent, Message, NetServer, NetServerConfig, ReadinessKind, SpaceKind,
    WirePos, MAX_PAYLOAD_LEN,
};
use insq_server::{FleetConfig, GridPartitioner, RegionId, TickPolicy, World};

const WORLD_SIDE: f64 = 100.0;
/// Overlap margin for the partitioned topology: the soak world's grid
/// spacing is 5 units, so 12 units of overlap certify k=4 everywhere.
const SOAK_MARGIN: f64 = 12.0;

fn usage() -> ! {
    eprintln!(
        "usage: soak [--sessions N] [--results R] [--herds H] [--partitions P] \
         [--readiness auto|poll|epoll] [--quick]"
    );
    std::process::exit(2);
}

fn parse_readiness(word: &str) -> Option<ReadinessKind> {
    match word {
        "auto" => Some(ReadinessKind::Auto),
        "poll" => Some(ReadinessKind::Poll),
        "epoll" => Some(ReadinessKind::Epoll),
        _ => None,
    }
}

fn readiness_word(kind: ReadinessKind) -> &'static str {
    match kind {
        ReadinessKind::Auto => "auto",
        ReadinessKind::Poll => "poll",
        ReadinessKind::Epoll => "epoll",
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("--herd") {
        // Internal role: drive one herd of client sessions.
        if args.len() != 5 && !(args.len() == 6 && args[5] == "shuttle") {
            usage();
        }
        let addr = args[1].clone();
        let count: usize = args[2].parse().unwrap_or_else(|_| usage());
        let results: usize = args[3].parse().unwrap_or_else(|_| usage());
        let seed: u64 = args[4].parse().unwrap_or_else(|_| usage());
        run_herd(&addr, count, results, seed, args.len() == 6);
        return;
    }
    if args.first().map(String::as_str) == Some("--backend") {
        // Internal role: serve one regional slice of the soak world.
        if args.len() != 4 {
            usage();
        }
        let region: u32 = args[1].parse().unwrap_or_else(|_| usage());
        let partitions: u32 = args[2].parse().unwrap_or_else(|_| usage());
        let readiness = parse_readiness(&args[3]).unwrap_or_else(|| usage());
        run_backend(region, partitions, readiness);
        return;
    }

    let mut sessions = 0usize;
    let mut results = 5usize;
    let mut herds = 0usize;
    let mut partitions = 0u32;
    let mut readiness = ReadinessKind::from_env();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--sessions" => {
                sessions = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| usage())
            }
            "--results" => {
                results = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| usage())
            }
            "--herds" => {
                herds = it
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .unwrap_or_else(|| usage())
            }
            "--partitions" => {
                partitions = it
                    .next()
                    .and_then(|s| s.parse::<u32>().ok())
                    .filter(|&p| p >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--readiness" => {
                readiness = it
                    .next()
                    .and_then(|s| parse_readiness(s))
                    .unwrap_or_else(|| usage())
            }
            "--quick" => {
                sessions = 1_000;
                results = 3;
            }
            _ => usage(),
        }
    }
    if sessions == 0 {
        // The router holds two descriptors per session (client leg +
        // backend leg), so the partitioned default is smaller.
        sessions = if partitions > 0 { 400 } else { 10_000 };
    }
    if herds == 0 {
        // ~1250 sessions per child keeps every process well under
        // typical fd limits while the server holds all N sockets.
        herds = sessions.div_ceil(1_250);
    }
    if partitions > 0 {
        run_cluster_soak(sessions, results, herds, partitions, readiness);
    } else {
        run_server(sessions, results, herds, readiness);
    }
}

fn soak_bounds() -> Aabb {
    Aabb::new(Point::new(0.0, 0.0), Point::new(WORLD_SIDE, WORLD_SIDE))
}

/// The deterministic global site set: a grid of data objects over the
/// unit square scaled to `WORLD_SIDE` — small on purpose, the soak
/// stresses the serving layer, not the index. Parent and backend
/// children regenerate the identical list independently.
fn soak_points() -> Vec<Point> {
    (0..400)
        .map(|i| {
            Point::new(
                (i % 20) as f64 * 5.0 + 0.5,
                (i / 20) as f64 * 5.0 + 0.25 * (i % 3) as f64,
            )
        })
        .collect()
}

fn soak_world() -> Arc<World<VorTree>> {
    Arc::new(World::new(
        VorTree::build(soak_points(), soak_bounds().inflated(10.0)).expect("soak world"),
    ))
}

/// The shared partition map: any process that knows `partitions` can
/// rebuild the identical plan (same strips, same margin, same global
/// points) and therefore the identical regional site lists and
/// local↔global id tables.
fn soak_plan(partitions: u32) -> (Arc<GridPartitioner>, ClusterPlan) {
    let part = Arc::new(GridPartitioner::strips(soak_bounds(), partitions));
    let plan = ClusterPlan::new(part.clone(), SOAK_MARGIN, soak_points());
    (part, plan)
}

/// Internal child role: one partition backend. Binds a `NetServer` on
/// its regional slice, announces the address on stdout, serves until
/// the parent closes stdin, then reports its buffer high-water mark.
fn run_backend(region: u32, partitions: u32, readiness: ReadinessKind) {
    let (_, plan) = soak_plan(partitions);
    let pts = plan.region_sites(RegionId(region));
    let world = Arc::new(World::new(
        VorTree::build(pts, soak_bounds().inflated(10.0)).expect("backend world"),
    ));
    let cfg = NetServerConfig {
        fleet: FleetConfig {
            shards: 32,
            threads: 2,
        },
        policy: TickPolicy::Deadline { max_staleness: 3 },
        certify_within: Some(SOAK_MARGIN),
        readiness,
        ..NetServerConfig::default()
    };
    let server: NetServer<Euclidean> =
        NetServer::bind("127.0.0.1:0", world, cfg).expect("bind backend");
    println!("ADDR {}", server.local_addr());
    std::io::stdout().flush().expect("flush addr");
    // Serve until the parent signals shutdown by closing our stdin.
    let mut line = String::new();
    let _ = std::io::stdin().read_line(&mut line);
    println!("HIGH {}", server.buffer_high_water());
    server.shutdown();
}

/// The partitioned soak: N backend children behind a router, shuttle
/// herds forcing a handoff from every session on every cycle.
fn run_cluster_soak(
    sessions: usize,
    results: usize,
    herds: usize,
    partitions: u32,
    readiness: ReadinessKind,
) {
    let fd_limit = insq_net::sys::max_open_files().unwrap_or(0);
    // The router (this process) holds a client leg and a backend leg
    // per session, plus a transient extra during each handoff drain.
    let needed = sessions as u64 * 2 + 128;
    assert!(
        fd_limit == 0 || fd_limit >= needed,
        "fd limit {fd_limit} too low for {sessions} routed sessions (need ~{needed}); \
         lower --sessions or raise ulimit -n"
    );

    let exe = std::env::current_exe().expect("current_exe");
    let mut backends: Vec<(Child, BufReader<ChildStdout>)> = (0..partitions)
        .map(|r| {
            let mut child = Command::new(&exe)
                .arg("--backend")
                .arg(r.to_string())
                .arg(partitions.to_string())
                .arg(readiness_word(readiness))
                .stdin(Stdio::piped())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn backend");
            let reader = BufReader::new(child.stdout.take().expect("backend stdout"));
            (child, reader)
        })
        .collect();
    let addrs: Vec<SocketAddr> = backends
        .iter_mut()
        .map(|(_, reader)| {
            let mut line = String::new();
            reader.read_line(&mut line).expect("backend ADDR line");
            line.strip_prefix("ADDR ")
                .expect("backend announces ADDR")
                .trim()
                .parse()
                .expect("backend address parses")
        })
        .collect();

    let (part, plan) = soak_plan(partitions);
    let router = RouterServer::bind(
        "127.0.0.1:0",
        part,
        RouterConfig {
            tables: plan.tables(),
            readiness,
            ..RouterConfig::new(addrs)
        },
    )
    .expect("bind router");
    let addr = router.local_addr().to_string();
    println!(
        "soak: {sessions} sessions x {results} result cycles through a router over \
         {partitions} partition backends, {herds} herd processes, shuttle walks, \
         {} readiness @ {addr}",
        readiness_word(readiness)
    );

    let t0 = Instant::now();
    let base = sessions / herds;
    let extra = sessions % herds;
    let children: Vec<_> = (0..herds)
        .map(|h| {
            let count = base + usize::from(h < extra);
            Command::new(&exe)
                .arg("--herd")
                .arg(&addr)
                .arg(count.to_string())
                .arg(results.to_string())
                .arg((0x50AC ^ h as u64).to_string())
                .arg("shuttle")
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn herd")
        })
        .collect();

    let mut merged = LatencyHistogram::new();
    for child in children {
        let out = child.wait_with_output().expect("herd exit");
        assert!(out.status.success(), "herd failed: {}", out.status);
        let stdout = String::from_utf8_lossy(&out.stdout);
        let hist_line = stdout
            .lines()
            .rev()
            .find_map(|l| l.strip_prefix("HIST "))
            .expect("herd printed no HIST line");
        merged.merge(&LatencyHistogram::parse_line(hist_line).expect("parse herd histogram"));
    }
    let wall = t0.elapsed();

    let reap_deadline = Instant::now() + Duration::from_secs(10);
    while router.live_sessions() > 0 && Instant::now() < reap_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    let handoffs = router.handoffs();
    let (bytes_in, bytes_out) = router.wire_bytes();
    let live = router.live_sessions();
    router.shutdown();

    // Graceful backend teardown: closing stdin asks each child to
    // report its high-water mark and exit.
    let write_buf_cap = NetServerConfig::default()
        .write_buf
        .max(4 + MAX_PAYLOAD_LEN);
    let buffer_bound = (4 + MAX_PAYLOAD_LEN + READ_CHUNK + write_buf_cap) as u64;
    let mut high_water = 0u64;
    for (mut child, mut reader) in backends {
        drop(child.stdin.take());
        let mut line = String::new();
        reader.read_line(&mut line).expect("backend HIGH line");
        let hw: u64 = line
            .strip_prefix("HIGH ")
            .expect("backend reports HIGH")
            .trim()
            .parse()
            .expect("high-water parses");
        high_water = high_water.max(hw);
        assert!(child.wait().expect("backend exit").success());
    }

    println!("\nupdate -> result round-trip latency (all {herds} herds merged):");
    print!("{}", merged.to_ascii());
    println!(
        "\nrouter: {handoffs} handoffs in {wall:.1?}, {bytes_in} B in / {bytes_out} B out, \
         peak backend per-session buffers {high_water} B, {live} sessions still live at reap"
    );

    // The invariants this smoke exists for.
    let expected = (sessions * results) as u64;
    assert_eq!(
        merged.count(),
        expected,
        "every session must complete all its result cycles through handoffs"
    );
    assert!(
        handoffs >= sessions as u64,
        "shuttle walks must force >= 1 handoff per session ({handoffs} < {sessions})"
    );
    assert!(
        high_water <= buffer_bound,
        "backend per-session buffer high water {high_water} exceeds hard bound {buffer_bound}"
    );
    assert_eq!(live, 0, "router sessions leaked past client disconnect");
    println!(
        "\nOK: {expected} round-trips across {sessions} routed sessions with {handoffs} \
         handoffs over {partitions} partitions; buffers bounded ({high_water} <= {buffer_bound} B)"
    );
}

fn run_server(sessions: usize, results: usize, herds: usize, readiness: ReadinessKind) {
    let fd_limit = insq_net::sys::max_open_files().unwrap_or(0);
    let needed = sessions as u64 + 64;
    assert!(
        fd_limit == 0 || fd_limit >= needed,
        "fd limit {fd_limit} too low for {sessions} sessions (need ~{needed}); \
         lower --sessions or raise ulimit -n"
    );

    let cfg = NetServerConfig {
        fleet: FleetConfig {
            shards: 32,
            threads: 2,
        },
        policy: TickPolicy::Deadline { max_staleness: 3 },
        // No tick until the whole fleet has registered: makes the run
        // deterministic in shape (one ramp, then steady cycling).
        min_clients: sessions,
        max_sessions: sessions + 16,
        readiness,
        ..NetServerConfig::default()
    };
    let write_buf_cap = cfg.write_buf.max(4 + MAX_PAYLOAD_LEN);
    let server: NetServer<Euclidean> =
        NetServer::bind("127.0.0.1:0", soak_world(), cfg).expect("bind soak server");
    let addr = server.local_addr().to_string();
    println!(
        "soak: {sessions} sessions x {results} result cycles, {herds} herd processes, \
         Deadline{{max_staleness: 3}}, {} readiness @ {addr}",
        readiness_word(readiness)
    );

    let t0 = Instant::now();
    let exe = std::env::current_exe().expect("current_exe");
    let base = sessions / herds;
    let extra = sessions % herds;
    let children: Vec<_> = (0..herds)
        .map(|h| {
            let count = base + usize::from(h < extra);
            Command::new(&exe)
                .arg("--herd")
                .arg(&addr)
                .arg(count.to_string())
                .arg(results.to_string())
                .arg((0x50AC ^ h as u64).to_string())
                .stdout(Stdio::piped())
                .spawn()
                .expect("spawn herd")
        })
        .collect();

    let mut merged = LatencyHistogram::new();
    for child in children {
        let out = child.wait_with_output().expect("herd exit");
        assert!(out.status.success(), "herd failed: {}", out.status);
        let stdout = String::from_utf8_lossy(&out.stdout);
        let hist_line = stdout
            .lines()
            .rev()
            .find_map(|l| l.strip_prefix("HIST "))
            .expect("herd printed no HIST line");
        merged.merge(&LatencyHistogram::parse_line(hist_line).expect("parse herd histogram"));
    }
    let wall = t0.elapsed();

    // Sessions close after their last result; give the reactor a
    // moment to reap the EOFs before reading final counters.
    let reap_deadline = Instant::now() + Duration::from_secs(10);
    while server.live_sessions() > 0 && Instant::now() < reap_deadline {
        std::thread::sleep(Duration::from_millis(10));
    }

    let ticks = server.ticks();
    let (bytes_in, bytes_out) = server.wire_bytes();
    let high_water = server.buffer_high_water();
    let live = server.live_sessions();
    server.shutdown();

    println!("\nupdate -> result round-trip latency (all {herds} herds merged):");
    print!("{}", merged.to_ascii());
    println!(
        "\nserver: {ticks} ticks in {wall:.1?}, {bytes_in} B in / {bytes_out} B out \
         ({:.1} B/tick down), peak per-session buffers {high_water} B, \
         {live} sessions still live at reap",
        bytes_out as f64 / ticks.max(1) as f64,
    );

    // The invariants this smoke exists for.
    let expected = (sessions * results) as u64;
    assert_eq!(
        merged.count(),
        expected,
        "every session must complete all its result cycles"
    );
    let buffer_bound = (4 + MAX_PAYLOAD_LEN + READ_CHUNK + write_buf_cap) as u64;
    assert!(
        high_water <= buffer_bound,
        "per-session buffer high water {high_water} exceeds hard bound {buffer_bound}"
    );
    assert_eq!(live, 0, "sessions leaked past client disconnect");
    println!(
        "\nOK: {expected} round-trips across {sessions} concurrent sessions; \
         per-session buffers bounded ({high_water} <= {buffer_bound} B)"
    );
}

/// One session's client-side state machine.
struct Session {
    core: ClientCore,
    /// Cycles completed (first registration result is not a cycle).
    done: usize,
    /// When the in-flight position update was sent; `None` while idle.
    sent_at: Option<Instant>,
    /// Seen the registration result yet?
    primed: bool,
}

fn herd_pos(seed: u64, idx: usize, cycle: usize, shuttle: bool) -> (f64, f64) {
    // Deterministic, distinct, in-bounds walk per session.
    let h = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(idx as u64);
    if shuttle {
        // Partitioned mode: flip sides of the space every cycle, so the
        // session crosses every vertical partition border each time —
        // one forced handoff per cycle.
        let lane = 1.0 + ((h % 97) as f64 + (cycle as f64 * 0.53) % 2.0).min(WORLD_SIDE - 2.0);
        let x = if cycle.is_multiple_of(2) {
            2.0
        } else {
            WORLD_SIDE - 2.0
        };
        return (x, lane);
    }
    let x = (h % 97) as f64 + (cycle as f64 * 0.37) % 2.0;
    let y = ((h / 97) % 97) as f64 + (cycle as f64 * 0.53) % 2.0;
    (x.min(WORLD_SIDE - 0.01), y.min(WORLD_SIDE - 0.01))
}

fn run_herd(addr: &str, count: usize, results: usize, seed: u64, shuttle: bool) {
    let connect_deadline = Instant::now() + Duration::from_secs(60);
    let mut sessions: Vec<Session> = (0..count)
        .map(|i| {
            let core = loop {
                match ClientCore::connect(addr) {
                    Ok(c) => break c,
                    // Accept backlog overflows under the connect storm
                    // surface as refusals/resets: back off and retry.
                    Err(_) if Instant::now() < connect_deadline => {
                        std::thread::sleep(Duration::from_millis(5));
                    }
                    Err(e) => panic!("herd connect {i}: {e}"),
                }
            };
            Session {
                core,
                done: 0,
                sent_at: None,
                primed: false,
            }
        })
        .collect();

    // Register everyone, then drive all sessions from this one thread.
    for (i, s) in sessions.iter_mut().enumerate() {
        let (x, y) = herd_pos(seed, i, 0, shuttle);
        send_when_able(&mut s.core, &register_msg(x, y), i);
    }

    let mut hist = LatencyHistogram::new();
    let mut finished = 0usize;
    let deadline = Instant::now() + Duration::from_secs(240);
    while finished < count {
        assert!(
            Instant::now() < deadline,
            "herd stalled: {finished}/{count} sessions finished"
        );
        let mut progressed = false;
        for (i, s) in sessions.iter_mut().enumerate() {
            if s.done >= results {
                continue;
            }
            loop {
                match s.core.poll_event() {
                    Ok(Some(ClientEvent::Result { .. })) => {
                        progressed = true;
                        let now = Instant::now();
                        if let Some(t) = s.sent_at.take() {
                            hist.record(now - t);
                            s.done += 1;
                        } else if !s.primed {
                            s.primed = true;
                        } else {
                            // Deadline re-serve while idle — not a cycle.
                            continue;
                        }
                        if s.done < results {
                            let (x, y) = herd_pos(seed, i, s.done + 1, shuttle);
                            send_when_able(&mut s.core, &update_msg(x, y), i);
                            s.sent_at = Some(Instant::now());
                        } else {
                            finished += 1;
                            let _ = s.core.try_send(&Message::Deregister);
                            let _ = s.core.flush();
                            break;
                        }
                    }
                    Ok(Some(ClientEvent::Epoch(_))) => {}
                    Ok(Some(ClientEvent::ServerError { code, detail })) => {
                        panic!("session {i}: server error {code:?}: {detail}")
                    }
                    Ok(Some(other)) => panic!("session {i}: unexpected {other:?}"),
                    Ok(None) => {
                        let _ = s.core.flush();
                        break;
                    }
                    Err(e) => panic!("session {i}: {e}"),
                }
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
    // Connections drop here; the server reaps the EOFs.
    drop(sessions);
    println!("HIST {}", hist.to_line());
}

fn register_msg(x: f64, y: f64) -> Message {
    Message::Register {
        space: SpaceKind::Euclidean,
        k: 4,
        rho: 1.6,
        pos: WirePos::Point { x, y },
    }
}

fn update_msg(x: f64, y: f64) -> Message {
    Message::PositionUpdate {
        pos: WirePos::Point { x, y },
    }
}

/// `try_send` with bounded retry: the only send failure a healthy soak
/// sees is `WouldBlock` (client write buffer full while the socket is
/// full), which drains as the reactor reads.
fn send_when_able(core: &mut ClientCore, msg: &Message, session: usize) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match core.try_send(msg) {
            Ok(()) => return,
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                assert!(
                    Instant::now() < deadline,
                    "session {session}: send stalled for 60s"
                );
                let _ = core.flush();
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(e) => panic!("session {session}: send failed: {e}"),
        }
    }
}

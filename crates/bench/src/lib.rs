//! # insq-bench
//!
//! The experiment harness that regenerates every figure of the INSQ paper
//! and the evaluation axes of its companion paper (see DESIGN.md §3 for
//! the experiment index, EXPERIMENTS.md for recorded results).
//!
//! Each experiment is a pure function from an [`Effort`] level to a text
//! report; the `report` binary selects and prints them. Criterion
//! micro-benchmarks for the validation/construction kernels live in
//! `benches/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bench_json;
pub mod cluster_exp;
pub mod euclidean_exp;
pub mod figures;
pub mod fleet_exp;
pub mod latency;
pub mod net_exp;
pub mod network_exp;
pub mod space_exp;
pub mod traffic_exp;
pub mod update_exp;

/// How much work to spend per experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Reduced sizes for CI / smoke runs (seconds).
    Quick,
    /// The full parameter ranges recorded in EXPERIMENTS.md (minutes).
    Full,
}

impl Effort {
    /// Scales a tick count.
    pub fn ticks(self, full: usize) -> usize {
        match self {
            Effort::Quick => (full / 10).max(200),
            Effort::Full => full,
        }
    }

    /// Filters a sweep axis (quick keeps every other point plus the last).
    pub fn thin<T: Copy>(self, xs: &[T]) -> Vec<T> {
        match self {
            Effort::Full => xs.to_vec(),
            Effort::Quick => xs
                .iter()
                .enumerate()
                .filter(|(i, _)| i % 2 == 0 || *i == xs.len() - 1)
                .map(|(_, &x)| x)
                .collect(),
        }
    }
}

/// An experiment: id, one-line description, and the runner.
pub struct Experiment {
    /// Short id used on the command line (e.g. "e1", "fig4").
    pub id: &'static str,
    /// What the experiment reproduces.
    pub title: &'static str,
    /// Produces the text report.
    pub run: fn(Effort) -> String,
}

/// The registry of all experiments, in presentation order.
pub fn experiments() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "fig1",
            title: "Fig. 1 — MIS of a 3-NN set via adjacent order-3 Voronoi cells",
            run: figures::fig1,
        },
        Experiment {
            id: "fig2",
            title: "Fig. 2 — order-2 network Voronoi diagram, MIS and mid-point b",
            run: figures::fig2,
        },
        Experiment {
            id: "fig3",
            title: "Fig. 3 — Road Network demo (k = 5): moving query event trace",
            run: figures::fig3,
        },
        Experiment {
            id: "fig4",
            title: "Fig. 4 — 2D Plane demo (k = 5, rho = 1.6): valid/invalid states",
            run: figures::fig4,
        },
        Experiment {
            id: "e1",
            title: "E1 — per-tick processing cost vs k (all methods)",
            run: euclidean_exp::e1_cost_vs_k,
        },
        Experiment {
            id: "e2",
            title: "E2 — communication cost vs k (all methods)",
            run: euclidean_exp::e2_comm_vs_k,
        },
        Experiment {
            id: "e3",
            title: "E3 — cost vs data set size n",
            run: euclidean_exp::e3_cost_vs_n,
        },
        Experiment {
            id: "e4",
            title: "E4 — effect of the prefetch ratio rho",
            run: euclidean_exp::e4_rho,
        },
        Experiment {
            id: "e5",
            title: "E5 — effect of query speed",
            run: euclidean_exp::e5_speed,
        },
        Experiment {
            id: "e6",
            title: "E6 — effect of the data distribution",
            run: euclidean_exp::e6_distribution,
        },
        Experiment {
            id: "e7",
            title: "E7 — road network: cost and communication vs k",
            run: network_exp::e7_network_vs_k,
        },
        Experiment {
            id: "e8",
            title: "E8 — validation micro-cost per tick (INS scan vs region tests)",
            run: euclidean_exp::e8_validation_micro,
        },
        Experiment {
            id: "e9",
            title: "E9 — safe-region construction micro-cost per recomputation",
            run: euclidean_exp::e9_construction_micro,
        },
        Experiment {
            id: "e_fleet",
            title: "E-fleet — multi-query fleet engine: throughput and thread scaling",
            run: fleet_exp::e_fleet,
        },
        Experiment {
            id: "e_update",
            title: "E-update — incremental delta epochs vs full rebuild republishes",
            run: update_exp::e_update,
        },
        Experiment {
            id: "e_traffic",
            title: "E-traffic — edge-weight delta epochs: NVD repair vs rebuild, rush-hour stream",
            run: traffic_exp::e_traffic,
        },
        Experiment {
            id: "e_net",
            title: "E-net — TCP serving layer: measured wire bytes/tick vs model-level comm",
            run: net_exp::e_net,
        },
        Experiment {
            id: "e_cluster",
            title: "E-cluster — spatial partitions behind the router: 1 vs 2 vs 4 shards",
            run: cluster_exp::e_cluster,
        },
        Experiment {
            id: "e_spaces",
            title: "E-spaces — one scenario through every Space (euclidean/weighted/network)",
            run: space_exp::e_spaces,
        },
        Experiment {
            id: "ablation",
            title: "Ablation — INS variants: incremental fetch, VoR-tree vs plain R-tree kNN",
            run: euclidean_exp::ablation,
        },
        Experiment {
            id: "continuous",
            title: "Extension — exact continuous kNN event traces vs tick sampling",
            run: euclidean_exp::continuous,
        },
    ]
}

//! Fleet-scale experiment: the `insq-server` engine under load.
//!
//! Sweeps fleet size × worker-thread count over one shared
//! epoch-versioned world, with one mid-run index republish, and reports
//! throughput (query-ticks/s), scaling vs the sequential run, validation
//! cost per tick and the recompute rate — plus a determinism check that
//! every thread count reproduced the sequential run's aggregate counters
//! bit-for-bit.
//!
//! The run loop itself is the space-generic
//! [`crate::space_exp::run_fleet`] instantiated for the Euclidean space;
//! `e_spaces` drives the identical code through every other space.

use std::sync::Arc;

use insq_core::Euclidean;
use insq_server::FleetStats;
use insq_workload::{FleetScenario, SpaceWorkload};

use crate::bench_json::{obj, snapshot_status, Json};
use crate::space_exp::run_fleet;
use crate::Effort;

fn scenario(clients: usize, effort: Effort) -> FleetScenario {
    let ticks = effort.ticks(500);
    FleetScenario {
        clients,
        n: 5_000,
        k: 5,
        ticks,
        updates: vec![ticks / 2],
        seed: 2016,
        ..Default::default()
    }
}

/// E-fleet: multi-query engine throughput and scaling.
pub fn e_fleet(effort: Effort) -> String {
    let fleet_sizes = effort.thin(&[250usize, 1_000, 4_000]);
    let threads = [1usize, 2, 4, 8];

    let mut out = String::from(
        "n=5000 uniform, k=5, rho=1.6, one epoch swap (index republish) mid-run;\n\
         kticks/s = query-ticks processed per second (wall clock, whole run)\n",
    );
    out.push_str(&format!(
        "{:<8} {:>8} {:>10} {:>9} {:>10} {:>10} {:>11}\n",
        "clients", "threads", "kticks/s", "speedup", "val/tick", "rec_rate", "identical"
    ));

    // Fleet totals of the largest sweep cell, in the standard per-method
    // comparison format (one row per thread count).
    let mut totals = insq_sim::Comparison::new();
    let mut cells_json: Vec<Json> = Vec::new();

    for &clients in &fleet_sizes {
        let sc = scenario(clients, effort);
        let trajs = Euclidean::make_fleet(&sc);
        let idx_v0 = Arc::new(Euclidean::build_index(&sc, &trajs, 0));
        let idx_v1 = Arc::new(Euclidean::build_index(&sc, &trajs, 1));

        // Interleaved repeats, best-of per cell: one pass over the whole
        // thread axis per repeat (not N back-to-back runs per cell), so a
        // host that slows down over the sweep penalizes every thread
        // count equally instead of biasing the speedup column; the
        // minimum is the standard noise-robust estimator for a
        // deterministic workload.
        let reps = match effort {
            Effort::Quick => 1,
            Effort::Full => 3,
        };
        let mut meas: Vec<Vec<(FleetStats, f64)>> = vec![Vec::new(); threads.len()];
        for _rep in 0..reps {
            for (ti, &t) in threads.iter().enumerate() {
                let (fleet, wall) = run_fleet::<Euclidean>(&sc, &trajs, &idx_v0, &idx_v1, t);
                meas[ti].push((fleet.stats(), wall));
            }
        }

        let mut baseline: Option<(FleetStats, f64)> = None;
        for (ti, &t) in threads.iter().enumerate() {
            let cell = &meas[ti];
            let (best_stats, _) = cell
                .iter()
                .min_by(|a, b| a.0.elapsed.cmp(&b.0.elapsed))
                .expect("reps >= 1");
            let wall = cell.iter().map(|&(_, w)| w).fold(f64::INFINITY, f64::min);
            let stats = best_stats.clone();
            let kticks = stats.total.ticks as f64 / wall / 1e3;
            let (speedup, identical) = match &baseline {
                None => (1.0, true),
                Some((base, base_wall)) => (
                    base_wall / wall,
                    cell.iter().all(|(s, _)| s.total == base.total),
                ),
            };
            out.push_str(&format!(
                "{:<8} {:>8} {:>10.1} {:>8.2}x {:>10.2} {:>10.4} {:>11}\n",
                clients,
                t,
                kticks,
                speedup,
                stats.validations_per_tick(),
                stats.recompute_rate(),
                if identical { "yes" } else { "NO" },
            ));
            if Some(&clients) == fleet_sizes.last() {
                totals.add_stats(&format!("fleet/{t}t"), &stats.total, stats.elapsed);
            }
            cells_json.push(obj([
                ("clients", clients.into()),
                ("threads", t.into()),
                ("kticks_per_s", kticks.into()),
                ("speedup", speedup.into()),
                (
                    "us_per_tick",
                    (stats.elapsed.as_secs_f64() * 1e6 / stats.total.ticks.max(1) as f64).into(),
                ),
                ("validations_per_tick", stats.validations_per_tick().into()),
                ("recompute_rate", stats.recompute_rate().into()),
                (
                    "comm_objects_per_query_tick",
                    (stats.total.comm_objects as f64 / stats.total.ticks.max(1) as f64).into(),
                ),
                ("identical_to_1_thread", identical.into()),
            ]));
            if baseline.is_none() {
                baseline = Some((stats, wall));
            }
        }
    }

    out.push_str(&format!(
        "\nfleet totals at {} clients (us/tick over engine time only):\n{}",
        fleet_sizes.last().expect("non-empty sweep"),
        totals.to_table()
    ));
    out.push_str(
        "\nexpected shape: throughput grows with threads until shards/memory bandwidth\n\
         saturate (on a single-core host speedup stays <= 1 and the thread axis only\n\
         demonstrates determinism); val/tick and rec_rate are thread-count-invariant\n\
         (the 'identical' column asserts bit-identical aggregate counters vs the\n\
         1-thread run); the epoch swap costs each client exactly one extra\n\
         recomputation.\n",
    );

    let snapshot = obj([
        ("experiment", "e_fleet".into()),
        (
            "effort",
            match effort {
                Effort::Quick => "quick",
                Effort::Full => "full",
            }
            .into(),
        ),
        ("n", 5_000usize.into()),
        ("k", 5usize.into()),
        ("runs", Json::Arr(cells_json)),
    ]);
    out.push_str(&snapshot_status("e_fleet", &snapshot));
    out
}

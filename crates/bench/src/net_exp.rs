//! Network serving experiment: the fleet engine behind a real socket.
//!
//! Runs one `FleetScenario` twice — in-process through the fleet engine
//! directly, and over loopback TCP through `insq-net` (`NetServer` +
//! `NetClient`, clients driven in lockstep from their
//! [`insq_workload::client_updates`] streams) — with the *identical*
//! mid-run delta epoch applied in both runs, and reports the *measured*
//! wire bytes per tick next to the paper's model-level communication
//! counter (`comm` = objects shipped server → client) of the very same
//! run, so the INS protocol's communication-minimisation claim is
//! accounted in real bytes, not only in model units.

use std::sync::Arc;
use std::time::{Duration, Instant};

use insq_core::{Euclidean, InsConfig};
use insq_geom::Point;
use insq_index::SiteDelta;
use insq_net::{NetClient, NetServer, NetServerConfig};
use insq_server::{FleetConfig, FleetEngine, FleetStats, InsFleetQuery, World};
use insq_voronoi::SiteId;
use insq_workload::{client_updates, FleetScenario, SpaceWorkload};

use crate::bench_json::{obj, snapshot_status, Json};
use crate::latency::LatencyHistogram;
use crate::Effort;

/// The mid-run data-object update, identical in both runs.
fn poi_delta() -> SiteDelta {
    SiteDelta {
        added: vec![Point::new(47.0, 53.0)],
        removed: vec![SiteId(0)],
    }
}

/// The in-process twin of [`run_tcp`]: same scenario, same delta epoch
/// at the same tick, same engine configuration — its statistics are the
/// model-level counters of exactly the run the TCP bytes measure.
fn run_inproc(sc: &FleetScenario, threads: usize) -> FleetStats {
    let fleet_state = Euclidean::make_fleet(sc);
    let idx0 = Arc::new(Euclidean::build_index(sc, &fleet_state, 0));
    let world = Arc::new(World::from_arc(idx0));
    let mut fleet: FleetEngine<_, InsFleetQuery> = FleetEngine::new(
        Arc::clone(&world),
        FleetConfig {
            shards: 16,
            threads,
        },
    );
    for _ in 0..sc.clients {
        fleet.register(InsFleetQuery::new(&world, InsConfig::new(sc.k, sc.rho)).expect("valid"));
    }
    let delta_at = sc.ticks / 2;
    for tick in 0..sc.ticks {
        if tick == delta_at {
            world.apply(&poi_delta()).expect("delta applies");
        }
        fleet.tick_all(|id| Euclidean::position(sc, &fleet_state, id.index(), tick));
    }
    fleet.stats()
}

struct NetRun {
    ticks: u64,
    bytes_in: u64,
    bytes_out: u64,
    client_results: u64,
    epoch_notifies: u64,
    /// Per-result round-trip latency: position update sent → result
    /// frame received, one sample per client per tick.
    latency: LatencyHistogram,
    wall: Duration,
}

/// Drives `sc` over loopback TCP in lockstep, applying one delta epoch
/// at the scenario midpoint. Returns the server-side accounting.
fn run_tcp(sc: &FleetScenario, threads: usize) -> NetRun {
    let fleet_state = Euclidean::make_fleet(sc);
    let idx0 = Arc::new(Euclidean::build_index(sc, &fleet_state, 0));
    let world = Arc::new(World::from_arc(Arc::clone(&idx0)));
    let server: NetServer<Euclidean> = NetServer::bind(
        "127.0.0.1:0",
        Arc::clone(&world),
        NetServerConfig {
            fleet: FleetConfig {
                shards: 16,
                threads,
            },
            min_clients: sc.clients,
            ..NetServerConfig::default()
        },
    )
    .expect("bind loopback");

    // One update stream per client, consumed in lockstep.
    let mut streams: Vec<_> = (0..sc.clients)
        .map(|c| client_updates::<Euclidean>(sc, &fleet_state, c))
        .collect();
    let mut clients: Vec<NetClient> = streams
        .iter_mut()
        .map(|stream| {
            let mut cl = NetClient::connect(server.local_addr()).expect("connect");
            cl.register::<Euclidean>(sc.k, sc.rho, stream.next().expect("tick 0"))
                .expect("register");
            cl
        })
        .collect();

    let delta_at = sc.ticks / 2;
    let mut client_results = 0u64;
    let mut epoch_notifies = 0u64;
    let mut latency = LatencyHistogram::new();
    let t_run = Instant::now();
    for tick in 0..sc.ticks {
        if tick == delta_at {
            // A small data-object update, pushed as a delta epoch.
            server.world().apply(&poi_delta()).expect("delta applies");
        }
        let t_tick = Instant::now();
        if tick > 0 {
            for (cl, stream) in clients.iter_mut().zip(streams.iter_mut()) {
                cl.update::<Euclidean>(stream.next().expect("scenario tick"))
                    .expect("update");
            }
        }
        for cl in clients.iter_mut() {
            let upd = cl.next_result().expect("result");
            latency.record(t_tick.elapsed());
            client_results += 1;
            epoch_notifies += upd.notified.len() as u64;
        }
    }
    let wall = t_run.elapsed();
    for cl in clients.iter_mut() {
        cl.deregister().ok();
    }
    let (bytes_in, bytes_out) = server.wire_bytes();
    let ticks = server.ticks();
    server.shutdown();
    NetRun {
        ticks,
        bytes_in,
        bytes_out,
        client_results,
        epoch_notifies,
        latency,
        wall,
    }
}

/// E-net: measured wire bytes/tick of the TCP serving layer vs the
/// model-level communication counter of the same in-process run.
pub fn e_net(effort: Effort) -> String {
    let ticks = match effort {
        Effort::Quick => 60,
        Effort::Full => 300,
    };
    let sc = FleetScenario {
        clients: 24,
        n: 2_000,
        k: 5,
        ticks,
        updates: vec![],
        seed: 2016,
        ..Default::default()
    };

    // The identical run in-process: the model-level counters of exactly
    // the ticks the TCP bytes below measure.
    let model = run_inproc(&sc, 2);
    let query_ticks = model.total.ticks.max(1);

    let mut out = format!(
        "{} clients over loopback TCP, n={}, k={}, rho={}, {} ticks, one delta\n\
         epoch mid-run; lockstep updates (one position per client per tick)\n\n",
        sc.clients, sc.n, sc.k, sc.rho, sc.ticks
    );
    out.push_str(&format!(
        "{:<10} {:>7} {:>11} {:>12} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "run",
        "ticks",
        "B/tick up",
        "B/tick down",
        "results",
        "notifies",
        "us/tick",
        "p50 us",
        "p99 us"
    ));
    let mut runs_json: Vec<Json> = Vec::new();
    for threads in [1usize, 4] {
        let run = run_tcp(&sc, threads);
        let ticks = run.ticks.max(1) as f64;
        let us_per_tick = run.wall.as_secs_f64() * 1e6 / ticks;
        out.push_str(&format!(
            "{:<10} {:>7} {:>11.1} {:>12.1} {:>9} {:>9} {:>9.1} {:>9} {:>9}\n",
            format!("tcp/{threads}t"),
            run.ticks,
            run.bytes_in as f64 / ticks,
            run.bytes_out as f64 / ticks,
            run.client_results,
            run.epoch_notifies,
            us_per_tick,
            run.latency.p50_us(),
            run.latency.p99_us(),
        ));
        runs_json.push(obj([
            ("threads", threads.into()),
            ("ticks", run.ticks.into()),
            ("bytes_in_per_tick", (run.bytes_in as f64 / ticks).into()),
            ("bytes_out_per_tick", (run.bytes_out as f64 / ticks).into()),
            ("client_results", run.client_results.into()),
            ("epoch_notifies", run.epoch_notifies.into()),
            ("us_per_tick", us_per_tick.into()),
            (
                "latency_us",
                obj([
                    ("p50", run.latency.p50_us().into()),
                    ("p99", run.latency.p99_us().into()),
                    ("max", run.latency.max_us().into()),
                    ("mean", run.latency.mean_us().into()),
                    ("samples", run.latency.count().into()),
                ]),
            ),
        ]));
    }

    out.push_str(&format!(
        "\nmodel-level (in-process) communication of the identical run (same delta\n\
         epoch at the same tick):\n\
         comm = {} objects over {} query-ticks ({:.3} objects/query-tick)\n",
        model.total.comm_objects,
        query_ticks,
        model.total.comm_objects as f64 / query_ticks as f64,
    ));
    out.push_str(
        "\nexpected shape: wire traffic is dominated by the fixed per-tick frames\n\
         (one ~30 B position update up, one KnnResult down per client per tick);\n\
         the INS protocol's saving shows in what is NOT sent — no per-tick object\n\
         payloads while results validate locally (comm objects/query-tick << k).\n\
         Byte counts are exact (counted by the server); results = clients x ticks;\n\
         notifies = one epoch push per live session at the delta epoch.\n",
    );

    let snapshot = obj([
        ("experiment", "e_net".into()),
        (
            "effort",
            match effort {
                Effort::Quick => "quick",
                Effort::Full => "full",
            }
            .into(),
        ),
        ("clients", sc.clients.into()),
        ("n", sc.n.into()),
        ("k", sc.k.into()),
        ("rho", sc.rho.into()),
        ("ticks", sc.ticks.into()),
        ("runs", Json::Arr(runs_json)),
        (
            "model_comm_objects_per_query_tick",
            (model.total.comm_objects as f64 / query_ticks as f64).into(),
        ),
    ]);
    out.push_str(&snapshot_status("e_net", &snapshot));
    out
}

//! Euclidean-mode experiments (E1–E6, E8, E9, ablation).
//!
//! Every experiment runs all competing methods over the *same* data set
//! and trajectory, so the rows of each table differ only in the method.
//! Sweep cells are independent and run on a small thread pool.

use std::time::Instant;

use insq_baselines::{NaiveProcessor, OkvProcessor, VStarConfig, VStarProcessor};
use insq_core::{influential_neighbor_set, InsConfig, InsProcessor};
use insq_geom::{Aabb, Point, Trajectory};
use insq_index::VorTree;
use insq_sim::{run_euclidean, Comparison};
use insq_workload::{Distribution, TrajectoryKind};

use crate::Effort;

const SPACE: f64 = 100.0;
const BASE_SPEED: f64 = 0.05;

fn data_space() -> Aabb {
    Aabb::new(Point::new(0.0, 0.0), Point::new(SPACE, SPACE))
}

/// Builds the VoR-tree for a scenario cell.
pub fn build_index(n: usize, dist: Distribution, seed: u64) -> VorTree {
    let points = dist.generate(n, &data_space(), seed);
    VorTree::build(points, data_space().inflated(10.0)).expect("generated data is valid")
}

fn trajectory(seed: u64) -> Trajectory {
    TrajectoryKind::RandomWaypoint { waypoints: 25 }.generate(&data_space(), seed)
}

/// Runs INS, OkV, V* and Naive over one scenario; returns the comparison.
pub fn run_all_methods(
    index: &VorTree,
    traj: &Trajectory,
    k: usize,
    rho: f64,
    ticks: usize,
    speed: f64,
) -> Comparison {
    let mut cmp = Comparison::new();
    let mut ins = InsProcessor::new(index, InsConfig::new(k, rho)).expect("valid k/rho");
    cmp.add(&run_euclidean(&mut ins, traj, ticks, speed));
    let mut okv = OkvProcessor::new(index, k).expect("valid k");
    cmp.add(&run_euclidean(&mut okv, traj, ticks, speed));
    let mut vstar = VStarProcessor::new(index, VStarConfig::with_k(k)).expect("valid k");
    cmp.add(&run_euclidean(&mut vstar, traj, ticks, speed));
    let mut naive = NaiveProcessor::new(index.rtree(), k).expect("valid k");
    cmp.add(&run_euclidean(&mut naive, traj, ticks, speed));
    cmp
}

use insq_server::parallel_map;

fn methods_header() -> String {
    format!(
        "{:<6} {:<10} {:>10} {:>8} {:>9} {:>12} {:>10}\n",
        "param", "method", "recompute", "local", "comm", "total_ops", "us/tick"
    )
}

fn method_rows(param: &str, cmp: &Comparison) -> String {
    let mut out = String::new();
    for r in cmp.rows() {
        out.push_str(&format!(
            "{:<6} {:<10} {:>10} {:>8} {:>9} {:>12} {:>10.2}\n",
            param,
            r.method,
            r.recomputations,
            r.local_updates,
            r.comm_objects,
            r.validation_ops + r.search_ops + r.construction_ops,
            r.us_per_tick
        ));
    }
    out
}

/// E1: per-tick processing cost vs k.
pub fn e1_cost_vs_k(effort: Effort) -> String {
    let ks = effort.thin(&[1usize, 2, 4, 8, 16, 32, 64]);
    let ticks = effort.ticks(2_000);
    let index = build_index(10_000, Distribution::Uniform, 2016);
    let traj = trajectory(7);
    let mut out = String::from("n=10000 uniform, rho=1.6, x=clamp(k/2,2,8)\n");
    out.push_str(&methods_header());
    let cells = parallel_map(ks, |&k| {
        (k, run_all_methods(&index, &traj, k, 1.6, ticks, BASE_SPEED))
    });
    for (k, cmp) in &cells {
        out.push_str(&method_rows(&format!("k={k}"), cmp));
    }
    out.push_str(
        "\nexpected shape: INS lowest total cost; OkV similar recompute count but much\n\
         higher construction ops; V* more recomputations; Naive highest search cost.\n",
    );
    out
}

/// E2: communication cost vs k (same scenario as E1, comm columns).
pub fn e2_comm_vs_k(effort: Effort) -> String {
    let ks = effort.thin(&[1usize, 2, 4, 8, 16, 32, 64]);
    let ticks = effort.ticks(2_000);
    let index = build_index(10_000, Distribution::Uniform, 2016);
    let traj = trajectory(7);
    let mut out = String::from("objects transmitted server->client over the whole run\n");
    out.push_str(&format!(
        "{:<6} {:>10} {:>10} {:>10} {:>10}\n",
        "param", "INS", "OkV", "V*", "Naive"
    ));
    let cells = parallel_map(ks, |&k| {
        (k, run_all_methods(&index, &traj, k, 1.6, ticks, BASE_SPEED))
    });
    for (k, cmp) in &cells {
        let g = |m: &str| cmp.row(m).map(|r| r.comm_objects).unwrap_or(0);
        out.push_str(&format!(
            "k={:<4} {:>10} {:>10} {:>10} {:>10}\n",
            k,
            g("INS"),
            g("OkV"),
            g("V*"),
            g("Naive")
        ));
    }
    out.push_str(
        "\nexpected shape: Naive = k x ticks; INS and OkV ship objects only on true\n\
         safe-region exits; V* recomputes more often but ships small batches.\n",
    );
    out
}

/// E3: cost vs data set size.
pub fn e3_cost_vs_n(effort: Effort) -> String {
    let ns = effort.thin(&[1_000usize, 5_000, 10_000, 50_000, 100_000]);
    let ticks = effort.ticks(2_000);
    let traj = trajectory(7);
    let mut out = String::from("k=8, rho=1.6, uniform data\n");
    out.push_str(&methods_header());
    let cells = parallel_map(ns, |&n| {
        let index = build_index(n, Distribution::Uniform, 2016 + n as u64);
        (n, run_all_methods(&index, &traj, 8, 1.6, ticks, BASE_SPEED))
    });
    for (n, cmp) in &cells {
        out.push_str(&method_rows(&format!("{n}"), cmp));
    }
    out.push_str(
        "\nexpected shape: denser data => smaller cells => more recomputations for\n\
         every method; INS stays cheapest per tick throughout.\n",
    );
    out
}

/// E4: prefetch ratio sweep (INS only — rho is an INS parameter).
pub fn e4_rho(effort: Effort) -> String {
    let rhos = effort.thin(&[1.0f64, 1.2, 1.4, 1.6, 2.0, 2.5, 3.0]);
    let ticks = effort.ticks(4_000);
    let index = build_index(10_000, Distribution::Uniform, 11);
    let traj = trajectory(5);
    let mut out = String::from("n=10000, k=8: communication/recomputation trade-off\n");
    out.push_str(&format!(
        "{:>5} {:>11} {:>11} {:>10} {:>15}\n",
        "rho", "recomputes", "local fixes", "comm objs", "comm/recompute"
    ));
    let cells = parallel_map(rhos, |&rho| {
        let mut p = InsProcessor::new(&index, InsConfig::new(8, rho)).expect("valid rho");
        let run = run_euclidean(&mut p, &traj, ticks, BASE_SPEED);
        (rho, run.stats)
    });
    for (rho, s) in &cells {
        let per = if s.recomputations > 0 {
            s.comm_objects as f64 / s.recomputations as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "{:>5.1} {:>11} {:>11} {:>10} {:>15.1}\n",
            rho,
            s.recomputations,
            s.swaps + s.local_reranks,
            s.comm_objects,
            per
        ));
    }
    out.push_str(
        "\nexpected shape: recomputations fall monotonically with rho while the\n\
         per-recomputation batch grows; total comm is U-shaped with the sweet spot\n\
         near the paper's demo value rho = 1.6.\n",
    );
    out
}

/// E5: query speed sweep.
pub fn e5_speed(effort: Effort) -> String {
    let mults = effort.thin(&[0.5f64, 1.0, 2.0, 4.0, 8.0]);
    let ticks = effort.ticks(2_000);
    let index = build_index(10_000, Distribution::Uniform, 13);
    let traj = trajectory(3);
    let mut out = String::from("n=10000, k=8, rho=1.6; speed multiplier over 0.05/tick\n");
    out.push_str(&methods_header());
    let cells = parallel_map(mults, |&m| {
        (
            m,
            run_all_methods(&index, &traj, 8, 1.6, ticks, BASE_SPEED * m),
        )
    });
    for (m, cmp) in &cells {
        out.push_str(&method_rows(&format!("x{m}"), cmp));
    }
    out.push_str(
        "\nexpected shape: recomputation counts grow ~linearly with speed for all\n\
         safe-region methods (more region exits per run); naive is speed-insensitive.\n",
    );
    out
}

/// E6: data distribution comparison.
pub fn e6_distribution(effort: Effort) -> String {
    let ticks = effort.ticks(2_000);
    let dists: Vec<(&str, Distribution)> = vec![
        ("unif", Distribution::Uniform),
        (
            "clust",
            Distribution::Clustered {
                clusters: 8,
                spread: 0.05,
            },
        ),
        ("grid", Distribution::GridJitter { jitter: 0.3 }),
    ];
    let traj = trajectory(9);
    let mut out = String::from("n=10000, k=8, rho=1.6\n");
    out.push_str(&methods_header());
    let cells = parallel_map(dists, |(name, dist)| {
        let index = build_index(10_000, *dist, 77);
        (
            *name,
            run_all_methods(&index, &traj, 8, 1.6, ticks, BASE_SPEED),
        )
    });
    for (name, cmp) in &cells {
        out.push_str(&method_rows(name, cmp));
    }
    out.push_str(
        "\nexpected shape: clustered data mixes tiny cells (inside clusters) with huge\n\
         ones (between clusters); relative method ranking is unchanged.\n",
    );
    out
}

/// E8: isolated per-tick validation kernels, wall-clock.
pub fn e8_validation_micro(effort: Effort) -> String {
    let reps = match effort {
        Effort::Quick => 20_000,
        Effort::Full => 200_000,
    };
    let index = build_index(10_000, Distribution::Uniform, 5);
    let q = Point::new(47.3, 52.9);
    let k = 8;

    // INS state: kNN + guard set.
    let knn: Vec<_> = index.knn(q, k).into_iter().map(|(s, _)| s).collect();
    let ins = influential_neighbor_set(index.voronoi(), &knn);
    // OkV state: the order-k cell polygon.
    let cell = insq_voronoi::order_k_cell(
        index.voronoi().points(),
        &knn,
        &ins,
        &index.voronoi().bounds(),
    );
    // V* state: k + x retrieved objects and the known radius.
    let x = (k / 2).max(2);
    let retrieved: Vec<_> = index.knn(q, k + x).into_iter().collect();
    let known_radius = retrieved.last().expect("non-empty").1;

    let time = |f: &mut dyn FnMut()| -> f64 {
        let t0 = Instant::now();
        for _ in 0..reps {
            f();
        }
        t0.elapsed().as_nanos() as f64 / reps as f64
    };

    let q2 = Point::new(q.x + 0.02, q.y - 0.01);
    let points = index.voronoi().points();
    let mut acc = 0u64;
    let ins_ns = time(&mut || {
        let v = insq_core::validate_by_distance(points, q2, &knn, &ins);
        acc += v.valid as u64;
    });
    let okv_ns = time(&mut || {
        acc += cell.contains(q2) as u64;
    });
    let vstar_ns = time(&mut || {
        // Known-region check: k-th retrieved distance vs shrunk radius.
        let kth = retrieved[k - 1].0;
        let d = index.point(kth).distance(q2);
        acc += (d <= known_radius - q2.distance(q)) as u64;
    });
    format!(
        "per-tick validation kernels, k={k} (n=10000, mean of {reps} reps; sink {acc})\n\
         {:<28} {:>10.1} ns   (O(k + |INS|) = {} distance evals)\n\
         {:<28} {:>10.1} ns   (point-in-polygon, {} edges)\n\
         {:<28} {:>10.1} ns   (single distance + radius compare)\n\n\
         expected shape: all three are sub-microsecond; INS validation is linear in\n\
         k + |INS| but needs no geometry; OkV is linear in cell edges; V* is O(1) per\n\
         check but pays a full O(k+x) re-rank whenever the result drifts.\n",
        "INS distance scan",
        ins_ns,
        knn.len() + ins.len(),
        "OkV point-in-polygon",
        okv_ns,
        cell.len(),
        "V* known-region test",
        vstar_ns,
    )
}

/// E9: isolated safe-region construction kernels, wall-clock.
pub fn e9_construction_micro(effort: Effort) -> String {
    let reps = match effort {
        Effort::Quick => 2_000,
        Effort::Full => 20_000,
    };
    let index = build_index(10_000, Distribution::Uniform, 5);
    let q = Point::new(47.3, 52.9);
    let mut out = String::from("per-recomputation construction kernels (n=10000, ns mean)\n");
    out.push_str(&format!(
        "{:<4} {:>14} {:>18} {:>16}\n",
        "k", "INS (I(kNN))", "OkV (order-k cell)", "V* (k+x search)"
    ));
    for &k in &[2usize, 8, 32] {
        let knn: Vec<_> = index.knn(q, k).into_iter().map(|(s, _)| s).collect();
        let voronoi = index.voronoi();
        let mut sink = 0usize;

        let t0 = Instant::now();
        for _ in 0..reps {
            sink += influential_neighbor_set(voronoi, &knn).len();
        }
        let ins_ns = t0.elapsed().as_nanos() as f64 / reps as f64;

        let ins_set = influential_neighbor_set(voronoi, &knn);
        let t0 = Instant::now();
        for _ in 0..reps {
            sink += insq_voronoi::order_k_cell(voronoi.points(), &knn, &ins_set, &voronoi.bounds())
                .len();
        }
        let okv_ns = t0.elapsed().as_nanos() as f64 / reps as f64;

        let x = (k / 2).max(2);
        let t0 = Instant::now();
        for _ in 0..reps {
            sink += index.rtree().knn(q, k + x).len();
        }
        let vstar_ns = t0.elapsed().as_nanos() as f64 / reps as f64;

        out.push_str(&format!(
            "{:<4} {:>14.0} {:>18.0} {:>16.0}   (sink {sink})\n",
            k, ins_ns, okv_ns, vstar_ns
        ));
    }
    out.push_str(
        "\nexpected shape: INS construction (a neighbor-list union) is the cheapest\n\
         and grows linearly in k; materialising the order-k cell costs a cascade of\n\
         half-plane clips, an order of magnitude more; V* pays one small kNN search.\n",
    );
    out
}

/// Continuous extension: exact kNN event traces vs tick-based sampling.
pub fn continuous(effort: Effort) -> String {
    let index = build_index(
        match effort {
            Effort::Quick => 2_000,
            Effort::Full => 10_000,
        },
        Distribution::Uniform,
        17,
    );
    let a = Point::new(8.0, 12.0);
    let b = Point::new(93.0, 88.0);
    let k = 5;
    let t0 = Instant::now();
    let trace = insq_core::knn_change_events(&index, k, a, b).expect("valid configuration");
    let exact_time = t0.elapsed();

    let mut out = format!(
        "exact event trace, k={k}, n={}: {} kNN change events in {:.2?}\n\n\
         {:>10} {:>14} {:>10}\n",
        index.len(),
        trace.events.len(),
        exact_time,
        "ticks",
        "changes seen",
        "missed"
    );
    for ticks in [50usize, 200, 1_000, 5_000] {
        let mut seen = 0usize;
        let mut prev = {
            let mut v = index.voronoi().knn_brute(a, k);
            v.sort_unstable();
            v
        };
        for i in 1..=ticks {
            let t = i as f64 / ticks as f64;
            let mut now = index.voronoi().knn_brute(a.lerp(b, t), k);
            now.sort_unstable();
            if now != prev {
                seen += 1;
                prev = now;
            }
        }
        out.push_str(&format!(
            "{:>10} {:>14} {:>10}\n",
            ticks,
            seen,
            trace.events.len().saturating_sub(seen)
        ));
    }
    out.push_str(
        "\nreading: the exact trace (an extension enabled by the INS machinery —\n\
         bisector crossings are roots of linear functions under linear motion) is\n\
         complete at any speed; coarse ticking misses short-lived result changes.\n",
    );
    out
}

/// Ablation: paper protocol vs the incremental-fetch extension, and the
/// VoR-tree's Voronoi-expansion kNN vs a plain R-tree best-first search.
pub fn ablation(effort: Effort) -> String {
    let ticks = effort.ticks(4_000);
    let index = build_index(10_000, Distribution::Uniform, 21);
    let traj = trajectory(2);
    let k = 8;

    let mut paper = InsProcessor::new(&index, InsConfig::new(k, 1.6)).expect("valid");
    let run_paper = run_euclidean(&mut paper, &traj, ticks, BASE_SPEED);
    let mut inc = InsProcessor::new(&index, InsConfig::new(k, 1.6).incremental()).expect("valid");
    let run_inc = run_euclidean(&mut inc, &traj, ticks, BASE_SPEED);

    let mut out = String::from("INS protocol ablation (n=10000, k=8, rho=1.6)\n");
    out.push_str(&format!(
        "{:<22} {:>11} {:>10} {:>12} {:>10}\n",
        "variant", "recomputes", "comm", "held objs", "us/tick"
    ));
    for (name, run, held) in [
        (
            "paper (cases i-iii)",
            &run_paper,
            paper.held_objects().len(),
        ),
        ("incremental fetch", &run_inc, inc.held_objects().len()),
    ] {
        out.push_str(&format!(
            "{:<22} {:>11} {:>10} {:>12} {:>10.2}\n",
            name,
            run.stats.recomputations,
            run.stats.comm_objects,
            held,
            run.elapsed.as_secs_f64() * 1e6 / run.stats.ticks as f64,
        ));
    }

    // kNN search strategies.
    let reps = match effort {
        Effort::Quick => 5_000,
        Effort::Full => 50_000,
    };
    let q = Point::new(33.0, 61.0);
    let mut sink = 0usize;
    let t0 = Instant::now();
    for _ in 0..reps {
        sink += index.knn(q, 13).len();
    }
    let vor_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
    let t0 = Instant::now();
    for _ in 0..reps {
        sink += index.rtree().knn(q, 13).len();
    }
    let rtree_ns = t0.elapsed().as_nanos() as f64 / reps as f64;
    out.push_str(&format!(
        "\nkNN search (k+x = 13, mean of {reps} reps; sink {sink}):\n\
         VoR-tree (1NN descent + Voronoi expansion): {vor_ns:>8.0} ns\n\
         R-tree best-first:                          {rtree_ns:>8.0} ns\n",
    ));
    out.push_str(
        "\nreading: the incremental extension trades a growing client buffer for\n\
         near-zero full recomputations; the VoR-tree expansion and best-first search\n\
         are comparable at these k, so the VoR-tree's value is the neighbor lists it\n\
         returns for free (the INS construction input).\n",
    );
    out
}

//! Cluster scale-out experiment: one fleet, sliced into 1 / 2 / 4
//! spatial partitions behind the [`insq_cluster::RouterServer`].
//!
//! The fleet size is held fixed while the partition count sweeps, so
//! the numbers isolate what sharding itself costs and buys: per-tick
//! wall time, round-trip latency through the router, and the handoff
//! rate the border-crossing workload induces. Every client is a
//! shuttle sweeping the full width of the space, the adversarial input
//! for vertical strips — each one crosses every partition border on
//! every traversal, so handoff is continuously exercised rather than a
//! rare event.
//!
//! Clients are driven thread-per-client, not from one sequential loop:
//! under the barrier tick policy a handed-off client's first result on
//! its new backend can only be released once that backend's *other*
//! sessions send their next updates, which a single sequential driver
//! would never do while blocked on the read. Independent client
//! threads are also the realistic shape — real terminals do not take
//! turns.

use std::net::SocketAddr;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use insq_cluster::{ClusterPlan, RouterConfig, RouterServer};
use insq_core::Euclidean;
use insq_geom::{Aabb, Point};
use insq_index::VorTree;
use insq_net::{NetClient, NetServer, NetServerConfig};
use insq_server::{GridPartitioner, RegionId, World};
use insq_workload::Distribution;

use crate::bench_json::{obj, snapshot_status, Json};
use crate::latency::LatencyHistogram;
use crate::Effort;

const K: usize = 5;
const RHO: f64 = 1.8;
const CLIENTS: usize = 24;
const N_SITES: usize = 2_000;
/// Overlap margin for the regional indexes. At n = 2000 in a 100×100
/// space the 5th-neighbor distance is ~3 units, so 12 units of overlap
/// certify every tick with room to spare.
const MARGIN: f64 = 12.0;

fn bounds() -> Aabb {
    Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

/// Client `c`'s position at `t`: a ping-pong shuttle across the full
/// inner width in a per-client lane, phase-shifted so the fleet's
/// border crossings spread over the run instead of synchronizing.
fn shuttle_pos(c: usize, t: usize) -> Point {
    const SPAN: f64 = 90.0; // 5.0 ..= 95.0
    const SPEED: f64 = 3.0;
    let lane = 4.0 + 92.0 * (c as f64 + 0.5) / CLIENTS as f64;
    let phase = (t as f64 * SPEED + c as f64 * 7.3) % (2.0 * SPAN);
    let x = 5.0
        + if phase <= SPAN {
            phase
        } else {
            2.0 * SPAN - phase
        };
    Point::new(x, lane)
}

struct ClusterRun {
    partitions: u32,
    ticks: usize,
    handoffs: u64,
    uncertified: u64,
    latency: LatencyHistogram,
    wall: Duration,
    bytes_in: u64,
    bytes_out: u64,
}

/// One sweep point: `partitions` real `NetServer` backends over one
/// plan, a router in front, `CLIENTS` shuttle threads for `ticks`
/// lockstep rounds each.
fn run_cluster(partitions: u32, ticks: usize) -> ClusterRun {
    let sites = Distribution::Uniform.generate(N_SITES, &bounds(), 2016);
    let part = Arc::new(GridPartitioner::strips(bounds(), partitions));
    let plan = ClusterPlan::new(part.clone(), MARGIN, sites);
    let clip = bounds().inflated(10.0);
    let backends: Vec<NetServer<Euclidean>> = (0..plan.regions())
        .map(|r| {
            let pts = plan.region_sites(RegionId(r as u32));
            let world = Arc::new(World::new(VorTree::build(pts, clip).expect("valid sites")));
            let cfg = NetServerConfig {
                certify_within: Some(MARGIN),
                ..NetServerConfig::default()
            };
            NetServer::bind("127.0.0.1:0", world, cfg).expect("backend binds")
        })
        .collect();
    let addrs: Vec<SocketAddr> = backends.iter().map(NetServer::local_addr).collect();
    let router = RouterServer::bind(
        "127.0.0.1:0",
        part,
        RouterConfig {
            tables: plan.tables(),
            ..RouterConfig::new(addrs)
        },
    )
    .expect("router binds");

    let addr = router.local_addr();
    let t_run = Instant::now();
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let mut latency = LatencyHistogram::new();
                let mut uncertified = 0u64;
                let mut client = NetClient::connect(addr).expect("connect");
                client
                    .register::<Euclidean>(K, RHO, shuttle_pos(c, 0))
                    .expect("register");
                for t in 0..ticks {
                    let t_tick = Instant::now();
                    if t > 0 {
                        client
                            .update::<Euclidean>(shuttle_pos(c, t))
                            .expect("update");
                    }
                    let upd = client.next_result().expect("result");
                    latency.record(t_tick.elapsed());
                    if upd.flags != 0 {
                        uncertified += 1;
                    }
                }
                client.deregister().expect("deregister");
                (latency, uncertified)
            })
        })
        .collect();
    let mut latency = LatencyHistogram::new();
    let mut uncertified = 0u64;
    for h in handles {
        let (hist, unc) = h.join().expect("client thread");
        latency.merge(&hist);
        uncertified += unc;
    }
    let wall = t_run.elapsed();
    let handoffs = router.handoffs();
    let (bytes_in, bytes_out) = router.wire_bytes();
    router.shutdown();
    for b in backends {
        b.shutdown();
    }
    ClusterRun {
        partitions,
        ticks,
        handoffs,
        uncertified,
        latency,
        wall,
        bytes_in,
        bytes_out,
    }
}

/// E-cluster: fixed fleet over 1 / 2 / 4 partitions behind the router.
pub fn e_cluster(effort: Effort) -> String {
    let ticks = match effort {
        Effort::Quick => 50,
        Effort::Full => 250,
    };

    let mut out = format!(
        "{CLIENTS} shuttle clients over loopback TCP through the router,\n\
         n={N_SITES}, k={K}, rho={RHO}, margin={MARGIN}, {ticks} ticks per run;\n\
         fleet size fixed while the partition count sweeps\n\n"
    );
    out.push_str(&format!(
        "{:<6} {:>7} {:>9} {:>12} {:>9} {:>9} {:>9} {:>11} {:>12}\n",
        "parts",
        "ticks",
        "handoffs",
        "handoff/tick",
        "us/tick",
        "p50 us",
        "p99 us",
        "uncertified",
        "B/tick thru"
    ));
    let mut runs_json: Vec<Json> = Vec::new();
    for partitions in [1u32, 2, 4] {
        let run = run_cluster(partitions, ticks);
        let t = run.ticks.max(1) as f64;
        let us_per_tick = run.wall.as_secs_f64() * 1e6 / t;
        out.push_str(&format!(
            "{:<6} {:>7} {:>9} {:>12.3} {:>9.1} {:>9} {:>9} {:>11} {:>12.1}\n",
            run.partitions,
            run.ticks,
            run.handoffs,
            run.handoffs as f64 / t,
            us_per_tick,
            run.latency.p50_us(),
            run.latency.p99_us(),
            run.uncertified,
            (run.bytes_in + run.bytes_out) as f64 / t,
        ));
        runs_json.push(obj([
            ("partitions", u64::from(run.partitions).into()),
            ("ticks", run.ticks.into()),
            ("handoffs", run.handoffs.into()),
            ("handoffs_per_tick", (run.handoffs as f64 / t).into()),
            ("us_per_tick", us_per_tick.into()),
            ("uncertified", run.uncertified.into()),
            ("bytes_in_per_tick", (run.bytes_in as f64 / t).into()),
            ("bytes_out_per_tick", (run.bytes_out as f64 / t).into()),
            (
                "latency_us",
                obj([
                    ("p50", run.latency.p50_us().into()),
                    ("p99", run.latency.p99_us().into()),
                    ("max", run.latency.max_us().into()),
                    ("mean", run.latency.mean_us().into()),
                    ("samples", run.latency.count().into()),
                ]),
            ),
        ]));
    }

    out.push_str(
        "\nexpected shape: one partition is the router as pure overhead (every\n\
         frame relayed, zero handoffs); with 2 and 4 partitions each backend\n\
         ticks a fraction of the fleet against a smaller regional index while\n\
         the shuttles force continuous handoffs. The margin certifies every\n\
         result (uncertified = 0): partitioned answers are bit-identical to\n\
         the single-world kNN, so the sweep compares equal answers, not\n\
         degraded ones. RTT includes the barrier wait for co-registered\n\
         clients, so p99 tracks the slowest client thread, not router cost.\n",
    );

    let snapshot = obj([
        ("experiment", "e_cluster".into()),
        (
            "effort",
            match effort {
                Effort::Quick => "quick",
                Effort::Full => "full",
            }
            .into(),
        ),
        ("clients", CLIENTS.into()),
        ("n", N_SITES.into()),
        ("k", K.into()),
        ("rho", RHO.into()),
        ("margin", MARGIN.into()),
        ("ticks", ticks.into()),
        ("runs", Json::Arr(runs_json)),
    ]);
    out.push_str(&snapshot_status("e_cluster", &snapshot));
    out
}

//! Fixed-size log2-bucketed latency histogram (microseconds).
//!
//! Records durations without storing samples: each sample lands in the
//! power-of-two bucket of its microsecond count, so percentiles are
//! exact to within a factor of two at any sample volume — the right
//! trade for soak runs that record millions of round-trips. The bucket
//! array is plain `u64`s, so histograms from different processes (the
//! soak's client-herd children) merge by addition.

use std::fmt::Write as _;
use std::time::Duration;

/// Number of log2 buckets: bucket `i` holds samples in `[2^i, 2^(i+1))`
/// microseconds (bucket 0 also takes 0 µs). 40 buckets reach ~12.7 days.
pub const BUCKETS: usize = 40;

/// A mergeable log2-µs histogram with p50/p99 readout.
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum_us: u64,
    max_us: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

fn bucket_of(us: u64) -> usize {
    // 0 and 1 µs share bucket 0; above that, the position of the
    // leading bit. Clamp into the fixed array.
    (63 - (us | 1).leading_zeros() as usize).min(BUCKETS - 1)
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum_us: 0,
            max_us: 0,
        }
    }

    /// Records one duration.
    pub fn record(&mut self, d: Duration) {
        self.record_us(d.as_micros().min(u128::from(u64::MAX)) as u64);
    }

    /// Records one sample given directly in microseconds.
    pub fn record_us(&mut self, us: u64) {
        self.buckets[bucket_of(us)] += 1;
        self.count += 1;
        self.sum_us = self.sum_us.saturating_add(us);
        self.max_us = self.max_us.max(us);
    }

    /// Folds another histogram in (used to aggregate child processes).
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us = self.sum_us.saturating_add(other.sum_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Largest recorded sample in microseconds.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// The `q`-quantile (`0.0..=1.0`) in microseconds, reported as the
    /// geometric midpoint of the bucket holding that rank (exact to
    /// within the bucket's factor-of-two width). 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let lo = 1u64 << i;
                return (lo + lo / 2).min(self.max_us.max(1));
            }
        }
        self.max_us
    }

    /// Median, see [`Self::quantile_us`].
    pub fn p50_us(&self) -> u64 {
        self.quantile_us(0.50)
    }

    /// 99th percentile, see [`Self::quantile_us`].
    pub fn p99_us(&self) -> u64 {
        self.quantile_us(0.99)
    }

    /// The raw bucket counts, for wire/stdout serialisation.
    pub fn buckets(&self) -> &[u64; BUCKETS] {
        &self.buckets
    }

    /// Serialises to one line: `count sum_us max_us b0 b1 ... b39`.
    /// The inverse of [`Self::parse_line`]; used by the soak's child
    /// processes to hand their histograms to the parent over stdout.
    pub fn to_line(&self) -> String {
        let mut s = format!("{} {} {}", self.count, self.sum_us, self.max_us);
        for b in &self.buckets {
            let _ = write!(s, " {b}");
        }
        s
    }

    /// Parses a [`Self::to_line`] string.
    pub fn parse_line(line: &str) -> Option<LatencyHistogram> {
        let mut it = line.split_ascii_whitespace();
        let count = it.next()?.parse().ok()?;
        let sum_us = it.next()?.parse().ok()?;
        let max_us = it.next()?.parse().ok()?;
        let mut buckets = [0u64; BUCKETS];
        for b in buckets.iter_mut() {
            *b = it.next()?.parse().ok()?;
        }
        Some(LatencyHistogram {
            buckets,
            count,
            sum_us,
            max_us,
        })
    }

    /// A small ASCII rendering of the occupied buckets.
    pub fn to_ascii(&self) -> String {
        let mut out = String::new();
        let peak = self.buckets.iter().copied().max().unwrap_or(0).max(1);
        let (first, last) = match (
            self.buckets.iter().position(|&n| n > 0),
            self.buckets.iter().rposition(|&n| n > 0),
        ) {
            (Some(f), Some(l)) => (f, l),
            _ => return String::from("  (no samples)\n"),
        };
        for i in first..=last {
            let n = self.buckets[i];
            let bar = "#".repeat(((n * 40).div_ceil(peak)) as usize);
            let _ = writeln!(out, "  {:>9} us |{:<40}| {}", 1u64 << i, bar, n);
        }
        let _ = writeln!(
            out,
            "  samples={} p50={}us p99={}us max={}us mean={:.1}us",
            self.count,
            self.p50_us(),
            self.p99_us(),
            self.max_us,
            self.mean_us()
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_land_in_the_right_bucket() {
        let mut h = LatencyHistogram::new();
        for us in [1u64, 2, 3, 100, 100, 100, 100, 100, 100, 8000] {
            h.record_us(us);
        }
        assert_eq!(h.count(), 10);
        // p50 of {1,2,3,100x6,8000}: rank 5 is a 100 → bucket [64,128).
        let p50 = h.p50_us();
        assert!((64..128).contains(&p50), "p50={p50}");
        // p99: rank 10 is the 8000 → bucket [4096,8192).
        let p99 = h.p99_us();
        assert!((4096..8192).contains(&p99), "p99={p99}");
        assert_eq!(h.max_us(), 8000);
    }

    #[test]
    fn line_roundtrip_and_merge() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for us in 0..200u64 {
            a.record_us(us * 7);
            b.record_us(us * 13 + 1);
        }
        let parsed = LatencyHistogram::parse_line(&a.to_line()).expect("roundtrip");
        assert_eq!(parsed.buckets(), a.buckets());
        assert_eq!(parsed.count(), a.count());
        assert_eq!(parsed.max_us(), a.max_us());

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), a.count() + b.count());
        assert_eq!(merged.max_us(), a.max_us().max(b.max_us()));
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let h = LatencyHistogram::new();
        assert_eq!(h.p50_us(), 0);
        assert_eq!(h.p99_us(), 0);
        assert_eq!(h.mean_us(), 0.0);
        assert!(h.to_ascii().contains("no samples"));
    }
}

//! Regeneration of the paper's four figures as text reports.

use insq_core::{
    influential_neighbor_set, influential_neighbor_set_net, minimal_influential_set, InsConfig,
    InsProcessor, MovingKnn, NetInsConfig, NetInsProcessor,
};
use insq_geom::{Aabb, Point, Trajectory};
use insq_index::VorTree;
use insq_roadnet::graph::EdgeRec;
use insq_roadnet::order_k::{network_mis, order_k_diagram, site_distance_matrix};
use insq_roadnet::{NetTrajectory, NetworkVoronoi, RoadNetwork, SiteIdx, SiteSet, VertexId};
use insq_sim::{render_euclidean, render_network};
use insq_voronoi::{order_k_cell_tagged, SiteId, Voronoi};
use insq_workload::Distribution;

use crate::Effort;

/// The 12-point configuration reconstructing Fig. 1's structure (see
/// tests/fig1.rs and DESIGN.md).
pub fn fig1_points() -> Vec<Point> {
    vec![
        Point::new(0.0, 8.5),
        Point::new(8.3, 7.9),
        Point::new(2.1, 5.2),
        Point::new(4.1, 4.4),
        Point::new(6.9, 4.9),
        Point::new(3.6, 3.1),
        Point::new(5.2, 3.4),
        Point::new(0.3, 2.6),
        Point::new(8.9, 2.2),
        Point::new(5.9, 1.4),
        Point::new(0.9, 0.3),
        Point::new(3.2, 0.8),
    ]
}

/// Fig. 1: MIS of `O' = {p4, p6, p7}` via adjacent order-3 cells.
pub fn fig1(_effort: Effort) -> String {
    let bounds = Aabb::new(Point::new(-3.0, -3.0), Point::new(12.0, 12.0));
    let voronoi = Voronoi::build(fig1_points(), bounds).expect("general position");
    let knn = vec![SiteId(3), SiteId(5), SiteId(6)]; // p4, p6, p7
    let all: Vec<SiteId> = (0..12).map(SiteId).collect();
    let cell = order_k_cell_tagged(voronoi.points(), &knn, &all, &bounds);

    let name = |s: SiteId| format!("p{}", s.0 + 1);
    let mut out = format!(
        "O' = {{{}}} ; cell V^3(O') has {} vertices, area {:.3}\n\nadjacent order-3 cells (swap pairs):\n",
        knn.iter().map(|&s| name(s)).collect::<Vec<_>>().join(", "),
        cell.vertices().len(),
        cell.polygon().area()
    );
    for (inside, outside) in cell.boundary_swaps() {
        let mut triple: Vec<String> = knn
            .iter()
            .filter(|&&s| s != inside)
            .map(|&s| name(s))
            .collect();
        triple.push(name(outside));
        triple.sort();
        out.push_str(&format!(
            "  crossing the {} | {} bisector -> cell ({})\n",
            name(inside),
            name(outside),
            triple.join(", ")
        ));
    }
    let mis = minimal_influential_set(&voronoi, &knn).expect("non-empty cell");
    let ins = influential_neighbor_set(&voronoi, &knn);
    out.push_str(&format!(
        "\nMIS(O') = {{{}}}\nINS(O')  = {{{}}}\nMIS subset of INS: {}\n",
        mis.iter().map(|&s| name(s)).collect::<Vec<_>>().join(", "),
        ins.iter().map(|&s| name(s)).collect::<Vec<_>>().join(", "),
        mis.iter().all(|m| ins.contains(m)),
    ));
    out.push_str(
        "\n(paper's instance: MIS(O') = {p3, p5, p10, p12} from cells (6,7,12), (3,6,7),\n\
         (3,4,7), (4,5,7), (4,7,10), (6,7,10); same structure, reconstructed geometry)\n",
    );
    out
}

/// The reconstructed Fig. 2 network (14 vertices, 9 objects); see
/// tests/fig2.rs for the design rationale.
pub fn fig2_network() -> (RoadNetwork, SiteSet) {
    let coords = vec![
        Point::new(10.0, 20.0),
        Point::new(0.0, 20.0),
        Point::new(-20.0, 0.0),
        Point::new(22.0, 0.0),
        Point::new(-10.0, 0.0),
        Point::new(0.0, 0.0),
        Point::new(10.0, 0.0),
        Point::new(10.0, 12.0),
        Point::new(0.0, 12.0),
        Point::new(5.0, 0.0),
        Point::new(0.0, 5.0),
        Point::new(10.0, 5.0),
        Point::new(30.0, 0.0),
        Point::new(-26.0, 0.0),
    ];
    let e = |u: u32, v: u32, len: f64| EdgeRec {
        u: VertexId(u),
        v: VertexId(v),
        len,
    };
    let edges = vec![
        e(5, 9, 5.0),
        e(9, 6, 5.0),
        e(5, 4, 10.4),
        e(4, 2, 10.0),
        e(2, 13, 6.0),
        e(6, 3, 12.0),
        e(3, 12, 8.0),
        e(5, 10, 5.0),
        e(10, 8, 7.0),
        e(8, 1, 8.0),
        e(6, 11, 5.0),
        e(11, 7, 7.0),
        e(7, 0, 8.0),
    ];
    let net = RoadNetwork::new(coords, edges).expect("valid reconstruction");
    let sites = SiteSet::new(&net, (0..9).map(VertexId).collect()).expect("distinct sites");
    (net, sites)
}

/// Fig. 2: order-2 network Voronoi cells, MIS and the mid-point b.
pub fn fig2(_effort: Effort) -> String {
    let (net, sites) = fig2_network();
    let nvd = NetworkVoronoi::build(&net, &sites);
    let matrix = site_distance_matrix(&net, &sites);
    let name = |s: SiteIdx| format!("p{}", s.0 + 1);

    let mut out = format!(
        "reconstructed network: {} vertices, {} edges, {} objects\n\norder-2 cell segments:\n",
        net.num_vertices(),
        net.num_edges(),
        sites.len()
    );
    for seg in order_k_diagram(&net, &matrix, 2) {
        let rec = net.edge(seg.edge);
        out.push_str(&format!(
            "  edge {}-{} [{:>5.2}, {:>5.2}] -> ({})\n",
            rec.u,
            rec.v,
            seg.from,
            seg.to,
            seg.knn_set
                .iter()
                .map(|&s| name(s))
                .collect::<Vec<_>>()
                .join(","),
        ));
    }

    let knn = [SiteIdx(5), SiteIdx(6)]; // p6, p7
    let mis = network_mis(&net, &matrix, &knn, 2);
    let ins = influential_neighbor_set_net(&nvd, &knn);
    out.push_str(&format!(
        "\nOknn = {{p6, p7}}\nMIS  = {{{}}}   (paper: {{p4, p5, p8, p9}})\nINS  = {{{}}}\nTheorem 1 (MIS subset of INS): {}\n",
        mis.iter().map(|&s| name(s)).collect::<Vec<_>>().join(", "),
        ins.iter().map(|&s| name(s)).collect::<Vec<_>>().join(", "),
        mis.iter().all(|m| ins.contains(m)),
    ));

    out.push_str("\nborder (mid-)points of the order-1 network Voronoi diagram:\n");
    for b in nvd.border_points(&net) {
        let rec = net.edge(b.edge);
        out.push_str(&format!(
            "  b on edge {}-{} at offset {:.2}: between {} and {}\n",
            rec.u,
            rec.v,
            b.offset,
            name(b.site_u),
            name(b.site_v)
        ));
    }
    out
}

/// Fig. 3: Road Network demo, k = 5 — event trace plus ASCII frames.
pub fn fig3(effort: Effort) -> String {
    use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};

    let net = grid_network(
        &GridConfig {
            cols: 12,
            rows: 12,
            spacing: 1.0,
            jitter: 0.15,
            diagonal_prob: 0.08,
            deletion_prob: 0.08,
        },
        2016,
    )
    .expect("valid grid");
    let net = std::sync::Arc::new(net);
    let site_vertices = random_site_vertices(&net, 25, 5).expect("enough vertices");
    let sites = SiteSet::new(&net, site_vertices.clone()).expect("distinct");
    let world = insq_roadnet::NetworkWorld::build(std::sync::Arc::clone(&net), sites);
    let tour = NetTrajectory::random_tour(&net, 8, 2).expect("connected");
    let mut query =
        NetInsProcessor::new(&world, NetInsConfig::new(5, 1.6)).expect("valid configuration");

    let ticks = effort.ticks(1_500);
    let speed = tour.length() / ticks as f64;
    let mut out = format!(
        "road network demo: {} vertices, 25 objects, k=5, rho=1.6, {} ticks\n\n",
        net.num_vertices(),
        ticks
    );
    let window = Aabb::of_points(net.coords().iter().copied())
        .expect("non-empty")
        .inflated(0.5);

    let mut frames = 0;
    for tick in 0..ticks {
        let pos = tour.position(&net, speed * tick as f64);
        let outcome = query.tick(pos);
        if outcome.changed() && frames < 3 {
            frames += 1;
            let knn: Vec<usize> = query.current_knn().iter().map(|s| s.idx()).collect();
            let ins: Vec<usize> = query.influential_set().iter().map(|s| s.idx()).collect();
            out.push_str(&format!(
                "tick {tick}: {outcome:?}; kNN (K) and INS (i) cells below\n{}\n\n",
                render_network(
                    &net,
                    &site_vertices,
                    &knn,
                    &ins,
                    pos.to_point(&net),
                    window,
                    66,
                    22
                )
            ));
        }
    }
    let s = query.stats();
    out.push_str(&format!(
        "totals: {} ticks | valid {} | swaps {} | re-ranks {} | recomputations {} | comm {}\n\
         validation settles/tick: {:.1} (Theorem-2 subnetwork of {} cells)\n",
        s.ticks,
        s.valid_ticks,
        s.swaps,
        s.local_reranks,
        s.recomputations,
        s.comm_objects,
        s.validation_ops as f64 / s.ticks as f64,
        query.subnetwork_sites().len(),
    ));
    out
}

/// Fig. 4: 2D Plane demo, k = 5, rho = 1.6 — the valid/invalid flip with
/// the green/red circle radii, plus frames of both states.
pub fn fig4(effort: Effort) -> String {
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let points = Distribution::Uniform.generate(180, &space, 2016);
    let index = VorTree::build(points.clone(), space.inflated(10.0)).expect("valid data");
    let mut query = InsProcessor::new(&index, InsConfig::new(5, 1.6)).expect("valid configuration");

    let trajectory = Trajectory::new(vec![
        Point::new(18.0, 30.0),
        Point::new(50.0, 62.0),
        Point::new(82.0, 38.0),
    ])
    .expect("valid trajectory");

    let ticks = effort.ticks(400);
    let mut out = format!("2D plane demo: n=180, k=5, rho=1.6, {ticks} ticks\n\n");
    let mut shown_valid = false;
    let mut shown_invalid = false;
    for tick in 0..ticks {
        let pos = trajectory.position(trajectory.length() * tick as f64 / ticks as f64);
        let outcome = query.tick(pos);
        let want_frame = (!shown_valid && tick > 3 && !outcome.changed())
            || (!shown_invalid && outcome.changed() && tick > 3);
        if !want_frame {
            continue; // keep simulating; totals below cover the full run
        }
        let (green, red) = query
            .validation_circles()
            .expect("both circles exist mid-run");
        let knn: Vec<usize> = query.current_knn().iter().map(|s| s.idx()).collect();
        let ins: Vec<usize> = query.influential_set().iter().map(|s| s.idx()).collect();
        let region = query.safe_region();
        let state = if outcome.changed() {
            shown_invalid = true;
            "(b) the kNN set had become INVALID and was updated"
        } else {
            shown_valid = true;
            "(a) the kNN set is valid"
        };
        out.push_str(&format!(
            "tick {tick}: {state}\n\
             green circle (farthest kNN) r = {:.2}; red circle (nearest INS) r = {:.2}\n{}\n\n",
            green.radius,
            red.radius,
            render_euclidean(&points, &knn, &ins, pos, Some(&region), space, 66, 22)
        ));
    }
    let s = query.stats();
    out.push_str(&format!(
        "totals: {} ticks processed | valid {} | swaps {} | re-ranks {} | recomputations {}\n",
        s.ticks, s.valid_ticks, s.swaps, s.local_reranks, s.recomputations
    ));
    out
}

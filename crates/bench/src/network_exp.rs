//! Road-network experiments (E7).

use std::sync::Arc;

use insq_baselines::NetNaiveProcessor;
use insq_core::{NetInsConfig, NetInsProcessor};
use insq_roadnet::generators::{
    grid_network, random_site_vertices, ring_radial_network, GridConfig,
};
use insq_roadnet::{NetTrajectory, NetworkWorld, RoadNetwork, SiteSet};
use insq_server::parallel_map;
use insq_sim::run_network;

use crate::Effort;

/// E7: network-mode cost and communication vs k, INS vs naive INE.
pub fn e7_network_vs_k(effort: Effort) -> String {
    let ks = effort.thin(&[1usize, 2, 4, 8, 16]);
    let ticks = effort.ticks(3_000);

    let net = Arc::new(
        grid_network(
            &GridConfig {
                cols: 40,
                rows: 40,
                spacing: 1.0,
                jitter: 0.2,
                diagonal_prob: 0.08,
                deletion_prob: 0.08,
            },
            2016,
        )
        .expect("valid grid"),
    );
    let sites = SiteSet::new(
        &net,
        random_site_vertices(&net, 120, 7).expect("enough vertices"),
    )
    .expect("distinct sites");
    let world = NetworkWorld::build(Arc::clone(&net), sites);
    let tour = NetTrajectory::random_tour(&net, 15, 3).expect("connected network");

    let mut out = format!(
        "grid {}x{} ({} vertices, {} edges), 120 sites, rho=1.6, speed 0.03/tick\n",
        40,
        40,
        net.num_vertices(),
        net.num_edges()
    );
    out.push_str(&format!(
        "{:<5} {:<11} {:>10} {:>8} {:>9} {:>12} {:>12} {:>9}\n",
        "k", "method", "recompute", "local", "comm", "settled/tick", "us/tick", "valid%"
    ));

    let cells = parallel_map(ks, |&k| {
        let mut ins =
            NetInsProcessor::new(&world, NetInsConfig::new(k, 1.6)).expect("valid configuration");
        let run_ins = run_network(&mut ins, &net, &tour, ticks, 0.03);
        let mut naive = NetNaiveProcessor::new(&net, &world.sites, k).expect("valid configuration");
        let run_naive = run_network(&mut naive, &net, &tour, ticks, 0.03);
        (k, run_ins, run_naive)
    });

    for (k, run_ins, run_naive) in &cells {
        for run in [run_ins, run_naive] {
            let s = &run.stats;
            out.push_str(&format!(
                "{:<5} {:<11} {:>10} {:>8} {:>9} {:>12.1} {:>12.2} {:>8.1}%\n",
                k,
                run.method,
                s.recomputations,
                s.swaps + s.local_reranks,
                s.comm_objects,
                (s.validation_ops + s.search_ops) as f64 / s.ticks as f64,
                run.elapsed.as_secs_f64() * 1e6 / s.ticks as f64,
                100.0 * s.valid_ticks as f64 / s.ticks as f64,
            ));
        }
    }
    out.push_str(
        "\nexpected shape: naive ships k objects every tick and re-expands from\n\
         scratch; INS validates on the Theorem-2 subnetwork (k + |INS| cells) and\n\
         contacts the server only on true order-k cell exits, so communication is\n\
         orders of magnitude lower at every k.\n",
    );

    // Topology robustness: the same comparison on a ring-radial network.
    let ring = ring_radial_network(12, 24, 1.0, 2016).expect("valid ring-radial");
    out.push_str(&format!(
        "\nring-radial topology ({} vertices, {} edges), 60 sites, k=4:\n",
        ring.num_vertices(),
        ring.num_edges()
    ));
    out.push_str(&run_pair(ring, 60, 4, effort.ticks(2_000)));
    out.push_str("\nexpected shape: unchanged — the INS algorithm is topology-agnostic.\n");
    out
}

/// Runs INS-road vs Naive-road on one network; returns two table rows.
fn run_pair(net: RoadNetwork, site_count: usize, k: usize, ticks: usize) -> String {
    let net = Arc::new(net);
    let sites = SiteSet::new(
        &net,
        random_site_vertices(&net, site_count, 5).expect("sites"),
    )
    .expect("distinct sites");
    let world = NetworkWorld::build(Arc::clone(&net), sites);
    let tour = NetTrajectory::random_tour(&net, 10, 9).expect("connected");
    let mut out = String::new();
    let mut ins = NetInsProcessor::new(&world, NetInsConfig::new(k, 1.6)).expect("valid");
    let run_ins = run_network(&mut ins, &net, &tour, ticks, 0.03);
    let mut naive = NetNaiveProcessor::new(&net, &world.sites, k).expect("valid");
    let run_naive = run_network(&mut naive, &net, &tour, ticks, 0.03);
    for run in [&run_ins, &run_naive] {
        let s = &run.stats;
        out.push_str(&format!(
            "  {:<11} recompute={:<5} local={:<5} comm={:<7} settled/tick={:<8.1} us/tick={:.2}\n",
            run.method,
            s.recomputations,
            s.swaps + s.local_reranks,
            s.comm_objects,
            (s.validation_ops + s.search_ops) as f64 / s.ticks as f64,
            run.elapsed.as_secs_f64() * 1e6 / s.ticks as f64,
        ));
    }
    out
}

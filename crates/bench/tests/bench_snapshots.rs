//! Schema check for the committed benchmark snapshots: every
//! `BENCH_*.json` at the repo root must parse as JSON, name its
//! experiment, and carry a numeric `us_per_tick` — either top-level or
//! in every element of its `runs` array — so downstream tooling can diff
//! the per-tick cost across commits without per-experiment knowledge.

use insq_bench::bench_json::{repo_root, Json};

/// `us_per_tick` present and numeric, top-level or per run.
fn has_us_per_tick(doc: &Json) -> bool {
    if doc.get("us_per_tick").and_then(Json::as_f64).is_some() {
        return true;
    }
    match doc.get("runs").and_then(Json::as_arr) {
        Some(runs) if !runs.is_empty() => runs
            .iter()
            .all(|r| r.get("us_per_tick").and_then(Json::as_f64).is_some()),
        _ => false,
    }
}

#[test]
fn committed_snapshots_parse_and_carry_us_per_tick() {
    let root = repo_root();
    let mut found: Vec<String> = Vec::new();
    for entry in std::fs::read_dir(&root).expect("repo root readable") {
        let entry = entry.expect("dir entry");
        let name = entry.file_name().to_string_lossy().into_owned();
        if !(name.starts_with("BENCH_") && name.ends_with(".json")) {
            continue;
        }
        let text = std::fs::read_to_string(entry.path())
            .unwrap_or_else(|e| panic!("{name}: unreadable: {e}"));
        let doc =
            Json::parse(&text).unwrap_or_else(|e| panic!("{name}: does not parse as JSON: {e}"));
        let experiment = doc
            .get("experiment")
            .and_then(Json::as_str)
            .unwrap_or_else(|| panic!("{name}: missing string field \"experiment\""));
        assert!(
            name == format!("BENCH_{experiment}.json"),
            "{name}: file name does not match experiment id {experiment:?}"
        );
        assert!(
            has_us_per_tick(&doc),
            "{name}: no numeric us_per_tick (top-level or in every runs[] element)"
        );
        found.push(name);
    }
    // The six snapshot-emitting experiments must all be committed.
    for required in [
        "BENCH_e_net.json",
        "BENCH_e_fleet.json",
        "BENCH_e_cluster.json",
        "BENCH_e_update.json",
        "BENCH_e_spaces.json",
        "BENCH_e_traffic.json",
    ] {
        assert!(
            found.iter().any(|n| n == required),
            "missing committed snapshot {required} (have: {found:?})"
        );
    }
}

//! Substrate micro-benchmarks: the building blocks every experiment rests
//! on — Delaunay construction, index loading, kNN search, shortest paths
//! and the network Voronoi diagram.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use insq_geom::{Aabb, Point};
use insq_index::rtree::Entry;
use insq_index::{RTree, VorTree};
use insq_roadnet::dijkstra::distances_from_vertex;
use insq_roadnet::generators::{grid_network, random_site_vertices, GridConfig};
use insq_roadnet::{NetworkVoronoi, SiteSet, VertexId};
use insq_voronoi::{Triangulation, Voronoi};
use insq_workload::Distribution;
use std::hint::black_box;

fn space() -> Aabb {
    Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0))
}

fn bench_delaunay(c: &mut Criterion) {
    let mut group = c.benchmark_group("delaunay_build");
    group.sample_size(20);
    for n in [1_000usize, 10_000, 50_000] {
        let points = Distribution::Uniform.generate(n, &space(), 1);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(Triangulation::build(black_box(&points)).unwrap()))
        });
    }
    group.finish();
}

fn bench_indexes(c: &mut Criterion) {
    let n = 10_000;
    let points = Distribution::Uniform.generate(n, &space(), 2);
    let entries: Vec<Entry> = points
        .iter()
        .enumerate()
        .map(|(i, &p)| Entry {
            point: p,
            id: i as u32,
        })
        .collect();

    let mut group = c.benchmark_group("index");
    group.sample_size(20);
    group.bench_function("rtree_bulk_load_10k", |b| {
        b.iter(|| black_box(RTree::bulk_load(black_box(entries.clone()))))
    });
    group.bench_function("voronoi_build_10k", |b| {
        b.iter(|| {
            black_box(Voronoi::build(black_box(points.clone()), space().inflated(10.0)).unwrap())
        })
    });

    let rtree = RTree::bulk_load(entries);
    let vortree = VorTree::build(points, space().inflated(10.0)).unwrap();
    let q = Point::new(31.4, 15.9);
    group.sample_size(100);
    for k in [1usize, 8, 64] {
        group.bench_with_input(BenchmarkId::new("rtree_knn", k), &k, |b, &k| {
            b.iter(|| black_box(rtree.knn(black_box(q), k)))
        });
        group.bench_with_input(BenchmarkId::new("vortree_knn", k), &k, |b, &k| {
            b.iter(|| black_box(vortree.knn(black_box(q), k)))
        });
    }
    group.finish();
}

fn bench_roadnet(c: &mut Criterion) {
    let net = grid_network(
        &GridConfig {
            cols: 40,
            rows: 40,
            ..GridConfig::default()
        },
        7,
    )
    .unwrap();
    let sites = SiteSet::new(&net, random_site_vertices(&net, 100, 3).unwrap()).unwrap();

    let mut group = c.benchmark_group("roadnet");
    group.sample_size(30);
    group.bench_function("dijkstra_full_1600v", |b| {
        b.iter(|| black_box(distances_from_vertex(&net, black_box(VertexId(0)))))
    });
    group.bench_function("nvd_build_100_sites", |b| {
        b.iter(|| black_box(NetworkVoronoi::build(&net, &sites)))
    });
    let nvd = NetworkVoronoi::build(&net, &sites);
    group.bench_function("astar_corner_to_corner", |b| {
        b.iter(|| {
            black_box(insq_roadnet::astar::astar(
                &net,
                black_box(VertexId(0)),
                black_box(VertexId(1599)),
            ))
        })
    });
    group.bench_function("ine_knn_k8", |b| {
        b.iter(|| {
            black_box(insq_roadnet::ine::network_knn(
                &net,
                &sites,
                insq_roadnet::NetPosition::Vertex(black_box(VertexId(820))),
                8,
            ))
        })
    });
    group.bench_function("restricted_knn_k8", |b| {
        use insq_core::influential_neighbor_set_net;
        use insq_roadnet::subnetwork::{restricted_knn, SiteMask};
        let pos = insq_roadnet::NetPosition::Vertex(VertexId(820));
        let knn: Vec<_> = insq_roadnet::ine::network_knn(&net, &sites, pos, 8)
            .into_iter()
            .map(|(s, _)| s)
            .collect();
        let ins = influential_neighbor_set_net(&nvd, &knn);
        let mut mask = SiteMask::new(sites.len());
        mask.set(knn.iter().copied().chain(ins.iter().copied()));
        b.iter(|| black_box(restricted_knn(&net, &sites, &nvd, &mask, black_box(pos), 8)))
    });
    group.finish();
}

criterion_group!(benches, bench_delaunay, bench_indexes, bench_roadnet);
criterion_main!(benches);

//! E1/E3 as criterion benches: end-to-end per-tick cost of each method
//! along a fixed trajectory segment (100 ticks per iteration).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use insq_baselines::{NaiveProcessor, OkvProcessor, VStarConfig, VStarProcessor};
use insq_bench::euclidean_exp::build_index;
use insq_core::{InsConfig, InsProcessor, MovingKnn};
use insq_geom::{Aabb, Point};
use insq_workload::{Distribution, TrajectoryKind};
use std::hint::black_box;

const TICKS: usize = 100;

fn positions() -> Vec<Point> {
    let space = Aabb::new(Point::new(0.0, 0.0), Point::new(100.0, 100.0));
    let traj = TrajectoryKind::RandomWaypoint { waypoints: 10 }.generate(&space, 7);
    (0..TICKS)
        .map(|i| traj.position_looped(0.05 * i as f64))
        .collect()
}

fn bench_methods_vs_k(c: &mut Criterion) {
    let index = build_index(10_000, Distribution::Uniform, 2016);
    let positions = positions();

    let mut group = c.benchmark_group("per_tick_vs_k");
    group.throughput(Throughput::Elements(TICKS as u64));
    group.sample_size(30);
    for k in [1usize, 8, 32] {
        group.bench_with_input(BenchmarkId::new("INS", k), &k, |b, &k| {
            b.iter(|| {
                let mut p = InsProcessor::new(&index, InsConfig::new(k, 1.6)).unwrap();
                for &pos in &positions {
                    black_box(p.tick(pos));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("OkV", k), &k, |b, &k| {
            b.iter(|| {
                let mut p = OkvProcessor::new(&index, k).unwrap();
                for &pos in &positions {
                    black_box(p.tick(pos));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("Vstar", k), &k, |b, &k| {
            b.iter(|| {
                let mut p = VStarProcessor::new(&index, VStarConfig::with_k(k)).unwrap();
                for &pos in &positions {
                    black_box(p.tick(pos));
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("Naive", k), &k, |b, &k| {
            b.iter(|| {
                let mut p = NaiveProcessor::new(index.rtree(), k).unwrap();
                for &pos in &positions {
                    black_box(p.tick(pos));
                }
            })
        });
    }
    group.finish();
}

fn bench_ins_vs_n(c: &mut Criterion) {
    let positions = positions();
    let mut group = c.benchmark_group("ins_per_tick_vs_n");
    group.throughput(Throughput::Elements(TICKS as u64));
    group.sample_size(20);
    for n in [1_000usize, 10_000, 100_000] {
        let index = build_index(n, Distribution::Uniform, 3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut p = InsProcessor::new(&index, InsConfig::new(8, 1.6)).unwrap();
                for &pos in &positions {
                    black_box(p.tick(pos));
                }
            })
        });
    }
    group.finish();
}

fn bench_continuous_events(c: &mut Criterion) {
    // The exact event-trace extension: cost of computing the complete kNN
    // change sequence along a space-crossing segment.
    let index = build_index(10_000, Distribution::Uniform, 5);
    let a = Point::new(10.0, 15.0);
    let b = Point::new(90.0, 85.0);
    let mut group = c.benchmark_group("continuous_events");
    group.sample_size(20);
    for k in [1usize, 5, 16] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |bch, &k| {
            bch.iter(|| {
                black_box(
                    insq_core::knn_change_events(&index, k, black_box(a), black_box(b))
                        .expect("valid configuration"),
                )
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_methods_vs_k,
    bench_ins_vs_n,
    bench_continuous_events
);
criterion_main!(benches);
